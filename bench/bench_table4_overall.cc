// Reproduces paper Table IV: overall performance comparison of FC+FL,
// RNN+FL, MTrajRec+FL, RNTrajRec+FL, and LightTR on the Geolife-like
// and Tdrive-like workloads at keep ratios 6.25%, 12.5%, and 25%.
//
// Expected shape (paper): LightTR best everywhere; RNTrajRec+FL and
// MTrajRec+FL next; RNN+FL above FC+FL; all methods improve with the
// keep ratio. Absolute values differ (scaled-down models/data; see
// DESIGN.md).
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"

int main() {
  using namespace lighttr;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Table IV reproduction (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const std::vector<traj::WorkloadProfile> profiles = {
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale),
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale)};
  const std::vector<double> keep_ratios = {0.0625, 0.125, 0.25};
  const std::vector<baselines::ModelKind> methods = {
      baselines::ModelKind::kFc, baselines::ModelKind::kRnn,
      baselines::ModelKind::kMTrajRec, baselines::ModelKind::kRnTrajRec,
      baselines::ModelKind::kLightTr};

  TablePrinter table({"Dataset", "Keep", "Method", "Recall", "Precision",
                      "MAE(km)", "RMSE(km)", "Wall(s)"});
  for (const auto& profile : profiles) {
    for (double keep : keep_ratios) {
      const auto clients = env->MakeWorkload(
          profile, eval::DefaultWorkloadOptions(scale, keep), scale.seed + 1);
      for (baselines::ModelKind kind : methods) {
        const eval::MethodResult result = eval::RunFederatedMethod(
            *env, kind, clients, eval::DefaultRunOptions(scale));
        table.AddRow({profile.name, TablePrinter::Fmt(keep * 100, 2) + "%",
                      result.method, TablePrinter::Fmt(result.metrics.recall),
                      TablePrinter::Fmt(result.metrics.precision),
                      TablePrinter::Fmt(result.metrics.mae_km),
                      TablePrinter::Fmt(result.metrics.rmse_km),
                      TablePrinter::Fmt(result.wall_seconds, 1)});
        std::printf("done: %s %s %.2f%%\n", profile.name.c_str(),
                    result.method.c_str(), keep * 100);
        std::fflush(stdout);
      }
    }
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_table4_overall.csv", table.ToCsv());
  return 0;
}
