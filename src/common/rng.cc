#include "common/rng.h"

#include <numeric>
#include <sstream>

namespace lighttr {

std::string Rng::SerializeState() const {
  // std::mt19937_64 defines textual stream (de)serialization of its
  // full internal state; the text round-trips exactly.
  std::ostringstream os;
  os << engine_;
  return os.str();
}

Status Rng::DeserializeState(const std::string& state) {
  std::istringstream is(state);
  std::mt19937_64 restored;
  is >> restored;
  if (is.fail()) {
    return Status::InvalidArgument("malformed RNG state string");
  }
  engine_ = restored;
  return Status::Ok();
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  LIGHTTR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    LIGHTTR_CHECK_GE(w, 0.0);
    total += w;
  }
  LIGHTTR_CHECK_GT(total, 0.0);
  double pick = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (pick < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  LIGHTTR_CHECK_LE(k, n);
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i),
                                              static_cast<int64_t>(n - 1)));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace lighttr
