// Engineering microbenchmarks of the substrates: matrix kernels,
// autograd overhead, Dijkstra shortest paths, segment-index queries,
// and HMM map matching. Not a paper experiment; guards the performance
// assumptions the experiment harness relies on.
#include <benchmark/benchmark.h>

#include "mapmatch/hmm_map_matcher.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "roadnet/generators.h"
#include "roadnet/segment_index.h"
#include "roadnet/shortest_path.h"
#include "traj/generator.h"

namespace {

using namespace lighttr;

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const nn::Matrix a = nn::Matrix::RandomUniform(n, n, 1.0, &rng);
  const nn::Matrix b = nn::Matrix::RandomUniform(n, n, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMulValues(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_AutogradOverhead(benchmark::State& state) {
  // Chained small ops measure tape overhead relative to raw math.
  Rng rng(2);
  nn::Tensor w = nn::Tensor::Variable(nn::Matrix::RandomUniform(8, 8, 1.0, &rng));
  const nn::Matrix x = nn::Matrix::RandomUniform(1, 8, 1.0, &rng);
  for (auto _ : state) {
    nn::Tensor t = nn::Tensor::Constant(x);
    for (int i = 0; i < 8; ++i) t = nn::Tanh(nn::MatMul(t, w));
    nn::Tensor loss = nn::Mean(t);
    loss.Backward();
    w.ZeroGrad();
  }
}
BENCHMARK(BM_AutogradOverhead);

void BM_DijkstraPointToPoint(benchmark::State& state) {
  Rng rng(3);
  roadnet::CityGridOptions options;
  options.rows = static_cast<int32_t>(state.range(0));
  options.cols = static_cast<int32_t>(state.range(0));
  const roadnet::RoadNetwork network = roadnet::GenerateCityGrid(options, &rng);
  roadnet::DijkstraEngine engine(network);
  Rng pick(4);
  for (auto _ : state) {
    const auto u = static_cast<roadnet::VertexId>(
        pick.UniformInt(0, network.num_vertices() - 1));
    const auto v = static_cast<roadnet::VertexId>(
        pick.UniformInt(0, network.num_vertices() - 1));
    benchmark::DoNotOptimize(engine.Distance(u, v));
  }
}
BENCHMARK(BM_DijkstraPointToPoint)->Arg(9)->Arg(16)->Arg(24);

void BM_SegmentIndexNearby(benchmark::State& state) {
  Rng rng(5);
  roadnet::CityGridOptions options;
  const roadnet::RoadNetwork network = roadnet::GenerateCityGrid(options, &rng);
  const roadnet::SegmentIndex index(network);
  const geo::GeoPoint lo = network.min_corner();
  const geo::GeoPoint hi = network.max_corner();
  Rng pick(6);
  for (auto _ : state) {
    const geo::GeoPoint p{pick.Uniform(lo.lat, hi.lat),
                          pick.Uniform(lo.lng, hi.lng)};
    benchmark::DoNotOptimize(index.Nearby(p, 250.0));
  }
}
BENCHMARK(BM_SegmentIndexNearby);

void BM_HmmMapMatch(benchmark::State& state) {
  Rng rng(7);
  roadnet::CityGridOptions options;
  const roadnet::RoadNetwork network = roadnet::GenerateCityGrid(options, &rng);
  const roadnet::SegmentIndex index(network);
  const traj::TrajectoryGenerator generator(network);
  traj::GeneratorOptions gen;
  gen.min_points = 24;
  gen.max_points = 24;
  auto matched = generator.Generate(gen, roadnet::kInvalidVertex, &rng);
  const traj::RawTrajectory raw =
      traj::ToRawTrajectory(network, matched.value(), 20.0, &rng);
  const mapmatch::HmmMapMatcher matcher(index, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(raw));
  }
}
BENCHMARK(BM_HmmMapMatch);

}  // namespace

BENCHMARK_MAIN();
