
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lighttr/lte_model.cc" "src/lighttr/CMakeFiles/lighttr_core.dir/lte_model.cc.o" "gcc" "src/lighttr/CMakeFiles/lighttr_core.dir/lte_model.cc.o.d"
  "/root/repo/src/lighttr/meta_local_update.cc" "src/lighttr/CMakeFiles/lighttr_core.dir/meta_local_update.cc.o" "gcc" "src/lighttr/CMakeFiles/lighttr_core.dir/meta_local_update.cc.o.d"
  "/root/repo/src/lighttr/pipeline.cc" "src/lighttr/CMakeFiles/lighttr_core.dir/pipeline.cc.o" "gcc" "src/lighttr/CMakeFiles/lighttr_core.dir/pipeline.cc.o.d"
  "/root/repo/src/lighttr/teacher_training.cc" "src/lighttr/CMakeFiles/lighttr_core.dir/teacher_training.cc.o" "gcc" "src/lighttr/CMakeFiles/lighttr_core.dir/teacher_training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/lighttr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/lighttr_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lighttr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lighttr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/lighttr_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lighttr_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
