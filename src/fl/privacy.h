// Differential-privacy-style upload protection (extension; the paper
// cites DP federated learning [20] as the privacy-hardening direction):
// each client's model delta is clipped in L2 norm and perturbed with
// Gaussian noise before upload, in the style of DP-FedAvg.
#ifndef LIGHTTR_FL_PRIVACY_H_
#define LIGHTTR_FL_PRIVACY_H_

#include <vector>

#include "common/rng.h"
#include "nn/arena.h"

namespace lighttr::fl {

/// Parameters of the Gaussian mechanism applied to client uploads.
struct PrivacyConfig {
  /// L2 clipping bound C on the client's model delta. <= 0 disables
  /// clipping (and with noise_multiplier 0, the mechanism entirely).
  double clip_norm = 0.0;
  /// Noise standard deviation as a multiple of clip_norm (sigma = z * C).
  double noise_multiplier = 0.0;

  bool enabled() const { return clip_norm > 0.0; }
};

/// Applies the Gaussian mechanism to an upload: clips (upload - reference)
/// to clip_norm and adds N(0, (z*C)^2) noise per coordinate, returning
/// reference + clipped_noisy_delta. `reference` is the round's global
/// model (the delta is what leaks information).
std::vector<nn::Scalar> PrivatizeUpload(const std::vector<nn::Scalar>& upload,
                                        const std::vector<nn::Scalar>& reference,
                                        const PrivacyConfig& config, Rng* rng);

/// L2 norm of (a - b); exposed for tests and accounting.
double DeltaNorm(const std::vector<nn::Scalar>& a,
                 const std::vector<nn::Scalar>& b);

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_PRIVACY_H_
