// Seeded model-poisoning adversary for the federated loop.
//
// Everything before this module attacks the *infrastructure*: dropped
// clients, corrupted frames, torn snapshots. This module attacks the
// *learning*: a configurable cohort of clients trains honestly, then
// rewrites its upload before quantization/transport/screening so the
// poison traverses the exact path a real malicious device would use.
// Four attacks, in increasing stealth:
//
//   kSignFlip      — upload global - delta: the exact inverse of the
//                    honest step. Loud (norm matches honest traffic,
//                    direction is maximally wrong).
//   kScaledAscent  — upload global - scale * delta: gradient ascent at
//                    `ascent_scale`x. Loud in norm, devastating under
//                    mean aggregation.
//   kMinMax        — colluding drift: every attacker uploads the SAME
//                    global + target * drift vector, where drift is a
//                    fresh round-keyed random direction and target is
//                    sized to the median honest delta norm. Defeats
//                    coordinate-median-style defenses that assume
//                    attackers are mutually independent outliers.
//   kNormMatched   — stealth sign-flip: the adversarial direction is
//                    rescaled to `stealth_margin` x the median honest
//                    delta norm, so norm-based screening and MAD
//                    envelopes see nothing unusual.
//
// The engine is adaptive across rounds — it watches the delta norms of
// accepted honest uploads (ObserveHonestNorm) and sizes its attacks to
// blend in — yet fully deterministic: it owns an independent RNG stream
// seeded from AdversaryConfig::seed (never forked from the trainer's
// draw chain, mirroring the transport's net_rng_ contract), all stream
// mutation happens on the coordinating thread (BeginRound / ForkStream
// in canonical selection order), and Poison() is const so worker
// threads only consume their pre-forked per-task streams. State
// round-trips through Serialize/Deserialize so crash/resume and
// divergence rollback replay the attack stream bitwise-identically.
#ifndef LIGHTTR_FL_ADVERSARY_H_
#define LIGHTTR_FL_ADVERSARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/arena.h"

namespace lighttr::fl {

/// Which poisoning transform the attacker cohort applies.
enum class AttackType {
  kNone = 0,
  kSignFlip,
  kScaledAscent,
  kMinMax,
  kNormMatched,
};

const char* AttackTypeName(AttackType attack);

/// Strict parse of AttackTypeName output (plus the hyphenated CLI
/// spellings). Returns false on unknown text without touching `out`.
bool ParseAttackType(const std::string& text, AttackType* out);

struct AdversaryConfig {
  /// Clients [0, num_attackers) are compromised; 0 disables the engine.
  /// Low indices (matching bench_self_healing's hostile-cohort idiom)
  /// make attribution checks trivial to state.
  int num_attackers = 0;
  AttackType attack = AttackType::kNone;
  /// First round (1-based) the cohort poisons; earlier rounds train
  /// honestly, letting the engine bank honest norms to mimic.
  int start_round = 1;
  /// Gradient-ascent multiplier (kScaledAscent).
  double ascent_scale = 10.0;
  /// Target norm as a fraction of the median honest delta norm
  /// (kMinMax, kNormMatched).
  double stealth_margin = 0.9;
  /// Seed for the engine's independent stream. Changing it re-rolls the
  /// attack weather without perturbing any training draw.
  uint64_t seed = 0xADCAFE01ull;

  bool Enabled() const { return num_attackers > 0 && attack != AttackType::kNone; }
  bool IsAttacker(int client_index) const {
    return Enabled() && client_index < num_attackers;
  }
};

/// The adversary's server-visible-world model + RNG stream. Owned by
/// FederatedTrainer; coordinating-thread mutation only.
class AdversaryEngine {
 public:
  explicit AdversaryEngine(const AdversaryConfig& config);

  const AdversaryConfig& config() const { return config_; }

  /// Whether the cohort poisons uploads in (1-based) `round`.
  bool ActiveInRound(int round) const {
    return config_.Enabled() && round >= config_.start_round;
  }

  /// Advances the round-keyed collusion state (kMinMax resamples its
  /// shared drift direction). Call once per round, before ForkStream,
  /// on the coordinating thread.
  void BeginRound(int round, size_t param_count);

  /// Forks one per-attacker stream, in canonical selection order, on
  /// the coordinating thread.
  Rng ForkStream() { return rng_.Fork(); }

  /// Rewrites `upload` (the attacker's honest post-training parameters)
  /// in place relative to the round-start `global` model, drawing only
  /// from the pre-forked `rng`. Const: safe to call from worker tasks.
  /// Returns true when the upload was poisoned.
  bool Poison(const std::vector<nn::Scalar>& global,
              std::vector<nn::Scalar>* upload, Rng* rng) const;

  /// Banks the delta norm of one accepted *honest* upload (the
  /// adversary eavesdropping on plausible traffic). Coordinating
  /// thread, canonical order, after each round's fold.
  void ObserveHonestNorm(double norm);

  /// Median of the banked honest norms scaled by stealth_margin, or
  /// `fallback` (the attacker's own honest delta norm) before any
  /// history exists.
  double TargetNorm(double fallback) const;

  int honest_norm_history() const {
    return static_cast<int>(honest_norms_.size());
  }

  /// Serializes the RNG stream + honest-norm window (for fl/run_state
  /// v5 snapshots). The drift direction is deliberately absent: it is
  /// regenerated by BeginRound from the restored stream.
  std::string SerializeState() const;

  /// Restores SerializeState output. Rejects malformed input without
  /// touching the current state.
  [[nodiscard]] Status DeserializeState(const std::string& bytes);

 private:
  AdversaryConfig config_;
  Rng rng_;
  /// Shared unit-norm collusion direction (kMinMax), resampled per round.
  std::vector<nn::Scalar> drift_;
  /// Rolling window of accepted honest delta norms, oldest first.
  std::vector<double> honest_norms_;
};

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_ADVERSARY_H_
