// Model checkpointing: persist a ParameterSet to disk and restore it
// into a same-architecture model (deployment / resume path).
//
// Format v2 ("LTC2") is versioned and checksummed: a file header
// (magic, version, dtype, parameter count), one record per parameter
// (name, shape, payload CRC-32, payload), and a trailing whole-file
// CRC-32. The loader detects truncation, bit flips, oversized declared
// lengths, shape/name mismatches, and non-finite payloads, and returns
// a descriptive Status for each instead of crashing or silently loading
// garbage. Legacy v1 blobs (ParameterSet::Serialize wire format) are
// still readable.
#ifndef LIGHTTR_NN_CHECKPOINT_H_
#define LIGHTTR_NN_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "nn/parameter.h"

namespace lighttr::nn {

/// On-disk element type of a v2 checkpoint. Float32 matches the FL wire
/// format (deployment checkpoints); float64 preserves full Scalar
/// precision (crash-recovery snapshots, where the resumed run must be
/// bitwise-identical to an uninterrupted one).
enum class CheckpointDtype : uint8_t {
  kFloat32 = 0,
  kFloat64 = 1,
};

/// Serializes `params` into a v2 checkpoint blob.
std::string SerializeCheckpoint(const ParameterSet& params,
                                CheckpointDtype dtype = CheckpointDtype::kFloat32);

/// Restores `params` from a v2 blob (or a legacy v1 blob). Names and
/// shapes must match; every integrity violation yields a non-OK Status
/// with the file left out of the model (params may be partially
/// overwritten on failure — reload a known-good checkpoint before use).
[[nodiscard]] Status ParseCheckpoint(const std::string& bytes,
                                     ParameterSet* params);

/// Writes the parameters to `path` (v2, float32, atomic write).
[[nodiscard]] Status SaveCheckpoint(const std::string& path,
                                    const ParameterSet& params);

/// Writes the parameters to `path` with an explicit element type.
[[nodiscard]] Status SaveCheckpoint(const std::string& path,
                                    const ParameterSet& params,
                                    CheckpointDtype dtype);

/// As above, through an explicit FileSystem (fault-injectable path; the
/// two-argument overloads use the process-wide real filesystem).
[[nodiscard]] Status SaveCheckpoint(FileSystem* fs, const std::string& path,
                                    const ParameterSet& params,
                                    CheckpointDtype dtype);

/// Restores parameters from `path`; names and shapes must match.
[[nodiscard]] Status LoadCheckpoint(const std::string& path,
                                    ParameterSet* params);

/// As above, through an explicit FileSystem.
[[nodiscard]] Status LoadCheckpoint(FileSystem* fs, const std::string& path,
                                    ParameterSet* params);

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_CHECKPOINT_H_
