
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/downsample.cc" "src/traj/CMakeFiles/lighttr_traj.dir/downsample.cc.o" "gcc" "src/traj/CMakeFiles/lighttr_traj.dir/downsample.cc.o.d"
  "/root/repo/src/traj/encoding.cc" "src/traj/CMakeFiles/lighttr_traj.dir/encoding.cc.o" "gcc" "src/traj/CMakeFiles/lighttr_traj.dir/encoding.cc.o.d"
  "/root/repo/src/traj/generator.cc" "src/traj/CMakeFiles/lighttr_traj.dir/generator.cc.o" "gcc" "src/traj/CMakeFiles/lighttr_traj.dir/generator.cc.o.d"
  "/root/repo/src/traj/stats.cc" "src/traj/CMakeFiles/lighttr_traj.dir/stats.cc.o" "gcc" "src/traj/CMakeFiles/lighttr_traj.dir/stats.cc.o.d"
  "/root/repo/src/traj/trajectory.cc" "src/traj/CMakeFiles/lighttr_traj.dir/trajectory.cc.o" "gcc" "src/traj/CMakeFiles/lighttr_traj.dir/trajectory.cc.o.d"
  "/root/repo/src/traj/workload.cc" "src/traj/CMakeFiles/lighttr_traj.dir/workload.cc.o" "gcc" "src/traj/CMakeFiles/lighttr_traj.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadnet/CMakeFiles/lighttr_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lighttr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lighttr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lighttr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
