// Extending the library: implement a custom RecoveryModel against the
// fl::RecoveryModel interface and drop it into the same federated
// harness and metrics used by LightTR and the paper baselines.
//
// The custom model here is a deliberately simple "route-prior" model:
// it predicts the route-interpolated position directly (the constraint
// mask's center) and learns only a per-step ratio correction. It needs
// no segment classifier at all, which makes it tiny — a useful lower
// bound to compare learned models against.
#include <cstdio>

#include "common/table_printer.h"
#include "eval/harness.h"
#include "fl/federated_trainer.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace {

using namespace lighttr;

class RoutePriorModel : public fl::RecoveryModel {
 public:
  RoutePriorModel(const traj::TrajectoryEncoder* encoder, Rng* rng)
      : encoder_(encoder),
        correction_(traj::TrajectoryEncoder::kFeatureDim, 1, "correction",
                    &params_, rng) {}

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool /*training*/, Rng* /*rng*/) override {
    const auto targets = encoder_->EncodeTargets(trajectory);
    const nn::Tensor inputs =
        nn::Tensor::Constant(encoder_->EncodeInputs(trajectory));
    const auto missing = trajectory.MissingIndices();
    fl::ForwardResult result;
    if (missing.empty()) {
      result.loss = nn::Tensor::Constant(nn::Matrix::Zeros(1, 1));
      return result;
    }
    // Learn a ratio offset on top of the route prior's ratio.
    std::vector<nn::Tensor> rows;
    nn::Matrix target(missing.size(), 1);
    for (size_t i = 0; i < missing.size(); ++i) {
      rows.push_back(nn::SliceRows(inputs, missing[i], 1));
      target(i, 0) = static_cast<nn::Scalar>(targets[missing[i]].ratio);
    }
    const nn::Tensor pred =
        nn::Sigmoid(correction_.Forward(nn::ConcatRows(rows)));
    result.loss = nn::MseLoss(pred, target);
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    nn::NoGradScope no_grad;
    const nn::Tensor inputs =
        nn::Tensor::Constant(encoder_->EncodeInputs(trajectory));
    std::vector<roadnet::PointPosition> out(trajectory.size());
    for (size_t t = 0; t < trajectory.size(); ++t) {
      if (trajectory.observed[t]) {
        out[t] = trajectory.ground_truth.points[t].position;
        continue;
      }
      // Segment straight from the route prior; ratio from the learned head.
      auto prior = encoder_->RouteInterpolatedPosition(trajectory, t);
      const nn::Tensor ratio = nn::Sigmoid(
          correction_.Forward(nn::SliceRows(inputs, t, 1)));
      if (prior.has_value()) {
        out[t] = roadnet::PointPosition{prior->segment,
                                        ratio.value()(0, 0)};
      } else {
        out[t] = roadnet::PointPosition{0, ratio.value()(0, 0)};
      }
    }
    return out;
  }

 private:
  std::string name_ = "RoutePrior";
  const traj::TrajectoryEncoder* encoder_;
  nn::ParameterSet params_;
  nn::Dense correction_;
};

}  // namespace

int main() {
  eval::ExperimentEnv env(/*rows=*/8, /*cols=*/8, /*seed=*/5);
  traj::WorkloadProfile profile = traj::GeolifeLikeProfile();
  profile.trajectories_per_client = 14;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 4;
  workload.keep_ratio = 0.125;
  const auto clients = env.MakeWorkload(profile, workload, /*seed=*/6);
  const auto test = eval::ExperimentEnv::PooledTestSet(clients, 24);

  // Train the custom model with the very same federated harness.
  fl::FederatedTrainerOptions fed;
  fed.rounds = 4;
  fed.local_epochs = 2;
  fed.learning_rate = 3e-3;
  fl::FederatedTrainer trainer(
      [&env](Rng* rng) -> std::unique_ptr<fl::RecoveryModel> {
        return std::make_unique<RoutePriorModel>(&env.encoder(), rng);
      },
      &clients, fed);
  trainer.Run();
  const eval::RecoveryMetrics custom =
      eval::EvaluateRecovery(trainer.global_model(), env.network(), test);

  // And LightTR on the same data for reference.
  eval::MethodRunOptions options;
  options.fed = fed;
  const eval::MethodResult light = eval::RunFederatedMethod(
      env, baselines::ModelKind::kLightTr, clients, options);

  lighttr::TablePrinter table(
      {"Model", "Params", "Recall", "MAE(km)", "RMSE(km)"});
  table.AddRow({"RoutePrior (custom)",
                std::to_string(trainer.global_model()->params().NumScalars()),
                lighttr::TablePrinter::Fmt(custom.recall),
                lighttr::TablePrinter::Fmt(custom.mae_km),
                lighttr::TablePrinter::Fmt(custom.rmse_km)});
  table.AddRow({"LightTR", "(see fig5 bench)",
                lighttr::TablePrinter::Fmt(light.metrics.recall),
                lighttr::TablePrinter::Fmt(light.metrics.mae_km),
                lighttr::TablePrinter::Fmt(light.metrics.rmse_km)});
  std::printf("%s", table.ToString().c_str());
  return 0;
}
