#include "traj/workload.h"

#include <algorithm>
#include <cmath>

#include "traj/downsample.h"

namespace lighttr::traj {

WorkloadProfile TdriveLikeProfile() {
  WorkloadProfile profile;
  profile.name = "Tdrive-like";
  profile.generator.min_points = 20;
  profile.generator.max_points = 32;
  profile.generator.speed_mps_min = 7.0;   // taxis, urban arterials
  profile.generator.speed_mps_max = 17.0;
  profile.generator.epsilon_s = 15.0;
  profile.gps_noise_m = 30.0;              // sparse/noisy regime
  profile.trajectories_per_client = 20;
  return profile;
}

WorkloadProfile GeolifeLikeProfile() {
  WorkloadProfile profile;
  profile.name = "Geolife-like";
  profile.generator.min_points = 26;
  profile.generator.max_points = 40;
  profile.generator.speed_mps_min = 5.0;   // mixed-mode mobility
  profile.generator.speed_mps_max = 14.0;
  profile.generator.epsilon_s = 15.0;
  profile.gps_noise_m = 15.0;              // data-sufficient regime
  profile.trajectories_per_client = 30;
  return profile;
}

std::vector<ClientDataset> GenerateFederatedWorkload(
    const roadnet::RoadNetwork& network, const WorkloadProfile& profile,
    const FederatedWorkloadOptions& options, Rng* rng) {
  LIGHTTR_CHECK(rng != nullptr);
  LIGHTTR_CHECK_GE(options.num_clients, 1);
  LIGHTTR_CHECK_GT(options.keep_ratio, 0.0);
  LIGHTTR_CHECK_LE(options.keep_ratio, 1.0);
  LIGHTTR_CHECK_GT(options.train_frac + options.valid_frac, 0.0);
  LIGHTTR_CHECK_LT(options.train_frac + options.valid_frac, 1.0);

  const TrajectoryGenerator generator(network);
  std::vector<ClientDataset> clients;
  clients.reserve(options.num_clients);

  for (int c = 0; c < options.num_clients; ++c) {
    ClientDataset client;
    client.home = static_cast<roadnet::VertexId>(
        rng->UniformInt(0, network.num_vertices() - 1));

    std::vector<IncompleteTrajectory> all;
    all.reserve(profile.trajectories_per_client);
    int failures = 0;
    while (static_cast<int>(all.size()) < profile.trajectories_per_client) {
      auto traj = generator.Generate(profile.generator, client.home, rng);
      if (!traj.ok()) {
        // A handful of failed route draws is normal on tiny test networks;
        // a systematic failure indicates a broken network.
        LIGHTTR_CHECK_LT(++failures, 1000);
        continue;
      }
      MatchedTrajectory matched = std::move(traj).value();
      matched.driver_id = c;
      // Ingestion hardening: a generated trajectory that violates the
      // Definition 5 invariants (or carries non-finite values) is a
      // failed draw, not training data.
      if (!ValidateMatchedTrajectory(network, matched).ok()) {
        LIGHTTR_CHECK_LT(++failures, 1000);
        continue;
      }
      all.push_back(MakeIncomplete(std::move(matched), options.keep_ratio, rng));
    }

    const size_t n = all.size();
    size_t n_train = static_cast<size_t>(
        std::llround(options.train_frac * static_cast<double>(n)));
    size_t n_valid = static_cast<size_t>(
        std::llround(options.valid_frac * static_cast<double>(n)));
    if (n >= 3) {
      // Rounding must not starve any split: every client keeps at least
      // one training, one validation, and one test trajectory.
      n_train = std::max<size_t>(1, std::min(n_train, n - 2));
      n_valid = std::max<size_t>(1, std::min(n_valid, n - n_train - 1));
    }
    LIGHTTR_CHECK_LE(n_train + n_valid, n);
    for (size_t i = 0; i < n; ++i) {
      if (i < n_train) {
        client.train.push_back(std::move(all[i]));
      } else if (i < n_train + n_valid) {
        client.valid.push_back(std::move(all[i]));
      } else {
        client.test.push_back(std::move(all[i]));
      }
    }
    clients.push_back(std::move(client));
  }
  return clients;
}

std::vector<IncompleteTrajectory> MergeTrainSets(
    const std::vector<ClientDataset>& clients) {
  std::vector<IncompleteTrajectory> merged;
  for (const ClientDataset& client : clients) {
    merged.insert(merged.end(), client.train.begin(), client.train.end());
  }
  return merged;
}

}  // namespace lighttr::traj
