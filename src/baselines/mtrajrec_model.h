// MTrajRec baseline [16] (paper Sec. V-A3, Table VI): Seq2Seq
// encoder-decoder with attention and multi-task constrained decoding.
// The encoder consumes the observed (low-sampling-rate) anchors; the
// decoder reconstructs every step, attending over encoder states.
#ifndef LIGHTTR_BASELINES_MTRAJREC_MODEL_H_
#define LIGHTTR_BASELINES_MTRAJREC_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/mt_head.h"
#include "fl/recovery_model.h"
#include "nn/layers.h"
#include "traj/encoding.h"

namespace lighttr::baselines {

/// Configuration for MTrajRecModel.
struct MTrajRecConfig {
  size_t hidden_dim = 48;     // heavier than LightTR's LTE, as in Fig. 5
  size_t seg_embed_dim = 16;
  double dropout = 0.2;
  double mu = 1.0;
};

/// Seq2Seq multi-task trajectory recovery (the centralized SOTA the
/// paper compares against; federated as MTrajRec+FL).
class MTrajRecModel : public fl::RecoveryModel {
 public:
  MTrajRecModel(const traj::TrajectoryEncoder* encoder,
                const MTrajRecConfig& config, Rng* rng,
                std::string name = "MTrajRec+FL");

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool training, Rng* rng) override;

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override;

 private:
  fl::ForwardResult RunSequence(const traj::IncompleteTrajectory& trajectory,
                                bool training, bool teacher_forcing, Rng* rng,
                                std::vector<roadnet::PointPosition>* collect);

  std::string name_;
  const traj::TrajectoryEncoder* encoder_;
  MTrajRecConfig config_;
  nn::ParameterSet params_;
  std::unique_ptr<nn::GruCell> encoder_gru_;
  std::unique_ptr<nn::GruCell> decoder_gru_;
  std::unique_ptr<MtHead> head_;
};

}  // namespace lighttr::baselines

#endif  // LIGHTTR_BASELINES_MTRAJREC_MODEL_H_
