#include "traj/stats.h"

#include <unordered_set>

#include "roadnet/shortest_path.h"

namespace lighttr::traj {

DatasetStats ComputeDatasetStats(
    const roadnet::RoadNetwork& network,
    const std::vector<IncompleteTrajectory>& trajectories) {
  DatasetStats stats;
  roadnet::DijkstraEngine engine(network);
  std::unordered_set<int64_t> drivers;
  int64_t observed = 0;
  double seconds = 0.0;
  for (const IncompleteTrajectory& trajectory : trajectories) {
    ++stats.trajectories;
    stats.points += static_cast<int64_t>(trajectory.size());
    drivers.insert(trajectory.ground_truth.driver_id);
    if (stats.epsilon_s == 0.0) {
      stats.epsilon_s = trajectory.ground_truth.epsilon_s;
    }
    for (bool kept : trajectory.observed) observed += kept ? 1 : 0;
    const auto& points = trajectory.ground_truth.points;
    for (size_t i = 1; i < points.size(); ++i) {
      const double leg = roadnet::DirectedTravelDistance(
          network, engine, points[i - 1].position, points[i].position);
      if (leg != roadnet::kUnreachable) {
        stats.total_length_km += leg / 1000.0;
        seconds += points[i].t - points[i - 1].t;
      }
    }
  }
  stats.drivers = static_cast<int64_t>(drivers.size());
  if (stats.trajectories > 0) {
    stats.mean_points_per_trajectory =
        static_cast<double>(stats.points) /
        static_cast<double>(stats.trajectories);
  }
  if (seconds > 0.0) {
    stats.mean_speed_mps = stats.total_length_km * 1000.0 / seconds;
  }
  if (stats.points > 0) {
    stats.observed_fraction =
        static_cast<double>(observed) / static_cast<double>(stats.points);
  }
  return stats;
}

DatasetStats ComputeWorkloadStats(const roadnet::RoadNetwork& network,
                                  const std::vector<ClientDataset>& clients) {
  std::vector<IncompleteTrajectory> pooled;
  for (const ClientDataset& client : clients) {
    pooled.insert(pooled.end(), client.train.begin(), client.train.end());
    pooled.insert(pooled.end(), client.valid.begin(), client.valid.end());
    pooled.insert(pooled.end(), client.test.begin(), client.test.end());
  }
  return ComputeDatasetStats(network, pooled);
}

}  // namespace lighttr::traj
