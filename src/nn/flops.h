// Global floating-point-operation accounting (paper Fig. 5(b)).
//
// The matrix kernels and element-wise ops report their work here. Each
// thread accumulates into its own registered slot (a relaxed atomic on
// a private cache line), so counting is race-free under the thread
// pool; TotalFlops() merges every live slot plus the drained counts of
// exited threads. The merge is exact at any synchronization barrier:
// after ThreadPool::ParallelFor returns, all worker-side AddFlops calls
// happen-before the caller's TotalFlops read.
#ifndef LIGHTTR_NN_FLOPS_H_
#define LIGHTTR_NN_FLOPS_H_

#include <cstdint>

namespace lighttr::nn {

/// Adds `n` floating point operations to the calling thread's counter.
void AddFlops(int64_t n);

/// Total FLOPs recorded since program start, across all threads (live
/// thread slots + counts drained from exited threads).
int64_t TotalFlops();

/// FLOPs recorded by the calling thread alone (still included in
/// TotalFlops; exposed for tests and per-worker telemetry).
int64_t ThreadFlops();

/// Measures FLOPs executed between construction and Elapsed(). Spans
/// pool sections correctly when constructed and read on the thread that
/// issues the ParallelFor (worker counts merge at the barrier).
class ScopedFlopCount {
 public:
  ScopedFlopCount() : start_(TotalFlops()) {}
  int64_t Elapsed() const { return TotalFlops() - start_; }

 private:
  int64_t start_;
};

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_FLOPS_H_
