// Cross-module integration tests: the raw-GPS -> HMM map matching ->
// downsampling -> federated training -> recovery pipeline, and the
// relative behaviours the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "eval/harness.h"
#include "fl/local_trainer.h"
#include "mapmatch/hmm_map_matcher.h"
#include "traj/downsample.h"
#include "traj/generator.h"

namespace lighttr {
namespace {

TEST(Integration, RawGpsThroughHmmIntoTraining) {
  // Full preprocessing path of Sec. IV-B1: simulate noisy raw GPS,
  // map-match with the HMM, downsample, then train and recover.
  eval::ExperimentEnv env(6, 6, 81);
  const traj::TrajectoryGenerator generator(env.network());
  const mapmatch::HmmMapMatcher matcher(env.index(), {});

  Rng rng(82);
  std::vector<traj::IncompleteTrajectory> data;
  while (data.size() < 10) {
    auto matched = generator.Generate({}, roadnet::kInvalidVertex, &rng);
    ASSERT_TRUE(matched.ok());
    const traj::RawTrajectory raw =
        traj::ToRawTrajectory(env.network(), matched.value(), 15.0, &rng);
    auto rematched = matcher.Match(raw);
    ASSERT_TRUE(rematched.ok());
    ASSERT_TRUE(
        traj::ValidateMatchedTrajectory(env.network(), rematched.value())
            .ok());
    data.push_back(
        traj::MakeIncomplete(std::move(rematched).value(), 0.25, &rng));
  }

  Rng model_rng(83);
  auto model = baselines::MakeFactory(baselines::ModelKind::kLightTr,
                                      &env.encoder())(&model_rng);
  nn::AdamOptimizer optimizer(3e-3);
  fl::LocalTrainOptions options;
  options.epochs = 3;
  Rng train_rng(84);
  const double loss =
      fl::TrainLocal(model.get(), &optimizer, data, options, &train_rng);
  EXPECT_TRUE(std::isfinite(loss));
  const auto recovered = model->Recover(data[0]);
  EXPECT_EQ(recovered.size(), data[0].size());
}

TEST(Integration, MaskedModelBeatsUnmaskedBaseline) {
  // The paper's central accuracy claim at miniature scale: LightTR must
  // clearly outperform the full-vocabulary FC baseline under identical
  // training budgets.
  eval::ExperimentEnv env(7, 7, 85);
  traj::WorkloadProfile profile = traj::GeolifeLikeProfile();
  profile.trajectories_per_client = 14;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 4;
  workload.keep_ratio = 0.125;
  const auto clients = env.MakeWorkload(profile, workload, 86);

  eval::MethodRunOptions options;
  options.fed.rounds = 4;
  options.fed.local_epochs = 2;
  options.fed.learning_rate = 3e-3;
  options.max_test_trajectories = 20;
  const eval::MethodResult light = eval::RunFederatedMethod(
      env, baselines::ModelKind::kLightTr, clients, options);
  const eval::MethodResult fc = eval::RunFederatedMethod(
      env, baselines::ModelKind::kFc, clients, options);

  EXPECT_GT(light.metrics.recall, fc.metrics.recall);
  EXPECT_LT(light.metrics.mae_km, fc.metrics.mae_km);
}

TEST(Integration, MoreObservationsNeverHurtMuch) {
  // Keep ratio 25% must not be worse than 6.25% for LightTR (Table IV
  // trend), with a small tolerance for noise at miniature scale.
  eval::ExperimentEnv env(6, 6, 87);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 12;

  auto run = [&](double keep) {
    traj::FederatedWorkloadOptions workload;
    workload.num_clients = 3;
    workload.keep_ratio = keep;
    const auto clients = env.MakeWorkload(profile, workload, 88);
    eval::MethodRunOptions options;
    options.fed.rounds = 3;
    options.fed.local_epochs = 2;
    options.fed.learning_rate = 3e-3;
    options.max_test_trajectories = 16;
    return eval::RunFederatedMethod(env, baselines::ModelKind::kLightTr,
                                    clients, options);
  };
  const eval::MethodResult sparse = run(0.0625);
  const eval::MethodResult dense = run(0.25);
  EXPECT_GT(dense.metrics.recall, sparse.metrics.recall - 0.05);
}

TEST(Integration, FederatedGlobalModelMatchesClientArchitecture) {
  // After FedAvg, the serialized global model must load into a freshly
  // constructed replica (deployment path).
  eval::ExperimentEnv env(6, 6, 89);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 2;
  const auto clients = env.MakeWorkload(profile, workload, 90);

  const fl::ModelFactory factory =
      baselines::MakeFactory(baselines::ModelKind::kLightTr, &env.encoder());
  fl::FederatedTrainerOptions options;
  options.rounds = 1;
  options.local_epochs = 1;
  fl::FederatedTrainer trainer(factory, &clients, options);
  trainer.Run();

  Rng rng(91);
  auto replica = factory(&rng);
  EXPECT_TRUE(replica->params()
                  .Deserialize(trainer.global_model()->params().Serialize())
                  .ok());
  // The replica must produce identical recoveries to the global model.
  const auto& sample = clients[0].test[0];
  const auto a = trainer.global_model()->Recover(sample);
  const auto b = replica->Recover(sample);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].segment, b[i].segment);
    EXPECT_NEAR(a[i].ratio, b[i].ratio, 1e-5);
  }
}

}  // namespace
}  // namespace lighttr
