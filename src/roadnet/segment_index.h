// Spatial grid index over road segments for radius candidate queries
// (the candidate-generation step of HMM map matching).
#ifndef LIGHTTR_ROADNET_SEGMENT_INDEX_H_
#define LIGHTTR_ROADNET_SEGMENT_INDEX_H_

#include <vector>

#include "geo/geo_point.h"
#include "geo/grid.h"
#include "roadnet/road_network.h"

namespace lighttr::roadnet {

/// Buckets segments into a uniform grid; Nearby() returns segments whose
/// geometry passes within `radius_m` of a query point, in ascending
/// projection-distance order.
class SegmentIndex {
 public:
  /// Builds the index; `cell_meters` trades memory for probe count.
  explicit SegmentIndex(const RoadNetwork& network, double cell_meters = 200.0);

  /// A candidate segment with its projection of the query point.
  struct Candidate {
    SegmentId segment = kInvalidSegment;
    Projection projection;
  };

  /// All segments within `radius_m` of `p`, nearest first.
  std::vector<Candidate> Nearby(const geo::GeoPoint& p, double radius_m) const;

  const RoadNetwork& network() const { return network_; }

 private:
  const RoadNetwork& network_;
  geo::GridSpec grid_;
  std::vector<std::vector<SegmentId>> buckets_;
};

}  // namespace lighttr::roadnet

#endif  // LIGHTTR_ROADNET_SEGMENT_INDEX_H_
