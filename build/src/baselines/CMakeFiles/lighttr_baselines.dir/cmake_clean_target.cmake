file(REMOVE_RECURSE
  "liblighttr_baselines.a"
)
