// ASCII table rendering for experiment output (paper-style result tables).
#ifndef LIGHTTR_COMMON_TABLE_PRINTER_H_
#define LIGHTTR_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace lighttr {

/// Accumulates rows of string cells and renders them as an aligned ASCII
/// table. Used by every bench binary to print paper-style tables.
///
/// Example:
///   TablePrinter t({"Method", "Recall", "Precision"});
///   t.AddRow({"LightTR", "0.724", "0.748"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles to `precision` decimals.
  static std::string Fmt(double value, int precision = 3);

  /// Renders the table with column-aligned cells and +---+ separators.
  std::string ToString() const;

  /// Renders the table as CSV (header row + data rows).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_TABLE_PRINTER_H_
