#include "lighttr/pipeline.h"

#include <cstdio>

#include "common/check.h"
#include "common/stopwatch.h"

namespace lighttr::core {

std::string SummarizeResilience(const fl::FederatedRunResult& run) {
  const fl::FaultStats& faults = run.faults;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "cohort %.0f%% | drops %lld (retries %lld) | stragglers %lld"
                " | rejected %lld | clipped %lld | quorum misses %lld",
                faults.MeanCohortFraction() * 100.0,
                static_cast<long long>(faults.drops),
                static_cast<long long>(faults.retries),
                static_cast<long long>(faults.stragglers),
                static_cast<long long>(faults.rejected_uploads),
                static_cast<long long>(faults.clipped_uploads),
                static_cast<long long>(faults.quorum_misses));
  return std::string(buffer);
}

LightTrPipeline::LightTrPipeline(
    const traj::TrajectoryEncoder* encoder,
    const std::vector<traj::ClientDataset>* clients, LightTrOptions options)
    : encoder_(encoder), clients_(clients), options_(options) {
  LIGHTTR_CHECK(encoder != nullptr);
  LIGHTTR_CHECK(clients != nullptr);
  const LteConfig lte = options_.lte;
  const traj::TrajectoryEncoder* enc = encoder_;
  factory_ = [enc, lte](Rng* rng) {
    return std::make_unique<LteModel>(enc, lte, rng);
  };
  trainer_ = std::make_unique<fl::FederatedTrainer>(factory_, clients_,
                                                    options_.federated);
}

LightTrResult LightTrPipeline::Train() {
  LightTrResult result;
  if (options_.use_teacher) {
    Stopwatch watch;
    teacher_ = TrainTeacher(factory_, *clients_, options_.teacher);
    result.teacher_seconds = watch.ElapsedSeconds();
  }
  MetaLocalOptions meta = options_.meta;
  if (meta.clip_norm <= 0.0) meta.clip_norm = options_.federated.clip_norm;
  MetaLocalUpdate strategy(teacher_.get(), meta);
  result.federated = trainer_->Run(options_.use_teacher ? &strategy : nullptr);
  return result;
}

}  // namespace lighttr::core
