// Chaos campaign engine: runs sampled scenarios (chaos/scenario) through
// short federated training on a fault-injecting filesystem, checks a
// library of cross-cutting invariants, and shrinks any violation to a
// minimal replayable repro (axis removal first, then parameter
// bisection) — ddmin in spirit, specialized to the fault-axis space.
#ifndef LIGHTTR_CHAOS_CAMPAIGN_H_
#define LIGHTTR_CHAOS_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "common/env.h"

namespace lighttr::chaos {

/// One invariant violation. `label` is stable (it keys the shrinker's
/// "same bug" predicate); `detail` is free-form diagnosis.
struct InvariantViolation {
  std::string label;
  std::string detail;
};

/// Outcome of running one scenario through the invariant net.
struct ScenarioReport {
  ChaosScenario scenario;
  std::vector<InvariantViolation> violations;
  /// What the fault-injecting filesystem recorded.
  StorageFaultStats storage_stats;
  /// What the trainer attributed to storage (see the attribution
  /// invariant for how the two reconcile).
  int64_t trainer_storage_failures = 0;
  /// The injected crash actually fired (a crash scheduled for a round
  /// that never snapshots is a silent no-op, which is fine).
  bool crash_fired = false;
  /// Resume after the crash failed and the run restarted fresh (must
  /// still converge to the same final model).
  bool fresh_restart = false;
  int rounds_completed = 0;

  bool ok() const { return violations.empty(); }
};

/// Runs `scenario` end to end: training (with crash + resume when the
/// crash axis fires), then every invariant that applies. Deterministic:
/// the same scenario always yields the same report.
ScenarioReport RunScenario(const ChaosScenario& scenario);

/// Shrinker output: the smallest scenario found that still violates
/// `label`, and how many candidate evaluations it took.
struct ShrinkOutcome {
  ChaosScenario minimal;
  std::string label;
  int evaluations = 0;
};

/// Shrinks `failing` while the violation labeled `label` reproduces:
/// pass 1 removes whole axes (healing, net, client faults, crash,
/// storage — planted bugs are never removed), pass 2 bisects
/// parameters (rounds/clients/threads down, rates toward zero). Every
/// accepted candidate still fails, so the result is always a repro.
ShrinkOutcome ShrinkScenario(const ChaosScenario& failing,
                             const std::string& label);

/// One failing scenario of a campaign, with its shrunk repro.
struct FailingCase {
  ScenarioReport report;
  ChaosScenario minimal;
  int shrink_evaluations = 0;
};

struct CampaignOptions {
  int scenarios = 16;
  uint64_t seed = 7;
  /// Shrink failures to minimal repros (off = report them raw).
  bool shrink = true;
  /// Plant a test-only bug in every scenario (and force the axis it
  /// lives on, so the campaign can actually hit it).
  PlantedBug plant = PlantedBug::kNone;
  /// Optional per-scenario progress hook (the CLI prints a line here;
  /// the library itself never prints).
  void (*progress)(int index, const ScenarioReport& report) = nullptr;
};

struct CampaignResult {
  int scenarios_run = 0;
  /// Scenarios whose injected crash actually fired.
  int crashes_fired = 0;
  std::vector<FailingCase> failures;
};

/// Samples and runs `options.scenarios` scenarios from `options.seed`,
/// shrinking every failure. Deterministic end to end.
CampaignResult RunCampaign(const CampaignOptions& options);

}  // namespace lighttr::chaos

#endif  // LIGHTTR_CHAOS_CAMPAIGN_H_
