// Reproduces paper Figure 6: effect of the client fraction sampled per
// round on LightTR (keep ratio 12.5%, both workloads).
//
// Expected shape: metrics improve as the per-round fraction grows from
// 20% to 100%.
#include <algorithm>
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"

int main() {
  using namespace lighttr;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Figure 6 reproduction (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const std::vector<double> fractions = {0.2, 0.5, 0.8, 1.0};
  const std::vector<traj::WorkloadProfile> profiles = {
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale),
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale)};

  TablePrinter table({"Dataset", "Fraction", "Recall", "Precision",
                      "MAE(km)", "RMSE(km)", "Comm(KiB)"});
  for (const auto& profile : profiles) {
    const auto clients = env->MakeWorkload(
        profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 3);
    for (double fraction : fractions) {
      eval::MethodRunOptions options = eval::DefaultRunOptions(scale);
      options.fed.client_fraction = fraction;
      // A tight round budget keeps the runs data-limited; with many
      // rounds every fraction absorbs all clients' data and the paper's
      // trend flattens out (see EXPERIMENTS.md).
      options.fed.rounds = std::max(2, scale.rounds - 2);
      const eval::MethodResult result = eval::RunFederatedMethod(
          *env, baselines::ModelKind::kLightTr, clients, options);
      table.AddRow(
          {profile.name, TablePrinter::Fmt(fraction * 100, 0) + "%",
           TablePrinter::Fmt(result.metrics.recall),
           TablePrinter::Fmt(result.metrics.precision),
           TablePrinter::Fmt(result.metrics.mae_km),
           TablePrinter::Fmt(result.metrics.rmse_km),
           TablePrinter::Fmt(
               static_cast<double>(result.run.comm.TotalBytes()) / 1024.0, 0)});
      std::printf("done: %s F=%.0f%%\n", profile.name.c_str(), fraction * 100);
      std::fflush(stdout);
    }
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_fig6_fraction.csv", table.ToCsv());
  return 0;
}
