// ReliableLink: stop-and-wait request/response over two SimulatedChannel
// directions, with timeout + exponential-backoff retries on the client
// side and sequence-numbered dedup on the server side.
//
// Retry/dedup state machine (per exchange):
//
//   client                          server
//     | --- request frame --->        |   (uplink channel may damage it)
//     |                               |-- late arrival   -> dropped, counted
//     |                               |-- CRC/decode fail -> dropped, counted
//     |                               |-- wrong round/id  -> dropped, counted
//     |                               |-- duplicate push  -> ack(duplicate),
//     |                               |   payload NOT delivered again
//     | <--- response frame ---       |   (downlink channel may damage it)
//     | no usable response?           |
//     |   timeouts++, backoff, retry  |
//     |   (same msg_id — idempotent)  |
//     | retry budget exhausted -> Status (the link is down)
//
// Attribution rule: every drop above is charged to the NETWORK (LinkStats
// counters), never to the sending client. Reputation only ever sees
// payloads that survived the CRC — a mutilated frame says nothing about
// the peer that sent it.
#ifndef LIGHTTR_FL_TRANSPORT_LINK_H_
#define LIGHTTR_FL_TRANSPORT_LINK_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "fl/transport/channel.h"
#include "fl/transport/wire.h"

namespace lighttr::fl::transport {

/// Exact per-link traffic and fault accounting, measured from encoded
/// frame lengths (every transmitted copy counts, including retries and
/// duplicates the channel injects).
struct LinkStats {
  int64_t uplink_bytes = 0;    // client -> server
  int64_t downlink_bytes = 0;  // server -> client
  int64_t uplink_frames = 0;
  int64_t downlink_frames = 0;
  int retries = 0;      // re-sent requests after an unusable exchange
  int timeouts = 0;     // exchanges that produced no usable response
  int crc_drops = 0;    // frames discarded: CRC/decode failure or misroute
  int dedup_drops = 0;  // duplicate pushes absorbed by server-side dedup
  int late_drops = 0;   // frames discarded for arriving past the deadline
  double backoff_s = 0.0;  // simulated retry backoff accumulated

  void Add(const LinkStats& other) {
    uplink_bytes += other.uplink_bytes;
    downlink_bytes += other.downlink_bytes;
    uplink_frames += other.uplink_frames;
    downlink_frames += other.downlink_frames;
    retries += other.retries;
    timeouts += other.timeouts;
    crc_drops += other.crc_drops;
    dedup_drops += other.dedup_drops;
    late_drops += other.late_drops;
    backoff_s += other.backoff_s;
  }
};

/// Builds the msg_id for the logical push of `client_id` in `round`.
/// Retransmissions reuse it; the server dedups on it.
inline uint64_t PushMsgId(int round, int client_id) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(round)) << 32) |
         static_cast<uint32_t>(client_id);
}

/// One client's link to the server for one round: both channel
/// directions plus the server-side endpoint (dedup set + the round's
/// pull-reply frame, pre-encoded by the coordinator and shared across
/// clients). All state is private to the owning client task, so links
/// run concurrently without sharing.
class ReliableLink {
 public:
  /// `pull_reply_frame` must outlive the link (it is the round-shared
  /// encoded ModelPullReply). `rng` drives both channel directions and
  /// backoff jitter; it may be null only for a fault-free link config.
  ReliableLink(const ChannelFaultConfig& faults, const BackoffConfig& retry,
               int round, int client_id, const std::string* pull_reply_frame,
               Rng* rng);

  /// Pull exchange: returns the global-model blob for this round, or a
  /// Status when the retry budget is exhausted (the link is down).
  Result<std::string> PullModelBlob();

  /// Push exchange: delivers `push` to the server, returns the flat
  /// parameter vector the *server* received (dequantized if the push was
  /// quantized) — the aggregation input. Retransmissions reuse
  /// push.msg_id, so the payload lands exactly once even when acks are
  /// lost. A Status means the retry budget ran out.
  Result<std::vector<double>> PushUpdate(const UpdatePush& push);

  const LinkStats& stats() const { return stats_; }

 private:
  /// Runs one request/response attempt cycle with retries. Each server
  /// response frame is produced by `serve` from an intact, validated
  /// request; the first usable response payload is returned.
  Result<std::string> Exchange(FrameType request_type,
                               const std::string& request_payload,
                               FrameType expected_reply);

  /// Server endpoint: validates one on-time, CRC-intact frame and
  /// produces the encoded response frame, or "" to ignore it.
  std::string Serve(const Frame& frame);

  ChannelFaultConfig faults_;
  BackoffConfig retry_;
  int round_;
  int client_id_;
  const std::string* pull_reply_frame_;
  Rng* rng_;
  SimulatedChannel uplink_;
  SimulatedChannel downlink_;
  LinkStats stats_;

  // Server-side state.
  std::set<uint64_t> seen_push_ids_;
  std::vector<double> delivered_update_;  // first successfully-pushed payload
  bool update_delivered_ = false;
};

}  // namespace lighttr::fl::transport

#endif  // LIGHTTR_FL_TRANSPORT_LINK_H_
