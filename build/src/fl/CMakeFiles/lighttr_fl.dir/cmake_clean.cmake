file(REMOVE_RECURSE
  "CMakeFiles/lighttr_fl.dir/compression.cc.o"
  "CMakeFiles/lighttr_fl.dir/compression.cc.o.d"
  "CMakeFiles/lighttr_fl.dir/cyclic_trainer.cc.o"
  "CMakeFiles/lighttr_fl.dir/cyclic_trainer.cc.o.d"
  "CMakeFiles/lighttr_fl.dir/federated_trainer.cc.o"
  "CMakeFiles/lighttr_fl.dir/federated_trainer.cc.o.d"
  "CMakeFiles/lighttr_fl.dir/local_trainer.cc.o"
  "CMakeFiles/lighttr_fl.dir/local_trainer.cc.o.d"
  "CMakeFiles/lighttr_fl.dir/privacy.cc.o"
  "CMakeFiles/lighttr_fl.dir/privacy.cc.o.d"
  "liblighttr_fl.a"
  "liblighttr_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
