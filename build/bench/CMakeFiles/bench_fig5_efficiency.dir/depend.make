# Empty dependencies file for bench_fig5_efficiency.
# This may be replaced when dependencies are built.
