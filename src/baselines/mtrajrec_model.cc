#include "baselines/mtrajrec_model.h"

#include <algorithm>

#include "common/check.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace lighttr::baselines {

MTrajRecModel::MTrajRecModel(const traj::TrajectoryEncoder* encoder,
                             const MTrajRecConfig& config, Rng* rng,
                             std::string name)
    : name_(std::move(name)), encoder_(encoder), config_(config) {
  LIGHTTR_CHECK(encoder != nullptr);
  const size_t features = traj::TrajectoryEncoder::kFeatureDim;
  const size_t hidden = config_.hidden_dim;
  encoder_gru_ = std::make_unique<nn::GruCell>(features, hidden, "enc.gru",
                                               &params_, rng);
  // Decoder input: [features, attention context, prev seg-emb, prev ratio].
  const size_t dec_in = features + hidden + config_.seg_embed_dim + 1;
  decoder_gru_ = std::make_unique<nn::GruCell>(dec_in, hidden, "dec.gru",
                                               &params_, rng);
  head_ = std::make_unique<MtHead>(hidden, config_.seg_embed_dim,
                                   encoder_->num_segments(), "head", &params_,
                                   rng);
}

fl::ForwardResult MTrajRecModel::RunSequence(
    const traj::IncompleteTrajectory& trajectory, bool training,
    bool teacher_forcing, Rng* rng,
    std::vector<roadnet::PointPosition>* collect) {
  const nn::Matrix inputs = encoder_->EncodeInputs(trajectory);
  const auto targets = encoder_->EncodeTargets(trajectory);
  const std::vector<size_t> anchors = trajectory.ObservedIndices();
  const size_t steps = trajectory.size();
  const nn::Tensor x_all = nn::Tensor::Constant(inputs);

  // Encoder over the observed anchors only (the low-sampling-rate view).
  std::vector<nn::Tensor> enc_states;
  enc_states.reserve(anchors.size());
  nn::Tensor h = encoder_gru_->InitialState();
  for (size_t a : anchors) {
    h = encoder_gru_->Forward(nn::SliceRows(x_all, a, 1), h);
    enc_states.push_back(h);
  }
  const nn::Tensor memory = nn::ConcatRows(enc_states);  // [A, H]

  // Decoder over every step with attention on the encoder memory.
  nn::Tensor state = h;  // initialise from the encoder's final state
  int prev_segment = targets[0].segment;
  double prev_ratio = targets[0].ratio;

  std::vector<nn::Tensor> ce_losses;
  std::vector<nn::Tensor> ratio_preds;
  std::vector<nn::Scalar> ratio_truths;
  std::vector<nn::Tensor> representation_rows;

  for (size_t t = 0; t < steps; ++t) {
    const nn::Tensor context =
        nn::ScaledDotProductAttention(state, memory, memory);
    const nn::Tensor prev_emb = head_->SegmentEmbedding(prev_segment);
    const nn::Tensor prev_ratio_tensor = nn::Tensor::Constant(
        nn::Matrix::Full(1, 1, static_cast<nn::Scalar>(prev_ratio)));
    nn::Tensor dec_in = nn::ConcatCols(
        nn::ConcatCols(nn::SliceRows(x_all, t, 1), context),
        nn::ConcatCols(prev_emb, prev_ratio_tensor));
    dec_in = nn::Dropout(dec_in, config_.dropout, training, rng);
    state = decoder_gru_->Forward(dec_in, state);

    if (!targets[t].missing) {
      prev_segment = targets[t].segment;
      prev_ratio = targets[t].ratio;
      if (collect != nullptr) {
        (*collect)[t] = trajectory.ground_truth.points[t].position;
      }
      continue;
    }

    const traj::StepCandidates candidates =
        encoder_->CandidatesForStep(trajectory, t);
    const MtHeadStep step = head_->Run(
        state, candidates, teacher_forcing ? targets[t].segment : -1);
    if (step.ce_loss.defined()) ce_losses.push_back(step.ce_loss);
    ratio_preds.push_back(step.ratio);
    ratio_truths.push_back(static_cast<nn::Scalar>(targets[t].ratio));
    representation_rows.push_back(state);

    if (collect != nullptr) {
      (*collect)[t] = roadnet::PointPosition{
          step.predicted_segment,
          std::clamp(step.ratio.value()(0, 0), 0.0, 1.0)};
    }
    prev_segment =
        teacher_forcing ? targets[t].segment : step.predicted_segment;
    prev_ratio =
        teacher_forcing ? targets[t].ratio : step.ratio.value()(0, 0);
  }

  fl::ForwardResult result;
  if (ratio_preds.empty()) {
    result.loss = nn::Tensor::Constant(nn::Matrix::Zeros(1, 1));
    return result;
  }
  nn::Tensor loss = nn::Tensor::Constant(nn::Matrix::Zeros(1, 1));
  if (!ce_losses.empty()) {
    nn::Tensor ce_total = ce_losses[0];
    for (size_t i = 1; i < ce_losses.size(); ++i) {
      ce_total = nn::Add(ce_total, ce_losses[i]);
    }
    loss = nn::Scale(
        ce_total, nn::Scalar{1} / static_cast<nn::Scalar>(ce_losses.size()));
  }
  nn::Matrix ratio_target(ratio_truths.size(), 1);
  for (size_t i = 0; i < ratio_truths.size(); ++i) {
    ratio_target(i, 0) = ratio_truths[i];
  }
  loss = nn::Add(loss,
                 nn::Scale(nn::MseLoss(nn::ConcatRows(ratio_preds),
                                       ratio_target),
                           static_cast<nn::Scalar>(config_.mu)));
  result.loss = loss;
  result.representation = nn::ConcatRows(representation_rows);
  return result;
}

fl::ForwardResult MTrajRecModel::Forward(
    const traj::IncompleteTrajectory& trajectory, bool training, Rng* rng) {
  return RunSequence(trajectory, training, /*teacher_forcing=*/true, rng,
                     nullptr);
}

std::vector<roadnet::PointPosition> MTrajRecModel::Recover(
    const traj::IncompleteTrajectory& trajectory) {
  nn::NoGradScope no_grad;
  std::vector<roadnet::PointPosition> positions(trajectory.size());
  RunSequence(trajectory, /*training=*/false, /*teacher_forcing=*/false,
              nullptr, &positions);
  return positions;
}

}  // namespace lighttr::baselines
