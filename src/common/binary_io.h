// Bounds-checked binary (de)serialization over std::string buffers.
//
// BinaryWriter appends fixed-width little-endian-as-stored fields (this
// codebase never ships buffers across architectures; byte order is the
// host's, the same convention ParameterSet::Serialize uses). BinaryReader
// is the hostile-input counterpart: every read validates the remaining
// byte count and returns a Status instead of walking past the end, and
// length-prefixed strings are capped so a corrupted length field cannot
// trigger a multi-gigabyte allocation.
#ifndef LIGHTTR_COMMON_BINARY_IO_H_
#define LIGHTTR_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"

namespace lighttr {

/// Appends fixed-width fields to an owned byte buffer.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { Append(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }
  void WriteF32(float v) { Append(&v, sizeof(v)); }
  void WriteF64(double v) { Append(&v, sizeof(v)); }

  /// Raw bytes, no length prefix.
  void WriteBytes(const void* data, size_t n) { Append(data, n); }

  /// u64 length prefix + bytes.
  void WriteString(const std::string& s) {
    WriteU64(static_cast<uint64_t>(s.size()));
    Append(s.data(), s.size());
  }

  const std::string& bytes() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  void Append(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  std::string buffer_;
};

/// Reads fixed-width fields from a borrowed byte buffer; every read is
/// bounds-checked and failure leaves the cursor unmoved.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& data) : data_(&data) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_->size() - offset_; }
  bool AtEnd() const { return offset_ == data_->size(); }

  [[nodiscard]] Status ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  [[nodiscard]] Status ReadU32(uint32_t* out) {
    return ReadRaw(out, sizeof(*out));
  }
  [[nodiscard]] Status ReadU64(uint64_t* out) {
    return ReadRaw(out, sizeof(*out));
  }
  [[nodiscard]] Status ReadI64(int64_t* out) {
    return ReadRaw(out, sizeof(*out));
  }
  [[nodiscard]] Status ReadF32(float* out) { return ReadRaw(out, sizeof(*out)); }
  [[nodiscard]] Status ReadF64(double* out) {
    return ReadRaw(out, sizeof(*out));
  }

  /// Raw bytes, no length prefix.
  [[nodiscard]] Status ReadBytes(void* out, size_t n) { return ReadRaw(out, n); }

  /// Inverse of WriteString. A declared length larger than the bytes
  /// actually present (or than `max_len`) is rejected before any
  /// allocation proportional to it.
  [[nodiscard]] Status ReadString(std::string* out,
                                  uint64_t max_len = kDefaultMaxStringLen) {
    uint64_t len = 0;
    LIGHTTR_RETURN_NOT_OK(ReadU64(&len));
    if (len > max_len) {
      offset_ -= sizeof(uint64_t);
      return Status::InvalidArgument("declared string length " +
                                     std::to_string(len) +
                                     " exceeds cap " + std::to_string(max_len));
    }
    if (len > remaining()) {
      offset_ -= sizeof(uint64_t);
      return Status::InvalidArgument("truncated buffer: declared length " +
                                     std::to_string(len) + ", " +
                                     std::to_string(remaining()) +
                                     " bytes remain");
    }
    out->assign(data_->data() + offset_, static_cast<size_t>(len));
    offset_ += static_cast<size_t>(len);
    return Status::Ok();
  }

  /// 1 GiB: far above any legitimate field in this codebase, far below
  /// what a hostile length prefix could otherwise demand.
  static constexpr uint64_t kDefaultMaxStringLen = 1ull << 30;

 private:
  [[nodiscard]] Status ReadRaw(void* out, size_t n) {
    if (n > remaining()) {
      return Status::InvalidArgument(
          "truncated buffer: need " + std::to_string(n) + " bytes at offset " +
          std::to_string(offset_) + ", have " + std::to_string(remaining()));
    }
    std::memcpy(out, data_->data() + offset_, n);
    offset_ += n;
    return Status::Ok();
  }

  const std::string* data_;
  size_t offset_ = 0;
};

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_BINARY_IO_H_
