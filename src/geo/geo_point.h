// GPS points and geodesic distance utilities (paper Definition 2).
#ifndef LIGHTTR_GEO_GEO_POINT_H_
#define LIGHTTR_GEO_GEO_POINT_H_

#include <cmath>

namespace lighttr::geo {

/// Mean Earth radius in meters (spherical model).
inline constexpr double kEarthRadiusMeters = 6371000.0;

inline constexpr double kDegToRad = M_PI / 180.0;

/// A GPS point `p = <lat, lng>` in decimal degrees (Definition 2). The
/// paper's optional payload gamma (address etc.) is carried by callers.
struct GeoPoint {
  double lat = 0.0;
  double lng = 0.0;

  friend bool operator==(const GeoPoint& a, const GeoPoint& b) {
    return a.lat == b.lat && a.lng == b.lng;
  }
};

/// Great-circle (haversine) distance between two points, in meters.
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

/// Fast flat-earth (equirectangular) distance approximation in meters.
/// Accurate to <0.1% for city-scale separations; used in inner loops
/// (map-matching candidate scoring, constraint masks).
double EquirectangularMeters(const GeoPoint& a, const GeoPoint& b);

/// Linear interpolation between two points (t in [0, 1]).
GeoPoint Lerp(const GeoPoint& a, const GeoPoint& b, double t);

/// Projects lat/lng to local planar meters around a reference origin.
///
/// City-scale experiments (tens of km) are well within the validity of the
/// equirectangular projection, and planar coordinates make point-to-segment
/// projection exact and cheap.
class LocalProjection {
 public:
  explicit LocalProjection(const GeoPoint& origin)
      : origin_(origin), cos_lat_(std::cos(origin.lat * kDegToRad)) {}

  /// Planar position of `p` in meters relative to the origin.
  struct Xy {
    double x = 0.0;
    double y = 0.0;
  };

  Xy ToXy(const GeoPoint& p) const {
    return {(p.lng - origin_.lng) * kDegToRad * kEarthRadiusMeters * cos_lat_,
            (p.lat - origin_.lat) * kDegToRad * kEarthRadiusMeters};
  }

  GeoPoint FromXy(const Xy& xy) const {
    return {origin_.lat + xy.y / (kDegToRad * kEarthRadiusMeters),
            origin_.lng + xy.x / (kDegToRad * kEarthRadiusMeters * cos_lat_)};
  }

  const GeoPoint& origin() const { return origin_; }

 private:
  GeoPoint origin_;
  double cos_lat_;
};

}  // namespace lighttr::geo

#endif  // LIGHTTR_GEO_GEO_POINT_H_
