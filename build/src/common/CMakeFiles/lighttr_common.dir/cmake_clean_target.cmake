file(REMOVE_RECURSE
  "liblighttr_common.a"
)
