// Deterministic exponential backoff with jitter, used by the federated
// server when re-contacting dropped clients. Delays are *simulated*
// seconds (accumulated into telemetry), never real sleeps, so runs stay
// fast and reproducible.
#ifndef LIGHTTR_COMMON_BACKOFF_H_
#define LIGHTTR_COMMON_BACKOFF_H_

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace lighttr {

/// Retry schedule: attempt k (0-based retry index) waits
/// min(base * multiplier^k, max_delay) * (1 +- jitter), jitter drawn
/// uniformly from the supplied Rng.
struct BackoffConfig {
  int max_retries = 0;         // retries after the first attempt; 0 = none
  double base_delay_s = 0.5;   // simulated delay before the first retry
  double multiplier = 2.0;     // growth factor per retry
  double max_delay_s = 8.0;    // cap on any single delay
  double jitter = 0.1;         // +- fraction of the delay, uniform
};

/// Simulated delay before retry number `retry` (0-based). Deterministic
/// given the Rng state.
inline double BackoffDelaySeconds(const BackoffConfig& config, int retry,
                                  Rng* rng) {
  LIGHTTR_CHECK_GE(retry, 0);
  // Saturate at the cap inside the loop: naively computing
  // base * multiplier^retry overflows to inf for large retry counts
  // (and a shift-based variant would wrap), whereas the capped delay is
  // what every attempt past the knee gets anyway.
  double delay = std::min(config.base_delay_s, config.max_delay_s);
  if (config.multiplier > 1.0) {
    for (int i = 0; i < retry; ++i) {
      delay *= config.multiplier;
      if (delay >= config.max_delay_s) {
        delay = config.max_delay_s;
        break;
      }
    }
  } else {
    for (int i = 0; i < retry; ++i) delay *= config.multiplier;
    delay = std::min(delay, config.max_delay_s);
  }
  if (config.jitter > 0.0 && rng != nullptr) {
    delay *= 1.0 + rng->Uniform(-config.jitter, config.jitter);
  }
  return std::max(delay, 0.0);
}

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_BACKOFF_H_
