#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace lighttr {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  LIGHTTR_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  LIGHTTR_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_sep = [&](std::ostringstream& os) {
    os << '+';
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto render_row = [&](std::ostringstream& os,
                        const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (size_t i = row[c].size(); i < widths[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  render_sep(os);
  render_row(os, header_);
  render_sep(os);
  for (const auto& row : rows_) render_row(os, row);
  render_sep(os);
  return os.str();
}

std::string TablePrinter::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << ',';
    os << escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace lighttr
