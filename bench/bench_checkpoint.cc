// Durability cost: (1) microbenchmarks of the v2 checkpoint codec and
// run-state snapshot primitives, (2) the clean-path cost of the
// FileSystem (common/env) indirection versus a hand-inlined save, and
// (3) end-to-end per-round overhead of crash-safe federated training
// (journal + snapshot every round) versus the same run with durability
// off.
//
// Expected shape: encode/decode run at memory-ish bandwidth, and the
// per-round durability overhead stays well under 10% of the round
// wall-time (the acceptance bar for this subsystem).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "nn/checkpoint.h"
#include "nn/parameter.h"

namespace {

using namespace lighttr;

// A parameter set sized like the paper's lightweight recovery model
// (order 10^5 weights).
nn::ParameterSet MakeParams(Rng* rng) {
  nn::ParameterSet params;
  auto add = [&](const char* name, size_t rows, size_t cols) {
    nn::Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i) {
      m.data()[i] = static_cast<nn::Scalar>(rng->Normal(0.0, 0.05));
    }
    params.Register(name, nn::Tensor::Variable(m));
  };
  add("encoder.embed", 512, 64);
  add("encoder.w", 128, 128);
  add("encoder.u", 128, 128);
  add("decoder.w", 128, 128);
  add("decoder.out", 128, 512);
  return params;
}

double MbPerSec(size_t bytes, double seconds, int reps) {
  return static_cast<double>(bytes) * reps / (seconds * 1024.0 * 1024.0);
}

void BenchCodec() {
  Rng rng(17);
  const nn::ParameterSet params = MakeParams(&rng);
  const int reps = 50;
  TablePrinter table({"Op", "Bytes", "ms/op", "MiB/s"});

  for (nn::CheckpointDtype dtype :
       {nn::CheckpointDtype::kFloat32, nn::CheckpointDtype::kFloat64}) {
    const char* dname =
        dtype == nn::CheckpointDtype::kFloat32 ? "f32" : "f64";
    const std::string blob = nn::SerializeCheckpoint(params, dtype);

    Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      const std::string out = nn::SerializeCheckpoint(params, dtype);
      LIGHTTR_CHECK_EQ(out.size(), blob.size());
    }
    double s = watch.ElapsedSeconds();
    table.AddRow({std::string("serialize ") + dname,
                  std::to_string(blob.size()),
                  TablePrinter::Fmt(s / reps * 1e3, 3),
                  TablePrinter::Fmt(MbPerSec(blob.size(), s, reps), 0)});

    Rng parse_rng(18);
    nn::ParameterSet target = MakeParams(&parse_rng);
    watch.Reset();
    for (int r = 0; r < reps; ++r) {
      LIGHTTR_CHECK_OK(nn::ParseCheckpoint(blob, &target));
    }
    s = watch.ElapsedSeconds();
    table.AddRow({std::string("parse ") + dname, std::to_string(blob.size()),
                  TablePrinter::Fmt(s / reps * 1e3, 3),
                  TablePrinter::Fmt(MbPerSec(blob.size(), s, reps), 0)});

    const std::string path =
        (std::filesystem::path(::std::filesystem::temp_directory_path()) /
         (std::string("bench_ckpt_") + dname + ".ltc"))
            .string();
    watch.Reset();
    for (int r = 0; r < reps; ++r) {
      LIGHTTR_CHECK_OK(nn::SaveCheckpoint(path, params, dtype));
    }
    s = watch.ElapsedSeconds();
    table.AddRow({std::string("save(atomic) ") + dname,
                  std::to_string(blob.size()),
                  TablePrinter::Fmt(s / reps * 1e3, 3),
                  TablePrinter::Fmt(MbPerSec(blob.size(), s, reps), 0)});

    watch.Reset();
    for (int r = 0; r < reps; ++r) {
      LIGHTTR_CHECK_OK(nn::LoadCheckpoint(path, &target));
    }
    s = watch.ElapsedSeconds();
    table.AddRow({std::string("load ") + dname, std::to_string(blob.size()),
                  TablePrinter::Fmt(s / reps * 1e3, 3),
                  TablePrinter::Fmt(MbPerSec(blob.size(), s, reps), 0)});
    std::filesystem::remove(path);
  }
  std::printf("Checkpoint codec:\n%s\n", table.ToString().c_str());
}

// The same atomic save SaveCheckpoint performs, hand-inlined with raw
// stream + rename calls (benches may touch raw file APIs; src/ may
// not). This is the no-indirection baseline for BenchEnvDispatch.
Status DirectSaveCheckpoint(const std::string& path,
                            const nn::ParameterSet& params,
                            nn::CheckpointDtype dtype) {
  const std::string blob = nn::SerializeCheckpoint(params, dtype);
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot open " + tmp);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.close();
  if (!out) return Status::IoError("short write to " + tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename failed: " + ec.message());
  return Status::Ok();
}

// Measures what routing persistence through the FileSystem interface
// costs on the clean (fault-free, real-disk) path: the acceptance bar
// for the Env refactor is <= 2% over the hand-inlined save.
void BenchEnvDispatch() {
  Rng rng(19);
  const nn::ParameterSet params = MakeParams(&rng);
  const int reps = 60;
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string direct_path = dir + "/bench_ckpt_direct.ltc";
  const std::string env_path = dir + "/bench_ckpt_env.ltc";

  // Warm both paths (page cache, allocator) before timing.
  LIGHTTR_CHECK_OK(
      DirectSaveCheckpoint(direct_path, params, nn::CheckpointDtype::kFloat64));
  LIGHTTR_CHECK_OK(
      nn::SaveCheckpoint(env_path, params, nn::CheckpointDtype::kFloat64));

  Stopwatch watch;
  for (int r = 0; r < reps; ++r) {
    LIGHTTR_CHECK_OK(DirectSaveCheckpoint(direct_path, params,
                                          nn::CheckpointDtype::kFloat64));
  }
  const double direct_s = watch.ElapsedSeconds();

  watch.Reset();
  for (int r = 0; r < reps; ++r) {
    LIGHTTR_CHECK_OK(
        nn::SaveCheckpoint(env_path, params, nn::CheckpointDtype::kFloat64));
  }
  const double env_s = watch.ElapsedSeconds();
  std::filesystem::remove(direct_path);
  std::filesystem::remove(env_path);

  const double overhead_pct = (env_s - direct_s) / direct_s * 100.0;
  TablePrinter table({"Save path", "ms/op"});
  table.AddRow({"raw stream + rename (inlined)",
                TablePrinter::Fmt(direct_s / reps * 1e3, 3)});
  table.AddRow({"FileSystem dispatch (common/env)",
                TablePrinter::Fmt(env_s / reps * 1e3, 3)});
  std::printf("Env dispatch (f64 atomic save):\n%s\n",
              table.ToString().c_str());
  std::printf("Env indirection clean-path overhead: %.2f%% (target <= 2%%)\n\n",
              overhead_pct);
}

void BenchEndToEnd(const eval::ExperimentScale& scale) {
  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 9);

  eval::MethodRunOptions plain = eval::DefaultRunOptions(scale);
  const eval::MethodResult base = eval::RunFederatedMethod(
      *env, baselines::ModelKind::kLightTr, clients, plain);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench_checkpoint_run")
          .string();
  std::filesystem::remove_all(dir);
  eval::MethodRunOptions durable = eval::DefaultRunOptions(scale);
  durable.fed.durability.dir = dir;
  durable.fed.durability.snapshot_every = 1;  // worst case: every round
  const eval::MethodResult ckpt = eval::RunFederatedMethod(
      *env, baselines::ModelKind::kLightTr, clients, durable);
  std::filesystem::remove_all(dir);

  const int rounds = static_cast<int>(base.run.history.size());
  const double per_round_base = base.wall_seconds / rounds;
  const double per_round_ckpt = ckpt.wall_seconds / rounds;
  const double overhead = per_round_ckpt - per_round_base;
  const double overhead_pct = overhead / per_round_base * 100.0;

  TablePrinter table({"Run", "Rounds", "Wall(s)", "s/round"});
  table.AddRow({"no durability", std::to_string(rounds),
                TablePrinter::Fmt(base.wall_seconds, 2),
                TablePrinter::Fmt(per_round_base, 4)});
  table.AddRow({"snapshot every round", std::to_string(rounds),
                TablePrinter::Fmt(ckpt.wall_seconds, 2),
                TablePrinter::Fmt(per_round_ckpt, 4)});
  std::printf("End-to-end (LightTR, scale=%s):\n%s\n", scale.name.c_str(),
              table.ToString().c_str());
  std::printf("Per-round checkpoint overhead: %.4f s (%.1f%% of round "
              "wall-time; target < 10%%)\n",
              overhead, overhead_pct);
}

}  // namespace

int main() {
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  BenchCodec();
  BenchEnvDispatch();
  BenchEndToEnd(scale);
  return 0;
}
