// Spatial grid discretisation of GPS coordinates (Eq. 4 of the paper):
// a point is converted to a unit g_i = (x_i, y_i, tid_i) where (x_i, y_i)
// is the grid cell and tid_i = floor((t_i - t_0) / eps) the time bin.
#ifndef LIGHTTR_GEO_GRID_H_
#define LIGHTTR_GEO_GRID_H_

#include <cstdint>

#include "common/check.h"
#include "geo/geo_point.h"

namespace lighttr::geo {

/// A grid cell index (x = column/longitude axis, y = row/latitude axis).
struct GridCell {
  int32_t x = 0;
  int32_t y = 0;

  friend bool operator==(const GridCell& a, const GridCell& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Uniform grid over a bounding box with approximately square cells of
/// `cell_meters` on a side. Points outside the box are clamped to the
/// border cells (GPS noise can push points slightly out of bounds).
class GridSpec {
 public:
  GridSpec(GeoPoint min_corner, GeoPoint max_corner, double cell_meters);

  GridCell CellOf(const GeoPoint& p) const;

  /// Center coordinate of a cell; inverse of CellOf up to quantisation.
  GeoPoint CellCenter(const GridCell& cell) const;

  /// Flattened row-major id in [0, num_cells()).
  int64_t CellId(const GridCell& cell) const {
    return static_cast<int64_t>(cell.y) * cols_ + cell.x;
  }

  GridCell CellFromId(int64_t id) const {
    LIGHTTR_CHECK_GE(id, 0);
    LIGHTTR_CHECK_LT(id, num_cells());
    return {static_cast<int32_t>(id % cols_), static_cast<int32_t>(id / cols_)};
  }

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int64_t num_cells() const { return static_cast<int64_t>(rows_) * cols_; }
  double cell_meters() const { return cell_meters_; }

 private:
  GeoPoint min_corner_;
  GeoPoint max_corner_;
  double cell_meters_;
  double lat_step_;  // degrees per row
  double lng_step_;  // degrees per column
  int32_t rows_ = 0;
  int32_t cols_ = 0;
};

/// Time bin tid = floor((t - t0) / eps); `eps` is the sampling rate of
/// Definition 4, in the same unit as the timestamps.
int64_t TimeBin(double t, double t0, double eps);

}  // namespace lighttr::geo

#endif  // LIGHTTR_GEO_GRID_H_
