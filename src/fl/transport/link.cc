#include "fl/transport/link.h"

#include <algorithm>
#include <utility>

#include "common/backoff.h"
#include "common/check.h"

namespace lighttr::fl::transport {

ReliableLink::ReliableLink(const ChannelFaultConfig& faults,
                           const BackoffConfig& retry, int round,
                           int client_id, const std::string* pull_reply_frame,
                           Rng* rng)
    : faults_(faults),
      retry_(retry),
      round_(round),
      client_id_(client_id),
      pull_reply_frame_(pull_reply_frame),
      rng_(rng),
      uplink_(faults),
      downlink_(faults) {
  if (faults_.enabled()) {
    LIGHTTR_CHECK(rng_ != nullptr);
  }
}

std::string ReliableLink::Serve(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kModelPullRequest: {
      ModelPullRequest request;
      if (!DecodeModelPullRequest(frame.payload, &request).ok()) return "";
      if (request.round != round_ || request.client_id != client_id_) {
        return "";
      }
      LIGHTTR_CHECK(pull_reply_frame_ != nullptr);
      return *pull_reply_frame_;
    }
    case FrameType::kUpdatePush: {
      UpdatePush push;
      if (!DecodeUpdatePush(frame.payload, &push).ok()) return "";
      if (push.round != round_ || push.client_id != client_id_) return "";
      PushAck ack;
      ack.round = round_;
      ack.client_id = client_id_;
      ack.msg_id = push.msg_id;
      if (seen_push_ids_.count(push.msg_id) > 0) {
        // Retransmission of an already-processed push: acknowledge it so
        // the client stops retrying, but deliver the payload only once.
        ack.duplicate = true;
        stats_.dedup_drops++;
      } else {
        seen_push_ids_.insert(push.msg_id);
        delivered_update_ = push.kind == PayloadKind::kRawF64
                                ? push.raw
                                : DequantizeFlat(push.quantized);
        update_delivered_ = true;
      }
      return EncodeFrame(FrameType::kPushAck, EncodePushAck(ack));
    }
    default:
      return "";
  }
}

Result<std::string> ReliableLink::Exchange(FrameType request_type,
                                           const std::string& request_payload,
                                           FrameType expected_reply) {
  const std::string request_frame =
      EncodeFrame(request_type, request_payload);
  const int attempts = 1 + std::max(0, retry_.max_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      stats_.retries++;
      stats_.backoff_s += BackoffDelaySeconds(retry_, attempt - 1, rng_);
    }
    stats_.uplink_bytes += static_cast<int64_t>(request_frame.size());
    stats_.uplink_frames++;
    std::string reply_payload;
    bool got_reply = false;
    for (const Delivery& delivery : uplink_.Transmit(request_frame, rng_)) {
      if (delivery.late) {
        stats_.late_drops++;
        continue;
      }
      Frame frame;
      if (!DecodeFrame(delivery.bytes, &frame).ok()) {
        // Damaged in flight: charged to the network, not the sender.
        stats_.crc_drops++;
        continue;
      }
      const std::string response = Serve(frame);
      if (response.empty()) {
        // Intact envelope but unusable content (misroute, stale round):
        // still a wire-level discard, never a client-behaviour signal.
        stats_.crc_drops++;
        continue;
      }
      stats_.downlink_bytes += static_cast<int64_t>(response.size());
      stats_.downlink_frames++;
      for (const Delivery& down : downlink_.Transmit(response, rng_)) {
        if (down.late) {
          stats_.late_drops++;
          continue;
        }
        Frame reply;
        if (!DecodeFrame(down.bytes, &reply).ok()) {
          stats_.crc_drops++;
          continue;
        }
        if (reply.type != expected_reply) {
          stats_.crc_drops++;
          continue;
        }
        if (!got_reply) {
          reply_payload = std::move(reply.payload);
          got_reply = true;
        }
      }
    }
    if (got_reply) return reply_payload;
    stats_.timeouts++;
  }
  return Status::IoError("link to client " + std::to_string(client_id_) +
                         " down: no usable " +
                         std::string(FrameTypeName(expected_reply)) +
                         " after " + std::to_string(attempts) + " attempts");
}

Result<std::string> ReliableLink::PullModelBlob() {
  ModelPullRequest request;
  request.round = round_;
  request.client_id = client_id_;
  Result<std::string> payload =
      Exchange(FrameType::kModelPullRequest, EncodeModelPullRequest(request),
               FrameType::kModelPullReply);
  if (!payload.ok()) return payload.status();
  ModelPullReply reply;
  LIGHTTR_RETURN_NOT_OK(DecodeModelPullReply(payload.value(), &reply));
  if (reply.round != round_) {
    return Status::InvalidArgument("pull reply names round " +
                                   std::to_string(reply.round) +
                                   ", expected " + std::to_string(round_));
  }
  return std::move(reply.model_blob);
}

Result<std::vector<double>> ReliableLink::PushUpdate(const UpdatePush& push) {
  LIGHTTR_CHECK_EQ(push.round, round_);
  LIGHTTR_CHECK_EQ(push.client_id, client_id_);
  Result<std::string> payload = Exchange(
      FrameType::kUpdatePush, EncodeUpdatePush(push), FrameType::kPushAck);
  if (!payload.ok()) return payload.status();
  PushAck ack;
  LIGHTTR_RETURN_NOT_OK(DecodePushAck(payload.value(), &ack));
  if (ack.msg_id != push.msg_id) {
    return Status::InvalidArgument("push ack names msg_id " +
                                   std::to_string(ack.msg_id) + ", expected " +
                                   std::to_string(push.msg_id));
  }
  LIGHTTR_CHECK(update_delivered_);
  return delivered_update_;
}

}  // namespace lighttr::fl::transport
