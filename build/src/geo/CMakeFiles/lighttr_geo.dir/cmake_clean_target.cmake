file(REMOVE_RECURSE
  "liblighttr_geo.a"
)
