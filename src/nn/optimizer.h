// First-order optimizers over ParameterSets: SGD (with momentum) and Adam.
#ifndef LIGHTTR_NN_OPTIMIZER_H_
#define LIGHTTR_NN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/parameter.h"

namespace lighttr::nn {

/// Applies accumulated gradients to parameters. Call Step() after
/// Backward(); gradients are zeroed by the optimizer at the end of Step.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Updates every parameter in `params` from its gradient, then zeroes
  /// the gradients.
  virtual void Step(ParameterSet* params) = 0;

  /// Serializes the mutable optimizer state (moment estimates, step
  /// counters) at full Scalar precision for crash-recovery snapshots.
  /// Hyperparameters are NOT included: the restoring side constructs
  /// the optimizer with the same options and then loads the state. The
  /// base implementation is for stateless optimizers (empty blob).
  virtual std::string SerializeState() const { return std::string(); }

  /// Restores a blob produced by SerializeState on an optimizer of the
  /// same concrete type. Malformed or mismatched blobs are rejected
  /// with a Status (state may be partially overwritten on failure).
  [[nodiscard]] virtual Status DeserializeState(const std::string& bytes) {
    if (!bytes.empty()) {
      return Status::InvalidArgument(
          "state blob given to a stateless optimizer");
    }
    return Status::Ok();
  }
};

/// Stochastic gradient descent with optional classical momentum and
/// gradient clipping by global norm.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(Scalar learning_rate, Scalar momentum = Scalar{0},
                        Scalar clip_norm = Scalar{0});

  void Step(ParameterSet* params) override;

  std::string SerializeState() const override;
  [[nodiscard]] Status DeserializeState(const std::string& bytes) override;

  Scalar learning_rate() const { return learning_rate_; }
  void set_learning_rate(Scalar lr) { learning_rate_ = lr; }

 private:
  Scalar learning_rate_;
  Scalar momentum_;
  Scalar clip_norm_;  // 0 disables clipping
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and optional clipping.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(Scalar learning_rate, Scalar beta1 = Scalar{0.9},
                         Scalar beta2 = Scalar{0.999},
                         Scalar epsilon = Scalar{1e-8},
                         Scalar clip_norm = Scalar{5},
                         Scalar weight_decay = Scalar{1e-4});

  void Step(ParameterSet* params) override;

  std::string SerializeState() const override;
  [[nodiscard]] Status DeserializeState(const std::string& bytes) override;

  Scalar learning_rate() const { return learning_rate_; }
  void set_learning_rate(Scalar lr) { learning_rate_ = lr; }

 private:
  Scalar learning_rate_;
  Scalar beta1_;
  Scalar beta2_;
  Scalar epsilon_;
  Scalar clip_norm_;
  Scalar weight_decay_;  // decoupled (AdamW-style); 0 disables
  int64_t step_count_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`
/// (no-op when max_norm <= 0 or the norm is already within bounds).
void ClipGradientsByGlobalNorm(ParameterSet* params, Scalar max_norm);

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_OPTIMIZER_H_
