#include "chaos/scenario.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace lighttr::chaos {
namespace {

// Shortest decimal string that parses back to exactly `value`.
std::string FormatDouble(double value) {
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return std::string(buf);
}

void AppendKv(std::string* out, const char* key, const std::string& value) {
  if (!out->empty()) out->push_back(' ');
  out->append(key);
  out->push_back('=');
  out->append(value);
}

void AppendInt(std::string* out, const char* key, int64_t value) {
  AppendKv(out, key, std::to_string(value));
}

void AppendDouble(std::string* out, const char* key, double value) {
  AppendKv(out, key, FormatDouble(value));
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  if (value < -(1LL << 31) || value > (1LL << 31)) return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseF64(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseBool01(const std::string& text, bool* out) {
  if (text == "0") {
    *out = false;
    return true;
  }
  if (text == "1") {
    *out = true;
    return true;
  }
  return false;
}

bool ParseRate(const std::string& text, double* out) {
  return ParseF64(text, out) && *out >= 0.0 && *out <= 1.0;
}

bool ParseCrashPoint(const std::string& text, fl::CrashPoint* out) {
  using fl::CrashPoint;
  for (CrashPoint point : {CrashPoint::kBeforeSave, CrashPoint::kMidSave,
                           CrashPoint::kAfterSave, CrashPoint::kMidRound}) {
    if (text == fl::CrashPointName(point)) {
      *out = point;
      return true;
    }
  }
  return false;
}

Status BadRepro(const std::string& token, const char* why) {
  return Status::InvalidArgument("chaos repro token '" + token + "': " + why);
}

}  // namespace

const char* PlantedBugName(PlantedBug bug) {
  switch (bug) {
    case PlantedBug::kNone: return "none";
    case PlantedBug::kLeakTmp: return "leak-tmp";
    case PlantedBug::kStealthPoison: return "stealth-poison";
  }
  return "unknown";
}

int AxisCount(const ChaosScenario& scenario) {
  int count = 0;
  if (scenario.healing) ++count;
  if (scenario.storage_on) ++count;
  if (scenario.net_on) ++count;
  if (scenario.client_faults_on) ++count;
  if (scenario.crash_on) ++count;
  if (scenario.adversary_on) ++count;
  return count;
}

std::string FormatRepro(const ChaosScenario& s) {
  std::string out;
  AppendKv(&out, "seed", std::to_string(s.seed));
  AppendInt(&out, "rounds", s.rounds);
  AppendInt(&out, "clients", s.clients);
  AppendInt(&out, "threads", s.threads);
  AppendDouble(&out, "fraction", s.client_fraction);
  AppendDouble(&out, "quorum", s.quorum_fraction);
  AppendInt(&out, "healing", s.healing ? 1 : 0);
  AppendInt(&out, "storage", s.storage_on ? 1 : 0);
  if (s.storage_on) {
    AppendKv(&out, "storage.seed", std::to_string(s.storage.seed));
    AppendDouble(&out, "storage.enospc", s.storage.enospc_rate);
    AppendDouble(&out, "storage.torn", s.storage.torn_append_rate);
    AppendDouble(&out, "storage.rename", s.storage.rename_fail_rate);
    AppendDouble(&out, "storage.bitrot", s.storage.read_bitrot_rate);
    AppendDouble(&out, "storage.litter", s.storage.tmp_litter_rate);
    AppendInt(&out, "storage.lossy", s.storage.lose_unsynced_on_crash ? 1 : 0);
  }
  AppendInt(&out, "net", s.net_on ? 1 : 0);
  if (s.net_on) {
    AppendDouble(&out, "net.drop", s.net.drop_rate);
    AppendDouble(&out, "net.dup", s.net.duplicate_rate);
    AppendDouble(&out, "net.reorder", s.net.reorder_rate);
    AppendDouble(&out, "net.corrupt", s.net.corrupt_rate);
    AppendDouble(&out, "net.truncate", s.net.truncate_rate);
    AppendDouble(&out, "net.delay", s.net.delay_rate);
  }
  AppendInt(&out, "faults", s.client_faults_on ? 1 : 0);
  if (s.client_faults_on) {
    AppendDouble(&out, "faults.dropout", s.client_faults.dropout_rate);
    AppendDouble(&out, "faults.straggler", s.client_faults.straggler_rate);
    AppendDouble(&out, "faults.corruption", s.client_faults.corruption_rate);
  }
  AppendInt(&out, "crash", s.crash_on ? 1 : 0);
  if (s.crash_on) {
    AppendKv(&out, "crash.point", fl::CrashPointName(s.crash_point));
    AppendInt(&out, "crash.round", s.crash_round);
  }
  AppendInt(&out, "adversary", s.adversary_on ? 1 : 0);
  if (s.adversary_on) {
    AppendInt(&out, "adversary.count", s.adversary.num_attackers);
    AppendKv(&out, "adversary.attack", fl::AttackTypeName(s.adversary.attack));
    AppendDouble(&out, "adversary.scale", s.adversary.ascent_scale);
    AppendInt(&out, "adversary.start", s.adversary.start_round);
    AppendKv(&out, "adversary.seed", std::to_string(s.adversary.seed));
    AppendInt(&out, "adversary.defended", s.adversary_defended ? 1 : 0);
  }
  if (s.plant != PlantedBug::kNone) {
    AppendKv(&out, "plant", PlantedBugName(s.plant));
  }
  return out;
}

Result<ChaosScenario> ParseRepro(const std::string& text) {
  ChaosScenario s;
  // Parsing starts from a blank scenario: every axis off, sub-configs at
  // their defaults, so a repro string is self-contained.
  s.healing = false;
  s.storage_on = false;
  s.net_on = false;
  s.client_faults_on = false;
  s.crash_on = false;
  s.adversary_on = false;

  std::istringstream stream(text);
  std::string token;
  bool saw_seed = false;
  while (stream >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return BadRepro(token, "expected key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    bool ok = true;
    if (key == "seed") {
      ok = ParseU64(value, &s.seed);
      saw_seed = ok;
    } else if (key == "rounds") {
      ok = ParseInt(value, &s.rounds) && s.rounds >= 1 && s.rounds <= 512;
    } else if (key == "clients") {
      ok = ParseInt(value, &s.clients) && s.clients >= 1 && s.clients <= 256;
    } else if (key == "threads") {
      ok = ParseInt(value, &s.threads) && s.threads >= 1 && s.threads <= 64;
    } else if (key == "fraction") {
      ok = ParseF64(value, &s.client_fraction) && s.client_fraction > 0.0 &&
           s.client_fraction <= 1.0;
    } else if (key == "quorum") {
      ok = ParseRate(value, &s.quorum_fraction);
    } else if (key == "healing") {
      ok = ParseBool01(value, &s.healing);
    } else if (key == "storage") {
      ok = ParseBool01(value, &s.storage_on);
    } else if (key == "storage.seed") {
      ok = ParseU64(value, &s.storage.seed);
    } else if (key == "storage.enospc") {
      ok = ParseRate(value, &s.storage.enospc_rate);
    } else if (key == "storage.torn") {
      ok = ParseRate(value, &s.storage.torn_append_rate);
    } else if (key == "storage.rename") {
      ok = ParseRate(value, &s.storage.rename_fail_rate);
    } else if (key == "storage.bitrot") {
      ok = ParseRate(value, &s.storage.read_bitrot_rate);
    } else if (key == "storage.litter") {
      ok = ParseRate(value, &s.storage.tmp_litter_rate);
    } else if (key == "storage.lossy") {
      ok = ParseBool01(value, &s.storage.lose_unsynced_on_crash);
    } else if (key == "net") {
      ok = ParseBool01(value, &s.net_on);
    } else if (key == "net.drop") {
      ok = ParseRate(value, &s.net.drop_rate);
    } else if (key == "net.dup") {
      ok = ParseRate(value, &s.net.duplicate_rate);
    } else if (key == "net.reorder") {
      ok = ParseRate(value, &s.net.reorder_rate);
    } else if (key == "net.corrupt") {
      ok = ParseRate(value, &s.net.corrupt_rate);
    } else if (key == "net.truncate") {
      ok = ParseRate(value, &s.net.truncate_rate);
    } else if (key == "net.delay") {
      ok = ParseRate(value, &s.net.delay_rate);
    } else if (key == "faults") {
      ok = ParseBool01(value, &s.client_faults_on);
    } else if (key == "faults.dropout") {
      ok = ParseRate(value, &s.client_faults.dropout_rate);
    } else if (key == "faults.straggler") {
      ok = ParseRate(value, &s.client_faults.straggler_rate);
    } else if (key == "faults.corruption") {
      ok = ParseRate(value, &s.client_faults.corruption_rate);
    } else if (key == "crash") {
      ok = ParseBool01(value, &s.crash_on);
    } else if (key == "crash.point") {
      ok = ParseCrashPoint(value, &s.crash_point);
    } else if (key == "crash.round") {
      ok = ParseInt(value, &s.crash_round) && s.crash_round >= 1 &&
           s.crash_round <= 512;
    } else if (key == "adversary") {
      ok = ParseBool01(value, &s.adversary_on);
    } else if (key == "adversary.count") {
      ok = ParseInt(value, &s.adversary.num_attackers) &&
           s.adversary.num_attackers >= 1 && s.adversary.num_attackers <= 256;
    } else if (key == "adversary.attack") {
      ok = fl::ParseAttackType(value, &s.adversary.attack) &&
           s.adversary.attack != fl::AttackType::kNone;
    } else if (key == "adversary.scale") {
      ok = ParseF64(value, &s.adversary.ascent_scale) &&
           s.adversary.ascent_scale > 0.0 && s.adversary.ascent_scale <= 1e4;
    } else if (key == "adversary.start") {
      ok = ParseInt(value, &s.adversary.start_round) &&
           s.adversary.start_round >= 1 && s.adversary.start_round <= 512;
    } else if (key == "adversary.seed") {
      ok = ParseU64(value, &s.adversary.seed);
    } else if (key == "adversary.defended") {
      ok = ParseBool01(value, &s.adversary_defended);
    } else if (key == "plant") {
      if (value == PlantedBugName(PlantedBug::kNone)) {
        s.plant = PlantedBug::kNone;
      } else if (value == PlantedBugName(PlantedBug::kLeakTmp)) {
        s.plant = PlantedBug::kLeakTmp;
      } else if (value == PlantedBugName(PlantedBug::kStealthPoison)) {
        s.plant = PlantedBug::kStealthPoison;
      } else {
        ok = false;
      }
    } else {
      return BadRepro(token, "unknown key");
    }
    if (!ok) return BadRepro(token, "malformed or out-of-range value");
  }
  if (!saw_seed) {
    return Status::InvalidArgument("chaos repro: missing required key 'seed'");
  }
  if (s.crash_on && s.crash_round > s.rounds) {
    return Status::InvalidArgument("chaos repro: crash.round exceeds rounds");
  }
  if (s.adversary_on && s.adversary.num_attackers > s.clients) {
    return Status::InvalidArgument(
        "chaos repro: adversary.count exceeds clients");
  }
  return s;
}

ChaosScenario SampleScenario(Rng* rng) {
  ChaosScenario s;
  // Every draw below happens unconditionally (flags applied afterwards),
  // so scenario N is a pure function of (campaign seed, N) regardless of
  // which axes earlier scenarios enabled.
  s.seed = static_cast<uint64_t>(rng->UniformInt(1, 1'000'000'000));
  s.rounds = static_cast<int>(rng->UniformInt(4, 8));
  s.clients = static_cast<int>(rng->UniformInt(4, 6));
  const int64_t thread_pick = rng->UniformInt(0, 2);
  s.threads = thread_pick == 0 ? 1 : (thread_pick == 1 ? 2 : 8);
  const int64_t fraction_pick = rng->UniformInt(0, 2);
  s.client_fraction =
      fraction_pick == 0 ? 0.5 : (fraction_pick == 1 ? 0.8 : 1.0);
  const int64_t quorum_pick = rng->UniformInt(0, 2);
  s.quorum_fraction = quorum_pick == 0 ? 0.0 : (quorum_pick == 1 ? 0.25 : 0.5);
  s.healing = rng->Bernoulli(0.3);

  s.storage_on = rng->Bernoulli(0.6);
  s.storage.seed = static_cast<uint64_t>(rng->UniformInt(1, 1'000'000'000));
  s.storage.enospc_rate = rng->Uniform(0.0, 0.15);
  s.storage.torn_append_rate = rng->Uniform(0.0, 0.15);
  s.storage.rename_fail_rate = rng->Uniform(0.0, 0.15);
  s.storage.read_bitrot_rate = rng->Uniform(0.0, 0.10);
  s.storage.tmp_litter_rate = rng->Uniform(0.0, 0.20);
  s.storage.lose_unsynced_on_crash = rng->Bernoulli(0.5);

  s.net_on = rng->Bernoulli(0.5);
  s.net.drop_rate = rng->Uniform(0.0, 0.15);
  s.net.duplicate_rate = rng->Uniform(0.0, 0.15);
  s.net.reorder_rate = rng->Uniform(0.0, 0.15);
  s.net.corrupt_rate = rng->Uniform(0.0, 0.15);
  s.net.truncate_rate = rng->Uniform(0.0, 0.10);
  s.net.delay_rate = rng->Uniform(0.0, 0.10);

  s.client_faults_on = rng->Bernoulli(0.5);
  s.client_faults.dropout_rate = rng->Uniform(0.0, 0.25);
  s.client_faults.straggler_rate = rng->Uniform(0.0, 0.20);
  s.client_faults.corruption_rate = rng->Uniform(0.0, 0.15);

  s.crash_on = rng->Bernoulli(0.5);
  const int64_t point_pick = rng->UniformInt(0, 3);
  using fl::CrashPoint;
  s.crash_point = point_pick == 0   ? CrashPoint::kBeforeSave
                  : point_pick == 1 ? CrashPoint::kMidSave
                  : point_pick == 2 ? CrashPoint::kAfterSave
                                    : CrashPoint::kMidRound;
  s.crash_round = static_cast<int>(rng->UniformInt(1, s.rounds));

  s.adversary_on = rng->Bernoulli(0.3);
  s.adversary.num_attackers = static_cast<int>(rng->UniformInt(1, 2));
  const int64_t attack_pick = rng->UniformInt(0, 3);
  using fl::AttackType;
  s.adversary.attack = attack_pick == 0   ? AttackType::kSignFlip
                       : attack_pick == 1 ? AttackType::kScaledAscent
                       : attack_pick == 2 ? AttackType::kMinMax
                                          : AttackType::kNormMatched;
  s.adversary.ascent_scale = rng->Uniform(5.0, 20.0);
  s.adversary.start_round = static_cast<int>(rng->UniformInt(1, 2));
  s.adversary.seed = static_cast<uint64_t>(rng->UniformInt(1, 1'000'000'000));
  // Sampled scenarios always run defended: an undefended poisoning run
  // legitimately corrupts the model, which is bench_adversary's gate and
  // the planted stealth-poison bug's failure mode — not a sampled
  // scenario's. The draw above keeps the stream layout fixed either way.
  s.adversary_defended = true;
  return s;
}

}  // namespace lighttr::chaos
