#include "roadnet/road_network.h"

#include <algorithm>
#include <cmath>

namespace lighttr::roadnet {

VertexId RoadNetwork::AddVertex(const geo::GeoPoint& position) {
  LIGHTTR_CHECK(!finalized_);
  vertices_.push_back(Vertex{position});
  min_corner_.lat = std::min(min_corner_.lat, position.lat);
  min_corner_.lng = std::min(min_corner_.lng, position.lng);
  max_corner_.lat = std::max(max_corner_.lat, position.lat);
  max_corner_.lng = std::max(max_corner_.lng, position.lng);
  return static_cast<VertexId>(vertices_.size() - 1);
}

SegmentId RoadNetwork::AddSegment(VertexId from, VertexId to,
                                  double length_m) {
  LIGHTTR_CHECK(!finalized_);
  LIGHTTR_CHECK_GE(from, 0);
  LIGHTTR_CHECK_LT(from, num_vertices());
  LIGHTTR_CHECK_GE(to, 0);
  LIGHTTR_CHECK_LT(to, num_vertices());
  LIGHTTR_CHECK_NE(from, to);
  if (length_m < 0.0) {
    length_m =
        geo::HaversineMeters(vertices_[from].position, vertices_[to].position);
  }
  LIGHTTR_CHECK_GT(length_m, 0.0);
  segments_.push_back(Segment{from, to, length_m});
  return static_cast<SegmentId>(segments_.size() - 1);
}

SegmentId RoadNetwork::AddTwoWay(VertexId u, VertexId v) {
  const SegmentId forward = AddSegment(u, v);
  AddSegment(v, u, segments_[forward].length_m);
  return forward;
}

void RoadNetwork::Finalize() {
  LIGHTTR_CHECK(!finalized_);
  out_segments_.assign(vertices_.size(), {});
  in_segments_.assign(vertices_.size(), {});
  for (SegmentId e = 0; e < num_segments(); ++e) {
    out_segments_[segments_[e].from].push_back(e);
    in_segments_[segments_[e].to].push_back(e);
  }
  finalized_ = true;
}

const std::vector<SegmentId>& RoadNetwork::OutSegments(VertexId v) const {
  LIGHTTR_CHECK(finalized_);
  LIGHTTR_CHECK_GE(v, 0);
  LIGHTTR_CHECK_LT(v, num_vertices());
  return out_segments_[v];
}

const std::vector<SegmentId>& RoadNetwork::InSegments(VertexId v) const {
  LIGHTTR_CHECK(finalized_);
  LIGHTTR_CHECK_GE(v, 0);
  LIGHTTR_CHECK_LT(v, num_vertices());
  return in_segments_[v];
}

SegmentId RoadNetwork::FindSegment(VertexId u, VertexId v) const {
  LIGHTTR_CHECK(finalized_);
  for (SegmentId e : out_segments_[u]) {
    if (segments_[e].to == v) return e;
  }
  return kInvalidSegment;
}

geo::GeoPoint RoadNetwork::PositionToPoint(const PointPosition& pos) const {
  const Segment& seg = segment(pos.segment);
  const double r = std::clamp(pos.ratio, 0.0, 1.0);
  return geo::Lerp(vertices_[seg.from].position, vertices_[seg.to].position,
                   r);
}

Projection RoadNetwork::ProjectOntoSegment(SegmentId e,
                                           const geo::GeoPoint& p) const {
  const Segment& seg = segment(e);
  const geo::GeoPoint& a = vertices_[seg.from].position;
  const geo::GeoPoint& b = vertices_[seg.to].position;

  const geo::LocalProjection plane(a);
  const auto pa = plane.ToXy(a);  // (0, 0)
  const auto pb = plane.ToXy(b);
  const auto pp = plane.ToXy(p);

  const double dx = pb.x - pa.x;
  const double dy = pb.y - pa.y;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = std::clamp((pp.x * dx + pp.y * dy) / len2, 0.0, 1.0);
  }
  const geo::LocalProjection::Xy snapped_xy{pa.x + t * dx, pa.y + t * dy};
  const geo::GeoPoint snapped = plane.FromXy(snapped_xy);

  Projection proj;
  proj.position = PointPosition{e, t};
  proj.snapped = snapped;
  const double ex = pp.x - snapped_xy.x;
  const double ey = pp.y - snapped_xy.y;
  proj.distance_m = std::sqrt(ex * ex + ey * ey);
  return proj;
}

}  // namespace lighttr::roadnet
