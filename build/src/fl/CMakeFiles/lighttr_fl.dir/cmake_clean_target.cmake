file(REMOVE_RECURSE
  "liblighttr_fl.a"
)
