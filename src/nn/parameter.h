// Parameter registry: named trainable tensors with flattening and
// (de)serialization — the unit of exchange in federated aggregation.
#ifndef LIGHTTR_NN_PARAMETER_H_
#define LIGHTTR_NN_PARAMETER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace lighttr::nn {

/// An ordered collection of named parameters (trainable leaf tensors).
///
/// Models register their parameters at construction; the FL layer uses
/// Flatten/AssignFlat to average models, and Serialize/Deserialize as
/// the wire format (float32 on the wire, as a real deployment would use,
/// so communication byte counts are realistic).
class ParameterSet {
 public:
  ParameterSet() = default;

  /// Registers a parameter under a unique name. The tensor must be a
  /// gradient-requiring leaf (created via Tensor::Variable).
  void Register(std::string name, Tensor tensor);

  size_t size() const { return items_.size(); }
  const std::string& name(size_t i) const { return items_[i].first; }
  const Tensor& tensor(size_t i) const { return items_[i].second; }

  /// Finds a parameter by name; CHECK-fails when missing.
  const Tensor& Get(const std::string& name) const;

  /// Total number of scalar weights.
  int64_t NumScalars() const;

  /// Copies all parameter values into one contiguous vector.
  std::vector<Scalar> Flatten() const;

  /// Writes `flat` back into the parameters (inverse of Flatten).
  void AssignFlat(const std::vector<Scalar>& flat);

  /// Zeroes every parameter gradient.
  void ZeroGrads();

  /// Serialized size in bytes of the float32 wire format.
  int64_t WireBytes() const;

  /// Serializes names, shapes, and float32 values.
  std::string Serialize() const;

  /// Restores values from Serialize() output. The parameter names and
  /// shapes must match this set exactly.
  [[nodiscard]] Status Deserialize(const std::string& bytes);

 private:
  std::vector<std::pair<std::string, Tensor>> items_;
};

/// Global-norm gradient clipping: when the L2 norm over ALL parameter
/// gradients in `params` exceeds `max_norm`, every gradient is scaled
/// by max_norm / norm (the standard "clip_grad_norm" rule). Returns the
/// pre-clip global norm. A non-finite norm zeroes every gradient (a
/// poisoned step must not reach the optimizer). No-op when max_norm <= 0.
double ClipGradNorm(ParameterSet* params, double max_norm);

/// Element-wise average of several flattened parameter vectors — the
/// FedAvg aggregation rule (Algorithm 3 line 11). Returns an empty
/// vector for an empty input set (a fully failed round); callers keep
/// their previous parameters in that case. See fl::AggregateFlat for
/// the robust (median / trimmed-mean) variants with Status reporting.
std::vector<Scalar> AverageFlat(const std::vector<std::vector<Scalar>>& flats);

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_PARAMETER_H_
