// The federated training loop (paper Algorithm 3, Fig. 2(b)):
// server-orchestrated rounds with client sampling, local updates, and
// FedAvg parameter aggregation, with exact communication accounting.
#ifndef LIGHTTR_FL_FEDERATED_TRAINER_H_
#define LIGHTTR_FL_FEDERATED_TRAINER_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/backoff.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fl/adversary.h"
#include "fl/aggregation.h"
#include "fl/comm_stats.h"
#include "fl/fault_injection.h"
#include "fl/health.h"
#include "fl/privacy.h"
#include "fl/recovery_model.h"
#include "fl/reputation.h"
#include "fl/run_state.h"
#include "fl/transport/channel.h"
#include "nn/kernels/kernels.h"
#include "nn/optimizer.h"
#include "traj/workload.h"

namespace lighttr::fl {

/// Strategy object for the client-side update of one round. The default
/// performs plain local epochs (FedAvg); LightTR substitutes its
/// meta-knowledge enhanced local training (Algorithm 2).
///
/// Thread-safety contract: with `FederatedTrainerOptions::threads > 1`
/// the trainer invokes Update concurrently for *distinct* clients of
/// the same round (never twice for the same client). `model`,
/// `optimizer`, `data`, and `rng` are private to the call; any mutable
/// state shared across calls inside the strategy itself must be
/// internally synchronized, and its values must not depend on the order
/// in which clients run (or determinism across thread counts breaks).
class LocalUpdateStrategy {
 public:
  virtual ~LocalUpdateStrategy() = default;

  /// Runs the local update for client `client_index`; returns the mean
  /// training loss.
  virtual double Update(int client_index, RecoveryModel* model,
                        nn::Optimizer* optimizer,
                        const traj::ClientDataset& data, int epochs,
                        Rng* rng) = 0;
};

/// Plain FedAvg local update: `epochs` passes of task-loss SGD.
class PlainLocalUpdate : public LocalUpdateStrategy {
 public:
  /// `clip_norm` > 0 bounds each step's global gradient norm (see
  /// LocalTrainOptions::clip_norm); 0 disables clipping.
  explicit PlainLocalUpdate(double clip_norm = 0.0) : clip_norm_(clip_norm) {}

  double Update(int client_index, RecoveryModel* model,
                nn::Optimizer* optimizer, const traj::ClientDataset& data,
                int epochs, Rng* rng) override;

 private:
  double clip_norm_;
};

/// Self-healing policy: round health verdicts (fl/health), per-client
/// reputation + quarantine (fl/reputation), and the rollback protocol
/// applied on a diverged verdict. Off by default (the paper's setting).
struct SelfHealingConfig {
  bool enabled = false;
  HealthMonitorConfig monitor;
  ReputationConfig reputation;
  /// How many times a run may roll back to its last healthy state
  /// before it gives up (restores that state once more and stops).
  int max_rollbacks = 3;
};

/// Server-side fault tolerance knobs: how the round survives the faults
/// FaultInjectionConfig injects (or real deployments produce).
struct FaultToleranceConfig {
  /// Retry budget + simulated delay schedule for dropped clients.
  BackoffConfig retry;
  /// Minimum fraction of the sampled cohort that must report for the
  /// round to aggregate; below it the server keeps the previous global
  /// model. A round with zero reporters always degrades this way.
  double quorum_fraction = 0.0;
  /// Upload validation (non-finite rejection + optional norm bound).
  UploadScreenConfig screen;
  /// Aggregation rule over the screened uploads.
  AggregatorConfig aggregator;
};

/// Options for FederatedTrainer.
struct FederatedTrainerOptions {
  int rounds = 10;
  double client_fraction = 1.0;  // fraction sampled per round (Fig. 6)
  int local_epochs = 2;          // E of Algorithm 3
  double learning_rate = 1e-3;   // paper Sec. V-A4
  uint64_t seed = 7;
  /// Optional DP-style upload protection (clip + Gaussian noise).
  PrivacyConfig privacy;
  /// Quantize uploads to 8 bits per weight (4x less uplink traffic).
  bool quantize_uploads = false;
  /// Injected client faults (off by default: the paper's ideal setting).
  FaultInjectionConfig faults;
  /// Server-side tolerance policy (screening is on by default).
  FaultToleranceConfig tolerance;
  /// Crash-safe persistence: periodic snapshots + round journal under
  /// `durability.dir`, and optional resume from it (off by default).
  DurabilityConfig durability;
  /// Self-healing layer: health verdicts, divergence rollback, client
  /// quarantine (off by default).
  SelfHealingConfig healing;
  /// Wire-level transport (on by default): model pulls and update
  /// pushes travel as CRC32-framed messages over a per-client
  /// SimulatedChannel with idempotent retries, and CommStats is
  /// measured from the encoded frames. `transport.enabled = false`
  /// falls back to the legacy in-process handoff with estimated byte
  /// accounting (kept as the bench baseline).
  transport::TransportConfig transport;
  /// Injected model-poisoning adversary (off by default): compromised
  /// clients rewrite their uploads after local training and before
  /// screening/transport, so attacks traverse the full real path. The
  /// engine draws from its own seed (an independent knob, like the
  /// channel seed) — enabling it never perturbs honest training draws.
  AdversaryConfig adversary;
  /// Global-norm gradient clipping inside local training; 0 disables.
  /// Applies to the built-in PlainLocalUpdate strategy (external
  /// strategies read it from their own options, see MetaLocalOptions).
  double clip_norm = 0.0;
  /// Executors for the per-round client loop: 1 = serial reference
  /// path, >1 = that many (clients of one round train concurrently),
  /// 0 = LIGHTTR_THREADS env / hardware concurrency. Results are
  /// bitwise identical for every value — RNG streams are forked on the
  /// coordinating thread in canonical selection order and uploads are
  /// merged in that same order.
  int threads = 0;

  /// Compute-kernel variant for the math hot path (GEMM + activation
  /// sweeps). kAuto picks AVX2+FMA when the CPU has it, else the scalar
  /// reference. The setting is process-global (the trainer activates it
  /// at construction): kernels are stateless pure functions, so the last
  /// activation wins for every model in the process. Results are bitwise
  /// reproducible across runs and thread counts for a FIXED kernel;
  /// scalar and avx2 differ only by FMA/vector rounding.
  nn::KernelMode kernel = nn::KernelMode::kAuto;
};

/// Outcome of a federated run. (RoundRecord lives in comm_stats.h with
/// the other telemetry structs.)
struct FederatedRunResult {
  CommStats comm;
  FaultStats faults;
  std::vector<RoundRecord> history;
  /// True when the self-healing layer exhausted its rollback budget and
  /// stopped the run early at its last healthy state.
  bool gave_up = false;
};

/// Simulates horizontal federated learning in-process: one global model
/// on the "server", one persistent model + optimizer per client.
class FederatedTrainer {
 public:
  FederatedTrainer(ModelFactory factory,
                   const std::vector<traj::ClientDataset>* clients,
                   FederatedTrainerOptions options);

  /// Runs `options.rounds` rounds with `strategy` (defaults to plain
  /// FedAvg when null). With `options.durability.resume` set, first
  /// restores the newest valid snapshot in `durability.dir` (falling
  /// back to older ones on corruption) and continues from there; the
  /// result then covers the full run, replayed history included.
  FederatedRunResult Run(LocalUpdateStrategy* strategy = nullptr);

  /// Restores server state (global model, RNG streams, client optimizer
  /// state, telemetry, round history) from the newest valid snapshot in
  /// `dir`. A snapshot failing its checksum is skipped with a warning
  /// and the previous one is tried. NotFound when `dir` holds no
  /// snapshot at all (callers treat that as a fresh start).
  [[nodiscard]] Status ResumeFrom(const std::string& dir);

  /// Last completed round restored by ResumeFrom (0 when no resume
  /// happened). Run() continues at resumed_round() + 1.
  int resumed_round() const { return resumed_round_; }

  /// Lifetime count of persistence calls (journal append, snapshot
  /// write/sync) that failed at the filesystem. Training continues past
  /// such failures — the model is unaffected — but the count is
  /// surfaced so chaos invariants can reconcile it against what the
  /// fault-injecting filesystem reports.
  int64_t storage_write_failures() const { return storage_write_failures_; }

  /// The global model (valid after construction; trained after Run).
  RecoveryModel* global_model() { return global_model_.get(); }

  /// The reputation ledger (null while `options.healing.enabled` is
  /// false); for tests and telemetry.
  const ReputationBook* reputation() const { return book_.get(); }

  /// The poisoning adversary engine (null while `options.adversary` is
  /// not Enabled()); for tests and telemetry.
  const AdversaryEngine* adversary() const { return adversary_.get(); }

  /// Client models (for ablations and tests).
  RecoveryModel* client_model(int i) { return client_models_[i].get(); }
  int num_clients() const { return static_cast<int>(client_models_.size()); }

 private:
  /// Draws up to `max_trajectories` validation trajectories uniformly
  /// across ALL clients (the old pool took the first clients in order,
  /// biasing the telemetry toward their data distribution).
  std::vector<traj::IncompleteTrajectory> SampleValidationPool(
      size_t max_trajectories, Rng* rng) const;

  /// Builds the full ServerRunState after `round` (shared by disk
  /// snapshots and the in-memory rollback anchor).
  ServerRunState CaptureState(int round, const FederatedRunResult& result);

  /// Restores trainer state from `state`. With `restore_reputation` the
  /// reputation ledger + escalation latch come back too (cross-process
  /// resume); without it they survive (rollback: offenders stay
  /// remembered so the replay can differ).
  [[nodiscard]] Status RestoreFromState(const ServerRunState& state,
                                        bool restore_reputation);

  /// Copies the lifetime self-healing counters into `faults` (they are
  /// trainer members so a rollback cannot erase them).
  void AssignHealingCounters(FaultStats* faults) const;

  /// Captures full server state after `round` and atomically writes it
  /// to the snapshot directory, honoring kMidSave crash injection.
  [[nodiscard]] Status SaveSnapshot(int round,
                                    const FederatedRunResult& result);

  /// The filesystem durability IO goes through: the configured
  /// `durability.fs`, or the process-wide real one when unset.
  FileSystem* DurableFs() const;

  /// Removes leftover `*.tmp` files from the durability directory
  /// (crashed writers leave them; readers already ignore them). Run at
  /// startup so the chaos orphan-temp invariant holds at quiescence.
  void SweepTempFiles();

  const std::vector<traj::ClientDataset>* clients_;
  FederatedTrainerOptions options_;
  /// Executes the per-round client loop (`options_.threads` wide). Kept
  /// per-trainer (not the global pool) so tests can run trainers with
  /// different widths side by side.
  ThreadPool pool_;
  Rng rng_;
  // Dedicated streams forked at construction (order matters: the fork
  // sequence is part of the deterministic contract, see the ctor).
  Rng fault_rng_;
  Rng valid_rng_;
  /// Channel-fault stream, seeded directly from
  /// `transport.channel_seed` (NOT forked from rng_): the network's
  /// weather is an independent knob, so changing the channel seed never
  /// perturbs model init, client sampling, or local-training draws.
  Rng net_rng_;
  /// Injected poisoning adversary (null unless `options_.adversary` is
  /// Enabled()). Owns its own stream, seeded from `adversary.seed` —
  /// same independence contract as net_rng_.
  std::unique_ptr<AdversaryEngine> adversary_;
  /// Rolling window of accepted, non-suspected delta norms; its median
  /// is the kNormBound aggregator's clip bound. Maintained only when
  /// that policy is configured; snapshotted in the v5 tail.
  std::vector<double> normbound_window_;
  std::unique_ptr<RecoveryModel> global_model_;
  std::vector<std::unique_ptr<RecoveryModel>> client_models_;
  std::vector<std::unique_ptr<nn::Optimizer>> client_optimizers_;
  // Resume bookkeeping: rounds <= start_round_ are already durable and
  // their telemetry is seeded into the result instead of re-run.
  int start_round_ = 0;
  int resumed_round_ = 0;
  FederatedRunResult resume_seed_;
  // Self-healing state (only touched when options_.healing.enabled).
  RoundHealthMonitor monitor_;
  std::unique_ptr<ReputationBook> book_;
  /// Rollback anchor: the newest state that judged non-diverged. Held
  /// in memory so healing works with durability off; with durability on
  /// it mirrors what the newest snapshot would contain.
  std::optional<ServerRunState> last_healthy_;
  /// Screening-escalation latch: once a round diverges, screening is
  /// forced on and kMean aggregation is hardened to kMedian for the
  /// rest of the run.
  bool escalated_ = false;
  // Lifetime healing counters (see AssignHealingCounters).
  int64_t outlier_uploads_ = 0;
  int64_t diverged_rounds_ = 0;
  int64_t rollbacks_ = 0;
  int64_t quarantine_events_ = 0;
  int64_t parole_events_ = 0;
  int64_t quarantined_skips_ = 0;
  /// Lifetime storage-fault counter (see storage_write_failures()).
  /// Deliberately NOT reset by rollback — like the healing counters, a
  /// persistence failure happened even if the round it served is undone.
  int64_t storage_write_failures_ = 0;
};

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_FEDERATED_TRAINER_H_
