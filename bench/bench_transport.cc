// Hostile-network sweep for the wire-level transport: the same federated
// LightTR run over a grid of channel fault models — clean, drop-heavy,
// corrupt-heavy, delay-heavy, and a combined storm — measuring wall
// time, exact wire traffic, retry/timeout/dedup telemetry, and goodput
// (the clean run's wire bytes over the faulted run's: how much extra
// traffic the weather extracted).
//
// Expected shape: every faulted run still completes all rounds (the
// retry budget rides out the weather) and lands on a finite model;
// goodput degrades as fault rates rise. A clean-channel section gates
// the transport's overhead: framing, CRC32, and codec round-trips must
// cost no more than 5% wall time over the legacy in-process handoff
// (min-of-3 runs, small absolute slack for timer noise), and the
// trained model must be bitwise identical to the legacy path.
//
// Emits a human table plus BENCH_transport.json, and exits non-zero if
// the clean-channel gate fails or any faulted run fails to complete.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "bench/bench_output.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "fl/federated_trainer.h"
#include "nn/parameter.h"

namespace {

using namespace lighttr;

struct FaultCase {
  std::string name;
  fl::transport::ChannelFaultConfig channel;
};

std::vector<FaultCase> FaultGrid() {
  std::vector<FaultCase> grid;
  grid.push_back({"clean", {}});
  {
    fl::transport::ChannelFaultConfig c;
    c.drop_rate = 0.25;
    grid.push_back({"drop25", c});
  }
  {
    fl::transport::ChannelFaultConfig c;
    c.corrupt_rate = 0.25;
    grid.push_back({"corrupt25", c});
  }
  {
    fl::transport::ChannelFaultConfig c;
    c.delay_rate = 0.2;
    grid.push_back({"delay20", c});
  }
  {
    fl::transport::ChannelFaultConfig c;
    c.drop_rate = 0.15;
    c.corrupt_rate = 0.15;
    c.duplicate_rate = 0.1;
    c.reorder_rate = 0.1;
    c.delay_rate = 0.1;
    grid.push_back({"storm", c});
  }
  return grid;
}

struct RunOutcome {
  fl::FederatedRunResult run;
  std::string params_blob;
  double seconds = 0.0;
  bool finite = false;
};

std::string JsonRow(const std::string& section, const RunOutcome& outcome,
                    double goodput) {
  const fl::FaultStats& f = outcome.run.faults;
  char buffer[448];
  std::snprintf(
      buffer, sizeof(buffer),
      "  {\"section\": \"%s\", \"seconds\": %.3f, \"rounds\": %lld, "
      "\"uplink_bytes\": %lld, \"downlink_bytes\": %lld, "
      "\"messages\": %lld, \"net_retries\": %lld, \"net_timeouts\": %lld, "
      "\"net_crc_drops\": %lld, \"net_dedup_drops\": %lld, "
      "\"net_late_drops\": %lld, \"net_lost\": %lld, \"goodput\": %.4f, "
      "\"finite\": %d}",
      section.c_str(), outcome.seconds,
      static_cast<long long>(outcome.run.comm.rounds),
      static_cast<long long>(outcome.run.comm.bytes_uplink),
      static_cast<long long>(outcome.run.comm.bytes_downlink),
      static_cast<long long>(outcome.run.comm.messages),
      static_cast<long long>(f.net_retries),
      static_cast<long long>(f.net_timeouts),
      static_cast<long long>(f.net_crc_drops),
      static_cast<long long>(f.net_dedup_drops),
      static_cast<long long>(f.net_late_drops),
      static_cast<long long>(f.net_lost), goodput, outcome.finite ? 1 : 0);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  if (args.error) return 2;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Transport fault sweep (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 11);

  const auto run_once = [&](bool transport_on,
                            const fl::transport::ChannelFaultConfig& channel) {
    eval::MethodRunOptions base = eval::DefaultRunOptions(scale);
    fl::FederatedTrainerOptions options = base.fed;
    options.transport.enabled = transport_on;
    options.transport.channel = channel;
    // Generous budget: the sweep measures cost, not quorum collapse.
    options.transport.retry.max_retries = 64;
    fl::FederatedTrainer trainer(
        baselines::MakeFactory(baselines::ModelKind::kLightTr, &env->encoder()),
        &clients, options);
    Stopwatch watch;
    RunOutcome outcome;
    outcome.run = trainer.Run();
    outcome.seconds = watch.ElapsedSeconds();
    outcome.params_blob = trainer.global_model()->params().Serialize();
    outcome.finite = true;
    for (const nn::Scalar v : trainer.global_model()->params().Flatten()) {
      if (!std::isfinite(v)) outcome.finite = false;
    }
    return outcome;
  };
  const auto min_of_3 = [&](bool transport_on) {
    RunOutcome best = run_once(transport_on, {});
    for (int i = 0; i < 2; ++i) {
      RunOutcome next = run_once(transport_on, {});
      if (next.seconds < best.seconds) best = std::move(next);
    }
    return best;
  };

  TablePrinter table({"Section", "Wall(s)", "Uplink", "Downlink", "Retries",
                      "Timeouts", "CrcDrops", "Dedup", "Lost", "Goodput"});
  std::vector<std::string> json_rows;
  bool failed = false;

  // ---- Clean-channel gate: transport on vs legacy handoff.
  const RunOutcome legacy = min_of_3(/*transport_on=*/false);
  const RunOutcome clean = min_of_3(/*transport_on=*/true);
  std::printf("clean gate: transport %.3fs vs legacy %.3fs (%.1f%%)\n",
              clean.seconds, legacy.seconds,
              legacy.seconds > 0.0
                  ? (clean.seconds / legacy.seconds - 1.0) * 100.0
                  : 0.0);
  if (clean.params_blob != legacy.params_blob) {
    std::printf("ERROR: clean-channel transport changed the trained model\n");
    failed = true;
  }
  // 5% relative plus a small absolute slack so sub-second runs don't
  // flake on scheduler noise.
  if (clean.seconds > legacy.seconds * 1.05 + 0.05) {
    std::printf("ERROR: clean-channel transport overhead exceeds 5%%\n");
    failed = true;
  }
  json_rows.push_back(JsonRow("legacy", legacy, 1.0));

  // ---- Fault grid.
  const int64_t clean_wire = clean.run.comm.bytes_uplink +
                             clean.run.comm.bytes_downlink;
  for (const FaultCase& fault_case : FaultGrid()) {
    const RunOutcome outcome =
        fault_case.name == "clean" ? clean
                                   : run_once(true, fault_case.channel);
    const int64_t wire =
        outcome.run.comm.bytes_uplink + outcome.run.comm.bytes_downlink;
    const double goodput =
        wire > 0 ? static_cast<double>(clean_wire) / static_cast<double>(wire)
                 : 0.0;
    const fl::FaultStats& f = outcome.run.faults;
    table.AddRow({fault_case.name, TablePrinter::Fmt(outcome.seconds, 2),
                  std::to_string(outcome.run.comm.bytes_uplink),
                  std::to_string(outcome.run.comm.bytes_downlink),
                  std::to_string(f.net_retries),
                  std::to_string(f.net_timeouts),
                  std::to_string(f.net_crc_drops),
                  std::to_string(f.net_dedup_drops),
                  std::to_string(f.net_lost),
                  TablePrinter::Fmt(goodput)});
    json_rows.push_back(JsonRow(fault_case.name, outcome, goodput));
    std::printf("%s: %.2fs wire=%lld retries=%lld timeouts=%lld "
                "crc_drops=%lld lost=%lld goodput=%.3f\n",
                fault_case.name.c_str(), outcome.seconds,
                static_cast<long long>(wire),
                static_cast<long long>(f.net_retries),
                static_cast<long long>(f.net_timeouts),
                static_cast<long long>(f.net_crc_drops),
                static_cast<long long>(f.net_lost), goodput);
    std::fflush(stdout);
    if (!outcome.finite) {
      std::printf("ERROR: %s produced a non-finite model\n",
                  fault_case.name.c_str());
      failed = true;
    }
    if (outcome.run.comm.rounds != clean.run.comm.rounds) {
      std::printf("ERROR: %s did not complete all rounds\n",
                  fault_case.name.c_str());
      failed = true;
    }
  }

  std::printf("%s", table.ToString().c_str());
  std::string json = "[\n";
  for (size_t i = 0; i < json_rows.size(); ++i) {
    json += json_rows[i];
    json += (i + 1 < json_rows.size()) ? ",\n" : "\n";
  }
  json += "]\n";
  if (!bench::WriteArtifact(args, "BENCH_transport.json", json) ||
      !bench::WriteArtifact(args, "bench_transport.csv", table.ToCsv())) {
    return 1;
  }

  return failed ? 1 : 0;
}
