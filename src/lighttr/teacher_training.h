// Teacher (meta-learner) training — paper Algorithm 1.
//
// One common teacher model is trained by visiting clients cyclically on
// a subset of each client's local data. At each client the incoming
// model is evaluated on local validation data: when it carries useful
// knowledge (accuracy >= l_t) local training preserves it through a
// distillation term toward a frozen snapshot (Eq. 17 with lambda =
// lambda_0); otherwise plain local training overwrites it. This
// alleviates data heterogeneity across clients.
#ifndef LIGHTTR_LIGHTTR_TEACHER_TRAINING_H_
#define LIGHTTR_LIGHTTR_TEACHER_TRAINING_H_

#include <memory>
#include <vector>

#include "fl/recovery_model.h"
#include "traj/workload.h"

namespace lighttr::core {

/// Options for TrainTeacher.
struct TeacherTrainingOptions {
  double lambda0 = 5.0;        // fixed distillation weight (Alg. 1 line 1)
  double l_t = 0.4;            // knowledge-preservation threshold
  int cycles = 1;              // cyclic passes over all clients
  int epochs_per_client = 1;   // local epochs per visit
  double data_fraction = 0.5;  // "a part of its local data"
  double learning_rate = 1e-3;
  uint64_t seed = 17;
};

/// Trains a common teacher per Algorithm 1. `factory` must produce the
/// same architecture used for the students (the paper uses the LTE model
/// for both). Returns the trained teacher f_tea.
std::unique_ptr<fl::RecoveryModel> TrainTeacher(
    const fl::ModelFactory& factory,
    const std::vector<traj::ClientDataset>& clients,
    const TeacherTrainingOptions& options);

}  // namespace lighttr::core

#endif  // LIGHTTR_LIGHTTR_TEACHER_TRAINING_H_
