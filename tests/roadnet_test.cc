// Unit and property tests for src/roadnet: graph construction, point
// projection, shortest paths (vs brute force), generators, and the
// segment spatial index.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "roadnet/generators.h"
#include "roadnet/road_network.h"
#include "roadnet/segment_index.h"
#include "roadnet/shortest_path.h"

namespace lighttr::roadnet {
namespace {

RoadNetwork TriangleNetwork() {
  // v0 -> v1 -> v2 -> v0 one-way ring with known lengths.
  RoadNetwork net;
  const geo::LocalProjection plane({39.9, 116.4});
  const VertexId v0 = net.AddVertex(plane.FromXy({0.0, 0.0}));
  const VertexId v1 = net.AddVertex(plane.FromXy({300.0, 0.0}));
  const VertexId v2 = net.AddVertex(plane.FromXy({300.0, 400.0}));
  net.AddSegment(v0, v1);
  net.AddSegment(v1, v2);
  net.AddSegment(v2, v0);
  net.Finalize();
  return net;
}

TEST(RoadNetwork, SegmentLengthDefaultsToHaversine) {
  const RoadNetwork net = TriangleNetwork();
  EXPECT_NEAR(net.segment(0).length_m, 300.0, 1.0);
  EXPECT_NEAR(net.segment(1).length_m, 400.0, 1.0);
  EXPECT_NEAR(net.segment(2).length_m, 500.0, 1.0);  // 3-4-5 triangle
}

TEST(RoadNetwork, AdjacencyIndexes) {
  const RoadNetwork net = TriangleNetwork();
  ASSERT_EQ(net.OutSegments(0).size(), 1u);
  EXPECT_EQ(net.segment(net.OutSegments(0)[0]).to, 1);
  ASSERT_EQ(net.InSegments(0).size(), 1u);
  EXPECT_EQ(net.segment(net.InSegments(0)[0]).from, 2);
}

TEST(RoadNetwork, FindSegment) {
  const RoadNetwork net = TriangleNetwork();
  EXPECT_EQ(net.FindSegment(0, 1), 0);
  EXPECT_EQ(net.FindSegment(1, 0), kInvalidSegment);  // one-way
}

TEST(RoadNetwork, AddTwoWayCreatesBothDirections) {
  RoadNetwork net;
  const VertexId a = net.AddVertex({39.9, 116.4});
  const VertexId b = net.AddVertex({39.91, 116.4});
  net.AddTwoWay(a, b);
  net.Finalize();
  EXPECT_NE(net.FindSegment(a, b), kInvalidSegment);
  EXPECT_NE(net.FindSegment(b, a), kInvalidSegment);
  EXPECT_DOUBLE_EQ(net.segment(0).length_m, net.segment(1).length_m);
}

TEST(RoadNetwork, PositionToPointEndpoints) {
  const RoadNetwork net = TriangleNetwork();
  const geo::GeoPoint at_start = net.PositionToPoint({0, 0.0});
  const geo::GeoPoint at_end = net.PositionToPoint({0, 1.0});
  EXPECT_NEAR(geo::HaversineMeters(at_start, net.vertex(0).position), 0.0,
              0.01);
  EXPECT_NEAR(geo::HaversineMeters(at_end, net.vertex(1).position), 0.0,
              0.01);
}

TEST(RoadNetwork, ProjectOntoSegmentPerpendicular) {
  const RoadNetwork net = TriangleNetwork();
  // A point 50 m "north" of the midpoint of segment 0 (which runs east).
  const geo::LocalProjection plane(net.vertex(0).position);
  const geo::GeoPoint probe = plane.FromXy({150.0, 50.0});
  const Projection proj = net.ProjectOntoSegment(0, probe);
  EXPECT_NEAR(proj.position.ratio, 0.5, 0.01);
  EXPECT_NEAR(proj.distance_m, 50.0, 1.0);
}

TEST(RoadNetwork, ProjectOntoSegmentClampsToEndpoints) {
  const RoadNetwork net = TriangleNetwork();
  const geo::LocalProjection plane(net.vertex(0).position);
  const Projection before = net.ProjectOntoSegment(0, plane.FromXy({-100.0, 10.0}));
  EXPECT_DOUBLE_EQ(before.position.ratio, 0.0);
  const Projection after = net.ProjectOntoSegment(0, plane.FromXy({500.0, 10.0}));
  EXPECT_DOUBLE_EQ(after.position.ratio, 1.0);
}

TEST(ShortestPath, TriangleDistances) {
  const RoadNetwork net = TriangleNetwork();
  EXPECT_NEAR(VertexDistance(net, 0, 1), 300.0, 1.0);
  EXPECT_NEAR(VertexDistance(net, 1, 0), 900.0, 2.0);  // must loop around
  const auto dist = SingleSourceDistances(net, 0);
  EXPECT_NEAR(dist[2], 700.0, 2.0);
}

TEST(ShortestPath, UnreachableIsInfinite) {
  RoadNetwork net;
  const VertexId a = net.AddVertex({39.9, 116.4});
  const VertexId b = net.AddVertex({39.91, 116.4});
  net.AddSegment(a, b);
  net.Finalize();
  EXPECT_EQ(VertexDistance(net, b, a), kUnreachable);
  EXPECT_FALSE(VertexRoute(net, b, a).ok());
}

TEST(ShortestPath, RouteIsConnectedAndMatchesDistance) {
  Rng rng(11);
  CityGridOptions options;
  options.rows = 6;
  options.cols = 6;
  const RoadNetwork net = GenerateCityGrid(options, &rng);
  Rng pick(12);
  for (int trial = 0; trial < 40; ++trial) {
    const auto u =
        static_cast<VertexId>(pick.UniformInt(0, net.num_vertices() - 1));
    const auto v =
        static_cast<VertexId>(pick.UniformInt(0, net.num_vertices() - 1));
    if (u == v) continue;
    auto route = VertexRoute(net, u, v);
    ASSERT_TRUE(route.ok());
    double total = 0.0;
    VertexId cursor = u;
    for (SegmentId e : route.value()) {
      EXPECT_EQ(net.segment(e).from, cursor);
      cursor = net.segment(e).to;
      total += net.segment(e).length_m;
    }
    EXPECT_EQ(cursor, v);
    EXPECT_NEAR(total, VertexDistance(net, u, v), 1e-6);
  }
}

// Property: Dijkstra agrees with Floyd-Warshall on random small graphs.
class DijkstraVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraVsBruteForce, AllPairsAgree) {
  Rng rng(GetParam());
  RoadNetwork net;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    net.AddVertex({39.9 + 0.001 * i, 116.4 + 0.0013 * (i % 3)});
  }
  // Random directed edges with random (positive) lengths.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.Bernoulli(0.35)) {
        net.AddSegment(i, j, rng.Uniform(10.0, 500.0));
      }
    }
  }
  if (net.num_segments() == 0) {
    net.AddSegment(0, 1, 50.0);
  }
  net.Finalize();

  // Floyd-Warshall reference.
  std::vector<std::vector<double>> dist(
      n, std::vector<double>(n, kUnreachable));
  for (int i = 0; i < n; ++i) dist[i][i] = 0.0;
  for (SegmentId e = 0; e < net.num_segments(); ++e) {
    const Segment& seg = net.segment(e);
    dist[seg.from][seg.to] =
        std::min(dist[seg.from][seg.to], seg.length_m);
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (dist[i][k] != kUnreachable && dist[k][j] != kUnreachable) {
          dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
        }
      }
    }
  }

  DijkstraEngine engine(net);
  for (int i = 0; i < n; ++i) {
    const auto single = SingleSourceDistances(net, i);
    for (int j = 0; j < n; ++j) {
      if (dist[i][j] == kUnreachable) {
        EXPECT_EQ(single[j], kUnreachable);
        EXPECT_EQ(engine.Distance(i, j), kUnreachable);
      } else {
        EXPECT_NEAR(single[j], dist[i][j], 1e-6);
        EXPECT_NEAR(engine.Distance(i, j), dist[i][j], 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TravelDistance, SameSegmentForward) {
  const RoadNetwork net = TriangleNetwork();
  EXPECT_NEAR(DirectedTravelDistance(net, {0, 0.2}, {0, 0.7}),
              0.5 * net.segment(0).length_m, 1e-6);
}

TEST(TravelDistance, SameSegmentBackwardLoops) {
  const RoadNetwork net = TriangleNetwork();
  // Going "backwards" on a one-way segment requires the full loop.
  const double d = DirectedTravelDistance(net, {0, 0.7}, {0, 0.2});
  const double loop = net.segment(0).length_m + net.segment(1).length_m +
                      net.segment(2).length_m;
  EXPECT_NEAR(d, loop - 0.5 * net.segment(0).length_m, 1.0);
}

TEST(TravelDistance, ConstrainedDistanceIsMinOfDirections) {
  const RoadNetwork net = TriangleNetwork();
  const PointPosition a{0, 0.2};
  const PointPosition b{0, 0.7};
  EXPECT_NEAR(ConstrainedDistance(net, a, b),
              std::min(DirectedTravelDistance(net, a, b),
                       DirectedTravelDistance(net, b, a)),
              1e-9);
}

TEST(TravelDistance, ZeroForIdenticalPositions) {
  const RoadNetwork net = TriangleNetwork();
  EXPECT_DOUBLE_EQ(ConstrainedDistance(net, {1, 0.4}, {1, 0.4}), 0.0);
}

TEST(Generators, CityGridStronglyConnected) {
  Rng rng(13);
  CityGridOptions options;
  options.rows = 7;
  options.cols = 7;
  options.missing_prob = 0.15;
  options.one_way_prob = 0.3;
  const RoadNetwork net = GenerateCityGrid(options, &rng);
  // The border ring guarantees reachability between all vertices.
  const auto dist = SingleSourceDistances(net, 0);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    EXPECT_NE(dist[v], kUnreachable) << "vertex " << v;
  }
}

TEST(Generators, CityGridSizes) {
  Rng rng(14);
  CityGridOptions options;
  options.rows = 5;
  options.cols = 6;
  const RoadNetwork net = GenerateCityGrid(options, &rng);
  EXPECT_EQ(net.num_vertices(), 30);
  EXPECT_GT(net.num_segments(), 60);
}

TEST(Generators, ChainAndRing) {
  const RoadNetwork chain = GenerateChain(5, 100.0);
  EXPECT_EQ(chain.num_vertices(), 5);
  EXPECT_EQ(chain.num_segments(), 8);
  EXPECT_NEAR(VertexDistance(chain, 0, 4), 400.0, 2.0);

  const RoadNetwork ring = GenerateRing(8, 500.0);
  EXPECT_EQ(ring.num_vertices(), 8);
  EXPECT_EQ(ring.num_segments(), 16);
  const auto dist = SingleSourceDistances(ring, 0);
  EXPECT_NE(dist[4], kUnreachable);
}

// Property: the spatial index returns exactly the segments a brute-force
// scan finds within the radius.
class SegmentIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegmentIndexProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  CityGridOptions options;
  options.rows = 5;
  options.cols = 5;
  const RoadNetwork net = GenerateCityGrid(options, &rng);
  const SegmentIndex index(net, /*cell_meters=*/150.0);

  const geo::GeoPoint lo = net.min_corner();
  const geo::GeoPoint hi = net.max_corner();
  Rng pick(GetParam() + 100);
  for (int trial = 0; trial < 20; ++trial) {
    const geo::GeoPoint p{pick.Uniform(lo.lat, hi.lat),
                          pick.Uniform(lo.lng, hi.lng)};
    const double radius = pick.Uniform(50.0, 400.0);
    const auto candidates = index.Nearby(p, radius);

    std::set<SegmentId> from_index;
    for (const auto& c : candidates) from_index.insert(c.segment);
    std::set<SegmentId> brute;
    for (SegmentId e = 0; e < net.num_segments(); ++e) {
      if (net.ProjectOntoSegment(e, p).distance_m <= radius) brute.insert(e);
    }
    EXPECT_EQ(from_index, brute);
    // Sorted nearest-first.
    for (size_t i = 1; i < candidates.size(); ++i) {
      EXPECT_LE(candidates[i - 1].projection.distance_m,
                candidates[i].projection.distance_m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentIndexProperty,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace lighttr::roadnet
