#include "nn/matrix.h"

#include <cmath>

#include "nn/flops.h"

namespace lighttr::nn {

Matrix Matrix::RandomUniform(size_t rows, size_t cols, Scalar range,
                             Rng* rng) {
  LIGHTTR_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.data_.size(); ++i) {
    m.data_[i] = static_cast<Scalar>(rng->Uniform(-range, range));
  }
  return m;
}

Matrix Matrix::Xavier(size_t fan_in, size_t fan_out, Rng* rng) {
  const Scalar range = std::sqrt(Scalar{6} / static_cast<Scalar>(fan_in + fan_out));
  return RandomUniform(fan_in, fan_out, range, rng);
}

Matrix Matrix::RowVector(const std::vector<Scalar>& values) {
  Matrix m(1, values.size());
  for (size_t i = 0; i < values.size(); ++i) m.data_[i] = values[i];
  return m;
}

void Matrix::AddInPlace(const Matrix& other) {
  LIGHTTR_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, Scalar scale) {
  LIGHTTR_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

Scalar Matrix::SquaredNorm() const {
  Scalar total{0};
  for (Scalar x : data_) total += x * x;
  return total;
}

Matrix MatMulValues(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  MatMulAccumulate(a, b, &c);
  return c;
}

void MatMulAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  LIGHTTR_DCHECK_EQ(a.cols(), b.rows());
  LIGHTTR_DCHECK_EQ(c->rows(), a.rows());
  LIGHTTR_DCHECK_EQ(c->cols(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  AddFlops(static_cast<int64_t>(2 * m * k * n));
  // i-k-j loop order: streams through b and c rows contiguously.
  for (size_t i = 0; i < m; ++i) {
    Scalar* crow = c->data() + i * n;
    const Scalar* arow = a.data() + i * k;
    for (size_t p = 0; p < k; ++p) {
      const Scalar av = arow[p];
      if (av == Scalar{0}) continue;
      const Scalar* brow = b.data() + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransAAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  LIGHTTR_DCHECK_EQ(a.rows(), b.rows());
  LIGHTTR_DCHECK_EQ(c->rows(), a.cols());
  LIGHTTR_DCHECK_EQ(c->cols(), b.cols());
  const size_t m = a.cols();
  const size_t k = a.rows();
  const size_t n = b.cols();
  AddFlops(static_cast<int64_t>(2 * m * k * n));
  for (size_t p = 0; p < k; ++p) {
    const Scalar* arow = a.data() + p * m;
    const Scalar* brow = b.data() + p * n;
    for (size_t i = 0; i < m; ++i) {
      const Scalar av = arow[i];
      if (av == Scalar{0}) continue;
      Scalar* crow = c->data() + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransBAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  LIGHTTR_DCHECK_EQ(a.cols(), b.cols());
  LIGHTTR_DCHECK_EQ(c->rows(), a.rows());
  LIGHTTR_DCHECK_EQ(c->cols(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  AddFlops(static_cast<int64_t>(2 * m * k * n));
  for (size_t i = 0; i < m; ++i) {
    const Scalar* arow = a.data() + i * k;
    Scalar* crow = c->data() + i * n;
    for (size_t j = 0; j < n; ++j) {
      const Scalar* brow = b.data() + j * k;
      Scalar acc{0};
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

}  // namespace lighttr::nn
