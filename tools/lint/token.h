// C++ token scanner for lighttr-lint.
//
// Turns a source file into a flat token stream — identifiers, numbers,
// string/char literals, punctuation — with comments routed to a
// separate per-line channel (for suppression and justification
// annotations). String and character literal *contents* become single
// tokens, so no identifier-matching rule can ever fire on quoted text;
// this is what retired the regex engine's false-positive class
// (`#define kMsg "call rand()"` used to fire no-raw-rand).
//
// Design points:
//   - `::` and `->` are munched as single punctuation tokens; every
//     other operator is emitted one character at a time. `>>` therefore
//     arrives as two `>` tokens, which makes template-angle matching a
//     simple depth count with no shift-operator special case.
//   - Each token records its 1-based line, the brace depth in force
//     before it, and whether it sits on a preprocessor directive line
//     (continuation lines included). Include targets survive as string
//     tokens on preproc lines, feeding the cross-file include graph.
//   - Raw strings (R"delim(...)delim", any prefix), encoding prefixes
//     (L/u/U/u8), digit separators, and line-spanning block comments
//     are all handled.
#ifndef LIGHTTR_TOOLS_LINT_TOKEN_H_
#define LIGHTTR_TOOLS_LINT_TOKEN_H_

#include <string>
#include <vector>

#include "lint/linter.h"

namespace lighttr::lint {

enum class TokenKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. hex/float/digit-separated)
  kString,  // string literal; text = contents without quotes/prefix
  kChar,    // character literal; text = contents without quotes
  kPunct,   // single-char punctuation, plus the munched `::` and `->`
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;         // 1-based source line of the token's first char
  int brace_depth = 0;  // `{`-depth in force *before* this token
  bool preproc = false; // on a preprocessor directive (or continuation)
};

/// A tokenized source file: the token stream plus the comment channel.
struct TokenizedFile {
  const SourceFile* source = nullptr;
  std::string norm_path;               // lexically normal generic path
  std::vector<Token> tokens;
  std::vector<std::string> comments;   // index = line-1; "" when none
};

/// Scans `file` into tokens. Never fails: unterminated literals or
/// comments simply end at EOF.
TokenizedFile Tokenize(const SourceFile& file);

}  // namespace lighttr::lint

#endif  // LIGHTTR_TOOLS_LINT_TOKEN_H_
