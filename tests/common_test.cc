// Unit tests for src/common: Status/Result, Rng, TablePrinter, file IO,
// CRC-32, bounds-checked binary IO, atomic writes, backoff schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/backoff.h"
#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace lighttr {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad keep ratio");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad keep ratio");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad keep ratio");
}

TEST(Status, EveryCodeHasName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    LIGHTTR_RETURN_NOT_OK(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> result = Status::Internal("boom");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.UniformInt(0, 4);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 4);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(1.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 9000; ++i) {
    ++counts[rng.WeightedIndex({1.0, 2.0, 6.0})];
  }
  EXPECT_NEAR(counts[0] / 9000.0, 1.0 / 9.0, 0.02);
  EXPECT_NEAR(counts[2] / 9000.0, 6.0 / 9.0, 0.02);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (size_t idx : sample) EXPECT_LT(idx, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(8);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(9);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff = any_diff || (parent.Uniform() != child.Uniform());
  }
  EXPECT_TRUE(any_diff);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"xx", "1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| A  | LongHeader |"), std::string::npos);
  EXPECT_NE(out.find("| xx | 1          |"), std::string::npos);
}

TEST(TablePrinter, CsvEscaping) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a,b", "say \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(0.12349, 3), "0.123");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

TEST(FileUtil, WriteReadRoundtrip) {
  const std::string path = "/tmp/lighttr_file_util_test.bin";
  const std::string payload("bin\0ary\n", 8);
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);
  std::remove(path.c_str());
}

TEST(FileUtil, ReadMissingFileFails) {
  auto read = ReadFile("/tmp/definitely_missing_lighttr_file");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(Crc32, MatchesKnownVectors) {
  // The standard IEEE 802.3 check value.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string()), 0u);
  EXPECT_EQ(Crc32(std::string("a")), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalUpdateEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = 0;
  for (char c : data) crc = Crc32Update(crc, &c, 1);
  EXPECT_EQ(crc, Crc32(data));
}

TEST(Crc32, SensitiveToEveryBit) {
  const std::string data("\x00\x01\x02\x03", 4);
  const uint32_t clean = Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = data;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      EXPECT_NE(Crc32(damaged), clean);
    }
  }
}

TEST(BinaryIo, RoundTripsEveryType) {
  BinaryWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEFu);
  writer.WriteU64(0x1122334455667788ull);
  writer.WriteI64(-42);
  writer.WriteF32(1.5f);
  writer.WriteF64(-2.25);
  writer.WriteString(std::string("s\0tr", 4));

  BinaryReader reader(writer.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string str;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadF32(&f32).ok());
  ASSERT_TRUE(reader.ReadF64(&f64).ok());
  ASSERT_TRUE(reader.ReadString(&str).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x1122334455667788ull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(str, std::string("s\0tr", 4));
}

TEST(BinaryIo, ReadsPastEndReturnStatusNotUb) {
  const std::string bytes = "ab";
  BinaryReader reader(bytes);
  uint32_t u32 = 0;
  EXPECT_FALSE(reader.ReadU32(&u32).ok());
  // A failed read must not advance the cursor.
  uint8_t u8 = 0;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  EXPECT_EQ(u8, 'a');
}

TEST(BinaryIo, HostileStringLengthIsRejected) {
  // A declared length far past the real buffer must fail cleanly
  // instead of allocating or reading out of bounds.
  BinaryWriter writer;
  writer.WriteU64(0xFFFFFFFFFFFFull);
  writer.WriteU8('x');
  BinaryReader reader(writer.bytes());
  std::string out;
  EXPECT_FALSE(reader.ReadString(&out).ok());
  // Cursor restored: the u64 can still be read as itself.
  uint64_t len = 0;
  ASSERT_TRUE(reader.ReadU64(&len).ok());
  EXPECT_EQ(len, 0xFFFFFFFFFFFFull);
}

TEST(FileUtil, WriteFileAtomicLeavesNoTempBehind) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "atomic_write").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (std::filesystem::path(dir) / "out.bin").string();
  ASSERT_TRUE(WriteFileAtomic(path, "v1").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "v2-longer").ok());  // overwrite works
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "v2-longer");
}

TEST(FileUtil, WriteFileAtomicFailsCleanlyOnBadPath) {
  const Status status =
      WriteFileAtomic("/nonexistent_dir_lighttr/x/y/out.bin", "data");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(FileUtil, AppendToFileAccumulates) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "append_file").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (std::filesystem::path(dir) / "log.txt").string();
  ASSERT_TRUE(AppendToFile(path, "one\n").ok());
  ASSERT_TRUE(AppendToFile(path, "two\n").ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "one\ntwo\n");
}

TEST(Rng, StateSerializationResumesExactStream) {
  Rng rng(123);
  for (int i = 0; i < 57; ++i) rng.Uniform();  // advance mid-stream
  const std::string state = rng.SerializeState();

  // Continue the original; restore a fresh engine from the state; both
  // must produce the identical suffix of the stream.
  Rng restored(0);
  ASSERT_TRUE(restored.DeserializeState(state).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.engine()(), restored.engine()());
  }
}

TEST(Rng, DeserializeRejectsGarbageWithoutClobberingState) {
  Rng rng(7);
  const uint64_t before = rng.engine()();
  Rng reference(7);
  reference.engine()();

  Rng victim(7);
  victim.engine()();
  EXPECT_FALSE(victim.DeserializeState("not an engine state").ok());
  EXPECT_FALSE(victim.DeserializeState("").ok());
  // The failed restore must leave the current stream untouched.
  EXPECT_EQ(victim.engine()(), reference.engine()());
  (void)before;
}

TEST(Backoff, SeededDeterminism) {
  const BackoffConfig config;  // jitter 0.1 by default
  Rng a(11);
  Rng b(11);
  for (int retry = 0; retry < 6; ++retry) {
    EXPECT_EQ(BackoffDelaySeconds(config, retry, &a),
              BackoffDelaySeconds(config, retry, &b));
  }
}

TEST(Backoff, NoJitterIsExactGeometricWithCap) {
  BackoffConfig config;
  config.base_delay_s = 0.5;
  config.multiplier = 2.0;
  config.max_delay_s = 3.0;
  config.jitter = 0.0;
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 0, nullptr), 0.5);
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 1, nullptr), 1.0);
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 2, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 3, nullptr), 3.0);  // capped
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 30, nullptr), 3.0);
}

TEST(Backoff, JitterStaysInsideConfiguredBand) {
  BackoffConfig config;
  config.base_delay_s = 1.0;
  config.multiplier = 1.0;
  config.max_delay_s = 1.0;
  config.jitter = 0.25;
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const double delay = BackoffDelaySeconds(config, 0, &rng);
    EXPECT_GE(delay, 0.75);
    EXPECT_LE(delay, 1.25);
  }
}

TEST(Stopwatch, Monotonic) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace lighttr
