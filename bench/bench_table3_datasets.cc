// Reproduces paper Table III: statistics of the two datasets. The paper
// reports real Tdrive/Geolife figures (city, time span, drivers, total
// length); this binary reports the same attributes for the synthetic
// substitutes at the current scale, making the workload regimes
// (sparse vs data-sufficient) inspectable.
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "traj/stats.h"

int main() {
  using namespace lighttr;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Table III reproduction (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  TablePrinter table({"Attribute", "Geolife-like", "Tdrive-like"});

  std::vector<traj::DatasetStats> stats;
  std::vector<traj::WorkloadProfile> profiles = {
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale),
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale)};
  for (const auto& profile : profiles) {
    const auto clients = env->MakeWorkload(
        profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 30);
    stats.push_back(traj::ComputeWorkloadStats(env->network(), clients));
  }

  auto row = [&](const std::string& name, auto getter, int precision) {
    table.AddRow({name, TablePrinter::Fmt(getter(stats[0]), precision),
                  TablePrinter::Fmt(getter(stats[1]), precision)});
  };
  table.AddRow({"City", "synthetic grid (Beijing-like)",
                "synthetic grid (Beijing-like)"});
  row("Trajectories", [](const auto& s) { return double(s.trajectories); }, 0);
  row("Drivers", [](const auto& s) { return double(s.drivers); }, 0);
  row("Points", [](const auto& s) { return double(s.points); }, 0);
  row("Total length (km)",
      [](const auto& s) { return s.total_length_km; }, 1);
  row("Mean points/trajectory",
      [](const auto& s) { return s.mean_points_per_trajectory; }, 1);
  row("Mean speed (m/s)", [](const auto& s) { return s.mean_speed_mps; }, 1);
  row("Sampling rate (s)", [](const auto& s) { return s.epsilon_s; }, 0);
  row("Observed fraction",
      [](const auto& s) { return s.observed_fraction; }, 3);

  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_table3_datasets.csv", table.ToCsv());
  return 0;
}
