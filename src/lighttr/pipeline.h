// End-to-end LightTR training pipeline: teacher pre-training
// (Algorithm 1) followed by meta-knowledge enhanced federated training
// (Algorithms 2 + 3). This is the main entry point of the library.
#ifndef LIGHTTR_LIGHTTR_PIPELINE_H_
#define LIGHTTR_LIGHTTR_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "fl/federated_trainer.h"
#include "lighttr/lte_model.h"
#include "lighttr/meta_local_update.h"
#include "lighttr/teacher_training.h"
#include "traj/encoding.h"
#include "traj/workload.h"

namespace lighttr::core {

/// All knobs of a LightTR run.
struct LightTrOptions {
  LteConfig lte;
  TeacherTrainingOptions teacher;
  MetaLocalOptions meta;
  fl::FederatedTrainerOptions federated;
  bool use_teacher = true;  // false -> w/o_Meta ablation (plain FedAvg)
};

/// Result of LightTrPipeline::Train.
struct LightTrResult {
  fl::FederatedRunResult federated;
  double teacher_seconds = 0.0;

  /// Fault-tolerance telemetry of the federated phase (drops, retries,
  /// rejected uploads, quorum misses, effective cohort sizes).
  const fl::FaultStats& faults() const { return federated.faults; }
};

/// One-line human-readable resilience summary of a federated run, e.g.
/// "cohort 87% | drops 12 (retries 9) | stragglers 3 | rejected 2 |
/// quorum misses 0". Benches and examples print this next to accuracy.
std::string SummarizeResilience(const fl::FederatedRunResult& run);

/// Orchestrates a full LightTR training run over decentralized client
/// datasets.
///
/// Example:
///   traj::TrajectoryEncoder encoder(network, index);
///   core::LightTrPipeline pipeline(&encoder, &clients, options);
///   core::LightTrResult result = pipeline.Train();
///   auto recovered = pipeline.global_model()->Recover(trajectory);
class LightTrPipeline {
 public:
  /// `encoder` and `clients` must outlive the pipeline.
  LightTrPipeline(const traj::TrajectoryEncoder* encoder,
                  const std::vector<traj::ClientDataset>* clients,
                  LightTrOptions options);

  /// Runs Algorithm 1 then Algorithms 2+3.
  LightTrResult Train();

  /// The aggregated global model (valid after Train()).
  fl::RecoveryModel* global_model() { return trainer_->global_model(); }

  /// The common teacher (null when use_teacher is false or before
  /// Train()).
  fl::RecoveryModel* teacher() { return teacher_.get(); }

  /// The model factory used for all replicas (exposed for benches).
  const fl::ModelFactory& factory() const { return factory_; }

 private:
  const traj::TrajectoryEncoder* encoder_;
  const std::vector<traj::ClientDataset>* clients_;
  LightTrOptions options_;
  fl::ModelFactory factory_;
  std::unique_ptr<fl::RecoveryModel> teacher_;
  std::unique_ptr<fl::FederatedTrainer> trainer_;
};

}  // namespace lighttr::core

#endif  // LIGHTTR_LIGHTTR_PIPELINE_H_
