file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_clients.dir/bench_table5_clients.cc.o"
  "CMakeFiles/bench_table5_clients.dir/bench_table5_clients.cc.o.d"
  "bench_table5_clients"
  "bench_table5_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
