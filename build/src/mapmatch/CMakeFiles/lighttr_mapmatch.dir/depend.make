# Empty dependencies file for lighttr_mapmatch.
# This may be replaced when dependencies are built.
