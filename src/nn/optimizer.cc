#include "nn/optimizer.h"

#include <cmath>

#include "common/binary_io.h"
#include "common/check.h"

namespace lighttr::nn {

namespace {

// Optimizer state blobs: u8 kind tag, then the concrete optimizer's
// counters and moment matrices at full Scalar precision. Embedded in
// run-state snapshots, which carry the integrity CRC; blobs here only
// need to be bounds-safe to parse.
constexpr uint8_t kStateKindSgd = 0;
constexpr uint8_t kStateKindAdam = 1;

void WriteMatrices(BinaryWriter* writer, const std::vector<Matrix>& matrices) {
  writer->WriteU32(static_cast<uint32_t>(matrices.size()));
  for (const Matrix& m : matrices) {
    writer->WriteU32(static_cast<uint32_t>(m.rows()));
    writer->WriteU32(static_cast<uint32_t>(m.cols()));
    for (size_t i = 0; i < m.size(); ++i) {
      writer->WriteF64(static_cast<double>(m.data()[i]));
    }
  }
}

Status ReadMatrices(BinaryReader* reader, std::vector<Matrix>* out) {
  uint32_t count = 0;
  LIGHTTR_RETURN_NOT_OK(reader->ReadU32(&count));
  out->clear();
  for (uint32_t k = 0; k < count; ++k) {
    uint32_t rows = 0;
    uint32_t cols = 0;
    LIGHTTR_RETURN_NOT_OK(reader->ReadU32(&rows));
    LIGHTTR_RETURN_NOT_OK(reader->ReadU32(&cols));
    const uint64_t elements = static_cast<uint64_t>(rows) * cols;
    if (elements * sizeof(double) > reader->remaining()) {
      return Status::InvalidArgument("truncated optimizer state matrix");
    }
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i) {
      double v = 0.0;
      LIGHTTR_RETURN_NOT_OK(reader->ReadF64(&v));
      m.data()[i] = static_cast<Scalar>(v);
    }
    out->push_back(std::move(m));
  }
  return Status::Ok();
}

}  // namespace

void ClipGradientsByGlobalNorm(ParameterSet* params, Scalar max_norm) {
  if (max_norm <= Scalar{0}) return;
  Scalar total{0};
  for (size_t i = 0; i < params->size(); ++i) {
    total += params->tensor(i).grad().SquaredNorm();
  }
  const Scalar norm = std::sqrt(total);
  if (norm <= max_norm) return;
  const Scalar scale = max_norm / norm;
  for (size_t i = 0; i < params->size(); ++i) {
    Matrix& g = params->tensor(i).grad();
    for (size_t j = 0; j < g.size(); ++j) g.data()[j] *= scale;
  }
}

SgdOptimizer::SgdOptimizer(Scalar learning_rate, Scalar momentum,
                           Scalar clip_norm)
    : learning_rate_(learning_rate),
      momentum_(momentum),
      clip_norm_(clip_norm) {
  LIGHTTR_CHECK_GT(learning_rate, Scalar{0});
  LIGHTTR_CHECK_GE(momentum, Scalar{0});
  LIGHTTR_CHECK_LT(momentum, Scalar{1});
}

void SgdOptimizer::Step(ParameterSet* params) {
  LIGHTTR_CHECK(params != nullptr);
  ClipGradientsByGlobalNorm(params, clip_norm_);
  if (velocity_.empty() && momentum_ > Scalar{0}) {
    for (size_t i = 0; i < params->size(); ++i) {
      const Matrix& value = params->tensor(i).value();
      velocity_.emplace_back(value.rows(), value.cols());
    }
  }
  for (size_t i = 0; i < params->size(); ++i) {
    Matrix& value = params->tensor(i).mutable_value();
    const Matrix& grad = params->tensor(i).grad();
    if (momentum_ > Scalar{0}) {
      Matrix& vel = velocity_[i];
      LIGHTTR_CHECK(vel.SameShape(value));
      for (size_t j = 0; j < value.size(); ++j) {
        vel.data()[j] = momentum_ * vel.data()[j] - learning_rate_ * grad.data()[j];
        value.data()[j] += vel.data()[j];
      }
    } else {
      value.AddScaled(grad, -learning_rate_);
    }
  }
  params->ZeroGrads();
}

std::string SgdOptimizer::SerializeState() const {
  BinaryWriter writer;
  writer.WriteU8(kStateKindSgd);
  WriteMatrices(&writer, velocity_);
  return writer.Take();
}

Status SgdOptimizer::DeserializeState(const std::string& bytes) {
  BinaryReader reader(bytes);
  uint8_t kind = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU8(&kind));
  if (kind != kStateKindSgd) {
    return Status::InvalidArgument("state blob is not SGD state");
  }
  LIGHTTR_RETURN_NOT_OK(ReadMatrices(&reader, &velocity_));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in SGD state blob");
  }
  return Status::Ok();
}

AdamOptimizer::AdamOptimizer(Scalar learning_rate, Scalar beta1, Scalar beta2,
                             Scalar epsilon, Scalar clip_norm,
                             Scalar weight_decay)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      clip_norm_(clip_norm),
      weight_decay_(weight_decay) {
  LIGHTTR_CHECK_GT(learning_rate, Scalar{0});
  LIGHTTR_CHECK_GT(epsilon, Scalar{0});
}

void AdamOptimizer::Step(ParameterSet* params) {
  LIGHTTR_CHECK(params != nullptr);
  ClipGradientsByGlobalNorm(params, clip_norm_);
  if (m_.empty()) {
    for (size_t i = 0; i < params->size(); ++i) {
      const Matrix& value = params->tensor(i).value();
      m_.emplace_back(value.rows(), value.cols());
      v_.emplace_back(value.rows(), value.cols());
    }
  }
  LIGHTTR_CHECK_EQ(m_.size(), params->size());
  for (size_t i = 0; i < params->size(); ++i) {
    // A restored state whose shapes do not match the model is a
    // programming error (wrong architecture for the snapshot).
    LIGHTTR_CHECK(m_[i].SameShape(params->tensor(i).value()));
  }
  ++step_count_;
  const Scalar bc1 =
      Scalar{1} - std::pow(beta1_, static_cast<Scalar>(step_count_));
  const Scalar bc2 =
      Scalar{1} - std::pow(beta2_, static_cast<Scalar>(step_count_));
  for (size_t i = 0; i < params->size(); ++i) {
    Matrix& value = params->tensor(i).mutable_value();
    const Matrix& grad = params->tensor(i).grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      const Scalar g = grad.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (Scalar{1} - beta1_) * g;
      v.data()[j] = beta2_ * v.data()[j] + (Scalar{1} - beta2_) * g * g;
      const Scalar m_hat = m.data()[j] / bc1;
      const Scalar v_hat = v.data()[j] / bc2;
      value.data()[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
      if (weight_decay_ > Scalar{0}) {
        value.data()[j] -= learning_rate_ * weight_decay_ * value.data()[j];
      }
    }
  }
  params->ZeroGrads();
}

std::string AdamOptimizer::SerializeState() const {
  BinaryWriter writer;
  writer.WriteU8(kStateKindAdam);
  writer.WriteI64(step_count_);
  WriteMatrices(&writer, m_);
  WriteMatrices(&writer, v_);
  return writer.Take();
}

Status AdamOptimizer::DeserializeState(const std::string& bytes) {
  BinaryReader reader(bytes);
  uint8_t kind = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU8(&kind));
  if (kind != kStateKindAdam) {
    return Status::InvalidArgument("state blob is not Adam state");
  }
  int64_t steps = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&steps));
  if (steps < 0) {
    return Status::InvalidArgument("negative Adam step count");
  }
  std::vector<Matrix> m;
  std::vector<Matrix> v;
  LIGHTTR_RETURN_NOT_OK(ReadMatrices(&reader, &m));
  LIGHTTR_RETURN_NOT_OK(ReadMatrices(&reader, &v));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in Adam state blob");
  }
  if (m.size() != v.size()) {
    return Status::InvalidArgument("Adam moment vectors differ in length");
  }
  step_count_ = steps;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::Ok();
}

}  // namespace lighttr::nn
