#include "roadnet/segment_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace lighttr::roadnet {

namespace {

// Expands the network bounding box slightly so border segments and noisy
// points near the edge stay in range.
geo::GeoPoint Pad(const geo::GeoPoint& p, double dlat, double dlng) {
  return {p.lat + dlat, p.lng + dlng};
}

}  // namespace

SegmentIndex::SegmentIndex(const RoadNetwork& network, double cell_meters)
    : network_(network),
      grid_(Pad(network.min_corner(), -0.01, -0.01),
            Pad(network.max_corner(), 0.01, 0.01), cell_meters) {
  LIGHTTR_CHECK(network.finalized());
  buckets_.assign(static_cast<size_t>(grid_.num_cells()), {});
  for (SegmentId e = 0; e < network.num_segments(); ++e) {
    const Segment& seg = network.segment(e);
    const geo::GeoPoint& a = network.vertex(seg.from).position;
    const geo::GeoPoint& b = network.vertex(seg.to).position;
    // Rasterize along the segment at half-cell pitch, inserting into each
    // visited cell (segments are straight lines, so this covers them).
    const int steps = std::max(
        1, static_cast<int>(std::ceil(seg.length_m / (cell_meters / 2.0))));
    int64_t last_cell = -1;
    for (int s = 0; s <= steps; ++s) {
      const geo::GeoPoint p = geo::Lerp(a, b, static_cast<double>(s) / steps);
      const int64_t cell = grid_.CellId(grid_.CellOf(p));
      if (cell != last_cell) {
        buckets_[static_cast<size_t>(cell)].push_back(e);
        last_cell = cell;
      }
    }
  }
}

std::vector<SegmentIndex::Candidate> SegmentIndex::Nearby(
    const geo::GeoPoint& p, double radius_m) const {
  LIGHTTR_CHECK_GT(radius_m, 0.0);
  const geo::GridCell center = grid_.CellOf(p);
  const int32_t ring =
      static_cast<int32_t>(std::ceil(radius_m / grid_.cell_meters())) + 1;

  std::unordered_set<SegmentId> seen;
  std::vector<Candidate> candidates;
  for (int32_t dy = -ring; dy <= ring; ++dy) {
    for (int32_t dx = -ring; dx <= ring; ++dx) {
      const int32_t x = center.x + dx;
      const int32_t y = center.y + dy;
      if (x < 0 || x >= grid_.cols() || y < 0 || y >= grid_.rows()) continue;
      for (SegmentId e : buckets_[static_cast<size_t>(
               grid_.CellId(geo::GridCell{x, y}))]) {
        if (!seen.insert(e).second) continue;
        Projection proj = network_.ProjectOntoSegment(e, p);
        if (proj.distance_m <= radius_m) {
          candidates.push_back(Candidate{e, proj});
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.projection.distance_m < b.projection.distance_m;
            });
  return candidates;
}

}  // namespace lighttr::roadnet
