# Empty compiler generated dependencies file for map_matching_pipeline.
# This may be replaced when dependencies are built.
