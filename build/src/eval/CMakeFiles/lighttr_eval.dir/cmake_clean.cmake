file(REMOVE_RECURSE
  "CMakeFiles/lighttr_eval.dir/harness.cc.o"
  "CMakeFiles/lighttr_eval.dir/harness.cc.o.d"
  "CMakeFiles/lighttr_eval.dir/metrics.cc.o"
  "CMakeFiles/lighttr_eval.dir/metrics.cc.o.d"
  "CMakeFiles/lighttr_eval.dir/scale.cc.o"
  "CMakeFiles/lighttr_eval.dir/scale.cc.o.d"
  "liblighttr_eval.a"
  "liblighttr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
