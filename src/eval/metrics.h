// Evaluation metrics of paper Sec. V-A2: Recall & Precision over
// recovered road segments (Eq. 19) and MAE & RMSE over the
// road-network-constrained distance (Eq. 20).
#ifndef LIGHTTR_EVAL_METRICS_H_
#define LIGHTTR_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "fl/recovery_model.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"
#include "traj/workload.h"

namespace lighttr::eval {

/// Aggregated recovery quality over a test set.
struct RecoveryMetrics {
  double recall = 0.0;
  double precision = 0.0;
  double mae_km = 0.0;
  double rmse_km = 0.0;
  int64_t recovered_points = 0;

  /// F1 convenience (not reported in the paper but useful in tests).
  double F1() const {
    const double denom = recall + precision;
    return denom > 0.0 ? 2.0 * recall * precision / denom : 0.0;
  }
};

/// Segment-set recall/precision of one trajectory's recovery (Eq. 19):
/// multiset intersection of recovered vs ground-truth segments over the
/// missing steps.
struct SetCounts {
  int64_t intersection = 0;
  int64_t recovered = 0;  // |P_R|
  int64_t truth = 0;      // |G|
};
SetCounts SegmentSetCounts(const traj::IncompleteTrajectory& trajectory,
                           const std::vector<roadnet::PointPosition>& recovered);

/// Per-client evaluation (personalization view): metrics of one shared
/// model on each client's own test split. Exposes the heterogeneity a
/// single aggregate number hides.
struct ClientMetrics {
  int client_index = 0;
  RecoveryMetrics metrics;
};
std::vector<ClientMetrics> EvaluatePerClient(
    fl::RecoveryModel* model, const roadnet::RoadNetwork& network,
    const std::vector<traj::ClientDataset>& clients);

/// Evaluates `model` over `test`: recall/precision micro-averaged across
/// trajectories, MAE/RMSE in kilometers of network-constrained distance
/// between each recovered point and its ground truth. Falls back to the
/// great-circle distance when no directed route connects a prediction
/// to the truth (possible on pathological graphs).
RecoveryMetrics EvaluateRecovery(
    fl::RecoveryModel* model, const roadnet::RoadNetwork& network,
    const std::vector<traj::IncompleteTrajectory>& test);

}  // namespace lighttr::eval

#endif  // LIGHTTR_EVAL_METRICS_H_
