// Client-side local training and evaluation primitives.
#ifndef LIGHTTR_FL_LOCAL_TRAINER_H_
#define LIGHTTR_FL_LOCAL_TRAINER_H_

#include <vector>

#include "common/rng.h"
#include "fl/recovery_model.h"
#include "nn/optimizer.h"
#include "traj/trajectory.h"

namespace lighttr::fl {

/// Options for one local-training call.
struct LocalTrainOptions {
  int epochs = 1;
  /// Distillation weight lambda of Eq. 17; 0 disables distillation.
  double lambda = 0.0;
  /// Teacher (meta-learner) for knowledge distillation; may be null.
  RecoveryModel* teacher = nullptr;
  /// Global-norm gradient clipping bound applied before each optimizer
  /// step (nn::ClipGradNorm); <= 0 disables clipping (the default, and
  /// the paper's setting). Bounds client update norms when inputs or
  /// labels are corrupted.
  double clip_norm = 0.0;
};

/// Trains `model` on `data` for options.epochs epochs, one optimizer step
/// per trajectory. When a teacher and lambda > 0 are supplied, the total
/// loss is Eq. 17: L_local + lambda * ||f_tea(T) - f_stu(T)||^2.
/// Returns the mean per-trajectory loss of the final epoch.
double TrainLocal(RecoveryModel* model, nn::Optimizer* optimizer,
                  const std::vector<traj::IncompleteTrajectory>& data,
                  const LocalTrainOptions& options, Rng* rng);

/// Fraction of missing points whose predicted road segment equals the
/// ground truth — the "acc" used by Algorithms 1 and 2. Grad-free.
double EvaluateSegmentAccuracy(
    RecoveryModel* model,
    const std::vector<traj::IncompleteTrajectory>& data);

/// Mean task loss over `data` without updating parameters. Grad-free.
double EvaluateMeanLoss(RecoveryModel* model,
                        const std::vector<traj::IncompleteTrajectory>& data);

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_LOCAL_TRAINER_H_
