// Directed road network graph (paper Definition 1) with segment geometry,
// moving-ratio positions (Definition 5, Fig. 1), and point projection.
#ifndef LIGHTTR_ROADNET_ROAD_NETWORK_H_
#define LIGHTTR_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "geo/geo_point.h"

namespace lighttr::roadnet {

using VertexId = int32_t;
using SegmentId = int32_t;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr SegmentId kInvalidSegment = -1;

/// A road vertex v_i: an intersection or road end.
struct Vertex {
  geo::GeoPoint position;
};

/// A directed road segment e_{i,j} from vertex `from` (e.N1) to vertex
/// `to` (e.N2), modeled as a straight line of `length_m` meters.
struct Segment {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  double length_m = 0.0;
};

/// A position on the network: segment e plus moving ratio r in [0, 1],
/// r = dis(e.N1, e.N_cur) / dis(e.N1, e.N2) (Definition 5).
struct PointPosition {
  SegmentId segment = kInvalidSegment;
  double ratio = 0.0;

  friend bool operator==(const PointPosition& a, const PointPosition& b) {
    return a.segment == b.segment && a.ratio == b.ratio;
  }
};

/// Result of projecting a GPS point onto a segment.
struct Projection {
  PointPosition position;
  geo::GeoPoint snapped;    // the closest point on the segment
  double distance_m = 0.0;  // perpendicular distance from the raw point
};

/// The road network G = (V, E): an immutable-after-build directed graph.
///
/// Build with AddVertex / AddSegment, then call Finalize() once; lookups
/// are valid afterwards. Thread-compatible: safe for concurrent reads.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  /// Adds a vertex and returns its id.
  VertexId AddVertex(const geo::GeoPoint& position);

  /// Adds a directed segment; length defaults to the haversine distance
  /// between its endpoints. Returns the new segment id.
  SegmentId AddSegment(VertexId from, VertexId to, double length_m = -1.0);

  /// Adds both directions between u and v; returns the u->v segment id.
  SegmentId AddTwoWay(VertexId u, VertexId v);

  /// Freezes the graph and builds adjacency indexes.
  void Finalize();

  bool finalized() const { return finalized_; }
  int32_t num_vertices() const { return static_cast<int32_t>(vertices_.size()); }
  int32_t num_segments() const { return static_cast<int32_t>(segments_.size()); }

  const Vertex& vertex(VertexId v) const {
    LIGHTTR_CHECK_GE(v, 0);
    LIGHTTR_CHECK_LT(v, num_vertices());
    return vertices_[v];
  }
  const Segment& segment(SegmentId e) const {
    LIGHTTR_CHECK_GE(e, 0);
    LIGHTTR_CHECK_LT(e, num_segments());
    return segments_[e];
  }

  /// Segments leaving / entering a vertex. Requires Finalize().
  const std::vector<SegmentId>& OutSegments(VertexId v) const;
  const std::vector<SegmentId>& InSegments(VertexId v) const;

  /// The directed segment from u to v, or kInvalidSegment if absent.
  SegmentId FindSegment(VertexId u, VertexId v) const;

  /// GPS coordinate of a network position (linear along the segment).
  geo::GeoPoint PositionToPoint(const PointPosition& pos) const;

  /// Projects a raw GPS point onto segment `e` (clamped to the segment).
  Projection ProjectOntoSegment(SegmentId e, const geo::GeoPoint& p) const;

  /// Bounding box of all vertices (undefined before the first vertex).
  geo::GeoPoint min_corner() const { return min_corner_; }
  geo::GeoPoint max_corner() const { return max_corner_; }

 private:
  std::vector<Vertex> vertices_;
  std::vector<Segment> segments_;
  std::vector<std::vector<SegmentId>> out_segments_;
  std::vector<std::vector<SegmentId>> in_segments_;
  geo::GeoPoint min_corner_{90.0, 180.0};
  geo::GeoPoint max_corner_{-90.0, -180.0};
  bool finalized_ = false;
};

}  // namespace lighttr::roadnet

#endif  // LIGHTTR_ROADNET_ROAD_NETWORK_H_
