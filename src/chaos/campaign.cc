#include "chaos/campaign.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/finite.h"
#include "fl/federated_trainer.h"
#include "nn/kernels/kernels.h"
#include "nn/losses.h"
#include "roadnet/generators.h"
#include "traj/workload.h"

namespace lighttr::chaos {
namespace {

// ---------------------------------------------------------------------------
// Harness: the same minimal one-parameter RecoveryModel the durability
// tests use — training cost is noise, so a scenario exercises the full
// fault surface in milliseconds.
// ---------------------------------------------------------------------------

class ProbeModel : public fl::RecoveryModel {
 public:
  explicit ProbeModel(Rng* rng) {
    w_ = nn::Tensor::Variable(
        nn::Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool /*training*/, Rng* /*rng*/) override {
    nn::Matrix target(1, 1);
    target(0, 0) = static_cast<nn::Scalar>(trajectory.ground_truth.driver_id);
    fl::ForwardResult result;
    result.loss = nn::MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    return std::vector<roadnet::PointPosition>(trajectory.size(),
                                               roadnet::PointPosition{0, 0.0});
  }

 private:
  std::string name_ = "ChaosProbe";
  nn::ParameterSet params_;
  nn::Tensor w_;
};

std::unique_ptr<fl::RecoveryModel> MakeProbe(Rng* rng) {
  return std::make_unique<ProbeModel>(rng);
}

// Client workloads for one scenario. Generated fresh per call (no
// static caching) so scenarios are order-independent; every run segment
// of one scenario shares the same vector.
std::vector<traj::ClientDataset> MakeChaosClients(const ChaosScenario& s) {
  Rng rng(s.seed ^ 0x9E3779B97F4A7C15ull);
  roadnet::CityGridOptions grid;
  grid.rows = 6;
  grid.cols = 6;
  const roadnet::RoadNetwork net = roadnet::GenerateCityGrid(grid, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = s.clients;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

constexpr char kChaosDir[] = "chaos";

fl::FederatedTrainerOptions MakeOptions(const ChaosScenario& s, int threads,
                                        FileSystem* fs, bool with_crash) {
  fl::FederatedTrainerOptions o;
  o.rounds = s.rounds;
  o.client_fraction = s.client_fraction;
  o.local_epochs = 1;
  o.learning_rate = 0.05;
  o.seed = s.seed;
  o.threads = threads;
  // Respect the process-wide kernel selection (CLI --kernel or a test's
  // ActivateKernels call): ActiveKernelMode() is already resolved to a
  // concrete mode, so the trainer's re-activation is a no-op.
  o.kernel = nn::ActiveKernelMode();
  o.tolerance.quorum_fraction = s.quorum_fraction;
  o.tolerance.retry.max_retries = 1;
  if (s.client_faults_on) o.faults = s.client_faults;
  if (s.net_on) o.transport.channel = s.net;
  if (s.healing) {
    o.healing.enabled = true;
    o.healing.max_rollbacks = 2;
  }
  if (s.adversary_on) {
    o.adversary = s.adversary;
    // ParseRepro bounds count by clients, but a shrunk candidate can
    // lower `clients` past it; clamp instead of tripping the trainer.
    o.adversary.num_attackers = std::min(o.adversary.num_attackers, s.clients);
    if (s.adversary_defended) {
      // The Byzantine counter-measures: robust aggregation plus the
      // reputation/quarantine layer to evict identified attackers.
      o.tolerance.aggregator.policy = fl::AggregatorPolicy::kMultiKrum;
      o.tolerance.aggregator.byzantine_fraction = 0.4;
      o.tolerance.aggregator.exclude_suspected = true;
      o.healing.enabled = true;
      o.healing.max_rollbacks = 2;
    }
  }
  o.durability.dir = kChaosDir;
  o.durability.fs = fs;
  o.durability.snapshot_every = 2;
  o.durability.keep_snapshots = 2;
  if (with_crash && s.crash_on) {
    o.durability.crash_point = s.crash_point;
    o.durability.crash_round = s.crash_round;
  }
  return o;
}

FaultyFileSystem MakeScenarioFs(const ChaosScenario& s) {
  // storage_on=false still runs on a FaultyFileSystem — with an all-zero
  // config it is a plain deterministic RAM disk, so no scenario ever
  // touches the real disk.
  return FaultyFileSystem(s.storage_on ? s.storage : StorageFaultConfig{});
}

struct RunOutcome {
  fl::FederatedRunResult result;
  std::vector<nn::Scalar> final_params;
  /// Client indices quarantined at the end of the run (empty with the
  /// healing layer off) — the adversary-attribution invariant's input.
  std::vector<int> quarantined;
  bool crash_fired = false;
  bool fresh_restart = false;
};

// One full run segment: train, and when the injected crash fires,
// simulate the machine crash and resume from whatever survived (a
// failed resume falls back to a fresh restart, which must converge to
// the same final model — everything derives from the seed).
RunOutcome RunOnce(const ChaosScenario& s, int threads, bool with_crash,
                   FaultyFileSystem* fs,
                   const std::vector<traj::ClientDataset>* clients) {
  RunOutcome out;
  if (s.plant == PlantedBug::kLeakTmp) {
    fs->set_leak_tmp_on_rename_failure(true);
  }
  auto trainer = std::make_unique<fl::FederatedTrainer>(
      MakeProbe, clients, MakeOptions(s, threads, fs, with_crash));
  try {
    out.result = trainer->Run();
  } catch (const fl::InjectedCrash&) {
    out.crash_fired = true;
    fs->SimulateCrash();
    const fl::FederatedTrainerOptions after_crash =
        MakeOptions(s, threads, fs, /*with_crash=*/false);
    trainer =
        std::make_unique<fl::FederatedTrainer>(MakeProbe, clients, after_crash);
    const Status resumed = trainer->ResumeFrom(kChaosDir);
    if (!resumed.ok()) {
      // Nothing usable survived (or the resume itself hit storage
      // faults): discard the possibly half-restored trainer and restart
      // from scratch.
      out.fresh_restart = true;
      trainer = std::make_unique<fl::FederatedTrainer>(MakeProbe, clients,
                                                       after_crash);
    }
    out.result = trainer->Run();
  }
  out.final_params = trainer->global_model()->params().Flatten();
  if (trainer->reputation() != nullptr) {
    for (int i = 0; i < trainer->num_clients(); ++i) {
      if (trainer->reputation()->IsQuarantined(i)) out.quarantined.push_back(i);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Invariants.
// ---------------------------------------------------------------------------

void AddViolation(ScenarioReport* report, const std::string& label,
                  const std::string& detail) {
  report->violations.push_back(InvariantViolation{label, detail});
}

// Field-by-field RoundRecord equality, wall-clock time excluded. Returns
// an empty string on match, otherwise the first differing field.
std::string DescribeRecordMismatch(const fl::RoundRecord& a,
                                   const fl::RoundRecord& b) {
  struct IntField {
    const char* name;
    int64_t lhs;
    int64_t rhs;
  };
  const IntField ints[] = {
      {"round", a.round, b.round},
      {"sampled", a.sampled, b.sampled},
      {"reporting", a.reporting, b.reporting},
      {"drops", a.drops, b.drops},
      {"retries", a.retries, b.retries},
      {"stragglers", a.stragglers, b.stragglers},
      {"rejected_uploads", a.rejected_uploads, b.rejected_uploads},
      {"quorum_met", a.quorum_met ? 1 : 0, b.quorum_met ? 1 : 0},
      {"verdict", a.verdict, b.verdict},
      {"outlier_uploads", a.outlier_uploads, b.outlier_uploads},
      {"quarantined", a.quarantined, b.quarantined},
      {"skipped_quarantined", a.skipped_quarantined, b.skipped_quarantined},
      {"escalated", a.escalated ? 1 : 0, b.escalated ? 1 : 0},
      {"poisoned_uploads", a.poisoned_uploads, b.poisoned_uploads},
      {"suspected_uploads", a.suspected_uploads, b.suspected_uploads},
      {"net_retries", a.net_retries, b.net_retries},
      {"net_timeouts", a.net_timeouts, b.net_timeouts},
      {"net_crc_drops", a.net_crc_drops, b.net_crc_drops},
      {"net_dedup_drops", a.net_dedup_drops, b.net_dedup_drops},
      {"net_late_drops", a.net_late_drops, b.net_late_drops},
      {"net_lost", a.net_lost, b.net_lost},
      {"storage_write_failures", a.storage_write_failures,
       b.storage_write_failures},
  };
  for (const IntField& f : ints) {
    if (f.lhs != f.rhs) {
      return std::string(f.name) + " " + std::to_string(f.lhs) + " vs " +
             std::to_string(f.rhs);
    }
  }
  if (a.mean_train_loss != b.mean_train_loss) return "mean_train_loss";
  if (a.global_valid_accuracy != b.global_valid_accuracy) {
    return "global_valid_accuracy";
  }
  if (a.valid_loss != b.valid_loss) return "valid_loss";
  return std::string();
}

std::string DescribeFaultsMismatch(const fl::FaultStats& a,
                                   const fl::FaultStats& b) {
  struct IntField {
    const char* name;
    int64_t lhs;
    int64_t rhs;
  };
  const IntField ints[] = {
      {"drops", a.drops, b.drops},
      {"retries", a.retries, b.retries},
      {"stragglers", a.stragglers, b.stragglers},
      {"rejected_uploads", a.rejected_uploads, b.rejected_uploads},
      {"clipped_uploads", a.clipped_uploads, b.clipped_uploads},
      {"quorum_misses", a.quorum_misses, b.quorum_misses},
      {"sampled_clients", a.sampled_clients, b.sampled_clients},
      {"reporting_clients", a.reporting_clients, b.reporting_clients},
      {"outlier_uploads", a.outlier_uploads, b.outlier_uploads},
      {"diverged_rounds", a.diverged_rounds, b.diverged_rounds},
      {"rollbacks", a.rollbacks, b.rollbacks},
      {"quarantine_events", a.quarantine_events, b.quarantine_events},
      {"parole_events", a.parole_events, b.parole_events},
      {"quarantined_skips", a.quarantined_skips, b.quarantined_skips},
      {"poisoned_uploads", a.poisoned_uploads, b.poisoned_uploads},
      {"suspected_uploads", a.suspected_uploads, b.suspected_uploads},
      {"net_retries", a.net_retries, b.net_retries},
      {"net_timeouts", a.net_timeouts, b.net_timeouts},
      {"net_crc_drops", a.net_crc_drops, b.net_crc_drops},
      {"net_dedup_drops", a.net_dedup_drops, b.net_dedup_drops},
      {"net_late_drops", a.net_late_drops, b.net_late_drops},
      {"net_lost", a.net_lost, b.net_lost},
      {"storage_write_failures", a.storage_write_failures,
       b.storage_write_failures},
  };
  for (const IntField& f : ints) {
    if (f.lhs != f.rhs) {
      return std::string(f.name) + " " + std::to_string(f.lhs) + " vs " +
             std::to_string(f.rhs);
    }
  }
  if (a.simulated_backoff_s != b.simulated_backoff_s) {
    return "simulated_backoff_s";
  }
  return std::string();
}

// Invariant: the final global model is finite, always — no fault axis
// is allowed to push NaN/Inf into the aggregated parameters.
void CheckFiniteModel(const RunOutcome& run, ScenarioReport* report) {
  if (!AllFinite(run.final_params)) {
    AddViolation(report, "finite-global-model",
                 "final global parameters contain NaN/Inf");
  }
}

// Invariant: every sampled client is accounted for by exactly one
// outcome bucket, every round.
void CheckRoundConservation(const RunOutcome& run, ScenarioReport* report) {
  for (const fl::RoundRecord& r : run.result.history) {
    const int accounted = r.skipped_quarantined + r.drops + r.net_lost +
                          r.stragglers + r.rejected_uploads + r.reporting;
    if (r.sampled != accounted) {
      AddViolation(report, "round-conservation",
                   "round " + std::to_string(r.round) + ": sampled " +
                       std::to_string(r.sampled) + " != accounted " +
                       std::to_string(accounted));
    }
  }
}

// Invariant: the quorum verdict matches the arithmetic. quorum_met
// implies enough reporters; too few reporters implies !quorum_met (the
// gap between the two is the deliberate aggregate-failure degrade).
void CheckQuorumAccounting(const ChaosScenario& s, const RunOutcome& run,
                           ScenarioReport* report) {
  for (const fl::RoundRecord& r : run.result.history) {
    const int need = std::max(
        1, static_cast<int>(
               std::ceil(s.quorum_fraction * static_cast<double>(r.sampled))));
    if (r.quorum_met && r.reporting < need) {
      AddViolation(report, "quorum-accounting",
                   "round " + std::to_string(r.round) + ": quorum met with " +
                       std::to_string(r.reporting) + " < need " +
                       std::to_string(need));
    }
    if (!r.quorum_met && r.reporting >= need) {
      AddViolation(report, "quorum-accounting",
                   "round " + std::to_string(r.round) +
                       ": quorum missed with " + std::to_string(r.reporting) +
                       " >= need " + std::to_string(need));
    }
  }
}

// Invariant: lifetime fault counters equal the per-round history sums.
// Skipped when storage faults could have eaten journal lines across a
// crash (the resumed history is then legitimately incomplete).
void CheckCounterConservation(const RunOutcome& run, ScenarioReport* report) {
  fl::FaultStats sum;
  for (const fl::RoundRecord& r : run.result.history) {
    sum.drops += r.drops;
    sum.retries += r.retries;
    sum.stragglers += r.stragglers;
    sum.rejected_uploads += r.rejected_uploads;
    sum.sampled_clients += r.sampled;
    sum.reporting_clients += r.reporting;
    sum.net_retries += r.net_retries;
    sum.net_timeouts += r.net_timeouts;
    sum.net_crc_drops += r.net_crc_drops;
    sum.net_dedup_drops += r.net_dedup_drops;
    sum.net_late_drops += r.net_late_drops;
    sum.net_lost += r.net_lost;
    sum.poisoned_uploads += r.poisoned_uploads;
    sum.suspected_uploads += r.suspected_uploads;
    if (!r.quorum_met) ++sum.quorum_misses;
  }
  const fl::FaultStats& total = run.result.faults;
  struct IntField {
    const char* name;
    int64_t history;
    int64_t lifetime;
  };
  const IntField fields[] = {
      {"drops", sum.drops, total.drops},
      {"retries", sum.retries, total.retries},
      {"stragglers", sum.stragglers, total.stragglers},
      {"rejected_uploads", sum.rejected_uploads, total.rejected_uploads},
      {"sampled_clients", sum.sampled_clients, total.sampled_clients},
      {"reporting_clients", sum.reporting_clients, total.reporting_clients},
      {"quorum_misses", sum.quorum_misses, total.quorum_misses},
      {"net_retries", sum.net_retries, total.net_retries},
      {"net_timeouts", sum.net_timeouts, total.net_timeouts},
      {"net_crc_drops", sum.net_crc_drops, total.net_crc_drops},
      {"net_dedup_drops", sum.net_dedup_drops, total.net_dedup_drops},
      {"net_late_drops", sum.net_late_drops, total.net_late_drops},
      {"net_lost", sum.net_lost, total.net_lost},
      {"poisoned_uploads", sum.poisoned_uploads, total.poisoned_uploads},
      {"suspected_uploads", sum.suspected_uploads, total.suspected_uploads},
  };
  for (const IntField& f : fields) {
    if (f.history != f.lifetime) {
      AddViolation(report, "counter-conservation",
                   std::string(f.name) + ": history sum " +
                       std::to_string(f.history) + " != lifetime " +
                       std::to_string(f.lifetime));
    }
  }
}

// Invariant: no orphan temp files at quiescence. Litter the fault layer
// planted on purpose is exempt; anything else ending in .tmp is a
// leaked writer temp (the planted leak-tmp bug produces exactly this).
void CheckNoOrphanTemps(const FaultyFileSystem& fs, ScenarioReport* report) {
  for (const std::string& path : fs.AllFiles()) {
    if (path.size() > 4 && path.compare(path.size() - 4, 4, ".tmp") == 0 &&
        !fs.IsInjectedLitter(path)) {
      AddViolation(report, "orphan-temp-file",
                   "leaked writer temp survives at quiescence: " + path);
    }
  }
}

// Invariant: storage-fault attribution reconciles. Without a crash the
// trainer must count exactly what the filesystem injected; across a
// crash the in-memory tail of the counter can be lost (trainer <=
// filesystem), but a clean filesystem always means a zero counter.
void CheckStorageAttribution(const RunOutcome& run,
                             const StorageFaultStats& stats,
                             ScenarioReport* report) {
  const int64_t trainer_count = run.result.faults.storage_write_failures;
  const int64_t injected = stats.WriteFaults();
  if (!run.crash_fired) {
    if (trainer_count != injected) {
      AddViolation(report, "storage-attribution",
                   "trainer counted " + std::to_string(trainer_count) +
                       " storage write failures, filesystem injected " +
                       std::to_string(injected));
    }
    return;
  }
  if (trainer_count > injected) {
    AddViolation(report, "storage-attribution",
                 "trainer counted " + std::to_string(trainer_count) +
                     " storage write failures, more than the " +
                     std::to_string(injected) + " the filesystem injected");
  }
  if (injected == 0 && trainer_count != 0) {
    AddViolation(report, "storage-attribution",
                 "trainer counted " + std::to_string(trainer_count) +
                     " storage write failures on a clean filesystem");
  }
}

// Invariant: poisoning attribution is honest. With the adversary axis
// off the ground-truth poison counter must be zero; with it on, any
// quarantine must land on attackers only. Honest-quarantine is only
// checked when injected client corruption is off — corrupt uploads are
// legitimate (non-adversary) quarantine evidence.
void CheckAdversaryAttribution(const ChaosScenario& s, const RunOutcome& run,
                               ScenarioReport* report) {
  if (!s.adversary_on) {
    if (run.result.faults.poisoned_uploads != 0) {
      AddViolation(report, "adversary-attribution",
                   "poisoned_uploads " +
                       std::to_string(run.result.faults.poisoned_uploads) +
                       " with the adversary axis off");
    }
    return;
  }
  if (s.client_faults_on && s.client_faults.corruption_rate > 0.0) return;
  for (int client : run.quarantined) {
    if (!s.adversary.IsAttacker(client)) {
      AddViolation(report, "adversary-attribution",
                   "honest client " + std::to_string(client) +
                       " quarantined under a " +
                       std::string(fl::AttackTypeName(s.adversary.attack)) +
                       " attack");
    }
  }
}

// Invariant: a defended run under attack still converges — its final
// validation loss stays inside a lenient envelope of the same scenario
// with the adversary axis off. An undefended poisoning run (reachable
// only through the planted stealth-poison bug or an explicit repro)
// fails exactly this check, which is the campaign's proof that the net
// catches real poisoning. Skipped beyond the Byzantine tolerance bound
// (half the cohort compromised defeats any aggregator).
void CheckAdversaryContainment(const ChaosScenario& s, const RunOutcome& run,
                               const std::vector<traj::ClientDataset>* clients,
                               ScenarioReport* report) {
  if (!s.adversary_on) return;
  if (2 * s.adversary.num_attackers >= s.clients) return;
  if (run.result.history.empty()) return;
  ChaosScenario reference = s;
  reference.adversary_on = false;
  FaultyFileSystem ref_fs = MakeScenarioFs(reference);
  const RunOutcome ref =
      RunOnce(reference, s.threads, /*with_crash=*/true, &ref_fs, clients);
  if (ref.result.history.empty()) return;
  const double attacked = run.result.history.back().valid_loss;
  const double baseline = ref.result.history.back().valid_loss;
  if (!IsFinite(attacked)) {
    AddViolation(report, "adversary-containment",
                 "final validation loss non-finite under attack");
    return;
  }
  // Lenient on purpose: robust aggregation may converge slower than the
  // clean mean, but a successful poisoning blows the loss up by orders
  // of magnitude, not fractions.
  const double bound = std::max(8.0 * std::max(baseline, 0.0), baseline + 2.0);
  if (attacked > bound) {
    AddViolation(report, "adversary-containment",
                 "final validation loss " + std::to_string(attacked) +
                     " under attack exceeds envelope " +
                     std::to_string(bound) + " of the attack-free run (" +
                     std::to_string(baseline) + ")");
  }
}

// Invariant: the run is bitwise identical at a different thread count —
// final model, full history, and lifetime counters (wall-clock
// excluded). Fault filesystems are rebuilt from the same seed, and all
// durability IO runs on the coordinating thread, so even the storage
// fault schedule must match.
void CheckThreadBitwise(const ChaosScenario& s, const RunOutcome& main_run,
                        const std::vector<traj::ClientDataset>* clients,
                        ScenarioReport* report) {
  const int alt_threads = s.threads == 1 ? 2 : 1;
  FaultyFileSystem alt_fs = MakeScenarioFs(s);
  const RunOutcome alt =
      RunOnce(s, alt_threads, /*with_crash=*/true, &alt_fs, clients);
  const std::string tag = " (threads " + std::to_string(s.threads) + " vs " +
                          std::to_string(alt_threads) + ")";
  if (main_run.final_params != alt.final_params) {
    AddViolation(report, "thread-bitwise",
                 "final global parameters differ" + tag);
    return;
  }
  if (main_run.result.history.size() != alt.result.history.size()) {
    AddViolation(report, "thread-bitwise",
                 "history length " +
                     std::to_string(main_run.result.history.size()) + " vs " +
                     std::to_string(alt.result.history.size()) + tag);
    return;
  }
  for (size_t i = 0; i < main_run.result.history.size(); ++i) {
    const std::string mismatch = DescribeRecordMismatch(
        main_run.result.history[i], alt.result.history[i]);
    if (!mismatch.empty()) {
      AddViolation(report, "thread-bitwise",
                   "history[" + std::to_string(i) + "] " + mismatch + tag);
      return;
    }
  }
  const std::string faults_mismatch =
      DescribeFaultsMismatch(main_run.result.faults, alt.result.faults);
  if (!faults_mismatch.empty()) {
    AddViolation(report, "thread-bitwise",
                 "lifetime counters: " + faults_mismatch + tag);
  }
}

// Invariant: a crashed-and-resumed (or crashed-and-restarted) run
// converges to the same final model, bitwise, as the same scenario
// without the crash. History equality is additionally required when the
// storage axis is off (with storage faults the journal may legitimately
// lose lines, and the storage counters differ by construction).
void CheckResumeBitwise(const ChaosScenario& s, const RunOutcome& main_run,
                        const std::vector<traj::ClientDataset>* clients,
                        ScenarioReport* report) {
  ChaosScenario reference = s;
  reference.crash_on = false;
  FaultyFileSystem ref_fs = MakeScenarioFs(reference);
  const RunOutcome ref =
      RunOnce(reference, s.threads, /*with_crash=*/false, &ref_fs, clients);
  if (main_run.final_params != ref.final_params) {
    AddViolation(report, "resume-bitwise",
                 std::string("final global parameters after crash+") +
                     (main_run.fresh_restart ? "restart" : "resume") +
                     " differ from the uninterrupted run");
    return;
  }
  if (s.storage_on) return;
  if (main_run.result.history.size() != ref.result.history.size()) {
    AddViolation(report, "resume-bitwise",
                 "history length " +
                     std::to_string(main_run.result.history.size()) +
                     " after crash vs " +
                     std::to_string(ref.result.history.size()) +
                     " uninterrupted");
    return;
  }
  for (size_t i = 0; i < main_run.result.history.size(); ++i) {
    const std::string mismatch =
        DescribeRecordMismatch(main_run.result.history[i],
                               ref.result.history[i]);
    if (!mismatch.empty()) {
      AddViolation(report, "resume-bitwise",
                   "history[" + std::to_string(i) + "] " + mismatch +
                       " (crash+resume vs uninterrupted)");
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Shrinking.
// ---------------------------------------------------------------------------

bool ViolatesLabel(const ChaosScenario& s, const std::string& label) {
  const ScenarioReport report = RunScenario(s);
  for (const InvariantViolation& violation : report.violations) {
    if (violation.label == label) return true;
  }
  return false;
}

}  // namespace

ScenarioReport RunScenario(const ChaosScenario& scenario) {
  ScenarioReport report;
  report.scenario = scenario;
  const std::vector<traj::ClientDataset> clients = MakeChaosClients(scenario);

  FaultyFileSystem fs = MakeScenarioFs(scenario);
  const RunOutcome main_run =
      RunOnce(scenario, scenario.threads, /*with_crash=*/true, &fs, &clients);
  report.storage_stats = fs.stats();
  report.trainer_storage_failures =
      main_run.result.faults.storage_write_failures;
  report.crash_fired = main_run.crash_fired;
  report.fresh_restart = main_run.fresh_restart;
  report.rounds_completed = static_cast<int>(main_run.result.history.size());

  CheckFiniteModel(main_run, &report);
  CheckRoundConservation(main_run, &report);
  CheckQuorumAccounting(scenario, main_run, &report);
  if (!(scenario.storage_on && main_run.crash_fired)) {
    CheckCounterConservation(main_run, &report);
  }
  CheckNoOrphanTemps(fs, &report);
  CheckStorageAttribution(main_run, fs.stats(), &report);
  CheckAdversaryAttribution(scenario, main_run, &report);
  CheckAdversaryContainment(scenario, main_run, &clients, &report);
  CheckThreadBitwise(scenario, main_run, &clients, &report);
  if (main_run.crash_fired) {
    CheckResumeBitwise(scenario, main_run, &clients, &report);
  }
  return report;
}

ShrinkOutcome ShrinkScenario(const ChaosScenario& failing,
                             const std::string& label) {
  ShrinkOutcome outcome;
  outcome.label = label;
  ChaosScenario current = failing;

  const auto still_fails = [&outcome, &label](const ChaosScenario& candidate) {
    ++outcome.evaluations;
    return ViolatesLabel(candidate, label);
  };

  // Pass 1: remove whole axes, fixed order. Planted bugs stay.
  {
    const auto try_without = [&](void (*disable)(ChaosScenario*)) {
      ChaosScenario candidate = current;
      disable(&candidate);
      if (still_fails(candidate)) current = candidate;
    };
    if (current.healing) {
      try_without([](ChaosScenario* c) { c->healing = false; });
    }
    if (current.net_on) {
      try_without([](ChaosScenario* c) { c->net_on = false; });
    }
    if (current.client_faults_on) {
      try_without([](ChaosScenario* c) { c->client_faults_on = false; });
    }
    if (current.crash_on) {
      try_without([](ChaosScenario* c) { c->crash_on = false; });
    }
    if (current.storage_on && current.plant != PlantedBug::kLeakTmp) {
      try_without([](ChaosScenario* c) { c->storage_on = false; });
    }
    if (current.adversary_on && current.plant != PlantedBug::kStealthPoison) {
      try_without([](ChaosScenario* c) { c->adversary_on = false; });
    }
  }

  // Pass 2: bisect parameters toward their floors, keeping the last
  // failing candidate at every step.
  const auto shrink_int = [&](int ChaosScenario::*field, int floor) {
    while (current.*field > floor) {
      ChaosScenario candidate = current;
      candidate.*field = floor + (current.*field - floor) / 2;
      // Shrinking rounds below the crash round would silently disarm
      // the crash axis; keep them consistent.
      if (candidate.crash_on && candidate.crash_round > candidate.rounds) {
        candidate.crash_round = candidate.rounds;
      }
      if (!still_fails(candidate)) break;
      current = candidate;
    }
  };
  shrink_int(&ChaosScenario::rounds, 2);
  shrink_int(&ChaosScenario::clients, 2);
  shrink_int(&ChaosScenario::threads, 1);
  if (current.crash_on) shrink_int(&ChaosScenario::crash_round, 1);
  // Attacker cohort toward a single attacker (nested field, so the
  // member-pointer helper above cannot reach it).
  while (current.adversary_on && current.adversary.num_attackers > 1) {
    ChaosScenario candidate = current;
    candidate.adversary.num_attackers =
        1 + (current.adversary.num_attackers - 1) / 2;
    if (!still_fails(candidate)) break;
    current = candidate;
  }

  // Rates: try zero outright, else halve a few times.
  using FieldFn = double* (*)(ChaosScenario*);
  const auto shrink_rate = [&](FieldFn field) {
    if (*field(&current) <= 0.0) return;
    ChaosScenario zeroed = current;
    *field(&zeroed) = 0.0;
    if (still_fails(zeroed)) {
      current = zeroed;
      return;
    }
    for (int i = 0; i < 4; ++i) {
      ChaosScenario halved = current;
      *field(&halved) = *field(&current) / 2.0;
      if (!still_fails(halved)) break;
      current = halved;
    }
  };
  std::vector<FieldFn> rate_fields;
  if (current.storage_on) {
    rate_fields.push_back([](ChaosScenario* c) { return &c->storage.enospc_rate; });
    rate_fields.push_back([](ChaosScenario* c) { return &c->storage.torn_append_rate; });
    rate_fields.push_back([](ChaosScenario* c) { return &c->storage.rename_fail_rate; });
    rate_fields.push_back([](ChaosScenario* c) { return &c->storage.read_bitrot_rate; });
    rate_fields.push_back([](ChaosScenario* c) { return &c->storage.tmp_litter_rate; });
  }
  if (current.net_on) {
    rate_fields.push_back([](ChaosScenario* c) { return &c->net.drop_rate; });
    rate_fields.push_back([](ChaosScenario* c) { return &c->net.duplicate_rate; });
    rate_fields.push_back([](ChaosScenario* c) { return &c->net.reorder_rate; });
    rate_fields.push_back([](ChaosScenario* c) { return &c->net.corrupt_rate; });
    rate_fields.push_back([](ChaosScenario* c) { return &c->net.truncate_rate; });
    rate_fields.push_back([](ChaosScenario* c) { return &c->net.delay_rate; });
  }
  if (current.client_faults_on) {
    rate_fields.push_back(
        [](ChaosScenario* c) { return &c->client_faults.dropout_rate; });
    rate_fields.push_back(
        [](ChaosScenario* c) { return &c->client_faults.straggler_rate; });
    rate_fields.push_back(
        [](ChaosScenario* c) { return &c->client_faults.corruption_rate; });
  }
  for (FieldFn field : rate_fields) {
    shrink_rate(field);
  }
  if (current.storage_on && current.storage.lose_unsynced_on_crash) {
    ChaosScenario kind = current;
    kind.storage.lose_unsynced_on_crash = false;
    if (still_fails(kind)) current = kind;
  }

  outcome.minimal = current;
  return outcome;
}

CampaignResult RunCampaign(const CampaignOptions& options) {
  CampaignResult result;
  Rng rng(options.seed);
  for (int i = 0; i < options.scenarios; ++i) {
    ChaosScenario scenario = SampleScenario(&rng);
    scenario.plant = options.plant;
    if (options.plant == PlantedBug::kLeakTmp) {
      // The planted bug lives on the rename-failure path: force the
      // storage axis hostile enough to actually reach it.
      scenario.storage_on = true;
      if (scenario.storage.rename_fail_rate < 0.2) {
        scenario.storage.rename_fail_rate = 0.2;
      }
    }
    if (options.plant == PlantedBug::kStealthPoison) {
      // The planted bug IS an undefended poisoning run: force the
      // adversary axis on with an aggressive attack and the defense
      // disarmed, so the containment invariant must catch the
      // corrupted model.
      scenario.adversary_on = true;
      scenario.adversary_defended = false;
      scenario.adversary.attack = fl::AttackType::kScaledAscent;
      if (scenario.adversary.ascent_scale < 20.0) {
        scenario.adversary.ascent_scale = 20.0;
      }
      scenario.adversary.start_round = 1;
      scenario.healing = false;
      if (scenario.rounds < 4) scenario.rounds = 4;
    }
    const ScenarioReport report = RunScenario(scenario);
    ++result.scenarios_run;
    if (report.crash_fired) ++result.crashes_fired;
    if (options.progress != nullptr) options.progress(i, report);
    if (!report.ok()) {
      FailingCase failing;
      failing.report = report;
      if (options.shrink) {
        const ShrinkOutcome shrunk =
            ShrinkScenario(scenario, report.violations[0].label);
        failing.minimal = shrunk.minimal;
        failing.shrink_evaluations = shrunk.evaluations;
      } else {
        failing.minimal = scenario;
      }
      result.failures.push_back(failing);
    }
  }
  return result;
}

}  // namespace lighttr::chaos
