// Tests for the baseline recovery models (FC, RNN, MTrajRec, RNTrajRec),
// the model zoo, and the centralized trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/centralized_trainer.h"
#include "baselines/fc_model.h"
#include "baselines/model_zoo.h"
#include "baselines/mtrajrec_model.h"
#include "baselines/rnn_model.h"
#include "baselines/rntrajrec_model.h"
#include "fl/local_trainer.h"
#include "nn/optimizer.h"
#include "roadnet/generators.h"
#include "roadnet/segment_index.h"
#include "traj/workload.h"

namespace lighttr::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() {
    Rng rng(61);
    roadnet::CityGridOptions options;
    options.rows = 6;
    options.cols = 6;
    network_ = roadnet::GenerateCityGrid(options, &rng);
    index_ = std::make_unique<roadnet::SegmentIndex>(network_);
    encoder_ = std::make_unique<traj::TrajectoryEncoder>(network_, *index_);

    traj::WorkloadProfile profile = traj::TdriveLikeProfile();
    profile.trajectories_per_client = 6;
    traj::FederatedWorkloadOptions workload;
    workload.num_clients = 2;
    workload.keep_ratio = 0.25;
    Rng data_rng(62);
    clients_ = traj::GenerateFederatedWorkload(network_, profile, workload,
                                               &data_rng);
  }

  void CheckModelBasics(fl::RecoveryModel* model) {
    EXPECT_GT(model->params().NumScalars(), 0);
    Rng rng(63);
    for (const auto& trajectory : clients_[0].train) {
      const fl::ForwardResult result = model->Forward(trajectory, true, &rng);
      EXPECT_TRUE(std::isfinite(result.loss.ScalarValue()));
      EXPECT_GE(result.loss.ScalarValue(), 0.0);
    }
    const auto& sample = clients_[0].test[0];
    const auto recovered = model->Recover(sample);
    ASSERT_EQ(recovered.size(), sample.size());
    for (size_t t = 0; t < sample.size(); ++t) {
      EXPECT_GE(recovered[t].segment, 0);
      EXPECT_LT(recovered[t].segment, network_.num_segments());
      EXPECT_GE(recovered[t].ratio, 0.0);
      EXPECT_LE(recovered[t].ratio, 1.0);
      if (sample.observed[t]) {
        EXPECT_EQ(recovered[t], sample.ground_truth.points[t].position);
      }
    }
  }

  void CheckTrainingReducesLoss(fl::RecoveryModel* model) {
    nn::AdamOptimizer optimizer(3e-3);
    fl::LocalTrainOptions options;
    options.epochs = 1;
    Rng rng(64);
    const double first = fl::TrainLocal(model, &optimizer, clients_[0].train,
                                        options, &rng);
    options.epochs = 10;
    const double later = fl::TrainLocal(model, &optimizer, clients_[0].train,
                                        options, &rng);
    EXPECT_LT(later, first);
  }

  roadnet::RoadNetwork network_;
  std::unique_ptr<roadnet::SegmentIndex> index_;
  std::unique_ptr<traj::TrajectoryEncoder> encoder_;
  std::vector<traj::ClientDataset> clients_;
};

TEST_F(BaselinesTest, FcModelBasicsAndTraining) {
  Rng rng(1);
  FcModel model(encoder_.get(), FcConfig{}, &rng);
  CheckModelBasics(&model);
  CheckTrainingReducesLoss(&model);
}

TEST_F(BaselinesTest, RnnModelBasicsAndTraining) {
  Rng rng(2);
  RnnModel model(encoder_.get(), RnnConfig{}, &rng);
  CheckModelBasics(&model);
  CheckTrainingReducesLoss(&model);
}

TEST_F(BaselinesTest, MTrajRecModelBasicsAndTraining) {
  Rng rng(3);
  MTrajRecModel model(encoder_.get(), MTrajRecConfig{}, &rng);
  CheckModelBasics(&model);
  CheckTrainingReducesLoss(&model);
}

TEST_F(BaselinesTest, RnTrajRecModelBasicsAndTraining) {
  Rng rng(4);
  RnTrajRecModel model(encoder_.get(), RnTrajRecConfig{}, &rng);
  CheckModelBasics(&model);
  CheckTrainingReducesLoss(&model);
}

TEST_F(BaselinesTest, ModelZooNamesAndFactories) {
  const std::vector<std::pair<ModelKind, std::string>> expectations = {
      {ModelKind::kFc, "FC+FL"},
      {ModelKind::kRnn, "RNN+FL"},
      {ModelKind::kMTrajRec, "MTrajRec+FL"},
      {ModelKind::kRnTrajRec, "RNTrajRec+FL"},
      {ModelKind::kLightTr, "LightTR"},
  };
  for (const auto& [kind, name] : expectations) {
    EXPECT_EQ(ModelKindName(kind), name);
    Rng rng(5);
    auto model = MakeFactory(kind, encoder_.get())(&rng);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), name);
    EXPECT_GT(model->params().NumScalars(), 0);
  }
}

TEST_F(BaselinesTest, ModelSizeOrderingMatchesFig5) {
  // LightTR must be lighter than MTrajRec and RNTrajRec in parameters.
  Rng rng(6);
  auto light = MakeFactory(ModelKind::kLightTr, encoder_.get())(&rng);
  auto mtraj = MakeFactory(ModelKind::kMTrajRec, encoder_.get())(&rng);
  auto rntraj = MakeFactory(ModelKind::kRnTrajRec, encoder_.get())(&rng);
  EXPECT_LT(light->params().NumScalars(), mtraj->params().NumScalars());
  EXPECT_LT(mtraj->params().NumScalars(), rntraj->params().NumScalars());
}

TEST_F(BaselinesTest, CentralizedTrainerRuns) {
  CentralizedOptions options;
  options.epochs = 2;
  auto model = TrainCentralized(MakeFactory(ModelKind::kFc, encoder_.get()),
                                traj::MergeTrainSets(clients_), options);
  ASSERT_NE(model, nullptr);
  const auto recovered = model->Recover(clients_[0].test[0]);
  EXPECT_EQ(recovered.size(), clients_[0].test[0].size());
}

// Property: every model kind survives a federated round-trip of
// serialize -> deserialize with bitwise-equal float32 parameters.
class ModelSerializationProperty
    : public BaselinesTest,
      public ::testing::WithParamInterface<ModelKind> {};

TEST_P(ModelSerializationProperty, SerializeRoundTrip) {
  Rng r1(7);
  Rng r2(8);
  auto source = MakeFactory(GetParam(), encoder_.get())(&r1);
  auto dest = MakeFactory(GetParam(), encoder_.get())(&r2);
  ASSERT_TRUE(dest->params().Deserialize(source->params().Serialize()).ok());
  const auto a = source->params().Flatten();
  const auto b = dest->params().Flatten();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ModelSerializationProperty,
                         ::testing::Values(ModelKind::kFc, ModelKind::kRnn,
                                           ModelKind::kMTrajRec,
                                           ModelKind::kRnTrajRec,
                                           ModelKind::kLightTr));

}  // namespace
}  // namespace lighttr::baselines
