// Meta-knowledge enhanced local training — paper Algorithm 2.
//
// Each client epoch trains with the Eq. 17 objective; after every epoch
// the distillation weight lambda is set dynamically (Eq. 18) from how
// much better the common teacher performs than the current local model
// on local validation data. When the teacher is no better, lambda drops
// to 0 (no guidance).
#ifndef LIGHTTR_LIGHTTR_META_LOCAL_UPDATE_H_
#define LIGHTTR_LIGHTTR_META_LOCAL_UPDATE_H_

#include <mutex>
#include <unordered_map>

#include "fl/federated_trainer.h"
#include "fl/recovery_model.h"

namespace lighttr::core {

/// Options for MetaLocalUpdate.
struct MetaLocalOptions {
  double lambda0 = 5.0;  // base distillation weight (paper best: 5)
  double l_t = 0.4;      // guidance threshold (paper best: 0.4)
  /// Global-norm gradient clipping bound forwarded to every local
  /// training step (see LocalTrainOptions::clip_norm); <= 0 disables.
  double clip_norm = 0.0;
};

/// The LightTR client-side update strategy (Algorithm 2) plugged into
/// the generic federated loop (Algorithm 3).
class MetaLocalUpdate : public fl::LocalUpdateStrategy {
 public:
  /// `teacher` is the common meta-learner from Algorithm 1; must outlive
  /// this object. Null behaves like plain FedAvg (used by the w/o_Meta
  /// ablation).
  MetaLocalUpdate(fl::RecoveryModel* teacher, MetaLocalOptions options);

  double Update(int client_index, fl::RecoveryModel* model,
                nn::Optimizer* optimizer, const traj::ClientDataset& data,
                int epochs, Rng* rng) override;

  /// Computes Eq. 18: lambda0 * 10^(min(1, (acc_tea - acc_stu) * 5) - 1).
  static double DynamicLambda(double lambda0, double teacher_acc,
                              double student_acc);

 private:
  fl::RecoveryModel* teacher_;
  MetaLocalOptions options_;
  /// Teacher validation accuracy per client (the teacher is frozen
  /// during federated training, so this is computed once per client).
  /// Guarded by `cache_mutex_`: Update runs concurrently for distinct
  /// clients under the trainer's pool. Cached *values* are keyed by
  /// client and deterministic (frozen teacher, fixed valid set), so the
  /// fill order does not affect results.
  std::mutex cache_mutex_;
  std::unordered_map<int, double> teacher_acc_cache_;
};

}  // namespace lighttr::core

#endif  // LIGHTTR_LIGHTTR_META_LOCAL_UPDATE_H_
