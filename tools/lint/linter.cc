#include "lint/linter.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/token.h"

namespace lighttr::lint {

// ---------------------------------------------------------------------------
// Shared helpers (declared in engine.h).
// ---------------------------------------------------------------------------

std::string NormalizedPath(const std::string& path) {
  return std::filesystem::path(path).lexically_normal().generic_string();
}

bool PathEndsWith(const std::string& normalized, const std::string& suffix) {
  if (normalized.size() < suffix.size()) return false;
  if (normalized.compare(normalized.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
    return false;
  }
  return normalized.size() == suffix.size() ||
         normalized[normalized.size() - suffix.size() - 1] == '/';
}

bool PathContainsDir(const std::string& normalized, const std::string& dir) {
  const std::string mid = "/" + dir + "/";
  return normalized.rfind(dir + "/", 0) == 0 ||
         normalized.find(mid) != std::string::npos;
}

bool InDeterminismScope(const std::string& normalized) {
  return PathContainsDir(normalized, "src/fl") ||
         PathContainsDir(normalized, "src/nn") ||
         PathContainsDir(normalized, "src/common");
}

size_t MatchingDelim(const std::vector<Token>& t, size_t open,
                     const char* open_text, const char* close_text) {
  const bool angle = open_text[0] == '<';
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kPunct) continue;
    if (t[i].text == open_text) {
      ++depth;
    } else if (t[i].text == close_text) {
      if (--depth == 0) return i;
    } else if (angle && (t[i].text == ";" || t[i].text == "{" ||
                         t[i].text == "}")) {
      return kNpos;  // `<` was a comparison, not a template bracket
    }
  }
  return kNpos;
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

namespace {

bool IsPlainRuleWord(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!std::islower(static_cast<unsigned char>(c)) &&
        !std::isdigit(static_cast<unsigned char>(c)) && c != '-') {
      return false;
    }
  }
  return true;
}

}  // namespace

Suppressions::Suppressions(const std::vector<TokenizedFile>& files) {
  static const std::regex kAllow(R"(lighttr-lint:\s*allow\(([^)]*)\))");
  for (size_t f = 0; f < files.size(); ++f) {
    const std::vector<std::string>& comments = files[f].comments;
    for (size_t l = 0; l < comments.size(); ++l) {
      if (comments[l].empty()) continue;
      std::smatch m;
      if (!std::regex_search(comments[l], m, kAllow)) continue;
      std::stringstream rules(m[1].str());
      std::string item;
      while (std::getline(rules, item, ',')) {
        item.erase(
            std::remove_if(item.begin(), item.end(),
                           [](unsigned char ch) { return std::isspace(ch); }),
            item.end());
        // Documentation placeholders like `allow(<rule>)` are not
        // suppressions; skip anything that is not a plain rule word.
        if (!IsPlainRuleWord(item)) continue;
        entries_.push_back(Entry{f, static_cast<int>(l) + 1, item, false});
      }
    }
  }
}

bool Suppressions::Consume(size_t file_index, int line,
                          const std::string& rule) {
  bool found = false;
  for (Entry& e : entries_) {
    if (e.file == file_index && e.line == line && e.rule == rule) {
      e.used = true;
      found = true;
    }
  }
  return found;
}

void Suppressions::ReportUnused(const std::vector<TokenizedFile>& files,
                                std::vector<Diagnostic>* diagnostics) const {
  const std::vector<std::string>& known = AllRuleNames();
  for (const Entry& e : entries_) {
    if (e.used) continue;
    std::string message;
    if (std::find(known.begin(), known.end(), e.rule) == known.end()) {
      message = "allow(" + e.rule +
                ") names a rule this linter does not have; fix the name or "
                "delete the annotation";
    } else {
      message = "allow(" + e.rule +
                ") suppressed no diagnostic on this line; delete the stale "
                "annotation";
    }
    // Deliberately not suppressible: an allow(unused-suppression) would
    // be a stale opt-out by construction.
    diagnostics->push_back(Diagnostic{files[e.file].source->path, e.line,
                                      "unused-suppression",
                                      std::move(message)});
  }
}

void Context::Report(size_t file_index, int line, const std::string& rule,
                     std::string message) {
  if (suppressions->Consume(file_index, line, rule)) return;
  diagnostics->push_back(Diagnostic{files[file_index].source->path, line,
                                    rule, std::move(message)});
}

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  std::ostringstream os;
  os << diagnostic.file << ":" << diagnostic.line << ": " << diagnostic.rule
     << ": " << diagnostic.message;
  return os.str();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatDiagnosticJson(const Diagnostic& diagnostic) {
  std::ostringstream os;
  os << "{\"file\":\"" << JsonEscape(diagnostic.file)
     << "\",\"line\":" << diagnostic.line << ",\"rule\":\""
     << JsonEscape(diagnostic.rule) << "\",\"message\":\""
     << JsonEscape(diagnostic.message) << "\"}";
  return os.str();
}

const std::vector<std::string>& AllRuleNames() {
  static const std::vector<std::string> kNames = {
      "no-raw-rand",
      "no-raw-thread",
      "no-iostream-in-lib",
      "banned-fn",
      "no-direct-persistence",
      "no-raw-nonfinite",
      "no-raw-wire",
      "no-raw-intrinsics",
      "no-ignored-status",
      "no-include-cycle",
      "no-unordered-iteration",
      "no-wall-clock",
      "no-pointer-keys",
      "parallel-capture-audit",
      "unused-include",
      "unused-suppression",
  };
  return kNames;
}

bool Baseline::Matches(const Diagnostic& diagnostic) const {
  const std::string normalized = NormalizedPath(diagnostic.file);
  for (const Entry& e : entries) {
    if (e.rule == diagnostic.rule && PathEndsWith(normalized, e.path_suffix)) {
      return true;
    }
  }
  return false;
}

Baseline ParseBaseline(const std::string& content) {
  Baseline baseline;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    Baseline::Entry entry;
    if (fields >> entry.rule >> entry.path_suffix) {
      baseline.entries.push_back(std::move(entry));
    }
  }
  return baseline;
}

std::vector<Diagnostic> ApplyBaseline(std::vector<Diagnostic> diagnostics,
                                      const Baseline& baseline) {
  diagnostics.erase(
      std::remove_if(diagnostics.begin(), diagnostics.end(),
                     [&baseline](const Diagnostic& d) {
                       return baseline.Matches(d);
                     }),
      diagnostics.end());
  return diagnostics;
}

std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files) {
  std::vector<TokenizedFile> tokenized;
  tokenized.reserve(files.size());
  for (const SourceFile& file : files) tokenized.push_back(Tokenize(file));

  std::vector<Diagnostic> diagnostics;
  Suppressions suppressions(tokenized);
  Context ctx{tokenized, &suppressions, &diagnostics};
  RunFileRules(&ctx);
  RunDeterminismRules(&ctx);
  RunCrossTuRules(&ctx);
  suppressions.ReportUnused(tokenized, &diagnostics);

  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return diagnostics;
}

std::vector<Diagnostic> LintPaths(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  std::vector<Diagnostic> diagnostics;
  auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
  };
  auto load = [&files](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    files.push_back(SourceFile{p.generic_string(), contents.str()});
  };
  for (const std::string& root : roots) {
    const fs::path path(root);
    if (fs::is_regular_file(path)) {
      load(path);
    } else if (fs::is_directory(path)) {
      std::vector<fs::path> found;
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && is_source(entry.path())) {
          found.push_back(entry.path());
        }
      }
      std::sort(found.begin(), found.end());
      for (const fs::path& p : found) load(p);
    } else {
      diagnostics.push_back(
          Diagnostic{root, 0, "bad-input", "no such file or directory"});
    }
  }
  std::vector<Diagnostic> lint_result = Lint(files);
  diagnostics.insert(diagnostics.end(), lint_result.begin(),
                     lint_result.end());
  return diagnostics;
}

}  // namespace lighttr::lint
