#include "mapmatch/hmm_map_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "roadnet/shortest_path.h"

namespace lighttr::mapmatch {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

HmmMapMatcher::HmmMapMatcher(const roadnet::SegmentIndex& index,
                             HmmOptions options)
    : index_(index), options_(options) {
  LIGHTTR_CHECK_GT(options_.candidate_radius_m, 0.0);
  LIGHTTR_CHECK_GE(options_.radius_doublings, 0);
  LIGHTTR_CHECK_GE(options_.max_candidates, 1);
  LIGHTTR_CHECK_GT(options_.emission_sigma_m, 0.0);
  LIGHTTR_CHECK_GT(options_.transition_beta_m, 0.0);
  LIGHTTR_CHECK_GT(options_.epsilon_s, 0.0);
}

Result<traj::MatchedTrajectory> HmmMapMatcher::Match(
    const traj::RawTrajectory& raw) const {
  // Ingestion boundary: refuse malformed GPS input (non-finite values,
  // time travel, far-out-of-grid points) before any matching math.
  LIGHTTR_RETURN_NOT_OK(traj::ValidateTrajectory(index_.network(), raw));
  const roadnet::RoadNetwork& network = index_.network();
  const size_t n = raw.points.size();

  // 1. Candidate generation with radius fallback.
  std::vector<std::vector<roadnet::SegmentIndex::Candidate>> candidates(n);
  for (size_t i = 0; i < n; ++i) {
    double radius = options_.candidate_radius_m;
    for (int attempt = 0; attempt <= options_.radius_doublings; ++attempt) {
      candidates[i] = index_.Nearby(raw.points[i].position, radius);
      if (!candidates[i].empty()) break;
      radius *= 2.0;
    }
    if (candidates[i].empty()) {
      return Status::NotFound("GPS point has no road candidate in range");
    }
    if (static_cast<int>(candidates[i].size()) > options_.max_candidates) {
      candidates[i].resize(options_.max_candidates);
    }
  }

  // 2. Viterbi over the candidate lattice.
  const double inv_2sigma2 =
      1.0 / (2.0 * options_.emission_sigma_m * options_.emission_sigma_m);
  auto emission_logp = [&](const roadnet::SegmentIndex::Candidate& c) {
    return -c.projection.distance_m * c.projection.distance_m * inv_2sigma2;
  };

  roadnet::DijkstraEngine engine(network);
  std::vector<std::vector<double>> score(n);
  std::vector<std::vector<int>> backpointer(n);
  score[0].resize(candidates[0].size());
  backpointer[0].assign(candidates[0].size(), -1);
  for (size_t j = 0; j < candidates[0].size(); ++j) {
    score[0][j] = emission_logp(candidates[0][j]);
  }

  for (size_t i = 1; i < n; ++i) {
    const double line_m = geo::EquirectangularMeters(
        raw.points[i - 1].position, raw.points[i].position);
    score[i].assign(candidates[i].size(), kNegInf);
    backpointer[i].assign(candidates[i].size(), -1);
    for (size_t j = 0; j < candidates[i].size(); ++j) {
      const double em = emission_logp(candidates[i][j]);
      for (size_t k = 0; k < candidates[i - 1].size(); ++k) {
        if (score[i - 1][k] == kNegInf) continue;
        const double route_m = roadnet::DirectedTravelDistance(
            network, engine, candidates[i - 1][k].projection.position,
            candidates[i][j].projection.position);
        if (route_m == roadnet::kUnreachable) continue;
        const double tr =
            -std::abs(route_m - line_m) / options_.transition_beta_m;
        const double total = score[i - 1][k] + tr + em;
        if (total > score[i][j]) {
          score[i][j] = total;
          backpointer[i][j] = static_cast<int>(k);
        }
      }
    }
    // If every transition was unreachable, restart the chain at this point
    // (standard HMM-breaking behaviour for disconnected candidates).
    bool any = false;
    for (double s : score[i]) any = any || (s != kNegInf);
    if (!any) {
      for (size_t j = 0; j < candidates[i].size(); ++j) {
        score[i][j] = emission_logp(candidates[i][j]);
        backpointer[i][j] = -1;
      }
    }
  }

  // 3. Backtrace.
  std::vector<int> best(n, -1);
  {
    size_t argmax = 0;
    for (size_t j = 1; j < score[n - 1].size(); ++j) {
      if (score[n - 1][j] > score[n - 1][argmax]) argmax = j;
    }
    best[n - 1] = static_cast<int>(argmax);
  }
  for (size_t i = n - 1; i > 0; --i) {
    int prev = backpointer[i][static_cast<size_t>(best[i])];
    if (prev < 0) {
      // Chain restart: pick the locally best previous candidate.
      size_t argmax = 0;
      for (size_t j = 1; j < score[i - 1].size(); ++j) {
        if (score[i - 1][j] > score[i - 1][argmax]) argmax = j;
      }
      prev = static_cast<int>(argmax);
    }
    best[i - 1] = prev;
  }

  // 4. Emit the matched trajectory.
  traj::MatchedTrajectory matched;
  matched.driver_id = raw.driver_id;
  matched.epsilon_s = options_.epsilon_s;
  const double t0 = raw.points[0].t;
  matched.points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& cand = candidates[i][static_cast<size_t>(best[i])];
    matched.points.push_back(traj::MatchedPoint{
        cand.projection.position, raw.points[i].t,
        geo::TimeBin(raw.points[i].t, t0, options_.epsilon_s)});
  }
  return matched;
}

}  // namespace lighttr::mapmatch
