// Chaos scenario description: one fully seeded point in the fault-axis
// product space (storage faults, hostile network, injected crashes,
// client faults, self-healing), plus a flat `key=value` repro grammar so
// any failing scenario replays from a single --chaos-repro string.
#ifndef LIGHTTR_CHAOS_SCENARIO_H_
#define LIGHTTR_CHAOS_SCENARIO_H_

#include <cstdint>
#include <string>

#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "fl/adversary.h"
#include "fl/fault_injection.h"
#include "fl/run_state.h"
#include "fl/transport/channel.h"

namespace lighttr::chaos {

/// Test-only bugs the campaign can plant to prove the invariant net
/// catches real defects (and that shrinking reduces them to a minimal
/// repro). Planted bugs are never removed by the shrinker.
enum class PlantedBug {
  kNone = 0,
  /// FaultyFileSystem leaves the temp file behind when an atomic
  /// write's rename fails; the orphan-temp invariant must catch it.
  kLeakTmp,
  /// An undefended model-poisoning run: the adversary axis is forced on
  /// with an aggressive scaled-ascent attack and the Byzantine defense
  /// disarmed. The adversary-containment invariant must catch the
  /// corrupted model (and shrinking must keep the adversary axis).
  kStealthPoison,
};

const char* PlantedBugName(PlantedBug bug);

/// One chaos scenario: the core run shape plus one optional block per
/// fault axis. An axis whose flag is false contributes nothing (its
/// config block is ignored and not serialized).
struct ChaosScenario {
  // Core run shape (always present).
  uint64_t seed = 7;
  int rounds = 6;
  int clients = 5;
  int threads = 1;
  double client_fraction = 1.0;
  double quorum_fraction = 0.25;
  /// Self-healing axis: health verdicts, divergence rollback, client
  /// quarantine. An axis (not a config block) because rollbacks rewind
  /// committed state — prime territory for conservation bugs.
  bool healing = false;

  /// Storage axis: all durability IO through a fault-injecting
  /// filesystem (ENOSPC, torn appends, rename failures, bit rot,
  /// temp-file litter, lost unsynced data at crash).
  bool storage_on = false;
  StorageFaultConfig storage;

  /// Network axis: hostile wire transport between server and clients.
  bool net_on = false;
  fl::transport::ChannelFaultConfig net;

  /// Client-fault axis: dropouts, stragglers, corrupted uploads.
  bool client_faults_on = false;
  fl::FaultInjectionConfig client_faults;

  /// Crash axis: InjectedCrash at (point, round), SimulateCrash on the
  /// filesystem, then resume from whatever survived.
  bool crash_on = false;
  fl::CrashPoint crash_point = fl::CrashPoint::kMidSave;
  int crash_round = 2;

  /// Adversary axis: compromised clients poison their uploads after
  /// local training (fl/adversary). `adversary_defended` arms the
  /// Byzantine counter-measures (Multi-Krum aggregation + the healing
  /// layer); campaign sampling always defends — an undefended poisoning
  /// run legitimately corrupts the model, which is the planted
  /// stealth-poison bug's job, not a sampled scenario's.
  bool adversary_on = false;
  fl::AdversaryConfig adversary;
  bool adversary_defended = true;

  /// Test-only planted bug (see PlantedBug).
  PlantedBug plant = PlantedBug::kNone;
};

/// Number of enabled fault axes (healing, storage, net, client faults,
/// crash, adversary). The shrinker minimizes this before touching
/// parameters.
int AxisCount(const ChaosScenario& scenario);

/// Serializes to the flat repro grammar, e.g.
///   seed=7 rounds=4 clients=3 threads=1 fraction=1 quorum=0.25
///   healing=0 storage=1 storage.rename=0.2 ... crash=0 plant=leak-tmp
/// The six axis flags always appear; an axis's sub-keys appear only
/// when it is enabled. ParseRepro(FormatRepro(s)) round-trips exactly
/// (doubles use shortest-round-trip formatting).
std::string FormatRepro(const ChaosScenario& scenario);

/// Parses the FormatRepro grammar. Unknown keys, malformed numbers, and
/// out-of-range values yield InvalidArgument.
[[nodiscard]] Result<ChaosScenario> ParseRepro(const std::string& text);

/// Draws one random scenario from `rng`, each axis enabled with
/// moderate probability and its parameters drawn from ranges that keep
/// a short training run meaningful (faults frequent enough to exercise
/// every code path, not so hostile that nothing ever commits).
ChaosScenario SampleScenario(Rng* rng);

}  // namespace lighttr::chaos

#endif  // LIGHTTR_CHAOS_SCENARIO_H_
