#include "fl/local_trainer.h"

#include "common/check.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace lighttr::fl {

double TrainLocal(RecoveryModel* model, nn::Optimizer* optimizer,
                  const std::vector<traj::IncompleteTrajectory>& data,
                  const LocalTrainOptions& options, Rng* rng) {
  LIGHTTR_CHECK(model != nullptr);
  LIGHTTR_CHECK(optimizer != nullptr);
  LIGHTTR_CHECK(rng != nullptr);
  LIGHTTR_CHECK_GE(options.epochs, 1);
  LIGHTTR_CHECK_GE(options.lambda, 0.0);
  if (data.empty()) return 0.0;

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (const traj::IncompleteTrajectory& trajectory : data) {
      ForwardResult student = model->Forward(trajectory, /*training=*/true, rng);
      nn::Tensor loss = student.loss;
      if (options.teacher != nullptr && options.lambda > 0.0 &&
          student.representation.defined()) {
        nn::Matrix teacher_repr;
        {
          nn::NoGradScope no_grad;
          ForwardResult teacher = options.teacher->Forward(
              trajectory, /*training=*/false, nullptr);
          if (teacher.representation.defined()) {
            teacher_repr = teacher.representation.value();
          }
        }
        if (teacher_repr.SameShape(student.representation.value())) {
          loss = nn::Add(
              loss, nn::Scale(nn::L2DistillLoss(student.representation,
                                                teacher_repr),
                              static_cast<nn::Scalar>(options.lambda)));
        }
      }
      epoch_loss += loss.ScalarValue();
      loss.Backward();
      if (options.clip_norm > 0.0) {
        nn::ClipGradNorm(&model->params(), options.clip_norm);
      }
      optimizer->Step(&model->params());
    }
    last_epoch_loss = epoch_loss / static_cast<double>(data.size());
  }
  return last_epoch_loss;
}

double EvaluateSegmentAccuracy(
    RecoveryModel* model,
    const std::vector<traj::IncompleteTrajectory>& data) {
  LIGHTTR_CHECK(model != nullptr);
  int64_t correct = 0;
  int64_t total = 0;
  for (const traj::IncompleteTrajectory& trajectory : data) {
    const std::vector<roadnet::PointPosition> recovered =
        model->Recover(trajectory);
    LIGHTTR_CHECK_EQ(recovered.size(), trajectory.size());
    for (size_t t = 0; t < trajectory.size(); ++t) {
      if (trajectory.observed[t]) continue;
      ++total;
      if (recovered[t].segment ==
          trajectory.ground_truth.points[t].position.segment) {
        ++correct;
      }
    }
  }
  if (total == 0) return 0.0;
  return static_cast<double>(correct) / static_cast<double>(total);
}

double EvaluateMeanLoss(RecoveryModel* model,
                        const std::vector<traj::IncompleteTrajectory>& data) {
  LIGHTTR_CHECK(model != nullptr);
  if (data.empty()) return 0.0;
  nn::NoGradScope no_grad;
  double total = 0.0;
  for (const traj::IncompleteTrajectory& trajectory : data) {
    ForwardResult result = model->Forward(trajectory, /*training=*/false,
                                          nullptr);
    total += result.loss.ScalarValue();
  }
  return total / static_cast<double>(data.size());
}

}  // namespace lighttr::fl
