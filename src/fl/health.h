// Round health monitoring for the self-healing federated loop.
//
// Screening (fl/aggregation) protects a single round from a single bad
// upload; nothing before this module watched the *trajectory* of the
// run. RoundHealthMonitor turns each completed round into a verdict:
//
//   kHealthy  — nothing suspicious; the round may serve as a rollback
//               anchor.
//   kSuspect  — corrupt / rejected / norm-outlier uploads were seen but
//               the global model and validation loss look sane (the
//               screening + aggregation layers absorbed the damage).
//   kDiverged — the global model is numerically broken or the
//               validation loss blew past the rolling median + MAD
//               envelope; the trainer must roll back and escalate.
//
// Three detectors feed the verdict:
//   (a) non-finite scans of the screened upload outcomes and of the
//       post-aggregation global model (common/finite helpers);
//   (b) update-delta-norm outlier detection against a rolling window
//       (norm > median + k * MAD flags the upload, not the round);
//   (c) validation-loss spike detection against a rolling median + MAD
//       of past healthy rounds.
//
// Everything is a pure function of the observation sequence, so
// verdicts are bitwise identical across thread widths, and the window
// state serializes into fl/run_state snapshots (v2) so a resumed or
// rolled-back run re-judges identically.
#ifndef LIGHTTR_FL_HEALTH_H_
#define LIGHTTR_FL_HEALTH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/arena.h"

namespace lighttr::fl {

/// Per-round health verdict, ordered by severity.
enum class HealthVerdict {
  kHealthy = 0,
  kSuspect = 1,
  kDiverged = 2,
};

const char* HealthVerdictName(HealthVerdict verdict);

/// Detector thresholds. Defaults are deliberately loose: a self-healing
/// layer that cries wolf (rolls back healthy rounds) costs more than
/// one that waits a round longer to be sure.
struct HealthMonitorConfig {
  /// Rolling window of accepted update delta norms.
  int norm_window = 64;
  /// Outlier detection stays silent until this many norms are banked.
  int min_norm_history = 8;
  /// Upload is an outlier when norm > median + this multiple of the MAD
  /// (with a relative floor so a zero-MAD window cannot flag everything).
  double norm_outlier_mult = 8.0;
  /// Rolling window of per-round validation losses (healthy rounds only).
  int loss_window = 16;
  /// Spike detection stays silent until this many losses are banked
  /// (non-finite losses diverge regardless of history).
  int min_loss_history = 3;
  /// Round diverged when loss > median + this multiple of max(MAD, floor).
  double loss_spike_mult = 10.0;
  /// MAD floor, as a fraction of max(1, |median|): guards the common
  /// early-training case where the banked losses are nearly identical
  /// and the raw MAD is ~0.
  double loss_mad_floor = 0.25;
};

/// One screened upload outcome, in canonical selection order. The
/// trainer fills everything except `outlier`; Judge sets `outlier` for
/// accepted uploads whose delta norm escapes the rolling envelope.
/// `suspected` is set by the trainer from the Byzantine aggregator's
/// per-upload verdict (fl/aggregation) before Judge runs.
struct UpdateObservation {
  int client_index = -1;
  bool corrupt = false;        // screen-rejected: non-finite scalars
  bool norm_rejected = false;  // screen-rejected: delta-norm bound
  bool accepted = false;       // entered aggregation
  double delta_norm = 0.0;     // L2 delta vs global; valid when accepted
  bool outlier = false;        // set by Judge
  bool suspected = false;      // Byzantine-aggregator poison flag
};

/// Everything Judge decided about one round, for telemetry and tests.
struct RoundHealthReport {
  HealthVerdict verdict = HealthVerdict::kHealthy;
  bool global_nonfinite = false;  // post-aggregation model has NaN/Inf
  bool loss_nonfinite = false;
  bool loss_spike = false;
  int corrupt_uploads = 0;
  int rejected_uploads = 0;
  int outlier_uploads = 0;
  int suspected_uploads = 0;
  // The envelopes the round was judged against (0 until enough history).
  double norm_median = 0.0;
  double norm_mad = 0.0;
  double loss_median = 0.0;
  double loss_mad = 0.0;
};

/// Rolling-window health judge. Not thread-safe; the trainer calls it
/// once per round from the coordinating thread.
class RoundHealthMonitor {
 public:
  explicit RoundHealthMonitor(HealthMonitorConfig config = {});

  const HealthMonitorConfig& config() const { return config_; }

  /// Judges one completed round. `observations` must be in canonical
  /// selection order (part of the determinism contract); Judge flags
  /// norm outliers in place. `global_params` is the post-aggregation
  /// global model, `valid_loss` its validation loss. Window mutation is
  /// verdict-aware: accepted non-outlier norms are always banked, the
  /// loss only when the round did not diverge (a diverged round is
  /// about to be rolled back and must not poison the envelope).
  RoundHealthReport Judge(std::vector<UpdateObservation>* observations,
                          const std::vector<nn::Scalar>& global_params,
                          double valid_loss);

  /// Banked history sizes (for tests and telemetry).
  int norm_history() const { return static_cast<int>(norm_window_.size()); }
  int loss_history() const { return static_cast<int>(loss_window_.size()); }

  /// Serializes the rolling windows (for fl/run_state v2 snapshots).
  std::string SerializeState() const;

  /// Restores SerializeState output. Rejects malformed input without
  /// touching the current state.
  [[nodiscard]] Status DeserializeState(const std::string& bytes);

 private:
  HealthMonitorConfig config_;
  // Oldest first; trimmed to the configured window sizes.
  std::vector<double> norm_window_;
  std::vector<double> loss_window_;
};

/// Median of `values` (by copy+sort: deterministic, O(n log n)).
/// Returns 0 for an empty input.
double Median(std::vector<double> values);

/// Median absolute deviation around `center`. Returns 0 when empty.
double MedianAbsDeviation(const std::vector<double>& values, double center);

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_HEALTH_H_
