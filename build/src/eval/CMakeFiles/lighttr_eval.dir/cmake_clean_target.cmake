file(REMOVE_RECURSE
  "liblighttr_eval.a"
)
