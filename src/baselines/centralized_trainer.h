// Centralized (non-federated) training — the comparison point of paper
// Table VI, where MTrajRec is trained on all data gathered centrally.
#ifndef LIGHTTR_BASELINES_CENTRALIZED_TRAINER_H_
#define LIGHTTR_BASELINES_CENTRALIZED_TRAINER_H_

#include <memory>
#include <vector>

#include "fl/recovery_model.h"
#include "traj/trajectory.h"

namespace lighttr::baselines {

/// Options for TrainCentralized.
struct CentralizedOptions {
  int epochs = 10;
  double learning_rate = 1e-3;
  uint64_t seed = 23;
};

/// Trains a fresh model from `factory` on the pooled dataset and returns
/// it.
std::unique_ptr<fl::RecoveryModel> TrainCentralized(
    const fl::ModelFactory& factory,
    const std::vector<traj::IncompleteTrajectory>& train_data,
    const CentralizedOptions& options);

}  // namespace lighttr::baselines

#endif  // LIGHTTR_BASELINES_CENTRALIZED_TRAINER_H_
