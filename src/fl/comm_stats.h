// Communication accounting for the federated simulator (paper Sec. V-B3
// ties communication cost to parameter count; we record exact serialized
// bytes per round and direction).
#ifndef LIGHTTR_FL_COMM_STATS_H_
#define LIGHTTR_FL_COMM_STATS_H_

#include <cstdint>

namespace lighttr::fl {

/// Accumulated transport statistics of one federated run.
struct CommStats {
  int64_t bytes_downlink = 0;  // server -> clients
  int64_t bytes_uplink = 0;    // clients -> server
  int64_t messages = 0;
  int64_t rounds = 0;

  int64_t TotalBytes() const { return bytes_downlink + bytes_uplink; }

  /// Transfer time under a simple bandwidth model (e.g., 1 Gbps -> pass
  /// 125e6 bytes/s), plus per-message latency.
  double SimulatedSeconds(double bytes_per_second,
                          double latency_s_per_message) const {
    return static_cast<double>(TotalBytes()) / bytes_per_second +
           static_cast<double>(messages) * latency_s_per_message;
  }
};

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_COMM_STATS_H_
