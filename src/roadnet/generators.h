// Synthetic road-network generators.
//
// The paper evaluates on the Beijing road network; this module builds
// city-like directed graphs with comparable local structure (grid blocks,
// diagonal arterials, one-way streets, perturbed intersections) so that
// map matching, recovery, and metrics exercise the same code paths.
#ifndef LIGHTTR_ROADNET_GENERATORS_H_
#define LIGHTTR_ROADNET_GENERATORS_H_

#include "common/rng.h"
#include "geo/geo_point.h"
#include "roadnet/road_network.h"

namespace lighttr::roadnet {

/// Parameters for GenerateCityGrid.
struct CityGridOptions {
  int32_t rows = 12;            // intersection rows
  int32_t cols = 12;            // intersection columns
  double spacing_m = 250.0;     // nominal block size
  double jitter_frac = 0.15;    // intersection position jitter (fraction of spacing)
  double diagonal_prob = 0.08;  // chance of a diagonal arterial per block
  double one_way_prob = 0.10;   // chance a street is one-way
  double missing_prob = 0.05;   // chance a block edge is absent
  geo::GeoPoint origin{39.90, 116.38};  // south-west corner (Beijing-like)
};

/// Generates a perturbed grid city. The graph is guaranteed to be strongly
/// connected (a two-way ring road around the border is always present).
RoadNetwork GenerateCityGrid(const CityGridOptions& options, Rng* rng);

/// Generates a simple two-way chain of `n` vertices spaced `spacing_m`
/// apart along the equator-parallel direction. Useful in tests.
RoadNetwork GenerateChain(int32_t n, double spacing_m,
                          const geo::GeoPoint& origin = {39.90, 116.38});

/// Generates a two-way ring of `n` vertices with radius `radius_m`.
RoadNetwork GenerateRing(int32_t n, double radius_m,
                         const geo::GeoPoint& center = {39.95, 116.45});

}  // namespace lighttr::roadnet

#endif  // LIGHTTR_ROADNET_GENERATORS_H_
