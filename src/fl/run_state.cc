#include "fl/run_state.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <sstream>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/crc32.h"
#include "common/env.h"

namespace lighttr::fl {

namespace {

constexpr char kMagic[4] = {'L', 'T', 'R', 'S'};
// v1: original layout (PR 3). v2 appends the self-healing tail (extra
// FaultStats counters, reputation + monitor blobs, escalation latch)
// after the optimizer blobs. v3 appends the wire-transport tail (the
// six net fault counters + the channel RNG stream). v4 appends the
// storage-fault counter. v5 appends the adversary tail (poisoned/
// suspected counters + adversary engine blob + norm-bound window).
// Each version's shared prefix is byte-identical, and older snapshots
// still decode with the newer tails left at defaults.
constexpr uint32_t kVersion = 5;
constexpr uint32_t kMinVersion = 1;
constexpr char kJournalName[] = "journal.log";
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".ltrs";

std::string JournalPath(const std::string& dir) {
  return dir + "/" + kJournalName;
}

// One journal line: twenty-six space-separated fields followed by the
// CRC-32 (8 hex digits) of everything before the final space. Doubles
// use %.17g so the text round-trips bit-exactly. Fields 12..17 are the
// self-healing columns added in v2, fields 18..23 the wire-transport
// columns added in v3, field 24 the storage-fault column added in v4,
// fields 25..26 the adversary columns added in v5; the parser accepts
// any line with at least the eleven v1 fields and ignores unknown
// trailing fields, so journals written by newer builds (with further
// columns) still load.
std::string FormatJournalBody(const RoundRecord& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%d %.17g %.17g %.17g %d %d %d %d %d %d %d %.17g %d %d %d %d %d"
                " %d %d %d %d %d %d %d %d %d",
                r.round, r.mean_train_loss, r.global_valid_accuracy,
                r.wall_seconds, r.sampled, r.reporting, r.drops, r.retries,
                r.stragglers, r.rejected_uploads, r.quorum_met ? 1 : 0,
                r.valid_loss, r.verdict, r.outlier_uploads, r.quarantined,
                r.skipped_quarantined, r.escalated ? 1 : 0, r.net_retries,
                r.net_timeouts, r.net_crc_drops, r.net_dedup_drops,
                r.net_late_drops, r.net_lost, r.storage_write_failures,
                r.poisoned_uploads, r.suspected_uploads);
  return std::string(buf);
}

bool ParseJournalLine(const std::string& line, RoundRecord* out) {
  const size_t last_space = line.rfind(' ');
  if (last_space == std::string::npos) return false;
  const std::string body = line.substr(0, last_space);
  const std::string crc_text = line.substr(last_space + 1);
  if (crc_text.size() != 8) return false;
  char* end = nullptr;
  const unsigned long crc_claim = std::strtoul(crc_text.c_str(), &end, 16);
  if (end != crc_text.c_str() + crc_text.size()) return false;
  if (static_cast<uint32_t>(crc_claim) != Crc32(body)) return false;

  std::istringstream tokens(body);
  std::vector<std::string> field;
  std::string token;
  while (tokens >> token) field.push_back(token);
  // Eleven v1 fields are mandatory; anything beyond the fields this
  // build knows is tolerated (forward compatibility with newer builds
  // that append further columns — the CRC already vouches for them).
  if (field.size() < 11) return false;

  auto to_int = [](const std::string& s, int* v) {
    char* e = nullptr;
    const long long parsed = std::strtoll(s.c_str(), &e, 10);
    if (e != s.c_str() + s.size()) return false;
    *v = static_cast<int>(parsed);
    return true;
  };
  auto to_double = [](const std::string& s, double* v) {
    char* e = nullptr;
    *v = std::strtod(s.c_str(), &e);
    return e == s.c_str() + s.size();
  };
  int quorum = 0;
  if (!to_int(field[0], &out->round) ||
      !to_double(field[1], &out->mean_train_loss) ||
      !to_double(field[2], &out->global_valid_accuracy) ||
      !to_double(field[3], &out->wall_seconds) ||
      !to_int(field[4], &out->sampled) || !to_int(field[5], &out->reporting) ||
      !to_int(field[6], &out->drops) || !to_int(field[7], &out->retries) ||
      !to_int(field[8], &out->stragglers) ||
      !to_int(field[9], &out->rejected_uploads) ||
      !to_int(field[10], &quorum)) {
    return false;
  }
  out->quorum_met = quorum != 0;
  // Self-healing columns (v2); a v1 line leaves them at defaults.
  int escalated = 0;
  if (field.size() >= 12 && !to_double(field[11], &out->valid_loss)) {
    return false;
  }
  if (field.size() >= 13 && !to_int(field[12], &out->verdict)) return false;
  if (field.size() >= 14 && !to_int(field[13], &out->outlier_uploads)) {
    return false;
  }
  if (field.size() >= 15 && !to_int(field[14], &out->quarantined)) {
    return false;
  }
  if (field.size() >= 16 && !to_int(field[15], &out->skipped_quarantined)) {
    return false;
  }
  if (field.size() >= 17 && !to_int(field[16], &escalated)) return false;
  out->escalated = escalated != 0;
  // Wire-transport columns (v3); an older line leaves them at defaults.
  if (field.size() >= 18 && !to_int(field[17], &out->net_retries)) {
    return false;
  }
  if (field.size() >= 19 && !to_int(field[18], &out->net_timeouts)) {
    return false;
  }
  if (field.size() >= 20 && !to_int(field[19], &out->net_crc_drops)) {
    return false;
  }
  if (field.size() >= 21 && !to_int(field[20], &out->net_dedup_drops)) {
    return false;
  }
  if (field.size() >= 22 && !to_int(field[21], &out->net_late_drops)) {
    return false;
  }
  if (field.size() >= 23 && !to_int(field[22], &out->net_lost)) return false;
  // Storage-fault column (v4); an older line leaves it at default.
  if (field.size() >= 24 && !to_int(field[23], &out->storage_write_failures)) {
    return false;
  }
  // Adversary columns (v5); an older line leaves them at defaults.
  if (field.size() >= 25 && !to_int(field[24], &out->poisoned_uploads)) {
    return false;
  }
  if (field.size() >= 26 && !to_int(field[25], &out->suspected_uploads)) {
    return false;
  }
  return true;
}

std::string FormatJournalLine(const RoundRecord& r) {
  const std::string body = FormatJournalBody(r);
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(body));
  return body + " " + crc + "\n";
}

/// Parent directory of `path` ("" when there is none to create).
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return std::string();
  return path.substr(0, slash);
}

}  // namespace

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kNone: return "none";
    case CrashPoint::kBeforeSave: return "before-save";
    case CrashPoint::kMidSave: return "mid-save";
    case CrashPoint::kAfterSave: return "after-save";
    case CrashPoint::kMidRound: return "mid-round";
  }
  return "unknown";
}

void MaybeInjectCrash(const DurabilityConfig& config, CrashPoint point,
                      int round) {
  if (config.crash_point == point && config.crash_round == round &&
      point != CrashPoint::kNone) {
    throw InjectedCrash{point, round};
  }
}

std::string EncodeRunState(const ServerRunState& state) {
  BinaryWriter writer;
  writer.WriteBytes(kMagic, sizeof(kMagic));
  writer.WriteU32(kVersion);
  writer.WriteU32(static_cast<uint32_t>(state.round));
  writer.WriteString(state.rng_state);
  writer.WriteString(state.fault_rng_state);
  writer.WriteI64(state.comm.bytes_downlink);
  writer.WriteI64(state.comm.bytes_uplink);
  writer.WriteI64(state.comm.messages);
  writer.WriteI64(state.comm.rounds);
  writer.WriteI64(state.faults.drops);
  writer.WriteI64(state.faults.retries);
  writer.WriteI64(state.faults.stragglers);
  writer.WriteI64(state.faults.rejected_uploads);
  writer.WriteI64(state.faults.clipped_uploads);
  writer.WriteI64(state.faults.quorum_misses);
  writer.WriteI64(state.faults.sampled_clients);
  writer.WriteI64(state.faults.reporting_clients);
  writer.WriteF64(state.faults.simulated_backoff_s);
  writer.WriteString(state.global_params_blob);
  writer.WriteU32(static_cast<uint32_t>(state.optimizer_blobs.size()));
  for (const std::string& blob : state.optimizer_blobs) {
    writer.WriteString(blob);
  }
  // v2 self-healing tail. Appended last so the v1 prefix stays
  // byte-identical.
  writer.WriteI64(state.faults.outlier_uploads);
  writer.WriteI64(state.faults.diverged_rounds);
  writer.WriteI64(state.faults.rollbacks);
  writer.WriteI64(state.faults.quarantine_events);
  writer.WriteI64(state.faults.parole_events);
  writer.WriteI64(state.faults.quarantined_skips);
  writer.WriteString(state.reputation_blob);
  writer.WriteString(state.monitor_blob);
  writer.WriteU8(state.escalated ? 1 : 0);
  // v3 wire-transport tail.
  writer.WriteI64(state.faults.net_retries);
  writer.WriteI64(state.faults.net_timeouts);
  writer.WriteI64(state.faults.net_crc_drops);
  writer.WriteI64(state.faults.net_dedup_drops);
  writer.WriteI64(state.faults.net_late_drops);
  writer.WriteI64(state.faults.net_lost);
  writer.WriteString(state.net_rng_state);
  // v4 storage-fault tail.
  writer.WriteI64(state.faults.storage_write_failures);
  // v5 adversary tail.
  writer.WriteI64(state.faults.poisoned_uploads);
  writer.WriteI64(state.faults.suspected_uploads);
  writer.WriteString(state.adversary_blob);
  writer.WriteString(state.normbound_blob);
  std::string out = writer.Take();
  AppendCrc32Trailer(&out);
  return out;
}

Status DecodeRunState(const std::string& bytes, ServerRunState* state) {
  LIGHTTR_CHECK(state != nullptr);
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t)) {
    return Status::InvalidArgument("run-state snapshot too short");
  }
  // Integrity first: nothing is interpreted until the whole-file CRC
  // proves the bytes are exactly what was written.
  size_t body_len = 0;
  if (!CheckCrc32Trailer(bytes, &body_len).ok()) {
    return Status::InvalidArgument(
        "run-state snapshot failed CRC check (truncated or corrupted)");
  }
  const std::string body = bytes.substr(0, body_len);

  BinaryReader reader(body);
  char magic[4];
  LIGHTTR_RETURN_NOT_OK(reader.ReadBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad run-state magic");
  }
  uint32_t version = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version < kMinVersion || version > kVersion) {
    return Status::InvalidArgument("unsupported run-state version " +
                                   std::to_string(version));
  }
  uint32_t round = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&round));
  state->round = static_cast<int>(round);
  LIGHTTR_RETURN_NOT_OK(reader.ReadString(&state->rng_state));
  LIGHTTR_RETURN_NOT_OK(reader.ReadString(&state->fault_rng_state));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->comm.bytes_downlink));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->comm.bytes_uplink));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->comm.messages));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->comm.rounds));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.drops));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.retries));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.stragglers));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.rejected_uploads));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.clipped_uploads));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.quorum_misses));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.sampled_clients));
  LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.reporting_clients));
  LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&state->faults.simulated_backoff_s));
  LIGHTTR_RETURN_NOT_OK(reader.ReadString(&state->global_params_blob));
  uint32_t opt_count = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&opt_count));
  state->optimizer_blobs.clear();
  for (uint32_t i = 0; i < opt_count; ++i) {
    std::string blob;
    LIGHTTR_RETURN_NOT_OK(reader.ReadString(&blob));
    state->optimizer_blobs.push_back(std::move(blob));
  }
  if (version >= 2) {
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.outlier_uploads));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.diverged_rounds));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.rollbacks));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.quarantine_events));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.parole_events));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.quarantined_skips));
    LIGHTTR_RETURN_NOT_OK(reader.ReadString(&state->reputation_blob));
    LIGHTTR_RETURN_NOT_OK(reader.ReadString(&state->monitor_blob));
    uint8_t escalated = 0;
    LIGHTTR_RETURN_NOT_OK(reader.ReadU8(&escalated));
    if (escalated > 1) {
      return Status::InvalidArgument("run-state snapshot: bad escalation flag");
    }
    state->escalated = escalated != 0;
  }
  if (version >= 3) {
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.net_retries));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.net_timeouts));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.net_crc_drops));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.net_dedup_drops));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.net_late_drops));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.net_lost));
    LIGHTTR_RETURN_NOT_OK(reader.ReadString(&state->net_rng_state));
  }
  if (version >= 4) {
    LIGHTTR_RETURN_NOT_OK(
        reader.ReadI64(&state->faults.storage_write_failures));
  }
  if (version >= 5) {
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.poisoned_uploads));
    LIGHTTR_RETURN_NOT_OK(reader.ReadI64(&state->faults.suspected_uploads));
    LIGHTTR_RETURN_NOT_OK(reader.ReadString(&state->adversary_blob));
    LIGHTTR_RETURN_NOT_OK(reader.ReadString(&state->normbound_blob));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in run-state snapshot");
  }
  return Status::Ok();
}

Status SaveRunState(FileSystem* fs, const std::string& path,
                    const ServerRunState& state) {
  LIGHTTR_CHECK(fs != nullptr);
  const std::string parent = ParentDir(path);
  if (!parent.empty()) {
    Status created = fs->CreateDirs(parent);
    if (!created.ok()) {
      return Status::IoError("cannot create snapshot directory " + parent +
                             ": " + created.message());
    }
  }
  return fs->WriteFileAtomic(path, EncodeRunState(state));
}

Status SaveRunState(const std::string& path, const ServerRunState& state) {
  return SaveRunState(RealFileSystemInstance(), path, state);
}

Result<ServerRunState> LoadRunState(FileSystem* fs, const std::string& path) {
  LIGHTTR_CHECK(fs != nullptr);
  Result<std::string> contents = fs->ReadFile(path);
  if (!contents.ok()) return contents.status();
  ServerRunState state;
  LIGHTTR_RETURN_NOT_OK(DecodeRunState(contents.value(), &state));
  return state;
}

Result<ServerRunState> LoadRunState(const std::string& path) {
  return LoadRunState(RealFileSystemInstance(), path);
}

std::string SnapshotPath(const std::string& dir, int round) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%06d%s", kSnapshotPrefix, round,
                kSnapshotSuffix);
  return dir + "/" + name;
}

Result<std::vector<int>> ListSnapshotRounds(FileSystem* fs,
                                            const std::string& dir) {
  LIGHTTR_CHECK(fs != nullptr);
  Result<std::vector<std::string>> names = fs->ListDir(dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("no snapshot directory at " + dir);
    }
    return names.status();
  }
  std::vector<int> rounds;
  for (const std::string& name : names.value()) {
    const size_t prefix_len = std::strlen(kSnapshotPrefix);
    const size_t suffix_len = std::strlen(kSnapshotSuffix);
    if (name.size() <= prefix_len + suffix_len) continue;
    if (name.compare(0, prefix_len, kSnapshotPrefix) != 0) continue;
    if (name.compare(name.size() - suffix_len, suffix_len, kSnapshotSuffix) !=
        0) {
      continue;  // includes in-flight "*.ltrs.tmp" partials
    }
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    char* end = nullptr;
    const long long round = std::strtoll(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size() || round <= 0) continue;
    rounds.push_back(static_cast<int>(round));
  }
  std::sort(rounds.begin(), rounds.end());
  return rounds;
}

Result<std::vector<int>> ListSnapshotRounds(const std::string& dir) {
  return ListSnapshotRounds(RealFileSystemInstance(), dir);
}

void PruneSnapshots(FileSystem* fs, const std::string& dir, int keep) {
  LIGHTTR_CHECK(fs != nullptr);
  Result<std::vector<int>> rounds = ListSnapshotRounds(fs, dir);
  if (!rounds.ok()) return;  // nothing to prune
  const std::vector<int>& all = rounds.value();
  if (static_cast<int>(all.size()) <= keep) return;
  for (size_t i = 0; i + static_cast<size_t>(keep) < all.size(); ++i) {
    (void)fs->Remove(SnapshotPath(dir, all[i]));  // best-effort pruning
  }
}

void PruneSnapshots(const std::string& dir, int keep) {
  PruneSnapshots(RealFileSystemInstance(), dir, keep);
}

Status AppendJournalRecord(FileSystem* fs, const std::string& dir,
                           const RoundRecord& record) {
  LIGHTTR_CHECK(fs != nullptr);
  Status created = fs->CreateDirs(dir);
  if (!created.ok()) {
    return Status::IoError("cannot create journal directory " + dir + ": " +
                           created.message());
  }
  return fs->AppendToFile(JournalPath(dir), FormatJournalLine(record));
}

Status AppendJournalRecord(const std::string& dir, const RoundRecord& record) {
  return AppendJournalRecord(RealFileSystemInstance(), dir, record);
}

Result<std::vector<RoundRecord>> ReadJournal(FileSystem* fs,
                                             const std::string& dir) {
  LIGHTTR_CHECK(fs != nullptr);
  const std::string path = JournalPath(dir);
  if (!fs->Exists(path)) {
    return std::vector<RoundRecord>{};  // fresh directory: empty history
  }
  Result<std::string> contents = fs->ReadFile(path);
  if (!contents.ok()) return contents.status();
  std::vector<RoundRecord> records;
  std::istringstream lines(contents.value());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    RoundRecord record;
    if (!ParseJournalLine(line, &record)) {
      // A line that fails its CRC (or cannot parse) marks the torn
      // tail of a crashed append; everything after it is suspect.
      break;
    }
    records.push_back(record);
  }
  return records;
}

Result<std::vector<RoundRecord>> ReadJournal(const std::string& dir) {
  return ReadJournal(RealFileSystemInstance(), dir);
}

Status RewriteJournal(FileSystem* fs, const std::string& dir,
                      const std::vector<RoundRecord>& records) {
  LIGHTTR_CHECK(fs != nullptr);
  std::string contents;
  for (const RoundRecord& record : records) {
    contents += FormatJournalLine(record);
  }
  Status created = fs->CreateDirs(dir);
  if (!created.ok()) {
    return Status::IoError("cannot create journal directory " + dir + ": " +
                           created.message());
  }
  return fs->WriteFileAtomic(JournalPath(dir), contents);
}

Status RewriteJournal(const std::string& dir,
                      const std::vector<RoundRecord>& records) {
  return RewriteJournal(RealFileSystemInstance(), dir, records);
}

}  // namespace lighttr::fl
