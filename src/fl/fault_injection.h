// Deterministic fault injection for the federated simulator.
//
// Real federated deployments (the setting FedTDP / GOF-TTE target) see
// three dominant client failure modes every round:
//   - dropout:   the client never reports back;
//   - straggler: the client finishes after the server's round deadline;
//   - corruption: the upload arrives, but its scalars are garbage
//                 (NaN/Inf from diverged training, scaled or random
//                 values from bad hardware or hostile clients).
// FaultModel draws these per client-contact from an explicit Rng, so a
// seed fully determines the fault schedule and every resilience
// experiment is reproducible.
#ifndef LIGHTTR_FL_FAULT_INJECTION_H_
#define LIGHTTR_FL_FAULT_INJECTION_H_

#include <vector>

#include "common/rng.h"
#include "nn/arena.h"

namespace lighttr::fl {

/// What happened to one client contact.
enum class FaultType {
  kNone = 0,
  kDropout,     // no response at all
  kStraggler,   // responded after the round deadline
  kCorruption,  // responded in time with a damaged upload
};

/// How a corrupted upload is damaged.
enum class CorruptionKind {
  kNaN = 0,   // a subset of scalars becomes NaN
  kInf,       // a subset of scalars becomes +-Inf
  kScale,     // the whole vector is multiplied by a huge factor
  kGarbage,   // the whole vector is replaced with uniform noise
};

const char* FaultTypeName(FaultType type);
const char* CorruptionKindName(CorruptionKind kind);

/// Per-round, per-client fault probabilities and timing model. All rates
/// are independent Bernoulli draws; dropout shadows straggler shadows
/// corruption (a client that never reports cannot also be late).
struct FaultInjectionConfig {
  double dropout_rate = 0.0;     // P(client never reports)
  double straggler_rate = 0.0;   // P(client is slowed down)
  double corruption_rate = 0.0;  // P(upload is damaged)

  /// Simulated duration of a healthy local update, seconds.
  double nominal_update_s = 0.25;
  /// Straggler slowdown factor is lognormal: exp(N(ln(mean), sigma)).
  double straggler_slowdown_mean = 8.0;
  double straggler_slowdown_sigma = 0.5;
  /// Server-side per-round deadline (simulated seconds). A slowed client
  /// whose update finishes after the deadline is cut off.
  double round_deadline_s = 1.0;

  bool enabled() const {
    return dropout_rate > 0.0 || straggler_rate > 0.0 ||
           corruption_rate > 0.0;
  }
};

/// Outcome of one injected client contact.
struct FaultDraw {
  FaultType type = FaultType::kNone;
  CorruptionKind corruption = CorruptionKind::kNaN;
  /// Simulated duration of the client's local update (slowdown applied).
  double simulated_seconds = 0.0;
};

/// Draws faults and damages uploads. Stateless apart from the config;
/// all randomness comes from the Rng passed per call.
class FaultModel {
 public:
  explicit FaultModel(FaultInjectionConfig config);

  const FaultInjectionConfig& config() const { return config_; }

  /// Draws the fate of one client contact. Deterministic in the Rng.
  FaultDraw Draw(Rng* rng) const;

  /// Applies `kind` in place to an upload vector.
  static void Corrupt(CorruptionKind kind, Rng* rng,
                      std::vector<nn::Scalar>* upload);

 private:
  FaultInjectionConfig config_;
};

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_FAULT_INJECTION_H_
