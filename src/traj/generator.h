// Route-following synthetic trajectory generator.
//
// Substitutes for the proprietary Tdrive/Geolife GPS feeds: vehicles draw
// realistic routes (chained shortest paths between random destinations),
// move at a per-trajectory cruise speed with per-step jitter, and are
// sampled every epsilon seconds to produce map-matched trajectories
// (Definition 5). Raw noisy GPS views are derived via ToRawTrajectory.
#ifndef LIGHTTR_TRAJ_GENERATOR_H_
#define LIGHTTR_TRAJ_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace lighttr::traj {

/// Tunables for trajectory synthesis.
struct GeneratorOptions {
  double epsilon_s = 15.0;      // sampling rate (Definition 4)
  double speed_mps_min = 6.0;   // cruise speed range
  double speed_mps_max = 16.0;
  double speed_jitter = 0.10;   // per-step multiplicative speed noise
  int min_points = 24;          // trajectory length range (points)
  int max_points = 40;
  double home_radius_m = 1500.0;  // start-vertex bias radius around home
};

/// Generates map-matched trajectories on a fixed road network.
class TrajectoryGenerator {
 public:
  explicit TrajectoryGenerator(const roadnet::RoadNetwork& network);

  /// Generates one trajectory. If `home` is a valid vertex, the route
  /// starts near it (spatial Non-IID-ness across clients, Definition 7).
  /// Fails only on pathological networks where no long-enough route exists.
  Result<MatchedTrajectory> Generate(const GeneratorOptions& options,
                                     roadnet::VertexId home, Rng* rng) const;

  const roadnet::RoadNetwork& network() const { return network_; }

 private:
  /// Picks a start vertex, biased to within options.home_radius_m of
  /// `home` when valid.
  roadnet::VertexId PickStartVertex(const GeneratorOptions& options,
                                    roadnet::VertexId home, Rng* rng) const;

  /// Builds a route (segment sequence) of at least `min_length_m` meters
  /// starting at `start` by chaining shortest paths to random targets.
  Result<std::vector<roadnet::SegmentId>> BuildRoute(roadnet::VertexId start,
                                                     double min_length_m,
                                                     Rng* rng) const;

  const roadnet::RoadNetwork& network_;
};

}  // namespace lighttr::traj

#endif  // LIGHTTR_TRAJ_GENERATOR_H_
