// CHECK-style invariant macros for programming errors.
//
// These abort the process with a diagnostic; they are not a substitute for
// Status-based error handling of recoverable conditions.
#ifndef LIGHTTR_COMMON_CHECK_H_
#define LIGHTTR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/status.h"

namespace lighttr::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line,
               message.c_str());
  std::abort();
}

template <typename A, typename B>
std::string FormatBinaryCheck(const char* expr, const A& a, const B& b) {
  std::ostringstream os;
  os << expr << " (with values " << a << " vs " << b << ")";
  return os.str();
}

}  // namespace lighttr::internal

#define LIGHTTR_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::lighttr::internal::CheckFailed(__FILE__, __LINE__, #cond);        \
    }                                                                     \
  } while (0)

#define LIGHTTR_CHECK_OP(op, a, b)                                        \
  do {                                                                    \
    if (!((a)op(b))) {                                                    \
      ::lighttr::internal::CheckFailed(                                   \
          __FILE__, __LINE__,                                             \
          ::lighttr::internal::FormatBinaryCheck(#a " " #op " " #b, (a),  \
                                                 (b)));                   \
    }                                                                     \
  } while (0)

#define LIGHTTR_CHECK_EQ(a, b) LIGHTTR_CHECK_OP(==, a, b)
#define LIGHTTR_CHECK_NE(a, b) LIGHTTR_CHECK_OP(!=, a, b)
#define LIGHTTR_CHECK_LT(a, b) LIGHTTR_CHECK_OP(<, a, b)
#define LIGHTTR_CHECK_LE(a, b) LIGHTTR_CHECK_OP(<=, a, b)
#define LIGHTTR_CHECK_GT(a, b) LIGHTTR_CHECK_OP(>, a, b)
#define LIGHTTR_CHECK_GE(a, b) LIGHTTR_CHECK_OP(>=, a, b)

/// Aborts if `status_expr` (a lighttr::Status expression) is not OK.
#define LIGHTTR_CHECK_OK(status_expr)                                     \
  do {                                                                    \
    const ::lighttr::Status _st = (status_expr);                          \
    if (!_st.ok()) {                                                      \
      ::lighttr::internal::CheckFailed(__FILE__, __LINE__, _st.ToString()); \
    }                                                                     \
  } while (0)

// Debug contracts: LIGHTTR_DCHECK* mirror the LIGHTTR_CHECK* family but
// compile to nothing under NDEBUG. Use them on hot paths (per-element
// matrix access, per-op shape validation) where an always-on check would
// cost measurable throughput in optimized builds; keep LIGHTTR_CHECK for
// cold paths and for invariants whose violation corrupts persistent
// state. The NDEBUG expansion keeps the condition as an unevaluated
// operand so variables referenced only by a DCHECK do not trigger
// -Wunused under LIGHTTR_WERROR.
#ifdef NDEBUG
#define LIGHTTR_DCHECK(cond) \
  do {                       \
    (void)sizeof((cond));    \
  } while (0)
#define LIGHTTR_DCHECK_OP(op, a, b) \
  do {                              \
    (void)sizeof((a)op(b));         \
  } while (0)
#else
#define LIGHTTR_DCHECK(cond) LIGHTTR_CHECK(cond)
#define LIGHTTR_DCHECK_OP(op, a, b) LIGHTTR_CHECK_OP(op, a, b)
#endif

#define LIGHTTR_DCHECK_EQ(a, b) LIGHTTR_DCHECK_OP(==, a, b)
#define LIGHTTR_DCHECK_NE(a, b) LIGHTTR_DCHECK_OP(!=, a, b)
#define LIGHTTR_DCHECK_LT(a, b) LIGHTTR_DCHECK_OP(<, a, b)
#define LIGHTTR_DCHECK_LE(a, b) LIGHTTR_DCHECK_OP(<=, a, b)
#define LIGHTTR_DCHECK_GT(a, b) LIGHTTR_DCHECK_OP(>, a, b)
#define LIGHTTR_DCHECK_GE(a, b) LIGHTTR_DCHECK_OP(>=, a, b)

#endif  // LIGHTTR_COMMON_CHECK_H_
