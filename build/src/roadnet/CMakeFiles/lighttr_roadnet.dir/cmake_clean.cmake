file(REMOVE_RECURSE
  "CMakeFiles/lighttr_roadnet.dir/astar.cc.o"
  "CMakeFiles/lighttr_roadnet.dir/astar.cc.o.d"
  "CMakeFiles/lighttr_roadnet.dir/generators.cc.o"
  "CMakeFiles/lighttr_roadnet.dir/generators.cc.o.d"
  "CMakeFiles/lighttr_roadnet.dir/road_network.cc.o"
  "CMakeFiles/lighttr_roadnet.dir/road_network.cc.o.d"
  "CMakeFiles/lighttr_roadnet.dir/segment_index.cc.o"
  "CMakeFiles/lighttr_roadnet.dir/segment_index.cc.o.d"
  "CMakeFiles/lighttr_roadnet.dir/shortest_path.cc.o"
  "CMakeFiles/lighttr_roadnet.dir/shortest_path.cc.o.d"
  "liblighttr_roadnet.a"
  "liblighttr_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
