# Empty compiler generated dependencies file for bench_table2_st_operators.
# This may be replaced when dependencies are built.
