#include "lighttr/teacher_training.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "fl/local_trainer.h"
#include "nn/optimizer.h"

namespace lighttr::core {

std::unique_ptr<fl::RecoveryModel> TrainTeacher(
    const fl::ModelFactory& factory,
    const std::vector<traj::ClientDataset>& clients,
    const TeacherTrainingOptions& options) {
  LIGHTTR_CHECK(!clients.empty());
  LIGHTTR_CHECK_GE(options.cycles, 1);
  LIGHTTR_CHECK_GE(options.epochs_per_client, 1);
  LIGHTTR_CHECK_GT(options.data_fraction, 0.0);
  LIGHTTR_CHECK_LE(options.data_fraction, 1.0);

  Rng rng(options.seed);
  Rng teacher_rng = rng.Fork();
  std::unique_ptr<fl::RecoveryModel> teacher = factory(&teacher_rng);
  // The frozen snapshot used as the distillation reference when the
  // incoming knowledge is worth preserving.
  Rng snapshot_rng = rng.Fork();
  std::unique_ptr<fl::RecoveryModel> snapshot = factory(&snapshot_rng);
  nn::AdamOptimizer optimizer(static_cast<nn::Scalar>(options.learning_rate));

  // Per-client training subsets ("a part of its local data").
  std::vector<std::vector<traj::IncompleteTrajectory>> subsets(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    const auto& train = clients[i].train;
    const size_t take = std::max<size_t>(
        1, static_cast<size_t>(options.data_fraction *
                               static_cast<double>(train.size())));
    subsets[i].assign(train.begin(),
                      train.begin() + static_cast<long>(
                                          std::min(take, train.size())));
  }

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    for (size_t i = 0; i < clients.size(); ++i) {
      // Alg. 1 lines 4-10: decide whether the incoming knowledge is
      // useful for this client.
      const double incoming_acc =
          fl::EvaluateSegmentAccuracy(teacher.get(), clients[i].valid);

      fl::LocalTrainOptions local;
      local.epochs = options.epochs_per_client;
      if (incoming_acc >= options.l_t) {
        // Useful: preserve it via Eq. 17 against a frozen snapshot.
        LIGHTTR_CHECK_OK(
            snapshot->params().Deserialize(teacher->params().Serialize()));
        local.teacher = snapshot.get();
        local.lambda = options.lambda0;
      }
      Rng update_rng = rng.Fork();
      fl::TrainLocal(teacher.get(), &optimizer, subsets[i], local,
                     &update_rng);
    }
  }
  return teacher;
}

}  // namespace lighttr::core
