// Lossy parameter-upload compression (extension): uniform 8-bit
// quantization of the flattened model, cutting per-round communication
// by ~4x versus the float32 wire format. On-theme with the paper's
// communication-cost reduction goal (Challenge II).
#ifndef LIGHTTR_FL_COMPRESSION_H_
#define LIGHTTR_FL_COMPRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/arena.h"

namespace lighttr::fl {

/// A quantized parameter blob: per-blob affine int8 code book.
struct QuantizedBlob {
  double min_value = 0.0;
  double max_value = 0.0;
  std::vector<uint8_t> codes;

  /// Wire size in bytes (codes + the two range scalars).
  int64_t WireBytes() const {
    return static_cast<int64_t>(codes.size()) + 2 * sizeof(double);
  }
};

/// Quantizes a flattened parameter vector to 8 bits per weight.
QuantizedBlob QuantizeFlat(const std::vector<nn::Scalar>& flat);

/// Reconstructs the (lossy) parameter vector.
std::vector<nn::Scalar> DequantizeFlat(const QuantizedBlob& blob);

/// Max absolute reconstruction error of the blob's code book — half a
/// quantization step.
double QuantizationStep(const QuantizedBlob& blob);

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_COMPRESSION_H_
