# Empty dependencies file for lighttr_roadnet.
# This may be replaced when dependencies are built.
