// Finite-difference gradient checks for every op and layer in nn/.
// Double precision keeps central differences tight (tolerance 1e-6
// relative on smooth ops).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace lighttr::nn {
namespace {

// Builds `loss = f(params)` twice per perturbed entry and compares the
// numeric derivative with the autograd gradient.
void CheckGradients(const std::vector<Tensor>& leaves,
                    const std::function<Tensor()>& build_loss,
                    double tolerance = 1e-6) {
  Tensor loss = build_loss();
  ASSERT_EQ(loss.value().size(), 1u);
  for (const Tensor& leaf : leaves) leaf.ZeroGrad();
  loss.Backward();

  const double eps = 1e-5;
  for (size_t li = 0; li < leaves.size(); ++li) {
    const Tensor& leaf = leaves[li];
    Matrix analytic = leaf.grad();
    for (size_t i = 0; i < leaf.value().size(); ++i) {
      Scalar* entry = leaf.mutable_value().data() + i;
      const Scalar saved = *entry;
      *entry = saved + eps;
      const Scalar up = build_loss().ScalarValue();
      *entry = saved - eps;
      const Scalar down = build_loss().ScalarValue();
      *entry = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double got = analytic.data()[i];
      const double scale = std::max({1.0, std::abs(numeric), std::abs(got)});
      EXPECT_NEAR(numeric, got, tolerance * scale)
          << "leaf " << li << " entry " << i;
    }
  }
}

Tensor RandomVariable(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Variable(Matrix::RandomUniform(rows, cols, 0.8, &rng));
}

TEST(GradCheck, AddSubMul) {
  Tensor a = RandomVariable(3, 4, 1);
  Tensor b = RandomVariable(3, 4, 2);
  CheckGradients({a, b}, [&] { return Mean(Mul(Add(a, b), Sub(a, b))); });
}

TEST(GradCheck, MatMul) {
  Tensor a = RandomVariable(3, 5, 3);
  Tensor b = RandomVariable(5, 2, 4);
  CheckGradients({a, b}, [&] { return Mean(MatMul(a, b)); });
}

TEST(GradCheck, AddRowBroadcast) {
  Tensor x = RandomVariable(4, 3, 5);
  Tensor bias = RandomVariable(1, 3, 6);
  CheckGradients({x, bias}, [&] { return Mean(AddRowBroadcast(x, bias)); });
}

TEST(GradCheck, ActivationsChain) {
  Tensor a = RandomVariable(2, 6, 7);
  CheckGradients({a}, [&] { return Mean(Tanh(Sigmoid(a))); });
}

TEST(GradCheck, ReluAwayFromKink) {
  // Entries are bounded away from zero so the subgradient is unambiguous.
  Rng rng(8);
  Matrix m(3, 3);
  for (size_t i = 0; i < m.size(); ++i) {
    const double v = rng.Uniform(0.2, 1.0);
    m.data()[i] = rng.Bernoulli(0.5) ? v : -v;
  }
  Tensor a = Tensor::Variable(std::move(m));
  CheckGradients({a}, [&] { return Mean(Relu(a)); });
}

TEST(GradCheck, ConcatSliceTranspose) {
  Tensor a = RandomVariable(2, 3, 9);
  Tensor b = RandomVariable(2, 2, 10);
  CheckGradients({a, b}, [&] {
    Tensor cat = ConcatCols(a, b);              // [2,5]
    Tensor t = Transpose(cat);                  // [5,2]
    return Mean(Mul(SliceRows(t, 1, 3), SliceRows(t, 2, 3)));
  });
}

TEST(GradCheck, ConcatRows) {
  Tensor a = RandomVariable(1, 4, 11);
  Tensor b = RandomVariable(2, 4, 12);
  CheckGradients({a, b}, [&] {
    return Mean(Sigmoid(ConcatRows({a, b, a})));
  });
}

TEST(GradCheck, SoftmaxRows) {
  Tensor a = RandomVariable(3, 5, 13);
  Tensor w = RandomVariable(3, 5, 14);
  CheckGradients({a, w}, [&] { return Mean(Mul(SoftmaxRows(a), w)); });
}

TEST(GradCheck, EmbeddingLookup) {
  Tensor table = RandomVariable(6, 3, 15);
  CheckGradients({table}, [&] {
    return Mean(Tanh(EmbeddingLookup(table, {1, 4, 1})));
  });
}

TEST(GradCheck, CandidateLogits) {
  Tensor h = RandomVariable(1, 4, 16);
  Tensor w = RandomVariable(4, 9, 17);
  Tensor b = RandomVariable(1, 9, 18);
  CheckGradients({h, w, b}, [&] {
    return Mean(Tanh(CandidateLogits(h, w, b, {2, 5, 7})));
  });
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Tensor logits = RandomVariable(3, 6, 19);
  CheckGradients({logits},
                 [&] { return SoftmaxCrossEntropy(logits, {2, 0, 5}); });
}

TEST(GradCheck, SoftmaxCrossEntropyWithMask) {
  Tensor logits = RandomVariable(2, 4, 20);
  Rng rng(21);
  Matrix bias = Matrix::RandomUniform(2, 4, 2.0, &rng);
  CheckGradients(
      {logits}, [&] { return SoftmaxCrossEntropy(logits, {1, 3}, &bias); });
}

TEST(GradCheck, MseLoss) {
  Tensor pred = RandomVariable(4, 2, 22);
  Rng rng(23);
  Matrix target = Matrix::RandomUniform(4, 2, 1.0, &rng);
  CheckGradients({pred}, [&] { return MseLoss(pred, target); });
}

TEST(GradCheck, DenseLayer) {
  ParameterSet params;
  Rng rng(24);
  Dense dense(4, 3, "d", &params, &rng);
  Tensor x = RandomVariable(2, 4, 25);
  std::vector<Tensor> leaves{x};
  for (size_t i = 0; i < params.size(); ++i) leaves.push_back(params.tensor(i));
  CheckGradients(leaves, [&] { return Mean(Tanh(dense.Forward(x))); });
}

TEST(GradCheck, GruCellUnrolled) {
  ParameterSet params;
  Rng rng(26);
  GruCell gru(3, 4, "gru", &params, &rng);
  Tensor x0 = RandomVariable(1, 3, 27);
  Tensor x1 = RandomVariable(1, 3, 28);
  std::vector<Tensor> leaves{x0, x1};
  for (size_t i = 0; i < params.size(); ++i) leaves.push_back(params.tensor(i));
  CheckGradients(leaves, [&] {
    Tensor h = gru.Forward(x0, gru.InitialState());
    h = gru.Forward(x1, h);
    return Mean(h);
  });
}

TEST(GradCheck, RnnCell) {
  ParameterSet params;
  Rng rng(29);
  RnnCell cell(3, 4, "rnn", &params, &rng);
  Tensor x = RandomVariable(1, 3, 30);
  std::vector<Tensor> leaves{x};
  for (size_t i = 0; i < params.size(); ++i) leaves.push_back(params.tensor(i));
  CheckGradients(leaves, [&] {
    Tensor h = cell.Forward(x, cell.InitialState());
    return Mean(cell.Forward(x, h));
  });
}

TEST(GradCheck, Attention) {
  Tensor q = RandomVariable(2, 4, 31);
  Tensor k = RandomVariable(3, 4, 32);
  Tensor v = RandomVariable(3, 4, 33);
  CheckGradients({q, k, v}, [&] {
    return Mean(ScaledDotProductAttention(q, k, v));
  });
}

TEST(GradCheck, Im2RowCausal) {
  Tensor x = RandomVariable(4, 3, 35);
  Tensor w = RandomVariable(6, 2, 36);
  CheckGradients({x, w}, [&] {
    return Mean(Tanh(MatMul(Im2RowCausal(x, 2), w)));
  });
}

TEST(GradCheck, GradientAccumulatesWhenTensorReused) {
  Tensor a = RandomVariable(2, 2, 34);
  CheckGradients({a}, [&] { return Mean(Mul(a, a)); });
}

}  // namespace
}  // namespace lighttr::nn
