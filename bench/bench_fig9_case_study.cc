// Reproduces paper Figure 9 (case study): recovers one Tdrive-like
// low-sampling-rate trajectory (keep ratio 12.5%) with LightTR, RNN+FL,
// and RNTrajRec+FL, prints an ASCII map of observed / ground-truth /
// predicted points, and writes a CSV with all coordinates.
//
// Expected shape: LightTR's recovered points trace the true route;
// RNN+FL finds the rough corridor but misplaces many points;
// RNTrajRec+FL sits between the two.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "lighttr/pipeline.h"

namespace {

using namespace lighttr;

// Renders truth (o), prediction (x), overlap (#), anchors (A) on a grid.
std::string AsciiMap(const eval::ExperimentEnv& env,
                     const traj::IncompleteTrajectory& trajectory,
                     const std::vector<roadnet::PointPosition>& recovered) {
  constexpr int kW = 56;
  constexpr int kH = 24;
  const geo::GeoPoint lo = env.network().min_corner();
  const geo::GeoPoint hi = env.network().max_corner();
  std::vector<std::string> canvas(kH, std::string(kW, '.'));
  auto plot = [&](const geo::GeoPoint& p, char ch) {
    int x = static_cast<int>((p.lng - lo.lng) / (hi.lng - lo.lng) * (kW - 1));
    int y = static_cast<int>((p.lat - lo.lat) / (hi.lat - lo.lat) * (kH - 1));
    x = std::clamp(x, 0, kW - 1);
    y = std::clamp(y, 0, kH - 1);
    char& cell = canvas[kH - 1 - y][x];
    if (cell == '.' || ch == 'A') {
      cell = ch;
    } else if (cell != ch && cell != 'A') {
      cell = '#';
    }
  };
  for (size_t t = 0; t < trajectory.size(); ++t) {
    if (trajectory.observed[t]) continue;
    plot(env.network().PositionToPoint(
             trajectory.ground_truth.points[t].position), 'o');
    plot(env.network().PositionToPoint(recovered[t]), 'x');
  }
  for (size_t t = 0; t < trajectory.size(); ++t) {
    if (trajectory.observed[t]) {
      plot(env.network().PositionToPoint(
               trajectory.ground_truth.points[t].position), 'A');
    }
  }
  std::string out;
  for (const std::string& row : canvas) out += row + "\n";
  return out;
}

}  // namespace

int main() {
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Figure 9 reproduction (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 9);
  const auto test = eval::ExperimentEnv::PooledTestSet(clients, 8);
  const traj::IncompleteTrajectory& sample = test.front();

  TablePrinter csv({"method", "step", "kind", "lat", "lng"});
  for (baselines::ModelKind kind :
       {baselines::ModelKind::kLightTr, baselines::ModelKind::kRnn,
        baselines::ModelKind::kRnTrajRec}) {
    // Train federated, then recover the sample trajectory.
    eval::MethodRunOptions options = eval::DefaultRunOptions(scale);
    core::LightTrOptions pipeline_options;
    pipeline_options.teacher = options.teacher;
    pipeline_options.meta = options.meta;
    pipeline_options.federated = options.fed;

    std::vector<roadnet::PointPosition> recovered;
    const std::string name = baselines::ModelKindName(kind);
    if (kind == baselines::ModelKind::kLightTr) {
      core::LightTrPipeline pipeline(&env->encoder(), &clients,
                                     pipeline_options);
      (void)pipeline.Train();
      recovered = pipeline.global_model()->Recover(sample);
    } else {
      fl::FederatedTrainer trainer(
          baselines::MakeFactory(kind, &env->encoder()), &clients,
          options.fed);
      (void)trainer.Run();
      recovered = trainer.global_model()->Recover(sample);
    }

    std::printf("\n=== %s ===  (A=anchor, o=truth, x=prediction, #=match)\n",
                name.c_str());
    std::printf("%s", AsciiMap(*env, sample, recovered).c_str());

    for (size_t t = 0; t < sample.size(); ++t) {
      const geo::GeoPoint truth = env->network().PositionToPoint(
          sample.ground_truth.points[t].position);
      const geo::GeoPoint pred =
          env->network().PositionToPoint(recovered[t]);
      const char* kind_str = sample.observed[t] ? "anchor" : "missing";
      csv.AddRow({name, std::to_string(t), std::string(kind_str) + "-truth",
                  TablePrinter::Fmt(truth.lat, 6),
                  TablePrinter::Fmt(truth.lng, 6)});
      csv.AddRow({name, std::to_string(t), std::string(kind_str) + "-pred",
                  TablePrinter::Fmt(pred.lat, 6),
                  TablePrinter::Fmt(pred.lng, 6)});
    }
  }
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_fig9_case_study.csv", csv.ToCsv());
  std::printf("\nwrote bench_fig9_case_study.csv (%zu rows)\n",
              csv.num_rows());
  return 0;
}
