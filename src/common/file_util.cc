#include "common/file_util.h"

#include <fstream>
#include <sstream>

namespace lighttr {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace lighttr
