// Featurization of incomplete trajectories for neural recovery models,
// including the candidate generation and distance weights used by the
// constraint mask layer (paper Eq. 10/11).
//
// All recovery models (LightTR and baselines) consume the same encoding,
// so accuracy comparisons reflect the models, not the features.
#ifndef LIGHTTR_TRAJ_ENCODING_H_
#define LIGHTTR_TRAJ_ENCODING_H_

#include <optional>
#include <vector>

#include "geo/grid.h"
#include "nn/matrix.h"
#include "roadnet/segment_index.h"
#include "traj/trajectory.h"

namespace lighttr::traj {

/// Per-step recovery targets derived from the ground truth.
struct StepTarget {
  int segment = 0;      // true road segment id
  double ratio = 0.0;   // true moving ratio
  bool missing = false; // whether this step must be recovered
};

/// Candidate road segments for one step, with constraint-mask weights.
struct StepCandidates {
  std::vector<int> segments;       // candidate segment ids
  std::vector<nn::Scalar> log_mask;  // log c_i of Eq. 10 per candidate
  int target_index = -1;           // position of the true segment, or -1
  /// True when the true segment was found by the spatial search. When
  /// false, the mask of Eq. 10 assigns it (near-)zero probability
  /// ("omega = 0" in the paper), making the step unlearnable — models
  /// skip its CE term rather than memorise an exception.
  bool target_in_range = false;
};

/// Options for TrajectoryEncoder.
struct EncoderOptions {
  double grid_cell_m = 200.0;       // Eq. 4 discretisation cell size
  double candidate_radius_m = 300.0;  // base constraint-mask search radius
  /// The search radius and mask scale grow with the distance between the
  /// surrounding anchors: mid-gap points can be far from the linear
  /// interpolation estimate, so a fixed radius would exclude the truth.
  double radius_gap_factor = 0.45;
  int max_candidates = 32;
  double gamma = 125.0;             // Eq. 10 length scale in meters
  double gamma_gap_factor = 0.3;    // mask scale growth with anchor gap
  /// Directed road networks carry both directions of a street as twin
  /// segments at identical geometric distance; the mask additionally
  /// penalises candidates whose direction opposes the local travel
  /// heading: log-mask += weight * (cos(angle) - 1).
  double direction_weight = 2.0;
  /// Log-mask bonus for the candidate the shortest-route interpolation
  /// lands on. Near intersections several segments are equidistant from
  /// the estimate; the route itself disambiguates them (trajectories are
  /// road-constrained). 0 disables.
  double route_prior_bonus = 2.5;
};

/// Encodes incomplete trajectories into model inputs and targets.
class TrajectoryEncoder {
 public:
  TrajectoryEncoder(const roadnet::RoadNetwork& network,
                    const roadnet::SegmentIndex& index,
                    EncoderOptions options = {});

  /// Number of features per step (fixed by the encoding).
  static constexpr size_t kFeatureDim = 11;

  /// Encodes a [T, kFeatureDim] input matrix. Features per step:
  ///   0: observed flag
  ///   1: normalized grid x of the (anchor-interpolated) position (Eq. 4)
  ///   2: normalized grid y
  ///   3: observed moving ratio (0 when missing)
  ///   4: alpha — fractional position between surrounding anchors
  ///   5: normalized gap length between the surrounding anchors
  ///   6: normalized time bin t / T
  ///   7: normalized grid x of the previous observed anchor
  ///   8: normalized grid y of the previous observed anchor
  ///   9: normalized grid x of the next observed anchor
  ///  10: normalized grid y of the next observed anchor
  /// Missing steps carry the linear interpolation between the previous
  /// and next observed anchors, which every model receives equally.
  nn::Matrix EncodeInputs(const IncompleteTrajectory& trajectory) const;

  /// Ground-truth targets per step.
  std::vector<StepTarget> EncodeTargets(
      const IncompleteTrajectory& trajectory) const;

  /// Candidates + constraint-mask weights for step `t`, built around the
  /// anchor-interpolated position (the model does not see the ground
  /// truth). If the true segment is not among the spatial candidates it
  /// is appended (standard practice so the CE loss is well-defined);
  /// `target_index` records its position either way.
  StepCandidates CandidatesForStep(const IncompleteTrajectory& trajectory,
                                   size_t t) const;

  /// The anchor-interpolated estimate for step `t` (public for the
  /// case-study visualisation): the position a constant-speed vehicle
  /// would reach at step t while following the shortest road route
  /// between the surrounding observed anchors. Falls back to linear
  /// lat/lng interpolation when no directed route exists. Trajectories
  /// are map-constrained, so the route-based estimate is far stronger
  /// than the straight line.
  geo::GeoPoint InterpolatedPoint(const IncompleteTrajectory& trajectory,
                                  size_t t) const;

  /// Like InterpolatedPoint but returns the network position (segment +
  /// moving ratio) when a route exists; nullopt when only the linear
  /// fallback is available.
  std::optional<roadnet::PointPosition> RouteInterpolatedPosition(
      const IncompleteTrajectory& trajectory, size_t t) const;

  const roadnet::RoadNetwork& network() const { return network_; }
  const EncoderOptions& options() const { return options_; }
  size_t num_segments() const {
    return static_cast<size_t>(network_.num_segments());
  }

 private:
  const roadnet::RoadNetwork& network_;
  const roadnet::SegmentIndex& index_;
  EncoderOptions options_;
  geo::GridSpec grid_;
};

}  // namespace lighttr::traj

#endif  // LIGHTTR_TRAJ_ENCODING_H_
