#include "fl/compression.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lighttr::fl {

QuantizedBlob QuantizeFlat(const std::vector<nn::Scalar>& flat) {
  LIGHTTR_CHECK(!flat.empty());
  QuantizedBlob blob;
  blob.min_value = *std::min_element(flat.begin(), flat.end());
  blob.max_value = *std::max_element(flat.begin(), flat.end());
  blob.codes.resize(flat.size());
  const double range = blob.max_value - blob.min_value;
  if (range <= 0.0) {
    // Constant vector: all codes zero.
    std::fill(blob.codes.begin(), blob.codes.end(), 0);
    return blob;
  }
  for (size_t i = 0; i < flat.size(); ++i) {
    const double normalized = (flat[i] - blob.min_value) / range;
    blob.codes[i] = static_cast<uint8_t>(
        std::lround(std::clamp(normalized, 0.0, 1.0) * 255.0));
  }
  return blob;
}

std::vector<nn::Scalar> DequantizeFlat(const QuantizedBlob& blob) {
  std::vector<nn::Scalar> flat(blob.codes.size());
  const double range = blob.max_value - blob.min_value;
  for (size_t i = 0; i < blob.codes.size(); ++i) {
    flat[i] = static_cast<nn::Scalar>(
        blob.min_value + range * (blob.codes[i] / 255.0));
  }
  return flat;
}

double QuantizationStep(const QuantizedBlob& blob) {
  return (blob.max_value - blob.min_value) / 255.0 / 2.0;
}

}  // namespace lighttr::fl
