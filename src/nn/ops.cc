#include "nn/ops.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "nn/flops.h"
#include "nn/kernels/kernels.h"

namespace lighttr::nn {

namespace {

// Shorthand: number of elements, for element-wise FLOP accounting.
int64_t Elems(const Matrix& m) { return static_cast<int64_t>(m.size()); }

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddInPlace(b.value());
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b](TensorNode& self) {
    if (a.requires_grad()) a.grad().AddInPlace(self.grad);
    if (b.requires_grad()) b.grad().AddInPlace(self.grad);
  });
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  LIGHTTR_DCHECK_EQ(bias.rows(), 1u);
  LIGHTTR_DCHECK_EQ(bias.cols(), x.cols());
  Matrix out = x.value();
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) += bias.value()(0, c);
  }
  AddFlops(Elems(out));
  return Tensor::MakeOp(
      std::move(out), {x, bias}, [x, bias](TensorNode& self) {
        if (x.requires_grad()) x.grad().AddInPlace(self.grad);
        if (bias.requires_grad()) {
          Matrix& bg = bias.grad();
          for (size_t r = 0; r < self.grad.rows(); ++r) {
            for (size_t c = 0; c < self.grad.cols(); ++c) {
              bg(0, c) += self.grad(r, c);
            }
          }
        }
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddScaled(b.value(), Scalar{-1});
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b](TensorNode& self) {
    if (a.requires_grad()) a.grad().AddInPlace(self.grad);
    if (b.requires_grad()) b.grad().AddScaled(self.grad, Scalar{-1});
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] *= b.value().data()[i];
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b](TensorNode& self) {
    const size_t n = self.grad.size();
    if (a.requires_grad()) {
      Matrix& ag = a.grad();
      for (size_t i = 0; i < n; ++i) {
        ag.data()[i] += self.grad.data()[i] * b.value().data()[i];
      }
    }
    if (b.requires_grad()) {
      Matrix& bg = b.grad();
      for (size_t i = 0; i < n; ++i) {
        bg.data()[i] += self.grad.data()[i] * a.value().data()[i];
      }
    }
    AddFlops(2 * static_cast<int64_t>(n));
  });
}

Tensor Scale(const Tensor& a, Scalar s) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] *= s;
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a, s](TensorNode& self) {
    if (a.requires_grad()) a.grad().AddScaled(self.grad, s);
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK_EQ(a.cols(), b.rows());
  Matrix out = MatMulValues(a.value(), b.value());
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b](TensorNode& self) {
    if (a.requires_grad()) {
      MatMulTransBAccumulate(self.grad, b.value(), &a.grad());
    }
    if (b.requires_grad()) {
      MatMulTransAAccumulate(a.value(), self.grad, &b.grad());
    }
  });
}

Tensor Sigmoid(const Tensor& a) {
  Matrix out = a.value();
  kernels::SigmoidInPlace(out.data(), out.size());
  AddFlops(4 * Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      const Scalar y = self.value.data()[i];
      ag.data()[i] += self.grad.data()[i] * y * (Scalar{1} - y);
    }
    AddFlops(3 * static_cast<int64_t>(self.grad.size()));
  });
}

Tensor Tanh(const Tensor& a) {
  Matrix out = a.value();
  kernels::TanhInPlace(out.data(), out.size());
  AddFlops(4 * Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      const Scalar y = self.value.data()[i];
      ag.data()[i] += self.grad.data()[i] * (Scalar{1} - y * y);
    }
    AddFlops(3 * static_cast<int64_t>(self.grad.size()));
  });
}

Tensor Relu(const Tensor& a) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < Scalar{0}) out.data()[i] = Scalar{0};
  }
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      if (self.value.data()[i] > Scalar{0}) {
        ag.data()[i] += self.grad.data()[i];
      }
    }
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(r, c);
    for (size_t c = 0; c < b.cols(); ++c) {
      out(r, a.cols() + c) = b.value()(r, c);
    }
  }
  const size_t na = a.cols();
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b, na](TensorNode& self) {
    if (a.requires_grad()) {
      Matrix& ag = a.grad();
      for (size_t r = 0; r < ag.rows(); ++r) {
        for (size_t c = 0; c < ag.cols(); ++c) ag(r, c) += self.grad(r, c);
      }
    }
    if (b.requires_grad()) {
      Matrix& bg = b.grad();
      for (size_t r = 0; r < bg.rows(); ++r) {
        for (size_t c = 0; c < bg.cols(); ++c) {
          bg(r, c) += self.grad(r, na + c);
        }
      }
    }
  });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  LIGHTTR_CHECK(!parts.empty());
  const size_t cols = parts[0].cols();
  size_t rows = 0;
  for (const Tensor& p : parts) {
    LIGHTTR_DCHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  Matrix out(rows, cols);
  size_t offset = 0;
  for (const Tensor& p : parts) {
    for (size_t r = 0; r < p.rows(); ++r) {
      for (size_t c = 0; c < cols; ++c) out(offset + r, c) = p.value()(r, c);
    }
    offset += p.rows();
  }
  return Tensor::MakeOp(std::move(out), parts, [parts](TensorNode& self) {
    size_t row_offset = 0;
    for (const Tensor& p : parts) {
      if (p.requires_grad()) {
        Matrix& pg = p.grad();
        for (size_t r = 0; r < p.rows(); ++r) {
          for (size_t c = 0; c < pg.cols(); ++c) {
            pg(r, c) += self.grad(row_offset + r, c);
          }
        }
      }
      row_offset += p.rows();
    }
  });
}

Tensor SliceCols(const Tensor& a, size_t begin, size_t len) {
  LIGHTTR_DCHECK_LE(begin + len, a.cols());
  Matrix out(a.rows(), len);
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < len; ++c) out(r, c) = a.value()(r, begin + c);
  }
  return Tensor::MakeOp(std::move(out), {a}, [a, begin](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t r = 0; r < self.grad.rows(); ++r) {
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        ag(r, begin + c) += self.grad(r, c);
      }
    }
  });
}

Tensor SliceRows(const Tensor& a, size_t begin, size_t len) {
  LIGHTTR_DCHECK_LE(begin + len, a.rows());
  Matrix out(len, a.cols());
  for (size_t r = 0; r < len; ++r) {
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) = a.value()(begin + r, c);
  }
  return Tensor::MakeOp(std::move(out), {a}, [a, begin](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t r = 0; r < self.grad.rows(); ++r) {
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        ag(begin + r, c) += self.grad(r, c);
      }
    }
  });
}

Tensor Transpose(const Tensor& a) {
  Matrix out(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) out(c, r) = a.value()(r, c);
  }
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t r = 0; r < self.grad.rows(); ++r) {
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        ag(c, r) += self.grad(r, c);
      }
    }
  });
}

Tensor SoftmaxRows(const Tensor& a) {
  Matrix out = a.value();
  for (size_t r = 0; r < out.rows(); ++r) {
    Scalar row_max = out(r, 0);
    for (size_t c = 1; c < out.cols(); ++c) {
      row_max = std::max(row_max, out(r, c));
    }
    Scalar denom{0};
    for (size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = std::exp(out(r, c) - row_max);
      denom += out(r, c);
    }
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) /= denom;
  }
  AddFlops(5 * Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t r = 0; r < self.grad.rows(); ++r) {
      Scalar dot{0};
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        dot += self.grad(r, c) * self.value(r, c);
      }
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        ag(r, c) += self.value(r, c) * (self.grad(r, c) - dot);
      }
    }
    AddFlops(4 * static_cast<int64_t>(self.grad.size()));
  });
}

Tensor Sum(const Tensor& a) {
  Matrix out(1, 1);
  Scalar total{0};
  for (size_t i = 0; i < a.value().size(); ++i) total += a.value().data()[i];
  out(0, 0) = total;
  AddFlops(Elems(a.value()));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    const Scalar g = self.grad(0, 0);
    Matrix& ag = a.grad();
    for (size_t i = 0; i < ag.size(); ++i) ag.data()[i] += g;
  });
}

Tensor Mean(const Tensor& a) {
  const auto n = static_cast<Scalar>(a.value().size());
  return Scale(Sum(a), Scalar{1} / n);
}

Tensor Dropout(const Tensor& a, double p, bool training, Rng* rng) {
  LIGHTTR_CHECK_GE(p, 0.0);
  LIGHTTR_CHECK_LT(p, 1.0);
  if (!training || p == 0.0) return a;
  LIGHTTR_CHECK(rng != nullptr);
  const Scalar keep_scale = Scalar{1} / static_cast<Scalar>(1.0 - p);
  auto mask = std::make_shared<std::vector<Scalar>>(a.value().size());
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    const Scalar m = rng->Bernoulli(p) ? Scalar{0} : keep_scale;
    (*mask)[i] = m;
    out.data()[i] *= m;
  }
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a, mask](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t i = 0; i < ag.size(); ++i) {
      ag.data()[i] += self.grad.data()[i] * (*mask)[i];
    }
  });
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids) {
  LIGHTTR_CHECK(!ids.empty());
  const size_t dim = table.cols();
  Matrix out(ids.size(), dim);
  for (size_t r = 0; r < ids.size(); ++r) {
    LIGHTTR_DCHECK_GE(ids[r], 0);
    LIGHTTR_DCHECK_LT(static_cast<size_t>(ids[r]), table.rows());
    for (size_t c = 0; c < dim; ++c) {
      out(r, c) = table.value()(static_cast<size_t>(ids[r]), c);
    }
  }
  return Tensor::MakeOp(std::move(out), {table}, [table, ids](TensorNode& self) {
    if (!table.requires_grad()) return;
    Matrix& tg = table.grad();
    for (size_t r = 0; r < ids.size(); ++r) {
      for (size_t c = 0; c < tg.cols(); ++c) {
        tg(static_cast<size_t>(ids[r]), c) += self.grad(r, c);
      }
    }
  });
}

Tensor LayerNormRows(const Tensor& a, Scalar epsilon) {
  const size_t rows = a.rows();
  const size_t cols = a.cols();
  LIGHTTR_CHECK_GE(cols, 1u);
  Matrix out(rows, cols);
  // Cache per-row mean and inverse stddev for the backward pass.
  auto stats = std::make_shared<Matrix>(rows, 2);
  for (size_t r = 0; r < rows; ++r) {
    Scalar mean{0};
    for (size_t c = 0; c < cols; ++c) mean += a.value()(r, c);
    mean /= static_cast<Scalar>(cols);
    Scalar var{0};
    for (size_t c = 0; c < cols; ++c) {
      const Scalar d = a.value()(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<Scalar>(cols);
    const Scalar inv_std = Scalar{1} / std::sqrt(var + epsilon);
    (*stats)(r, 0) = mean;
    (*stats)(r, 1) = inv_std;
    for (size_t c = 0; c < cols; ++c) {
      out(r, c) = (a.value()(r, c) - mean) * inv_std;
    }
  }
  AddFlops(static_cast<int64_t>(6 * rows * cols));
  return Tensor::MakeOp(std::move(out), {a}, [a, stats](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    const size_t grad_cols = ag.cols();
    const auto n = static_cast<Scalar>(grad_cols);
    for (size_t r = 0; r < ag.rows(); ++r) {
      const Scalar inv_std = (*stats)(r, 1);
      // dL/dx = inv_std * (g - mean(g) - y * mean(g * y))
      Scalar g_mean{0};
      Scalar gy_mean{0};
      for (size_t c = 0; c < grad_cols; ++c) {
        g_mean += self.grad(r, c);
        gy_mean += self.grad(r, c) * self.value(r, c);
      }
      g_mean /= n;
      gy_mean /= n;
      for (size_t c = 0; c < grad_cols; ++c) {
        ag(r, c) += inv_std * (self.grad(r, c) - g_mean -
                               self.value(r, c) * gy_mean);
      }
    }
    AddFlops(static_cast<int64_t>(8 * ag.size()));
  });
}

Tensor GruStep(const Tensor& x, const Tensor& h_prev, const Tensor& wr,
               const Tensor& br, const Tensor& wz, const Tensor& bz,
               const Tensor& wh, const Tensor& bh) {
  const size_t n = x.rows();
  const size_t in_dim = x.cols();
  const size_t hidden = h_prev.cols();
  LIGHTTR_DCHECK_EQ(h_prev.rows(), n);
  LIGHTTR_DCHECK_EQ(wr.rows(), hidden + in_dim);
  LIGHTTR_DCHECK_EQ(wr.cols(), hidden);
  LIGHTTR_DCHECK(wr.value().SameShape(wz.value()));
  LIGHTTR_DCHECK(wr.value().SameShape(wh.value()));
  LIGHTTR_DCHECK_EQ(br.rows(), 1u);
  LIGHTTR_DCHECK_EQ(br.cols(), hidden);
  LIGHTTR_DCHECK(br.value().SameShape(bz.value()));
  LIGHTTR_DCHECK(br.value().SameShape(bh.value()));

  // Weight layout: rows [0, hidden) of each gate matrix multiply the
  // recurrent input, rows [hidden, hidden+in_dim) the step input. Both
  // blocks are contiguous in the row-major [(H+I), H] parameter, so the
  // concatenated-input product [h|x] W splits into two offset GEMMs
  // with no concat buffer — same accumulation order (h rows first,
  // then x rows) as the composed implementation it replaced.
  const size_t x_block = hidden * hidden;  // offset of the input block
  const Matrix& hv = h_prev.value();
  const Matrix& xv = x.value();

  // Packed r|z pre-activations: columns [0, H) hold the reset gate,
  // [H, 2H) the update gate; both accumulate via ldc-strided GEMMs and
  // activate in ONE sigmoid sweep over the whole buffer.
  auto rz = std::make_shared<Matrix>(n, 2 * hidden);
  Scalar* rz_data = rz->data();
  kernels::GemmSmallNN(hv.data(), wr.value().data(), rz_data, n, hidden,
                       hidden, 2 * hidden);
  kernels::GemmSmallNN(xv.data(), wr.value().data() + x_block, rz_data, n,
                       in_dim, hidden, 2 * hidden);
  kernels::GemmSmallNN(hv.data(), wz.value().data(), rz_data + hidden, n,
                       hidden, hidden, 2 * hidden);
  kernels::GemmSmallNN(xv.data(), wz.value().data() + x_block,
                       rz_data + hidden, n, in_dim, hidden, 2 * hidden);
  for (size_t r = 0; r < n; ++r) {
    Scalar* row = rz_data + r * 2 * hidden;
    for (size_t c = 0; c < hidden; ++c) {
      row[c] += br.value().data()[c];
      row[hidden + c] += bz.value().data()[c];
    }
  }
  kernels::SigmoidInPlace(rz_data, n * 2 * hidden);

  // Candidate state: h~ = tanh((r*h) W_h[h-block] + x W_h[x-block] + b_h).
  auto rh = std::make_shared<Matrix>(n, hidden);
  for (size_t r = 0; r < n; ++r) {
    const Scalar* gates = rz_data + r * 2 * hidden;
    const Scalar* hrow = hv.data() + r * hidden;
    Scalar* rhrow = rh->data() + r * hidden;
    for (size_t c = 0; c < hidden; ++c) rhrow[c] = gates[c] * hrow[c];
  }
  auto ht = std::make_shared<Matrix>(n, hidden);
  kernels::GemmSmallNN(rh->data(), wh.value().data(), ht->data(), n, hidden,
                       hidden, hidden);
  kernels::GemmSmallNN(xv.data(), wh.value().data() + x_block, ht->data(), n,
                       in_dim, hidden, hidden);
  for (size_t r = 0; r < n; ++r) {
    Scalar* row = ht->data() + r * hidden;
    for (size_t c = 0; c < hidden; ++c) row[c] += bh.value().data()[c];
  }
  kernels::TanhInPlace(ht->data(), n * hidden);

  // out = h + z * (h~ - h)
  Matrix out(n, hidden);
  for (size_t r = 0; r < n; ++r) {
    const Scalar* gates = rz_data + r * 2 * hidden;
    const Scalar* hrow = hv.data() + r * hidden;
    const Scalar* htrow = ht->data() + r * hidden;
    Scalar* orow = out.data() + r * hidden;
    for (size_t c = 0; c < hidden; ++c) {
      orow[c] = hrow[c] + gates[hidden + c] * (htrow[c] - hrow[c]);
    }
  }
  AddFlops(static_cast<int64_t>(6 * n * (hidden + in_dim) * hidden +
                                14 * n * hidden));

  return Tensor::MakeOp(
      std::move(out), {x, h_prev, wr, br, wz, bz, wh, bh},
      [x, h_prev, wr, br, wz, bz, wh, bh, rz, rh, ht](TensorNode& self) {
        const size_t rows = self.grad.rows();
        const size_t h_dim = self.grad.cols();
        const size_t i_dim = x.cols();
        const size_t x_off = h_dim * h_dim;
        const Matrix& hv2 = h_prev.value();
        const Matrix& xv2 = x.value();
        const Scalar* rz_d = rz->data();
        const Scalar* ht_d = ht->data();

        // Gate-input gradients, derived in closed form from the cached
        // activations (r, z packed in rz; h~ in ht; r*h in rh):
        //   a_h = g*z * (1 - h~^2)           (pre-activation of h~)
        //   drh = a_h W_h[h]^T
        //   a_r = drh*h * r(1-r)             (pre-activation of r)
        //   a_z = g*(h~ - h) * z(1-z)        (pre-activation of z)
        Matrix a_h(rows, h_dim);
        for (size_t r = 0; r < rows; ++r) {
          const Scalar* gates = rz_d + r * 2 * h_dim;
          const Scalar* htrow = ht_d + r * h_dim;
          const Scalar* grow = self.grad.data() + r * h_dim;
          Scalar* arow = a_h.data() + r * h_dim;
          for (size_t c = 0; c < h_dim; ++c) {
            arow[c] = grow[c] * gates[h_dim + c] *
                      (Scalar{1} - htrow[c] * htrow[c]);
          }
        }
        Matrix drh(rows, h_dim);
        kernels::GemmSmallTB(a_h.data(), wh.value().data(), drh.data(), rows,
                             h_dim, h_dim);
        Matrix a_r(rows, h_dim);
        Matrix a_z(rows, h_dim);
        for (size_t r = 0; r < rows; ++r) {
          const Scalar* gates = rz_d + r * 2 * h_dim;
          const Scalar* htrow = ht_d + r * h_dim;
          const Scalar* grow = self.grad.data() + r * h_dim;
          const Scalar* hrow = hv2.data() + r * h_dim;
          const Scalar* drhrow = drh.data() + r * h_dim;
          Scalar* arrow = a_r.data() + r * h_dim;
          Scalar* azrow = a_z.data() + r * h_dim;
          for (size_t c = 0; c < h_dim; ++c) {
            const Scalar rv = gates[c];
            const Scalar zv = gates[h_dim + c];
            arrow[c] = drhrow[c] * hrow[c] * rv * (Scalar{1} - rv);
            azrow[c] = grow[c] * (htrow[c] - hrow[c]) * zv * (Scalar{1} - zv);
          }
        }

        if (wh.requires_grad()) {
          Matrix& whg = wh.grad();
          kernels::GemmSmallTA(rh->data(), a_h.data(), whg.data(), h_dim,
                               rows, h_dim);
          kernels::GemmSmallTA(xv2.data(), a_h.data(), whg.data() + x_off,
                               i_dim, rows, h_dim);
        }
        if (wr.requires_grad()) {
          Matrix& wrg = wr.grad();
          kernels::GemmSmallTA(hv2.data(), a_r.data(), wrg.data(), h_dim,
                               rows, h_dim);
          kernels::GemmSmallTA(xv2.data(), a_r.data(), wrg.data() + x_off,
                               i_dim, rows, h_dim);
        }
        if (wz.requires_grad()) {
          Matrix& wzg = wz.grad();
          kernels::GemmSmallTA(hv2.data(), a_z.data(), wzg.data(), h_dim,
                               rows, h_dim);
          kernels::GemmSmallTA(xv2.data(), a_z.data(), wzg.data() + x_off,
                               i_dim, rows, h_dim);
        }
        const auto col_sum_into = [rows, h_dim](const Matrix& src,
                                                Matrix* dst) {
          Scalar* d = dst->data();
          for (size_t r = 0; r < rows; ++r) {
            const Scalar* srow = src.data() + r * h_dim;
            for (size_t c = 0; c < h_dim; ++c) d[c] += srow[c];
          }
        };
        if (bh.requires_grad()) col_sum_into(a_h, &bh.grad());
        if (br.requires_grad()) col_sum_into(a_r, &br.grad());
        if (bz.requires_grad()) col_sum_into(a_z, &bz.grad());

        if (h_prev.requires_grad()) {
          Matrix& hg = h_prev.grad();
          for (size_t r = 0; r < rows; ++r) {
            const Scalar* gates = rz_d + r * 2 * h_dim;
            const Scalar* grow = self.grad.data() + r * h_dim;
            const Scalar* drhrow = drh.data() + r * h_dim;
            Scalar* hgrow = hg.data() + r * h_dim;
            for (size_t c = 0; c < h_dim; ++c) {
              // Direct path g*(1-z) plus the reset-gated path drh*r.
              hgrow[c] += grow[c] * (Scalar{1} - gates[h_dim + c]) +
                          drhrow[c] * gates[c];
            }
          }
          kernels::GemmSmallTB(a_r.data(), wr.value().data(), hg.data(), rows,
                               h_dim, h_dim);
          kernels::GemmSmallTB(a_z.data(), wz.value().data(), hg.data(), rows,
                               h_dim, h_dim);
        }
        if (x.requires_grad()) {
          Matrix& xg = x.grad();
          kernels::GemmSmallTB(a_h.data(), wh.value().data() + x_off,
                               xg.data(), rows, h_dim, i_dim);
          kernels::GemmSmallTB(a_r.data(), wr.value().data() + x_off,
                               xg.data(), rows, h_dim, i_dim);
          kernels::GemmSmallTB(a_z.data(), wz.value().data() + x_off,
                               xg.data(), rows, h_dim, i_dim);
        }
        AddFlops(static_cast<int64_t>(12 * rows * (h_dim + i_dim) * h_dim +
                                      20 * rows * h_dim));
      });
}

Tensor Im2RowCausal(const Tensor& x, size_t kernel) {
  LIGHTTR_CHECK_GE(kernel, 1u);
  const size_t steps = x.rows();
  const size_t channels = x.cols();
  Matrix out(steps, kernel * channels);
  for (size_t t = 0; t < steps; ++t) {
    for (size_t j = 0; j < kernel; ++j) {
      if (t + j + 1 < kernel) continue;  // zero padding before step 0
      const size_t src = t + j + 1 - kernel;
      for (size_t c = 0; c < channels; ++c) {
        out(t, j * channels + c) = x.value()(src, c);
      }
    }
  }
  return Tensor::MakeOp(std::move(out), {x}, [x, kernel](TensorNode& self) {
    if (!x.requires_grad()) return;
    Matrix& xg = x.grad();
    const size_t grad_channels = xg.cols();
    for (size_t t = 0; t < xg.rows(); ++t) {
      for (size_t j = 0; j < kernel; ++j) {
        if (t + j + 1 < kernel) continue;
        const size_t src = t + j + 1 - kernel;
        for (size_t c = 0; c < grad_channels; ++c) {
          xg(src, c) += self.grad(t, j * grad_channels + c);
        }
      }
    }
  });
}

Tensor CandidateLogits(const Tensor& h, const Tensor& w, const Tensor& b,
                       const std::vector<int>& candidates) {
  LIGHTTR_CHECK_EQ(h.rows(), 1u);
  LIGHTTR_CHECK_EQ(h.cols(), w.rows());
  LIGHTTR_CHECK_EQ(b.rows(), 1u);
  LIGHTTR_CHECK_EQ(b.cols(), w.cols());
  LIGHTTR_CHECK(!candidates.empty());
  const size_t hidden = h.cols();
  Matrix out(1, candidates.size());
  for (size_t k = 0; k < candidates.size(); ++k) {
    const auto cls = static_cast<size_t>(candidates[k]);
    LIGHTTR_CHECK_LT(cls, w.cols());
    Scalar acc = b.value()(0, cls);
    for (size_t i = 0; i < hidden; ++i) {
      acc += h.value()(0, i) * w.value()(i, cls);
    }
    out(0, k) = acc;
  }
  AddFlops(static_cast<int64_t>(2 * hidden * candidates.size()));
  return Tensor::MakeOp(
      std::move(out), {h, w, b}, [h, w, b, candidates](TensorNode& self) {
        const size_t grad_hidden = h.cols();
        for (size_t k = 0; k < candidates.size(); ++k) {
          const Scalar g = self.grad(0, k);
          if (g == Scalar{0}) continue;
          const auto cls = static_cast<size_t>(candidates[k]);
          if (h.requires_grad()) {
            Matrix& hg = h.grad();
            for (size_t i = 0; i < grad_hidden; ++i) {
              hg(0, i) += g * w.value()(i, cls);
            }
          }
          if (w.requires_grad()) {
            Matrix& wg = w.grad();
            for (size_t i = 0; i < grad_hidden; ++i) {
              wg(i, cls) += g * h.value()(0, i);
            }
          }
          if (b.requires_grad()) b.grad()(0, cls) += g;
        }
        AddFlops(static_cast<int64_t>(4 * grad_hidden * candidates.size()));
      });
}

}  // namespace lighttr::nn
