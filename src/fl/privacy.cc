#include "fl/privacy.h"

#include <cmath>

#include "common/check.h"

namespace lighttr::fl {

double DeltaNorm(const std::vector<nn::Scalar>& a,
                 const std::vector<nn::Scalar>& b) {
  LIGHTTR_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return std::sqrt(total);
}

std::vector<nn::Scalar> PrivatizeUpload(
    const std::vector<nn::Scalar>& upload,
    const std::vector<nn::Scalar>& reference, const PrivacyConfig& config,
    Rng* rng) {
  LIGHTTR_CHECK_EQ(upload.size(), reference.size());
  if (!config.enabled()) return upload;
  LIGHTTR_CHECK(rng != nullptr);
  LIGHTTR_CHECK_GE(config.noise_multiplier, 0.0);

  const double norm = DeltaNorm(upload, reference);
  const double scale =
      norm > config.clip_norm ? config.clip_norm / norm : 1.0;
  const double sigma = config.noise_multiplier * config.clip_norm;

  std::vector<nn::Scalar> out(upload.size());
  for (size_t i = 0; i < upload.size(); ++i) {
    double delta = (upload[i] - reference[i]) * scale;
    if (sigma > 0.0) delta += rng->Normal(0.0, sigma);
    out[i] = reference[i] + static_cast<nn::Scalar>(delta);
  }
  return out;
}

}  // namespace lighttr::fl
