// Command-line experiment runner: train any method on any workload
// configuration without writing code.
//
//   ./build/examples/run_experiment \
//       --method=lighttr --dataset=geolife --keep=0.125 \
//       --clients=8 --rounds=5 --epochs=2 --seed=42
//
// Methods: fc | rnn | mtrajrec | rntrajrec | lighttr | centralized
// Datasets: geolife | tdrive
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table_printer.h"
#include "eval/harness.h"

namespace {

using namespace lighttr;

// Minimal --key=value parser (no external flag library).
std::string FlagValue(int argc, char** argv, const std::string& key,
                      const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: run_experiment [--method=lighttr|fc|rnn|mtrajrec|rntrajrec|"
      "centralized]\n"
      "                      [--dataset=geolife|tdrive] [--keep=0.125]\n"
      "                      [--clients=8] [--rounds=5] [--epochs=2]\n"
      "                      [--traj-per-client=20] [--grid=9] [--seed=42]\n"
      "                      [--lr=0.003] [--fraction=1.0]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string method = FlagValue(argc, argv, "method", "lighttr");
  const std::string dataset = FlagValue(argc, argv, "dataset", "geolife");
  const double keep = std::atof(FlagValue(argc, argv, "keep", "0.125").c_str());
  const int clients_n =
      std::atoi(FlagValue(argc, argv, "clients", "8").c_str());
  const int rounds = std::atoi(FlagValue(argc, argv, "rounds", "5").c_str());
  const int epochs = std::atoi(FlagValue(argc, argv, "epochs", "2").c_str());
  const int traj_per_client =
      std::atoi(FlagValue(argc, argv, "traj-per-client", "20").c_str());
  const int grid = std::atoi(FlagValue(argc, argv, "grid", "9").c_str());
  const auto seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "seed", "42").c_str()));
  const double lr = std::atof(FlagValue(argc, argv, "lr", "0.003").c_str());
  const double fraction =
      std::atof(FlagValue(argc, argv, "fraction", "1.0").c_str());

  if (keep <= 0.0 || keep > 1.0 || clients_n < 1 || rounds < 1 ||
      epochs < 1 || grid < 3) {
    return Usage();
  }

  baselines::ModelKind kind;
  bool centralized = false;
  if (method == "fc") {
    kind = baselines::ModelKind::kFc;
  } else if (method == "rnn") {
    kind = baselines::ModelKind::kRnn;
  } else if (method == "mtrajrec") {
    kind = baselines::ModelKind::kMTrajRec;
  } else if (method == "rntrajrec") {
    kind = baselines::ModelKind::kRnTrajRec;
  } else if (method == "lighttr") {
    kind = baselines::ModelKind::kLightTr;
  } else if (method == "centralized") {
    kind = baselines::ModelKind::kMTrajRec;
    centralized = true;
  } else {
    return Usage();
  }

  traj::WorkloadProfile profile;
  if (dataset == "geolife") {
    profile = traj::GeolifeLikeProfile();
  } else if (dataset == "tdrive") {
    profile = traj::TdriveLikeProfile();
  } else {
    return Usage();
  }
  profile.trajectories_per_client = traj_per_client;

  std::printf("method=%s dataset=%s keep=%.4f clients=%d rounds=%d "
              "epochs=%d grid=%dx%d seed=%llu\n",
              method.c_str(), dataset.c_str(), keep, clients_n, rounds,
              epochs, grid, grid, static_cast<unsigned long long>(seed));

  eval::ExperimentEnv env(grid, grid, seed);
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = clients_n;
  workload.keep_ratio = keep;
  const auto clients = env.MakeWorkload(profile, workload, seed + 1);

  eval::MethodResult result;
  if (centralized) {
    result = eval::RunCentralizedMethod(env, kind, clients,
                                        rounds * epochs, lr,
                                        /*max_test_trajectories=*/100,
                                        seed + 2);
  } else {
    eval::MethodRunOptions options;
    options.fed.rounds = rounds;
    options.fed.local_epochs = epochs;
    options.fed.learning_rate = lr;
    options.fed.client_fraction = fraction;
    options.fed.seed = seed + 3;
    options.teacher.learning_rate = lr;
    options.max_test_trajectories = 100;
    result = eval::RunFederatedMethod(env, kind, clients, options);
  }

  TablePrinter table({"Metric", "Value"});
  table.AddRow({"Method", result.method});
  table.AddRow({"Recall", TablePrinter::Fmt(result.metrics.recall)});
  table.AddRow({"Precision", TablePrinter::Fmt(result.metrics.precision)});
  table.AddRow({"MAE (km)", TablePrinter::Fmt(result.metrics.mae_km)});
  table.AddRow({"RMSE (km)", TablePrinter::Fmt(result.metrics.rmse_km)});
  table.AddRow({"Points", std::to_string(result.metrics.recovered_points)});
  table.AddRow({"Wall (s)", TablePrinter::Fmt(result.wall_seconds, 1)});
  if (result.run.comm.rounds > 0) {
    table.AddRow({"Comm (KiB)",
                  TablePrinter::Fmt(
                      static_cast<double>(result.run.comm.TotalBytes()) / 1024.0,
                      0)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
