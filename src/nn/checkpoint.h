// Model checkpointing: persist a ParameterSet to disk and restore it
// into a same-architecture model (deployment / resume path).
#ifndef LIGHTTR_NN_CHECKPOINT_H_
#define LIGHTTR_NN_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "nn/parameter.h"

namespace lighttr::nn {

/// Writes the parameters to `path` (float32 wire format).
[[nodiscard]] Status SaveCheckpoint(const std::string& path, const ParameterSet& params);

/// Restores parameters from `path`; names and shapes must match.
[[nodiscard]] Status LoadCheckpoint(const std::string& path, ParameterSet* params);

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_CHECKPOINT_H_
