# Empty compiler generated dependencies file for fleet_recovery.
# This may be replaced when dependencies are built.
