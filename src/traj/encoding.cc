#include "traj/encoding.h"

#include "roadnet/shortest_path.h"

#include <algorithm>
#include <optional>
#include <cmath>

namespace lighttr::traj {

namespace {

// Pads the network bounding box slightly so interpolated points near the
// border always fall inside the grid.
geo::GeoPoint Pad(const geo::GeoPoint& p, double dlat, double dlng) {
  return {p.lat + dlat, p.lng + dlng};
}

// Surrounding observed anchors of step t (prev <= t <= next).
struct AnchorSpan {
  size_t prev = 0;
  size_t next = 0;
  double alpha = 0.0;  // fractional position of t within [prev, next]
};

AnchorSpan FindAnchors(const IncompleteTrajectory& trajectory, size_t t) {
  AnchorSpan span;
  size_t prev = t;
  while (prev > 0 && !trajectory.observed[prev]) --prev;
  size_t next = t;
  const size_t n = trajectory.observed.size();
  while (next + 1 < n && !trajectory.observed[next]) ++next;
  span.prev = prev;
  span.next = next;
  span.alpha = (next > prev)
                   ? static_cast<double>(t - prev) / static_cast<double>(next - prev)
                   : 0.0;
  return span;
}

}  // namespace

TrajectoryEncoder::TrajectoryEncoder(const roadnet::RoadNetwork& network,
                                     const roadnet::SegmentIndex& index,
                                     EncoderOptions options)
    : network_(network),
      index_(index),
      options_(options),
      grid_(Pad(network.min_corner(), -0.01, -0.01),
            Pad(network.max_corner(), 0.01, 0.01), options.grid_cell_m) {
  LIGHTTR_CHECK_GT(options_.candidate_radius_m, 0.0);
  LIGHTTR_CHECK_GE(options_.max_candidates, 1);
  LIGHTTR_CHECK_GT(options_.gamma, 0.0);
}

std::optional<roadnet::PointPosition>
TrajectoryEncoder::RouteInterpolatedPosition(
    const IncompleteTrajectory& trajectory, size_t t) const {
  LIGHTTR_CHECK_LT(t, trajectory.size());
  if (trajectory.observed[t]) {
    return trajectory.ground_truth.points[t].position;
  }
  const AnchorSpan span = FindAnchors(trajectory, t);
  const roadnet::PointPosition a =
      trajectory.ground_truth.points[span.prev].position;
  const roadnet::PointPosition b =
      trajectory.ground_truth.points[span.next].position;

  // Route pieces: (segment, from_ratio, to_ratio), in travel order.
  struct Piece {
    roadnet::SegmentId segment;
    double from_ratio;
    double to_ratio;
  };
  std::vector<Piece> pieces;
  if (a.segment == b.segment && b.ratio >= a.ratio) {
    pieces.push_back({a.segment, a.ratio, b.ratio});
  } else {
    const roadnet::Segment& sa = network_.segment(a.segment);
    const roadnet::Segment& sb = network_.segment(b.segment);
    auto route = roadnet::VertexRoute(network_, sa.to, sb.from);
    if (!route.ok()) return std::nullopt;
    pieces.push_back({a.segment, a.ratio, 1.0});
    for (roadnet::SegmentId e : route.value()) pieces.push_back({e, 0.0, 1.0});
    pieces.push_back({b.segment, 0.0, b.ratio});
  }

  double total = 0.0;
  for (const Piece& piece : pieces) {
    total += (piece.to_ratio - piece.from_ratio) *
             network_.segment(piece.segment).length_m;
  }
  if (total <= 0.0) return a;

  // Constant-speed position along the route at fraction alpha. A strict
  // comparison maps piece boundaries to the *next* segment's start —
  // matching the generator's representation of boundary points.
  double remaining = span.alpha * total;
  for (const Piece& piece : pieces) {
    const double len = (piece.to_ratio - piece.from_ratio) *
                       network_.segment(piece.segment).length_m;
    if (remaining + 1e-6 < len || &piece == &pieces.back()) {
      const double seg_len = network_.segment(piece.segment).length_m;
      const double ratio =
          piece.from_ratio + (seg_len > 0.0 ? remaining / seg_len : 0.0);
      return roadnet::PointPosition{
          piece.segment,
          std::clamp(ratio, piece.from_ratio, piece.to_ratio)};
    }
    remaining -= len;
  }
  return b;  // unreachable, but keeps the compiler satisfied
}

geo::GeoPoint TrajectoryEncoder::InterpolatedPoint(
    const IncompleteTrajectory& trajectory, size_t t) const {
  LIGHTTR_CHECK_LT(t, trajectory.size());
  if (trajectory.observed[t]) {
    return network_.PositionToPoint(trajectory.ground_truth.points[t].position);
  }
  if (auto position = RouteInterpolatedPosition(trajectory, t)) {
    return network_.PositionToPoint(*position);
  }
  // Linear fallback when no directed route connects the anchors.
  const AnchorSpan span = FindAnchors(trajectory, t);
  const geo::GeoPoint a = network_.PositionToPoint(
      trajectory.ground_truth.points[span.prev].position);
  const geo::GeoPoint b = network_.PositionToPoint(
      trajectory.ground_truth.points[span.next].position);
  return geo::Lerp(a, b, span.alpha);
}

nn::Matrix TrajectoryEncoder::EncodeInputs(
    const IncompleteTrajectory& trajectory) const {
  const size_t n = trajectory.size();
  LIGHTTR_CHECK_GE(n, 2u);
  LIGHTTR_CHECK_EQ(trajectory.observed.size(), n);
  nn::Matrix inputs(n, kFeatureDim);
  const auto cols = static_cast<double>(grid_.cols());
  const auto rows = static_cast<double>(grid_.rows());
  for (size_t t = 0; t < n; ++t) {
    const bool observed = trajectory.observed[t];
    const geo::GeoPoint p = InterpolatedPoint(trajectory, t);
    const geo::GridCell cell = grid_.CellOf(p);
    const AnchorSpan span = FindAnchors(trajectory, t);
    const geo::GridCell prev_cell =
        grid_.CellOf(network_.PositionToPoint(
            trajectory.ground_truth.points[span.prev].position));
    const geo::GridCell next_cell =
        grid_.CellOf(network_.PositionToPoint(
            trajectory.ground_truth.points[span.next].position));
    inputs(t, 0) = observed ? 1.0 : 0.0;
    inputs(t, 1) = (cell.x + 0.5) / cols;
    inputs(t, 2) = (cell.y + 0.5) / rows;
    inputs(t, 3) =
        observed ? trajectory.ground_truth.points[t].position.ratio : 0.0;
    inputs(t, 4) = span.alpha;
    inputs(t, 5) = static_cast<double>(span.next - span.prev) /
                   static_cast<double>(n);
    inputs(t, 6) = static_cast<double>(t) / static_cast<double>(n);
    inputs(t, 7) = (prev_cell.x + 0.5) / cols;
    inputs(t, 8) = (prev_cell.y + 0.5) / rows;
    inputs(t, 9) = (next_cell.x + 0.5) / cols;
    inputs(t, 10) = (next_cell.y + 0.5) / rows;
  }
  return inputs;
}

std::vector<StepTarget> TrajectoryEncoder::EncodeTargets(
    const IncompleteTrajectory& trajectory) const {
  std::vector<StepTarget> targets(trajectory.size());
  for (size_t t = 0; t < trajectory.size(); ++t) {
    const MatchedPoint& mp = trajectory.ground_truth.points[t];
    targets[t].segment = mp.position.segment;
    targets[t].ratio = mp.position.ratio;
    targets[t].missing = !trajectory.observed[t];
  }
  return targets;
}

StepCandidates TrajectoryEncoder::CandidatesForStep(
    const IncompleteTrajectory& trajectory, size_t t) const {
  const std::optional<roadnet::PointPosition> route_position =
      RouteInterpolatedPosition(trajectory, t);
  const geo::GeoPoint estimate =
      route_position.has_value()
          ? network_.PositionToPoint(*route_position)
          : InterpolatedPoint(trajectory, t);
  const int route_segment =
      route_position.has_value() ? route_position->segment : -1;

  // Scale the search radius and mask length with the distance between
  // the surrounding anchors: a mid-gap point can stray far from the
  // straight-line estimate (road detours), so a fixed radius would
  // exclude the truth and poison the CE loss with -inf-like masks.
  const AnchorSpan span = FindAnchors(trajectory, t);
  const double gap_m = geo::EquirectangularMeters(
      network_.PositionToPoint(
          trajectory.ground_truth.points[span.prev].position),
      network_.PositionToPoint(
          trajectory.ground_truth.points[span.next].position));
  const double radius =
      std::max(options_.candidate_radius_m, options_.radius_gap_factor * gap_m);
  const double sigma =
      std::max(options_.gamma, options_.gamma_gap_factor * gap_m);

  auto nearby = index_.Nearby(estimate, radius);
  if (static_cast<int>(nearby.size()) > options_.max_candidates) {
    nearby.resize(static_cast<size_t>(options_.max_candidates));
  }

  // Local travel heading, estimated from the interpolated positions of
  // the neighbouring steps. Breaks the tie between a street's two
  // directed twin segments.
  const size_t before = t > span.prev ? t - 1 : span.prev;
  const size_t after = t < span.next ? t + 1 : span.next;
  const geo::LocalProjection plane(estimate);
  const auto h0 = plane.ToXy(InterpolatedPoint(trajectory, before));
  const auto h1 = plane.ToXy(InterpolatedPoint(trajectory, after));
  const double hx = h1.x - h0.x;
  const double hy = h1.y - h0.y;
  const double heading_norm = std::sqrt(hx * hx + hy * hy);

  StepCandidates out;
  const int true_segment = trajectory.ground_truth.points[t].position.segment;
  // Eq. 10: c_i = exp(-dist^2 / gamma); log c_i below. gamma is read as
  // a length scale (meters) that widens with the anchor gap; a direction
  // penalty disambiguates the two directed twins of a street.
  const auto log_mask_of = [&](roadnet::SegmentId segment, double d) {
    double mask = -d * d / (2.0 * sigma * sigma);
    if (segment == route_segment) mask += options_.route_prior_bonus;
    if (heading_norm > 1.0 && options_.direction_weight > 0.0) {
      const roadnet::Segment& seg = network_.segment(segment);
      const auto a = plane.ToXy(network_.vertex(seg.from).position);
      const auto b = plane.ToXy(network_.vertex(seg.to).position);
      const double sx = b.x - a.x;
      const double sy = b.y - a.y;
      const double seg_norm = std::sqrt(sx * sx + sy * sy);
      if (seg_norm > 0.0) {
        const double cosine =
            (hx * sx + hy * sy) / (heading_norm * seg_norm);
        mask += options_.direction_weight * (cosine - 1.0);
      }
    }
    return static_cast<nn::Scalar>(mask);
  };
  for (const auto& candidate : nearby) {
    if (candidate.segment == true_segment) {
      out.target_index = static_cast<int>(out.segments.size());
      out.target_in_range = true;
    }
    out.segments.push_back(candidate.segment);
    out.log_mask.push_back(
        log_mask_of(candidate.segment, candidate.projection.distance_m));
  }
  if (out.target_index < 0) {
    // True segment outside the search radius: append it so the loss is
    // defined. Its mask weight uses its actual distance.
    const auto proj = network_.ProjectOntoSegment(true_segment, estimate);
    out.target_index = static_cast<int>(out.segments.size());
    out.segments.push_back(true_segment);
    out.log_mask.push_back(log_mask_of(true_segment, proj.distance_m));
  }
  return out;
}

}  // namespace lighttr::traj
