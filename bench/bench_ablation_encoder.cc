// Ablation of the reproduction-critical encoder decisions documented in
// DESIGN.md Sec. 5: route-based anchor interpolation, the direction-aware
// mask term, and the route-prior bonus. Each row disables one mechanism
// and retrains LightTR on the same workload (keep ratio 12.5%).
//
// Expected: the full encoder is best; removing the route prior or the
// direction term costs several recall points; shrinking the adaptive
// radius back to a fixed one costs the most at long anchor gaps.
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "fl/federated_trainer.h"
#include "lighttr/lte_model.h"
#include "roadnet/generators.h"
#include "roadnet/segment_index.h"

namespace {

using namespace lighttr;

eval::RecoveryMetrics RunWithEncoder(
    const roadnet::RoadNetwork& network, const roadnet::SegmentIndex& index,
    const traj::EncoderOptions& encoder_options,
    const std::vector<traj::ClientDataset>& clients,
    const std::vector<traj::IncompleteTrajectory>& test,
    const eval::ExperimentScale& scale) {
  const traj::TrajectoryEncoder encoder(network, index, encoder_options);
  const traj::TrajectoryEncoder* encoder_ptr = &encoder;
  fl::FederatedTrainerOptions fed;
  fed.rounds = scale.rounds;
  fed.local_epochs = scale.local_epochs;
  fed.learning_rate = 3e-3;
  fed.seed = scale.seed;
  fl::FederatedTrainer trainer(
      [encoder_ptr](Rng* rng) -> std::unique_ptr<fl::RecoveryModel> {
        return std::make_unique<core::LteModel>(encoder_ptr, core::LteConfig{},
                                                rng);
      },
      &clients, fed);
  trainer.Run();
  return eval::EvaluateRecovery(trainer.global_model(), network, test);
}

}  // namespace

int main() {
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Encoder-design ablation (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 21);
  const auto test = eval::ExperimentEnv::PooledTestSet(
      clients, scale.max_test_trajectories);

  struct Variant {
    const char* name;
    traj::EncoderOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full encoder", traj::EncoderOptions{}});
  {
    traj::EncoderOptions options;
    options.route_prior_bonus = 0.0;
    variants.push_back({"w/o route-prior bonus", options});
  }
  {
    traj::EncoderOptions options;
    options.direction_weight = 0.0;
    variants.push_back({"w/o direction term", options});
  }
  {
    traj::EncoderOptions options;
    options.radius_gap_factor = 0.0;   // fixed radius
    options.gamma_gap_factor = 0.0;    // fixed mask scale
    variants.push_back({"fixed radius/scale", options});
  }
  {
    traj::EncoderOptions options;
    options.route_prior_bonus = 0.0;
    options.direction_weight = 0.0;
    options.radius_gap_factor = 0.0;
    options.gamma_gap_factor = 0.0;
    variants.push_back({"distance-only mask", options});
  }

  TablePrinter table({"Encoder variant", "Recall", "Precision", "MAE(km)",
                      "RMSE(km)"});
  for (const Variant& variant : variants) {
    const eval::RecoveryMetrics metrics = RunWithEncoder(
        env->network(), env->index(), variant.options, clients, test, scale);
    table.AddRow({variant.name, TablePrinter::Fmt(metrics.recall),
                  TablePrinter::Fmt(metrics.precision),
                  TablePrinter::Fmt(metrics.mae_km),
                  TablePrinter::Fmt(metrics.rmse_km)});
    std::printf("done: %s\n", variant.name);
    std::fflush(stdout);
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_ablation_encoder.csv", table.ToCsv());
  return 0;
}
