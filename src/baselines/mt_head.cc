#include "baselines/mt_head.h"

#include "nn/losses.h"
#include "nn/ops.h"

namespace lighttr::baselines {

MtHead::MtHead(size_t hidden_dim, size_t seg_embed_dim, size_t num_segments,
               const std::string& prefix, nn::ParameterSet* params,
               Rng* rng) {
  dense_ = std::make_unique<nn::Dense>(hidden_dim, hidden_dim,
                                       prefix + ".dense", params, rng);
  // Zero-initialised so decoding starts at the constraint-mask prior.
  seg_w_ =
      nn::Tensor::Variable(nn::Matrix::Zeros(hidden_dim, num_segments));
  seg_b_ = nn::Tensor::Variable(nn::Matrix::Zeros(1, num_segments));
  params->Register(prefix + ".seg.w", seg_w_);
  params->Register(prefix + ".seg.b", seg_b_);
  seg_embed_ = std::make_unique<nn::Embedding>(num_segments, seg_embed_dim,
                                               prefix + ".emb", params, rng);
  emb_proj_ = std::make_unique<nn::Dense>(seg_embed_dim, hidden_dim,
                                          prefix + ".embproj", params, rng);
  ratio_head_ = std::make_unique<nn::Dense>(hidden_dim + seg_embed_dim, 1,
                                            prefix + ".ratio", params, rng);
}

MtHeadStep MtHead::Run(const nn::Tensor& state,
                       const traj::StepCandidates& candidates,
                       int conditioning_segment) const {
  const nn::Tensor h_d = dense_->Forward(state);
  const nn::Tensor logits =
      nn::CandidateLogits(h_d, seg_w_, seg_b_, candidates.segments);
  const nn::Matrix mask_row = nn::Matrix::RowVector(candidates.log_mask);

  MtHeadStep step;
  if (candidates.target_in_range) {
    step.ce_loss =
        nn::SoftmaxCrossEntropy(logits, {candidates.target_index}, &mask_row);
  }
  size_t best = 0;
  for (size_t k = 1; k < candidates.segments.size(); ++k) {
    if (logits.value()(0, k) + mask_row(0, k) >
        logits.value()(0, best) + mask_row(0, best)) {
      best = k;
    }
  }
  step.predicted_segment = candidates.segments[best];

  const int condition = conditioning_segment >= 0 ? conditioning_segment
                                                  : step.predicted_segment;
  const nn::Tensor e_emb = seg_embed_->Forward({condition});
  const nn::Tensor h_e = nn::Relu(nn::Add(h_d, emb_proj_->Forward(e_emb)));
  step.ratio = nn::Sigmoid(ratio_head_->Forward(nn::ConcatCols(h_e, e_emb)));
  return step;
}

}  // namespace lighttr::baselines
