// Tests for tools/lint: every rule must fire on a seeded fixture with
// the right rule name and file:line, and a same-line allow() comment
// must suppress it. Fixtures live in string literals (the scanner blanks
// literals, so this file never trips the repo-wide lint run) and are
// fed both in-memory and through the filesystem entry point.
#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lighttr::lint {
namespace {

std::vector<Diagnostic> OfRule(const std::vector<Diagnostic>& diagnostics,
                               const std::string& rule) {
  std::vector<Diagnostic> matching;
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) matching.push_back(d);
  }
  return matching;
}

TEST(LintTest, NoRawRandFiresAndSuppresses) {
  SourceFile file;
  file.path = "src/fl/sampler.cc";
  file.content =
      "void A() { int x = rand(); }\n"                                  // 1
      "void B() { std::mt19937 gen(7); }\n"                             // 2
      "void C() { std::random_device rd; }\n"                           // 3
      "void D() { std::mt19937 ok(7); }  // lighttr-lint: allow(no-raw-rand)\n";
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "no-raw-rand");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].file, "src/fl/sampler.cc");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_EQ(hits[2].line, 3);
}

TEST(LintTest, NoRawRandExemptsCommonRng) {
  SourceFile file;
  file.path = "src/common/rng.h";
  file.content = "class Rng { std::mt19937_64 engine_; };\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-rand").empty());
}

TEST(LintTest, RandInsideStringOrCommentDoesNotFire) {
  SourceFile file;
  file.path = "src/a.cc";
  file.content =
      "const char* kMsg = \"call rand() for chaos\";\n"
      "// rand() is banned here\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-rand").empty());
}

TEST(LintTest, NoIgnoredStatusFiresOnBareCall) {
  SourceFile header;
  header.path = "src/io/writer.h";
  header.content = "Status WriteThing(int x);\n";
  SourceFile source;
  source.path = "src/io/user.cc";
  source.content =
      "void Use() {\n"
      "  WriteThing(1);\n"                              // 2: discarded
      "  Status s = WriteThing(2);\n"                   // consumed
      "  if (!s.ok()) return;\n"
      "  (void)WriteThing(3);  // best effort\n"        // explicit discard
      "  WriteThing(4);  // lighttr-lint: allow(no-ignored-status)\n"
      "}\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({header, source}), "no-ignored-status");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/io/user.cc");
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("WriteThing"), std::string::npos);
}

TEST(LintTest, NoIgnoredStatusSeesQualifiedAndResultDecls) {
  SourceFile header;
  header.path = "src/io/api.h";
  header.content =
      "lighttr::Status Push(int x);\n"
      "Result<std::vector<double>> Pull();\n";
  SourceFile source;
  source.path = "src/io/caller.cc";
  source.content = "void F() { Push(1); Pull(); }\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({header, source}), "no-ignored-status");
  ASSERT_EQ(hits.size(), 2u);
}

TEST(LintTest, NoIostreamInLibFiresOnlyUnderSrc) {
  SourceFile lib;
  lib.path = "src/geo/debug.cc";
  lib.content = "void P() { std::cout << 1; }\n";
  SourceFile bench;
  bench.path = "bench/report.cc";
  bench.content = "void P() { std::cout << 1; }\n";
  SourceFile printer;
  printer.path = "src/common/table_printer.cc";
  printer.content = "void P() { std::cout << 1; }\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({lib, bench, printer}), "no-iostream-in-lib");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/geo/debug.cc");
  EXPECT_EQ(hits[0].line, 1);
}

TEST(LintTest, BannedFnFiresAndSuppresses) {
  SourceFile file;
  file.path = "src/parse.cc";
  file.content =
      "double A(const char* s) { return atof(s); }\n"   // 1
      "int B() { return system(\"ls\"); }\n"            // 2
      "int C(const char* s) {\n"
      "  return atoi(s);  // lighttr-lint: allow(banned-fn)\n"
      "}\n"
      "void D(Obj* o) { o->system(1); }\n";             // member: allowed
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "banned-fn");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("atof"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_NE(hits[1].message.find("system"), std::string::npos);
}

TEST(LintTest, NoDirectPersistenceFiresAcrossSrc) {
  SourceFile fl;
  fl.path = "src/fl/rogue.cc";
  fl.content =
      "void A() { std::ofstream out(\"x\"); }\n"        // 1
      "void B() { std::fstream io(\"x\"); }\n"          // 2
      "void C() { FILE* f = fopen(\"x\", \"wb\"); }\n"  // 3
      "void D() { std::ifstream in(\"x\"); }\n";        // 4: reads bypass
                                                        // fault injection too
  SourceFile traj;  // the rule scopes to ALL of src/, not just fl|nn
  traj.path = "src/traj/rogue.cc";
  traj.content =
      "namespace fs = std::filesystem;\n"                    // 1: alias
      "void E() { std::filesystem::remove_all(\"x\"); }\n"   // 2: mutation
      "void F() { std::filesystem::directory_iterator it; }\n";  // 3: listing
  const std::vector<Diagnostic> hits =
      OfRule(Lint({fl, traj}), "no-direct-persistence");
  ASSERT_EQ(hits.size(), 7u);
  EXPECT_EQ(hits[0].file, "src/fl/rogue.cc");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("WriteFileAtomic"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_EQ(hits[2].line, 3);
  EXPECT_EQ(hits[3].line, 4);
  EXPECT_EQ(hits[4].file, "src/traj/rogue.cc");
  EXPECT_EQ(hits[4].line, 1);
  EXPECT_NE(hits[4].message.find("std::filesystem"), std::string::npos);
  EXPECT_EQ(hits[5].line, 2);
  EXPECT_EQ(hits[6].line, 3);
}

TEST(LintTest, NoDirectPersistenceAllowComment) {
  SourceFile file;
  file.path = "src/fl/rogue.cc";
  file.content =
      "void A() {\n"
      "  std::ofstream out(\"x\");"
      "  // lighttr-lint: allow(no-direct-persistence)\n"
      "}\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-direct-persistence").empty());
}

TEST(LintTest, NoDirectPersistenceExemptsEnvTestsAndTools) {
  const std::string body =
      "void A() { std::ofstream out(\"x\"); }\n"
      "void B() { std::filesystem::rename(\"a\", \"b\"); }\n";
  SourceFile env;  // the one sanctioned home of raw file APIs
  env.path = "src/common/env.cc";
  env.content = body;
  SourceFile test_file;
  test_file.path = "tests/crash_recovery_test.cc";
  test_file.content = body;
  SourceFile tool;
  tool.path = "tools/lint/main.cc";
  tool.content = body;
  EXPECT_TRUE(OfRule(Lint({env, test_file, tool}), "no-direct-persistence")
                  .empty());
}

TEST(LintTest, NoDirectPersistenceCoversFormerFlNnAllowedDirs) {
  // src/common outside env.* used to be out of scope; the Env refactor
  // moved the raw APIs into common/env, so everything else in src/ is
  // now held to the FileSystem contract.
  SourceFile common;
  common.path = "src/common/file_util.cc";
  common.content = "void A() { std::ofstream out(\"x\"); }\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({common}), "no-direct-persistence");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/common/file_util.cc");
}

TEST(LintTest, BannedFnIncludesRacyTempHelpers) {
  SourceFile file;
  file.path = "src/fl/tmp.cc";
  file.content =
      "void A(char* t) { mktemp(t); }\n"
      "void B(char* t) { tmpnam(t); }\n";
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "banned-fn");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NE(hits[0].message.find("mktemp"), std::string::npos);
  EXPECT_NE(hits[1].message.find("tmpnam"), std::string::npos);
}

TEST(LintTest, IncludeCycleDetected) {
  SourceFile a;
  a.path = "src/x/a.h";
  a.content = "#include \"x/b.h\"\n";
  SourceFile b;
  b.path = "src/x/b.h";
  b.content = "#include \"x/a.h\"\n";
  SourceFile fine;
  fine.path = "src/x/c.h";
  fine.content = "#include \"x/a.h\"\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({a, b, fine}), "no-include-cycle");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("a.h"), std::string::npos);
  EXPECT_NE(hits[0].message.find("b.h"), std::string::npos);
}

TEST(LintTest, AcyclicIncludesAreClean) {
  SourceFile a;
  a.path = "src/x/a.h";
  a.content = "#include \"x/b.h\"\n#include \"x/c.h\"\n";
  SourceFile b;
  b.path = "src/x/b.h";
  b.content = "#include \"x/c.h\"\n";
  SourceFile c;
  c.path = "src/x/c.h";
  c.content = "\n";
  EXPECT_TRUE(OfRule(Lint({a, b, c}), "no-include-cycle").empty());
}

TEST(LintTest, FormatDiagnosticIsCompilerStyle) {
  Diagnostic d;
  d.file = "src/a.cc";
  d.line = 12;
  d.rule = "no-raw-rand";
  d.message = "nope";
  EXPECT_EQ(FormatDiagnostic(d), "src/a.cc:12: no-raw-rand: nope");
}

TEST(LintTest, LintPathsWalksRealFiles) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "lint_fixture";
  const fs::path src = root / "src" / "m";
  fs::create_directories(src);
  {
    std::ofstream out(src / "bad.cc");
    out << "void F() { int x = rand(); }\n";
  }
  {
    std::ofstream out(src / "good.cc");
    out << "void G() {}\n";
  }
  const std::vector<Diagnostic> diagnostics =
      LintPaths({root.generic_string()});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "no-raw-rand");
  EXPECT_EQ(diagnostics[0].line, 1);
  EXPECT_NE(diagnostics[0].file.find("bad.cc"), std::string::npos);
  fs::remove_all(root);
}

TEST(LintTest, LintPathsReportsMissingRoot) {
  const std::vector<Diagnostic> diagnostics =
      LintPaths({"/nonexistent/lighttr/path"});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "bad-input");
}

TEST(LintTest, NoRawThreadFiresOutsideThreadPool) {
  SourceFile file;
  file.path = "src/fl/worker.cc";
  file.content =
      "void A() { std::thread t([] {}); t.join(); }\n"          // 1
      "void B() { std::jthread t([] {}); }\n"                   // 2
      "void C() { auto f = std::async([] { return 1; }); }\n";  // 3
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "no-raw-thread");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].file, "src/fl/worker.cc");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_EQ(hits[2].line, 3);
}

TEST(LintTest, NoRawThreadExemptsThreadPoolButNotAsync) {
  SourceFile pool;
  pool.path = "src/common/thread_pool.cc";
  pool.content =
      "void Spawn() { std::thread t([] {}); t.detach(); }\n"    // exempt
      "void Bad() { auto f = std::async([] { return 1; }); }\n";  // not
  const std::vector<Diagnostic> hits = OfRule(Lint({pool}), "no-raw-thread");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
}

TEST(LintTest, NoRawThreadAllowCommentAndNonMatches) {
  SourceFile file;
  file.path = "src/eval/harness.cc";
  file.content =
      "void A() { std::thread t; }  // lighttr-lint: allow(no-raw-thread)\n"
      "int thread = 0;   // unqualified identifier: no match\n"
      "void B() { pool->ParallelFor(4, [](size_t) {}); }\n"
      "// std::thread in a comment does not fire\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-thread").empty());
}

TEST(LintTest, NoRawNonfiniteFiresOutsideCommonAndHealth) {
  SourceFile file;
  file.path = "src/traj/check.cc";
  file.content =
      "bool A(double x) { return std::isnan(x); }\n"              // 1
      "bool B(double x) { return isinf(x); }\n"                   // 2
      "bool C(double x) { return std::isfinite(x); }\n"           // isfinite ok
      "bool D(double x) { return std::isnan(x); }"
      "  // lighttr-lint: allow(no-raw-nonfinite)\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({file}), "no-raw-nonfinite");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].file, "src/traj/check.cc");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("isnan"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_NE(hits[1].message.find("isinf"), std::string::npos);
}

TEST(LintTest, NoRawNonfiniteExemptsCommonAndHealth) {
  const std::string body = "bool A(double x) { return std::isnan(x); }\n";
  SourceFile finite;
  finite.path = "src/common/finite.h";
  finite.content = body;
  SourceFile health_h;
  health_h.path = "src/fl/health.h";
  health_h.content = body;
  SourceFile health_cc;
  health_cc.path = "src/fl/health.cc";
  health_cc.content = body;
  EXPECT_TRUE(OfRule(Lint({finite, health_h, health_cc}), "no-raw-nonfinite")
                  .empty());
}

TEST(LintTest, NoRawNonfiniteIgnoresMembersAndIdentifiers) {
  SourceFile file;
  file.path = "src/fl/other.cc";
  file.content =
      "void A(Obj* o) { o->isnan(1.0); }\n"       // member access: allowed
      "int my_isnan = 0;\n"                       // identifier: no call
      "bool B(double x) { return IsNan(x); }\n";  // the sanctioned wrapper
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-nonfinite").empty());
}

TEST(LintTest, NoRawWireFiresOnCastAndMemcpyInSrc) {
  SourceFile file;
  file.path = "src/fl/run_state.cc";
  file.content =
      "void A(char* p, const T& t) { std::memcpy(p, &t, sizeof(t)); }\n"  // 1
      "const T* B(const char* p) { return reinterpret_cast<const T*>(p); "
      "}\n"                                                 // 2
      "void C(char* d, const char* s) { memcpy(d, s, 4); }"  // 3, unqualified
      "\nvoid D(char* p, const T& t) { std::memcpy(p, &t, sizeof(t)); }"
      "  // lighttr-lint: allow(no-raw-wire)\n";
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "no-raw-wire");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("memcpy"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_NE(hits[1].message.find("reinterpret_cast"), std::string::npos);
  EXPECT_EQ(hits[2].line, 3);
}

TEST(LintTest, NoRawWireExemptsBinaryIoAndTransport) {
  const std::string body =
      "void A(char* p, const T& t) { std::memcpy(p, &t, sizeof(t)); }\n";
  SourceFile io;
  io.path = "src/common/binary_io.h";
  io.content = body;
  SourceFile wire;
  wire.path = "src/fl/transport/wire.cc";
  wire.content = body;
  SourceFile test_file;  // scope is src/ only
  test_file.path = "tests/some_test.cc";
  test_file.content = body;
  EXPECT_TRUE(
      OfRule(Lint({io, wire, test_file}), "no-raw-wire").empty());
}

TEST(LintTest, NoRawWireIgnoresMembersAndIdentifiers) {
  SourceFile file;
  file.path = "src/fl/other.cc";
  file.content =
      "void A(Obj* o) { o->memcpy(1); }\n"       // member access: allowed
      "int my_memcpy = 0;\n"                     // identifier: no call
      "bool B(const char* a, const char* b) { return memcmp(a, b, 4); }\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-wire").empty());
}

TEST(LintTest, NoRawIntrinsicsFlagsIntrinsicsOutsideKernels) {
  SourceFile file;
  file.path = "src/nn/ops.cc";
  file.content =
      "#include <immintrin.h>\n"                                    // 1
      "void F(double* x) { __m256d v = _mm256_loadu_pd(x);\n"       // 2 (x2)
      "  _mm256_storeu_pd(x, v); }\n"                               // 3
      "void G(double* x) { __m256d v = _mm256_setzero_pd(); "
      "_mm256_storeu_pd(x, v); }"
      "  // lighttr-lint: allow(no-raw-intrinsics)\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({file}), "no-raw-intrinsics");
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("intrinsics header"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_NE(hits[1].message.find("__m256d"), std::string::npos);
  EXPECT_EQ(hits[2].line, 2);
  EXPECT_NE(hits[2].message.find("_mm256_loadu_pd"), std::string::npos);
  EXPECT_EQ(hits[3].line, 3);
}

TEST(LintTest, NoRawIntrinsicsExemptsKernelsDirOnly) {
  const std::string body =
      "#include <immintrin.h>\n"
      "void F(double* x) { _mm256_storeu_pd(x, _mm256_setzero_pd()); }\n";
  SourceFile kernel;  // the one sanctioned home
  kernel.path = "src/nn/kernels/kernels_avx2.cc";
  kernel.content = body;
  EXPECT_TRUE(OfRule(Lint({kernel}), "no-raw-intrinsics").empty());
  SourceFile test_file;  // unlike most rules, tests are NOT exempt
  test_file.path = "tests/some_test.cc";
  test_file.content = body;
  EXPECT_EQ(OfRule(Lint({test_file}), "no-raw-intrinsics").size(), 3u);
  SourceFile lookalike;  // _mm-prefixed user identifiers are fine
  lookalike.path = "src/nn/ops.cc";
  lookalike.content = "int _map_max = 0; int mm256 = 0; double m128d = 0;\n";
  EXPECT_TRUE(OfRule(Lint({lookalike}), "no-raw-intrinsics").empty());
}

TEST(LintTest, AllRuleNamesListsEveryRule) {
  const std::vector<std::string>& names = AllRuleNames();
  EXPECT_EQ(names.size(), 16u);
  for (const char* expected :
       {"no-raw-rand", "no-raw-thread", "no-iostream-in-lib", "banned-fn",
        "no-direct-persistence", "no-raw-nonfinite", "no-raw-wire",
        "no-raw-intrinsics", "no-ignored-status", "no-include-cycle",
        "no-wall-clock", "no-pointer-keys", "parallel-capture-audit",
        "no-unordered-iteration", "unused-include", "unused-suppression"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

// ---------------------------------------------------------------------------
// Tokenizer false-positive class: banned patterns inside literals and
// comments must never fire. The regex engine this replaced kept string
// contents on preprocessor lines, so `#define kMsg "call rand()"` was a
// live false positive.
// ---------------------------------------------------------------------------

TEST(LintTest, BannedPatternsInStringLiteralsDoNotFire) {
  SourceFile file;
  file.path = "src/fl/msgs.cc";
  file.content =
      "const char* kA = \"rand() system(\\\"rm\\\") atof(x)\";\n"
      "const char* kB = \"std::thread t; std::ofstream out;\";\n"
      "const char* kC = \"std::isnan(x) memcpy(d, s, 4)\";\n"
      "const char* kD = \"for (auto& kv : m.begin())\";\n";
  EXPECT_TRUE(Lint({file}).empty());
}

TEST(LintTest, BannedPatternsInCommentsDoNotFire) {
  SourceFile file;
  file.path = "src/fl/notes.cc";
  file.content =
      "// rand() and std::mt19937 are banned; use common/rng.h\n"
      "/* std::thread t; std::async; std::ofstream out(\"x\"); */\n"
      "int x = 0;  // reinterpret_cast<const T*>(p), memcpy, isnan\n"
      "/* multi\n"
      "   line: system(\"ls\") atoi(s) std::chrono::system_clock */\n";
  EXPECT_TRUE(Lint({file}).empty());
}

TEST(LintTest, BannedPatternsInRawStringsDoNotFire) {
  SourceFile file;
  file.path = "src/fl/templates.cc";
  file.content =
      "const char* kT = R\"(int x = rand(); std::ofstream out(\"x\");)\";\n"
      "const char* kU = R\"delim(std::thread t; system(\"x\"))delim\";\n"
      "const char* kV = uR\"(std::isnan(v) && gettimeofday(&tv, 0))\";\n";
  EXPECT_TRUE(Lint({file}).empty());
}

TEST(LintTest, StringOnPreprocessorLineDoesNotFire) {
  // The old per-line regex scanner only blanked literals on non-`#`
  // lines, so this macro definition used to trip no-raw-rand.
  SourceFile file;
  file.path = "src/fl/defs.h";
  file.content =
      "#define LIGHTTR_MSG \"call rand() for chaos\"\n"
      "#define LIGHTTR_LONG \"std::thread t;\" \\\n"
      "                     \" system(x)\"\n";
  EXPECT_TRUE(Lint({file}).empty());
}

// ---------------------------------------------------------------------------
// Rule: no-unordered-iteration.
// ---------------------------------------------------------------------------

TEST(LintTest, NoUnorderedIterationFiresOnRangeForAndIterators) {
  SourceFile file;
  file.path = "src/fl/agg.cc";
  file.content =
      "std::unordered_map<int, double> m;\n"                     // 1: decl
      "void A() { for (const auto& kv : m) { Use(kv); } }\n"     // 2
      "void B() { auto it = m.begin(); Use(it); }\n"             // 3
      "void C() { auto it = std::begin(m); Use(it); }\n";        // 4
  const std::vector<Diagnostic> hits =
      OfRule(Lint({file}), "no-unordered-iteration");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("hash iteration order"), std::string::npos);
  EXPECT_EQ(hits[1].line, 3);
  EXPECT_EQ(hits[2].line, 4);
}

TEST(LintTest, NoUnorderedIterationTracksAliasesAndRefParams) {
  SourceFile file;
  file.path = "src/nn/index.cc";
  file.content =
      "using Index = std::unordered_set<int>;\n"
      "Index idx;\n"
      "void A() { for (int v : idx) { Use(v); } }\n"             // 3
      "void B(const std::unordered_set<int>& s) {\n"
      "  for (int v : s) { Use(v); }\n"                          // 5
      "}\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({file}), "no-unordered-iteration");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_EQ(hits[1].line, 5);
}

TEST(LintTest, NoUnorderedIterationAllowsLookupsAndOrderedWalks) {
  SourceFile file;
  file.path = "src/common/registry.cc";
  file.content =
      "std::unordered_map<int, double> m;\n"
      "std::map<int, double> ordered;\n"
      "void A() { auto it = m.find(1); Use(it); }\n"
      "void B() { if (m.count(2)) { m.at(2) = 1.0; } }\n"
      "void C() { for (const auto& kv : ordered) { Use(kv); } }\n"
      "void D() { for (size_t i = 0; i < m.size(); ++i) { Use(i); } }\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-unordered-iteration").empty());
}

TEST(LintTest, NoUnorderedIterationScopedAndSuppressible) {
  const std::string body =
      "std::unordered_map<int, double> m;\n"
      "void A() { for (const auto& kv : m) { Use(kv); } }\n";
  SourceFile outside;  // src/traj is outside the determinism scope
  outside.path = "src/traj/stats.cc";
  outside.content = body;
  SourceFile allowed;
  allowed.path = "src/fl/agg.cc";
  allowed.content =
      "std::unordered_map<int, double> m;\n"
      "void A() {\n"
      "  for (const auto& kv : m) { Use(kv); }"
      "  // lighttr-lint: allow(no-unordered-iteration)\n"
      "}\n";
  EXPECT_TRUE(
      OfRule(Lint({outside, allowed}), "no-unordered-iteration").empty());
}

// ---------------------------------------------------------------------------
// Rule: no-wall-clock.
// ---------------------------------------------------------------------------

TEST(LintTest, NoWallClockFiresOnChronoAndLibcTime) {
  SourceFile file;
  file.path = "src/fl/timing.cc";
  file.content =
      "void A() { auto t = std::chrono::system_clock::now(); Use(t); }\n"
      "void B() { auto t = std::chrono::steady_clock::now(); Use(t); }\n"
      "void C() { auto t = time(nullptr); Use(t); }\n"
      "void D() { timeval tv; gettimeofday(&tv, nullptr); }\n";
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "no-wall-clock");
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("system_clock"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_EQ(hits[2].line, 3);
  EXPECT_EQ(hits[3].line, 4);
}

TEST(LintTest, NoWallClockExemptsStopwatchAndBench) {
  const std::string body =
      "void A() { auto t = std::chrono::steady_clock::now(); Use(t); }\n";
  SourceFile stopwatch;  // the sanctioned wall-clock boundary
  stopwatch.path = "src/common/stopwatch.h";
  stopwatch.content = body;
  SourceFile bench;  // bench/ is outside the determinism scope
  bench.path = "bench/bench_rounds.cc";
  bench.content = body;
  SourceFile eval;  // so is src/eval
  eval.path = "src/eval/harness.cc";
  eval.content = body;
  EXPECT_TRUE(OfRule(Lint({stopwatch, bench, eval}), "no-wall-clock").empty());
}

TEST(LintTest, NoWallClockIgnoresMembersAndPlainIdentifiers) {
  SourceFile file;
  file.path = "src/fl/other.cc";
  file.content =
      "void A(Obj* o) { o->time(1); }\n"         // member access: allowed
      "int time_budget_ms = 0;\n"                // different identifier
      "void B(Obj* o) { o->clock().Tick(); }\n"
      "void C() { auto t = time(nullptr); Use(t); }"
      "  // lighttr-lint: allow(no-wall-clock)\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-wall-clock").empty());
}

// ---------------------------------------------------------------------------
// Rule: no-pointer-keys.
// ---------------------------------------------------------------------------

TEST(LintTest, NoPointerKeysFiresOnKeyedContainersAndHash) {
  SourceFile file;
  file.path = "src/nn/graph.cc";
  file.content =
      "std::unordered_map<TensorNode*, int> visited;\n"          // 1
      "std::set<Node*> order;\n"                                 // 2
      "struct H { std::hash<Foo*> hasher; };\n";                 // 3
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "no-pointer-keys");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("keyed on pointer values"),
            std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_EQ(hits[2].line, 3);
  EXPECT_NE(hits[2].message.find("std::hash over a pointer type"),
            std::string::npos);
}

TEST(LintTest, NoPointerKeysAllowsPointerValuesAndStableKeys) {
  SourceFile file;
  file.path = "src/common/tables.cc";
  file.content =
      "std::unordered_map<int, Node*> by_id;\n"     // pointer value: fine
      "std::map<std::string, Node*> by_name;\n"
      "std::vector<int*> slots;\n"                  // not a keyed container
      "std::unordered_set<uint64_t> seen;\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-pointer-keys").empty());
}

TEST(LintTest, NoPointerKeysScopedAndSuppressible) {
  SourceFile outside;
  outside.path = "src/roadnet/index.cc";  // outside the determinism scope
  outside.content = "std::set<Segment*> segments;\n";
  SourceFile allowed;
  allowed.path = "src/fl/cache.cc";
  allowed.content =
      "std::set<Entry*> lru;"
      "  // lighttr-lint: allow(no-pointer-keys)\n";
  EXPECT_TRUE(OfRule(Lint({outside, allowed}), "no-pointer-keys").empty());
}

// ---------------------------------------------------------------------------
// Rule: parallel-capture-audit.
// ---------------------------------------------------------------------------

TEST(LintTest, ParallelCaptureAuditFiresOnUnannotatedByRef) {
  SourceFile file;
  file.path = "src/fl/rounds.cc";
  file.content =
      "void A(ThreadPool* pool, double& acc) {\n"
      "  pool->ParallelFor(4, [&](size_t i) { acc += i; });\n"     // 2
      "}\n"
      "void B(ThreadPool* pool, int& x) {\n"
      "  pool->Submit([&x] { x = 1; });\n"                         // 5
      "}\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({file}), "parallel-capture-audit");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("shared-state"), std::string::npos);
  EXPECT_EQ(hits[1].line, 5);
}

TEST(LintTest, ParallelCaptureAuditAcceptsVerifiedAnnotation) {
  SourceFile file;
  file.path = "src/fl/rounds.cc";
  file.content =
      "void A(ThreadPool* pool, std::vector<int>& slots) {\n"
      "  pool->ParallelFor(4, [&](size_t i) {"
      "  // lint: shared-state(slots)\n"
      "    slots[i] = 1;\n"
      "  });\n"
      "}\n"
      "void B(ThreadPool* pool, Mutex& mu) {\n"
      "  // Annotation on the call line also counts.\n"
      "  pool->ParallelFor(2,  // lint: shared-state(mu)\n"
      "      [&](size_t) { mu.Lock(); mu.Unlock(); });\n"
      "}\n";
  EXPECT_TRUE(OfRule(Lint({file}), "parallel-capture-audit").empty());
}

TEST(LintTest, ParallelCaptureAuditRejectsPhantomGuard) {
  SourceFile file;
  file.path = "src/nn/par.cc";
  file.content =
      "void A(ThreadPool* pool, double& acc) {\n"
      "  pool->ParallelFor(4, [&](size_t i) {"
      "  // lint: shared-state(mu)\n"
      "    acc += i;\n"
      "  });\n"
      "}\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({file}), "parallel-capture-audit");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("never appears"), std::string::npos);
}

TEST(LintTest, ParallelCaptureAuditIgnoresByValueAndOtherScopes) {
  SourceFile by_value;
  by_value.path = "src/fl/rounds.cc";
  by_value.content =
      "void A(ThreadPool* pool, int x) {\n"
      "  pool->ParallelFor(4, [=](size_t i) { Use(x + i); });\n"
      "  pool->ParallelFor(4, [x](size_t i) { Use(x + i); });\n"
      "  pool->ParallelFor(4, [](size_t i) { Use(i); });\n"
      "}\n";
  SourceFile outside;  // src/eval is outside the determinism scope
  outside.path = "src/eval/harness.cc";
  outside.content =
      "void B(ThreadPool* pool, double& acc) {\n"
      "  pool->ParallelFor(4, [&](size_t i) { acc += i; });\n"
      "}\n";
  EXPECT_TRUE(
      OfRule(Lint({by_value, outside}), "parallel-capture-audit").empty());
}

// ---------------------------------------------------------------------------
// Rule: no-ignored-status (token-port specifics).
// ---------------------------------------------------------------------------

TEST(LintTest, NoIgnoredStatusSeesMemberChainsAndReturns) {
  SourceFile header;
  header.path = "src/io/api.h";
  header.content = "Status Push(int x);\n";
  SourceFile source;
  source.path = "src/io/caller.cc";
  source.content =
      "Status F() { return Push(1); }\n"           // consumed by return
      "void G(Obj& obj) { obj.Push(2); }\n"        // 2: chain, discarded
      "void H() { Status s; s = Push(3); }\n";     // consumed by assignment
  const std::vector<Diagnostic> hits =
      OfRule(Lint({header, source}), "no-ignored-status");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
}

TEST(LintTest, NoIgnoredStatusIgnoresMentionsInStrings) {
  SourceFile header;
  header.path = "src/io/api.h";
  header.content = "Status Push(int x);\n";
  SourceFile source;
  source.path = "src/io/caller.cc";
  source.content = "const char* kHelp = \"Push(1); discards a Status\";\n";
  EXPECT_TRUE(OfRule(Lint({header, source}), "no-ignored-status").empty());
}

// ---------------------------------------------------------------------------
// Rule: unused-include (IWYU-lite).
// ---------------------------------------------------------------------------

TEST(LintTest, UnusedIncludeFiresWhenNothingIsReferenced) {
  SourceFile util;
  util.path = "src/x/util.h";
  util.content = "struct HelperThing { int v = 0; };\n";
  SourceFile user;
  user.path = "src/x/a.cc";
  user.content =
      "#include \"x/util.h\"\n"
      "\n"
      "void F() { int y = 2; Use(y); }\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({util, user}), "unused-include");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/x/a.cc");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("util.h"), std::string::npos);
}

TEST(LintTest, UnusedIncludeQuietWhenNameIsUsed) {
  SourceFile util;
  util.path = "src/x/util.h";
  util.content = "struct HelperThing { int v = 0; };\n";
  SourceFile user;
  user.path = "src/x/b.cc";
  user.content =
      "#include \"x/util.h\"\n"
      "\n"
      "HelperThing MakeThing() { return {}; }\n";
  EXPECT_TRUE(OfRule(Lint({util, user}), "unused-include").empty());
}

TEST(LintTest, UnusedIncludeSkipsOwnHeaderAndOpaqueHeaders) {
  SourceFile own_header;  // the c.cc/c.h pair is never flagged
  own_header.path = "src/x/c.h";
  own_header.content = "struct NotUsedByCc { int v = 0; };\n";
  SourceFile own_source;
  own_source.path = "src/x/c.cc";
  own_source.content = "#include \"x/c.h\"\n\nvoid F() {}\n";
  SourceFile opaque;  // nothing declared: heuristic stays silent
  opaque.path = "src/x/flags.h";
  opaque.content = "// build flags only\n";
  SourceFile opaque_user;
  opaque_user.path = "src/x/d.cc";
  opaque_user.content = "#include \"x/flags.h\"\n\nvoid G() {}\n";
  EXPECT_TRUE(
      OfRule(Lint({own_header, own_source, opaque, opaque_user}),
             "unused-include")
          .empty());
}

TEST(LintTest, UnusedIncludeScopedToSrcAndSuppressible) {
  SourceFile util;
  util.path = "src/x/util.h";
  util.content = "struct HelperThing { int v = 0; };\n";
  SourceFile test_file;  // tests/ may include speculatively
  test_file.path = "tests/x_test.cc";
  test_file.content = "#include \"x/util.h\"\n\nvoid F() {}\n";
  SourceFile allowed;
  allowed.path = "src/x/e.cc";
  allowed.content =
      "#include \"x/util.h\""
      "  // lighttr-lint: allow(unused-include)\n"
      "\n"
      "void G() {}\n";
  EXPECT_TRUE(
      OfRule(Lint({util, test_file, allowed}), "unused-include").empty());
}

// ---------------------------------------------------------------------------
// Rule: unused-suppression.
// ---------------------------------------------------------------------------

TEST(LintTest, UnusedSuppressionFiresOnStaleAllow) {
  SourceFile file;
  file.path = "src/fl/clean.cc";
  file.content = "int x = 0;  // lighttr-lint: allow(no-raw-rand)\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({file}), "unused-suppression");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("suppressed no diagnostic"),
            std::string::npos);
}

TEST(LintTest, UnusedSuppressionFlagsUnknownRuleNames) {
  SourceFile file;
  file.path = "src/fl/clean.cc";
  file.content = "int x = 0;  // lighttr-lint: allow(not-a-real-rule)\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({file}), "unused-suppression");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("does not have"), std::string::npos);
}

TEST(LintTest, ConsumedSuppressionIsNotStale) {
  SourceFile file;
  file.path = "src/fl/sampler.cc";
  file.content =
      "void A() { int x = rand(); Use(x); }"
      "  // lighttr-lint: allow(no-raw-rand)\n";
  EXPECT_TRUE(Lint({file}).empty());
}

TEST(LintTest, PlaceholderSuppressionSyntaxIsIgnored) {
  // Documentation may spell out the grammar with bracketed
  // placeholders; those are not suppression entries.
  SourceFile file;
  file.path = "src/fl/clean.cc";
  file.content = "int x = 0;  // see: lighttr-lint: allow(<rule>)\n";
  EXPECT_TRUE(Lint({file}).empty());
}

// ---------------------------------------------------------------------------
// JSON output and baselines.
// ---------------------------------------------------------------------------

TEST(LintTest, FormatDiagnosticJsonEscapes) {
  Diagnostic d;
  d.file = "src/a.cc";
  d.line = 7;
  d.rule = "no-raw-rand";
  d.message = "say \"hi\" and \\ survive";
  EXPECT_EQ(FormatDiagnosticJson(d),
            "{\"file\":\"src/a.cc\",\"line\":7,\"rule\":\"no-raw-rand\","
            "\"message\":\"say \\\"hi\\\" and \\\\ survive\"}");
}

TEST(LintTest, ParseBaselineSkipsCommentsAndBlanks) {
  const Baseline baseline = ParseBaseline(
      "# header comment\n"
      "\n"
      "no-raw-rand src/fl/sampler.cc\n"
      "  no-wall-clock src/nn/timing.cc  \n");
  ASSERT_EQ(baseline.entries.size(), 2u);
  EXPECT_EQ(baseline.entries[0].rule, "no-raw-rand");
  EXPECT_EQ(baseline.entries[0].path_suffix, "src/fl/sampler.cc");
  EXPECT_EQ(baseline.entries[1].rule, "no-wall-clock");
}

TEST(LintTest, ApplyBaselineFiltersByRuleAndPathSuffix) {
  const Baseline baseline =
      ParseBaseline("no-raw-rand src/fl/sampler.cc\n");
  Diagnostic matched;
  matched.file = "/abs/checkout/src/fl/sampler.cc";
  matched.line = 3;
  matched.rule = "no-raw-rand";
  Diagnostic wrong_rule = matched;
  wrong_rule.rule = "no-raw-thread";
  Diagnostic wrong_file = matched;
  wrong_file.file = "src/fl/other.cc";
  EXPECT_TRUE(baseline.Matches(matched));
  EXPECT_FALSE(baseline.Matches(wrong_rule));
  EXPECT_FALSE(baseline.Matches(wrong_file));
  const std::vector<Diagnostic> kept =
      ApplyBaseline({matched, wrong_rule, wrong_file}, baseline);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].rule, "no-raw-thread");
  EXPECT_EQ(kept[1].file, "src/fl/other.cc");
}

}  // namespace
}  // namespace lighttr::lint
