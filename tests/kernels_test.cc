// Kernel-layer tests: mode resolution, scalar-vs-AVX2 numeric parity
// (the scalar reference bounds the vector kernels' rounding drift), and
// the tensor arena's alignment/reuse/bypass contracts.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/arena.h"
#include "nn/kernels/kernels.h"
#include "nn/matrix.h"

namespace lighttr::nn {
namespace {

// Restores the kernel mode active at construction — parity tests flip
// the process-global table and must not leak that into other tests.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode) : saved_(ActiveKernelMode()) {
    ActivateKernels(mode);
  }
  ~ScopedKernelMode() { ActivateKernels(saved_); }

 private:
  KernelMode saved_;
};

std::vector<Scalar> RandomVec(size_t n, Rng* rng) {
  std::vector<Scalar> v(n);
  for (Scalar& x : v) x = static_cast<Scalar>(rng->Uniform(-2.0, 2.0));
  return v;
}

// Combined absolute+relative bound: FMA contraction and the vector
// exp's different rounding give tiny drift; tanh near 0 additionally
// loses absolute precision to cancellation in (e^2x-1)/(e^2x+1).
void ExpectClose(const std::vector<Scalar>& a, const std::vector<Scalar>& b,
                 double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = std::abs(a[i] - b[i]);
    const double scale = std::max({1.0, std::abs(a[i]), std::abs(b[i])});
    EXPECT_LE(diff, tol * scale) << "index " << i << ": " << a[i] << " vs "
                                 << b[i];
  }
}

TEST(KernelMode, ResolutionRule) {
  // kScalar always wins; kAuto/kAvx2 need hardware support.
  EXPECT_EQ(ResolveKernelMode(KernelMode::kScalar, true), KernelMode::kScalar);
  EXPECT_EQ(ResolveKernelMode(KernelMode::kScalar, false),
            KernelMode::kScalar);
  EXPECT_EQ(ResolveKernelMode(KernelMode::kAuto, true), KernelMode::kAvx2);
  EXPECT_EQ(ResolveKernelMode(KernelMode::kAuto, false), KernelMode::kScalar);
  EXPECT_EQ(ResolveKernelMode(KernelMode::kAvx2, true), KernelMode::kAvx2);
  // Requesting an ISA the CPU lacks falls back instead of crashing.
  EXPECT_EQ(ResolveKernelMode(KernelMode::kAvx2, false), KernelMode::kScalar);
}

TEST(KernelMode, ActiveModeIsNeverAuto) {
  EXPECT_NE(ActiveKernelMode(), KernelMode::kAuto);
  ScopedKernelMode guard(KernelMode::kAuto);
  EXPECT_NE(ActiveKernelMode(), KernelMode::kAuto);
}

TEST(KernelMode, Names) {
  EXPECT_STREQ(KernelModeName(KernelMode::kAuto), "auto");
  EXPECT_STREQ(KernelModeName(KernelMode::kScalar), "scalar");
  EXPECT_STREQ(KernelModeName(KernelMode::kAvx2), "avx2");
  KernelMode mode;
  EXPECT_TRUE(ParseKernelMode("scalar", &mode));
  EXPECT_EQ(mode, KernelMode::kScalar);
  EXPECT_TRUE(ParseKernelMode("avx2", &mode));
  EXPECT_EQ(mode, KernelMode::kAvx2);
  EXPECT_TRUE(ParseKernelMode("auto", &mode));
  EXPECT_EQ(mode, KernelMode::kAuto);
  EXPECT_FALSE(ParseKernelMode("sse9", &mode));
  EXPECT_FALSE(ParseKernelMode("", &mode));
}

TEST(KernelMode, ActivationIsDeterministicPerMode) {
  // Re-activating the same mode must reproduce bitwise-equal results.
  Rng rng(11);
  const std::vector<Scalar> a = RandomVec(7 * 13, &rng);
  const std::vector<Scalar> b = RandomVec(13 * 9, &rng);
  std::vector<Scalar> c1(7 * 9, Scalar{0});
  std::vector<Scalar> c2(7 * 9, Scalar{0});
  {
    ScopedKernelMode guard(KernelMode::kAuto);
    kernels::GemmSmallNN(a.data(), b.data(), c1.data(), 7, 13, 9, 9);
  }
  {
    ScopedKernelMode guard(KernelMode::kAuto);
    kernels::GemmSmallNN(a.data(), b.data(), c2.data(), 7, 13, 9, 9);
  }
  for (size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c2[i]);
}

// ---------------------------------------------------------------------
// Scalar vs AVX2 parity. Shapes deliberately cover every tail path:
// n % 8, n % 4, k % 4 all nonzero somewhere, plus k < 4 and n < 4.
// ---------------------------------------------------------------------

struct GemmShape {
  size_t m, k, n;
};

const GemmShape kShapes[] = {
    {1, 1, 1},   {1, 43, 32},  {2, 3, 5},    {7, 13, 9},
    {8, 16, 24}, {5, 17, 31},  {3, 2, 70},   {16, 64, 33},
    {9, 65, 12}, {33, 70, 65},
};

TEST(KernelParity, GemmSmallNN) {
  if (!CpuHasAvx2Fma()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Rng rng(42);
  for (const GemmShape& s : kShapes) {
    const std::vector<Scalar> a = RandomVec(s.m * s.k, &rng);
    const std::vector<Scalar> b = RandomVec(s.k * s.n, &rng);
    std::vector<Scalar> ref(s.m * s.n, Scalar{0});
    std::vector<Scalar> vec(s.m * s.n, Scalar{0});
    {
      ScopedKernelMode guard(KernelMode::kScalar);
      kernels::GemmSmallNN(a.data(), b.data(), ref.data(), s.m, s.k, s.n,
                           s.n);
    }
    {
      ScopedKernelMode guard(KernelMode::kAvx2);
      kernels::GemmSmallNN(a.data(), b.data(), vec.data(), s.m, s.k, s.n,
                           s.n);
    }
    ExpectClose(ref, vec, 1e-13);
  }
}

TEST(KernelParity, GemmSmallNNStridedOutput) {
  if (!CpuHasAvx2Fma()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  // The fused GRU packs two gates into one [m, 2n] buffer via ldc.
  Rng rng(43);
  const size_t m = 5, k = 17, n = 13, ldc = 2 * n;
  const std::vector<Scalar> a = RandomVec(m * k, &rng);
  const std::vector<Scalar> b = RandomVec(k * n, &rng);
  std::vector<Scalar> ref(m * ldc, Scalar{0.5});
  std::vector<Scalar> vec(m * ldc, Scalar{0.5});
  {
    ScopedKernelMode guard(KernelMode::kScalar);
    kernels::GemmSmallNN(a.data(), b.data(), ref.data() + n, m, k, n, ldc);
  }
  {
    ScopedKernelMode guard(KernelMode::kAvx2);
    kernels::GemmSmallNN(a.data(), b.data(), vec.data() + n, m, k, n, ldc);
  }
  ExpectClose(ref, vec, 1e-13);
  // Columns outside the written band stay untouched.
  for (size_t r = 0; r < m; ++r) {
    for (size_t c = 0; c < n; ++c) {
      EXPECT_EQ(vec[r * ldc + c], Scalar{0.5});
    }
  }
}

TEST(KernelParity, GemmSmallTA) {
  if (!CpuHasAvx2Fma()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Rng rng(44);
  for (const GemmShape& s : kShapes) {
    // c [m,n] += a^T b with a [k,m].
    const std::vector<Scalar> a = RandomVec(s.k * s.m, &rng);
    const std::vector<Scalar> b = RandomVec(s.k * s.n, &rng);
    std::vector<Scalar> ref(s.m * s.n, Scalar{0});
    std::vector<Scalar> vec(s.m * s.n, Scalar{0});
    {
      ScopedKernelMode guard(KernelMode::kScalar);
      kernels::GemmSmallTA(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    }
    {
      ScopedKernelMode guard(KernelMode::kAvx2);
      kernels::GemmSmallTA(a.data(), b.data(), vec.data(), s.m, s.k, s.n);
    }
    ExpectClose(ref, vec, 1e-13);
  }
}

TEST(KernelParity, GemmSmallTB) {
  if (!CpuHasAvx2Fma()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Rng rng(45);
  for (const GemmShape& s : kShapes) {
    // c [m,n] += a b^T with b [n,k].
    const std::vector<Scalar> a = RandomVec(s.m * s.k, &rng);
    const std::vector<Scalar> b = RandomVec(s.n * s.k, &rng);
    std::vector<Scalar> ref(s.m * s.n, Scalar{0});
    std::vector<Scalar> vec(s.m * s.n, Scalar{0});
    {
      ScopedKernelMode guard(KernelMode::kScalar);
      kernels::GemmSmallTB(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    }
    {
      ScopedKernelMode guard(KernelMode::kAvx2);
      kernels::GemmSmallTB(a.data(), b.data(), vec.data(), s.m, s.k, s.n);
    }
    ExpectClose(ref, vec, 1e-13);
  }
}

TEST(KernelParity, GemmRowsBlocked) {
  if (!CpuHasAvx2Fma()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Rng rng(46);
  // Sizes straddle the k-unroll (k % 4) and vector-width (n % 8) tails
  // and exceed one kBlockK x kBlockN panel.
  const GemmShape big[] = {{4, 70, 300}, {6, 64, 256}, {3, 129, 77}};
  for (const GemmShape& s : big) {
    const std::vector<Scalar> a = RandomVec(s.m * s.k, &rng);
    const std::vector<Scalar> b = RandomVec(s.k * s.n, &rng);
    std::vector<Scalar> ref(s.m * s.n, Scalar{0});
    std::vector<Scalar> vec(s.m * s.n, Scalar{0});
    {
      ScopedKernelMode guard(KernelMode::kScalar);
      kernels::GemmRowsBlocked(a.data(), b.data(), ref.data(), s.k, s.n, 0,
                               s.m);
    }
    {
      ScopedKernelMode guard(KernelMode::kAvx2);
      kernels::GemmRowsBlocked(a.data(), b.data(), vec.data(), s.k, s.n, 0,
                               s.m);
    }
    ExpectClose(ref, vec, 1e-12);
  }
}

TEST(KernelParity, RowSplitIsBitwiseStable) {
  if (!CpuHasAvx2Fma()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  // The parallel GEMM path splits C rows across threads; per fixed
  // kernel the split must be bitwise invisible. Emulate splits directly.
  Rng rng(47);
  const size_t m = 12, k = 70, n = 96;
  const std::vector<Scalar> a = RandomVec(m * k, &rng);
  const std::vector<Scalar> b = RandomVec(k * n, &rng);
  for (KernelMode mode : {KernelMode::kScalar, KernelMode::kAvx2}) {
    ScopedKernelMode guard(mode);
    std::vector<Scalar> whole(m * n, Scalar{0});
    kernels::GemmRowsBlocked(a.data(), b.data(), whole.data(), k, n, 0, m);
    for (size_t chunks : {2u, 3u, 8u}) {
      std::vector<Scalar> split(m * n, Scalar{0});
      const size_t per = (m + chunks - 1) / chunks;
      for (size_t begin = 0; begin < m; begin += per) {
        kernels::GemmRowsBlocked(a.data(), b.data(), split.data(), k, n,
                                 begin, std::min(begin + per, m));
      }
      for (size_t i = 0; i < whole.size(); ++i) {
        ASSERT_EQ(whole[i], split[i]) << "chunks=" << chunks;
      }
    }
  }
}

TEST(KernelParity, Activations) {
  if (!CpuHasAvx2Fma()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Rng rng(48);
  // Cover saturation, the near-zero cancellation band, and vector tails
  // (sizes not multiples of 4).
  for (size_t n : {1u, 3u, 4u, 7u, 64u, 1001u}) {
    std::vector<Scalar> base = RandomVec(n, &rng);
    for (Scalar& x : base) x *= Scalar{10};
    if (n >= 4) {
      base[0] = Scalar{0};
      base[1] = Scalar{1e-8};
      base[2] = Scalar{-745};  // exp underflow region
      base[3] = Scalar{745};
    }
    std::vector<Scalar> sig_ref = base;
    std::vector<Scalar> sig_vec = base;
    std::vector<Scalar> tanh_ref = base;
    std::vector<Scalar> tanh_vec = base;
    {
      ScopedKernelMode guard(KernelMode::kScalar);
      kernels::SigmoidInPlace(sig_ref.data(), n);
      kernels::TanhInPlace(tanh_ref.data(), n);
    }
    {
      ScopedKernelMode guard(KernelMode::kAvx2);
      kernels::SigmoidInPlace(sig_vec.data(), n);
      kernels::TanhInPlace(tanh_vec.data(), n);
    }
    ExpectClose(sig_ref, sig_vec, 1e-12);
    ExpectClose(tanh_ref, tanh_vec, 1e-12);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(std::isfinite(sig_vec[i]));
      EXPECT_TRUE(std::isfinite(tanh_vec[i]));
      EXPECT_GE(sig_vec[i], Scalar{0});
      EXPECT_LE(sig_vec[i], Scalar{1});
      EXPECT_GE(tanh_vec[i], Scalar{-1});
      EXPECT_LE(tanh_vec[i], Scalar{1});
    }
  }
}

// ---------------------------------------------------------------------
// Arena.
// ---------------------------------------------------------------------

TEST(Arena, BlocksAre32ByteAligned) {
  for (size_t elements : {1u, 3u, 8u, 100u, 4097u}) {
    Scalar* block = AcquireArenaBlock(elements);
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(block) % 32, 0u) << elements;
    block[0] = Scalar{1};  // touch to keep sanitizers honest
    block[elements - 1] = Scalar{2};
    ReleaseArenaBlock(block, elements);
  }
}

TEST(Arena, ReleasedBlocksAreReused) {
  TrimThreadArena();
  const ArenaStats before = ThreadArenaStats();
  Scalar* first = AcquireArenaBlock(64);
  ReleaseArenaBlock(first, 64);
  // Same size class (LIFO) — must come straight off the freelist.
  Scalar* second = AcquireArenaBlock(64);
  EXPECT_EQ(second, first);
  // Any size rounding to the same power-of-two class also hits.
  ReleaseArenaBlock(second, 64);
  Scalar* third = AcquireArenaBlock(50);
  EXPECT_EQ(third, first);
  ReleaseArenaBlock(third, 50);
  const ArenaStats after = ThreadArenaStats();
  EXPECT_EQ(after.acquires - before.acquires, 3);
  EXPECT_EQ(after.pool_hits - before.pool_hits, 2);
  EXPECT_EQ(after.heap_allocations - before.heap_allocations, 1);
  EXPECT_EQ(after.releases - before.releases, 3);
  TrimThreadArena();
  EXPECT_EQ(ThreadArenaStats().cached_blocks, 0);
  EXPECT_EQ(ThreadArenaStats().cached_bytes, 0);
}

TEST(Arena, BypassSkipsFreelists) {
  TrimThreadArena();
  const bool saved = SetArenaBypass(true);
  const ArenaStats before = ThreadArenaStats();
  Scalar* block = AcquireArenaBlock(64);
  ReleaseArenaBlock(block, 64);
  const ArenaStats after = ThreadArenaStats();
  SetArenaBypass(saved);
  EXPECT_EQ(after.heap_allocations - before.heap_allocations, 1);
  EXPECT_EQ(after.pool_hits - before.pool_hits, 0);
  EXPECT_EQ(after.cached_blocks, before.cached_blocks);
}

TEST(Arena, MatrixSteadyStateAllocatesNothing) {
  TrimThreadArena();
  // Warm-up round allocates; every later identically-shaped round must
  // be served entirely from freelists.
  auto round = [] {
    Matrix a(4, 43);
    Matrix b(43, 32);
    a.Fill(Scalar{0.5});
    b.Fill(Scalar{0.25});
    Matrix c = MatMulValues(a, b);
    Matrix grad(c.rows(), c.cols());
    grad.Fill(Scalar{1});
    MatMulTransBAccumulate(grad, b, &a);
    MatMulTransAAccumulate(a, grad, &b);
  };
  round();
  const ArenaStats warm = ThreadArenaStats();
  for (int i = 0; i < 10; ++i) round();
  const ArenaStats after = ThreadArenaStats();
  EXPECT_EQ(after.heap_allocations, warm.heap_allocations);
  EXPECT_GT(after.pool_hits, warm.pool_hits);
}

TEST(ArenaBuffer, ZeroFillsAndCopies) {
  ArenaBuffer a(17);
  EXPECT_EQ(a.size(), 17u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], Scalar{0});
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<Scalar>(i);

  ArenaBuffer copy(a);  // deep
  ASSERT_EQ(copy.size(), a.size());
  EXPECT_NE(copy.data(), a.data());
  copy[3] = Scalar{-1};
  EXPECT_EQ(a[3], Scalar{3});

  ArenaBuffer moved(std::move(copy));  // steals
  EXPECT_EQ(moved.size(), 17u);
  EXPECT_EQ(moved[3], Scalar{-1});

  ArenaBuffer assigned;
  assigned = a;
  ASSERT_EQ(assigned.size(), 17u);
  EXPECT_EQ(assigned[16], Scalar{16});
  // Same-size copy-assign reuses storage in place.
  const Scalar* before = assigned.data();
  assigned = moved;
  EXPECT_EQ(assigned.data(), before);
  EXPECT_EQ(assigned[3], Scalar{-1});

  ArenaBuffer move_assigned;
  move_assigned = std::move(moved);
  EXPECT_EQ(move_assigned.size(), 17u);
  ArenaBuffer empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
}

}  // namespace
}  // namespace lighttr::nn
