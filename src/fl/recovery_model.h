// The model interface every trajectory-recovery network implements.
//
// LightTR's LTE model and all baselines (FC, RNN, MTrajRec, RNTrajRec)
// expose the same surface so a single federated harness trains and
// evaluates any of them.
#ifndef LIGHTTR_FL_RECOVERY_MODEL_H_
#define LIGHTTR_FL_RECOVERY_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/parameter.h"
#include "nn/tensor.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace lighttr::fl {

/// Result of a differentiable forward pass over one trajectory.
struct ForwardResult {
  /// Task loss L_local (Eq. 13): cross-entropy + mu * MSE, 1x1 tensor.
  nn::Tensor loss;
  /// Hidden representation over the missing steps ([n_missing, hidden]),
  /// used as the distillation signal of Eq. 16. May be undefined for
  /// models that do not support distillation.
  nn::Tensor representation;
};

/// A trainable trajectory-recovery network.
class RecoveryModel {
 public:
  virtual ~RecoveryModel() = default;

  /// Human-readable name ("LightTR", "FC+FL", ...).
  virtual const std::string& name() const = 0;

  /// The trainable parameters (FedAvg exchanges these).
  virtual nn::ParameterSet& params() = 0;

  /// Builds the loss graph for one trajectory. `training` enables
  /// dropout; `rng` may be null when !training.
  virtual ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                                bool training, Rng* rng) = 0;

  /// Recovers the positions of all points (observed steps are returned
  /// as-is; missing steps are predicted). Runs grad-free.
  virtual std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) = 0;
};

/// Creates identical-architecture model replicas (server + each client).
/// Implementations must build parameters in a deterministic order so
/// that flattened parameter vectors are interchangeable across replicas.
using ModelFactory = std::function<std::unique_ptr<RecoveryModel>(Rng* rng)>;

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_RECOVERY_MODEL_H_
