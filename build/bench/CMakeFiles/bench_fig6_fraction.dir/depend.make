# Empty dependencies file for bench_fig6_fraction.
# This may be replaced when dependencies are built.
