#include "nn/parameter.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/finite.h"

namespace lighttr::nn {

namespace {

constexpr char kMagic[4] = {'L', 'T', 'R', '1'};

}  // namespace

void ParameterSet::Register(std::string name, Tensor tensor) {
  LIGHTTR_CHECK(tensor.defined());
  LIGHTTR_CHECK(tensor.requires_grad());
  for (const auto& [existing, unused] : items_) {
    LIGHTTR_CHECK(existing != name);
  }
  items_.emplace_back(std::move(name), std::move(tensor));
}

const Tensor& ParameterSet::Get(const std::string& name) const {
  for (const auto& [existing, tensor] : items_) {
    if (existing == name) return tensor;
  }
  LIGHTTR_CHECK(false && "parameter not found");
  return items_.front().second;  // unreachable
}

int64_t ParameterSet::NumScalars() const {
  int64_t total = 0;
  for (const auto& [name, tensor] : items_) {
    total += static_cast<int64_t>(tensor.value().size());
  }
  return total;
}

std::vector<Scalar> ParameterSet::Flatten() const {
  std::vector<Scalar> flat;
  flat.reserve(static_cast<size_t>(NumScalars()));
  for (const auto& [name, tensor] : items_) {
    const Matrix& m = tensor.value();
    flat.insert(flat.end(), m.data(), m.data() + m.size());
  }
  return flat;
}

void ParameterSet::AssignFlat(const std::vector<Scalar>& flat) {
  LIGHTTR_CHECK_EQ(static_cast<int64_t>(flat.size()), NumScalars());
  size_t offset = 0;
  for (auto& [name, tensor] : items_) {
    Matrix& m = tensor.mutable_value();
    std::copy(flat.data() + offset, flat.data() + offset + m.size(), m.data());
    offset += m.size();
  }
}

void ParameterSet::ZeroGrads() {
  for (auto& [name, tensor] : items_) tensor.ZeroGrad();
}

int64_t ParameterSet::WireBytes() const {
  // 4 bytes per scalar (float32 wire format) plus per-tensor headers.
  int64_t bytes = sizeof(kMagic) + sizeof(uint32_t);
  for (const auto& [name, tensor] : items_) {
    bytes += sizeof(uint32_t) + static_cast<int64_t>(name.size());
    bytes += 2 * sizeof(uint32_t);
    bytes += static_cast<int64_t>(tensor.value().size()) * sizeof(float);
  }
  return bytes;
}

std::string ParameterSet::Serialize() const {
  BinaryWriter writer;
  writer.WriteBytes(kMagic, sizeof(kMagic));
  writer.WriteU32(static_cast<uint32_t>(items_.size()));
  for (const auto& [name, tensor] : items_) {
    writer.WriteU32(static_cast<uint32_t>(name.size()));
    writer.WriteBytes(name.data(), name.size());
    const Matrix& m = tensor.value();
    writer.WriteU32(static_cast<uint32_t>(m.rows()));
    writer.WriteU32(static_cast<uint32_t>(m.cols()));
    for (size_t i = 0; i < m.size(); ++i) {
      writer.WriteF32(static_cast<float>(m.data()[i]));
    }
  }
  return writer.Take();
}

Status ParameterSet::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  char magic[4];
  if (!reader.ReadBytes(magic, sizeof(magic)).ok() ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad parameter blob magic");
  }
  uint32_t count = 0;
  if (!reader.ReadU32(&count).ok()) {
    return Status::InvalidArgument("truncated parameter blob");
  }
  if (count != items_.size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (auto& [name, tensor] : items_) {
    uint32_t name_len = 0;
    if (!reader.ReadU32(&name_len).ok()) {
      return Status::InvalidArgument("truncated parameter blob");
    }
    if (name_len > reader.remaining()) {
      return Status::InvalidArgument("truncated parameter blob");
    }
    std::string read_name(name_len, '\0');
    if (!reader.ReadBytes(read_name.data(), name_len).ok()) {
      return Status::InvalidArgument("truncated parameter blob");
    }
    if (read_name != name) {
      return Status::InvalidArgument("parameter name mismatch: expected " +
                                     name + ", got " + read_name);
    }
    uint32_t rows = 0;
    uint32_t cols = 0;
    if (!reader.ReadU32(&rows).ok() || !reader.ReadU32(&cols).ok()) {
      return Status::InvalidArgument("truncated parameter blob");
    }
    Matrix& m = tensor.mutable_value();
    if (rows != m.rows() || cols != m.cols()) {
      return Status::InvalidArgument("parameter shape mismatch for " + name);
    }
    for (size_t i = 0; i < m.size(); ++i) {
      float v = 0.0f;
      if (!reader.ReadF32(&v).ok()) {
        return Status::InvalidArgument("truncated parameter blob");
      }
      m.data()[i] = static_cast<Scalar>(v);
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in parameter blob");
  }
  return Status::Ok();
}

double ClipGradNorm(ParameterSet* params, double max_norm) {
  LIGHTTR_CHECK(params != nullptr);
  double sum_sq = 0.0;
  for (size_t i = 0; i < params->size(); ++i) {
    const Matrix& g = params->tensor(i).grad();
    for (size_t j = 0; j < g.size(); ++j) {
      const double v = static_cast<double>(g.data()[j]);
      sum_sq += v * v;
    }
  }
  const double norm = std::sqrt(sum_sq);
  if (max_norm <= 0.0) return norm;
  if (!IsFinite(norm)) {
    // A NaN/Inf gradient cannot be rescaled into a sane one; drop the
    // step entirely rather than hand the optimizer poison.
    for (size_t i = 0; i < params->size(); ++i) {
      Matrix& g = params->tensor(i).grad();
      for (size_t j = 0; j < g.size(); ++j) g.data()[j] = Scalar{0};
    }
    return norm;
  }
  if (norm > max_norm) {
    const Scalar scale = static_cast<Scalar>(max_norm / norm);
    for (size_t i = 0; i < params->size(); ++i) {
      Matrix& g = params->tensor(i).grad();
      for (size_t j = 0; j < g.size(); ++j) g.data()[j] *= scale;
    }
  }
  return norm;
}

std::vector<Scalar> AverageFlat(
    const std::vector<std::vector<Scalar>>& flats) {
  // An empty upload set (every client failed) is a recoverable runtime
  // condition, not a programming error: return an empty vector so
  // callers can keep their previous parameters instead of crashing.
  if (flats.empty()) return {};
  const size_t n = flats[0].size();
  std::vector<Scalar> avg(n, Scalar{0});
  for (const auto& flat : flats) {
    LIGHTTR_CHECK_EQ(flat.size(), n);
    for (size_t i = 0; i < n; ++i) avg[i] += flat[i];
  }
  const auto inv = Scalar{1} / static_cast<Scalar>(flats.size());
  for (Scalar& x : avg) x *= inv;
  return avg;
}

}  // namespace lighttr::nn
