// Tests for the evaluation metrics (Eq. 19/20) and experiment harness.
#include <gtest/gtest.h>

#include <cstdlib>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/scale.h"
#include "roadnet/generators.h"

namespace lighttr::eval {
namespace {

// A model that recovers every point exactly.
class OracleModel : public fl::RecoveryModel {
 public:
  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }
  fl::ForwardResult Forward(const traj::IncompleteTrajectory&, bool,
                            Rng*) override {
    fl::ForwardResult result;
    result.loss = nn::Tensor::Constant(nn::Matrix::Zeros(1, 1));
    return result;
  }
  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    std::vector<roadnet::PointPosition> out(trajectory.size());
    for (size_t t = 0; t < trajectory.size(); ++t) {
      out[t] = trajectory.ground_truth.points[t].position;
    }
    return out;
  }

 private:
  std::string name_ = "Oracle";
  nn::ParameterSet params_;
};

// A model that always predicts a fixed wrong segment at missing steps.
class ConstantModel : public fl::RecoveryModel {
 public:
  explicit ConstantModel(roadnet::SegmentId segment) : segment_(segment) {}
  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }
  fl::ForwardResult Forward(const traj::IncompleteTrajectory&, bool,
                            Rng*) override {
    fl::ForwardResult result;
    result.loss = nn::Tensor::Constant(nn::Matrix::Zeros(1, 1));
    return result;
  }
  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    std::vector<roadnet::PointPosition> out(trajectory.size());
    for (size_t t = 0; t < trajectory.size(); ++t) {
      out[t] = trajectory.observed[t]
                   ? trajectory.ground_truth.points[t].position
                   : roadnet::PointPosition{segment_, 0.5};
    }
    return out;
  }

 private:
  std::string name_ = "Constant";
  nn::ParameterSet params_;
  roadnet::SegmentId segment_;
};

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : env_(6, 6, 71) {
    traj::WorkloadProfile profile = traj::TdriveLikeProfile();
    profile.trajectories_per_client = 6;
    clients_ = env_.MakeWorkload(profile, {2, 0.25, 0.7, 0.2}, 72);
    test_ = ExperimentEnv::PooledTestSet(clients_, 10);
  }

  ExperimentEnv env_;
  std::vector<traj::ClientDataset> clients_;
  std::vector<traj::IncompleteTrajectory> test_;
};

TEST_F(EvalTest, OracleScoresPerfectly) {
  OracleModel oracle;
  const RecoveryMetrics metrics =
      EvaluateRecovery(&oracle, env_.network(), test_);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mae_km, 0.0);
  EXPECT_DOUBLE_EQ(metrics.rmse_km, 0.0);
  EXPECT_GT(metrics.recovered_points, 0);
}

TEST_F(EvalTest, ConstantModelScoresPoorly) {
  ConstantModel constant(0);
  const RecoveryMetrics metrics =
      EvaluateRecovery(&constant, env_.network(), test_);
  EXPECT_LT(metrics.recall, 0.5);
  EXPECT_GT(metrics.mae_km, 0.0);
  EXPECT_GE(metrics.rmse_km, metrics.mae_km);
}

TEST_F(EvalTest, MetricsBounded) {
  ConstantModel constant(3);
  const RecoveryMetrics metrics =
      EvaluateRecovery(&constant, env_.network(), test_);
  EXPECT_GE(metrics.recall, 0.0);
  EXPECT_LE(metrics.recall, 1.0);
  EXPECT_GE(metrics.precision, 0.0);
  EXPECT_LE(metrics.precision, 1.0);
  EXPECT_NEAR(metrics.F1(),
              2 * metrics.recall * metrics.precision /
                  std::max(1e-12, metrics.recall + metrics.precision),
              1e-9);
}

TEST_F(EvalTest, SegmentSetCountsHandCase) {
  // Ground truth missing segments: {a, a, b}; recovered: {a, b, b}.
  traj::IncompleteTrajectory icp;
  icp.ground_truth.epsilon_s = 15.0;
  icp.ground_truth.points = {
      {{5, 0.1}, 0.0, 0},  // observed
      {{7, 0.2}, 15.0, 1}, {{7, 0.3}, 30.0, 2}, {{9, 0.4}, 45.0, 3},
      {{5, 0.5}, 60.0, 4},  // observed
  };
  icp.observed = {true, false, false, false, true};
  const std::vector<roadnet::PointPosition> recovered = {
      {5, 0.1}, {7, 0.25}, {9, 0.3}, {9, 0.4}, {5, 0.5}};
  const SetCounts counts = SegmentSetCounts(icp, recovered);
  EXPECT_EQ(counts.truth, 3);
  EXPECT_EQ(counts.recovered, 3);
  EXPECT_EQ(counts.intersection, 2);  // one 7 and one 9 overlap
}

TEST_F(EvalTest, PooledTestSetRespectsCap) {
  EXPECT_LE(ExperimentEnv::PooledTestSet(clients_, 1).size(), 1u);
  size_t total = 0;
  for (const auto& client : clients_) total += client.test.size();
  EXPECT_EQ(ExperimentEnv::PooledTestSet(clients_, 1000).size(), total);
}

TEST_F(EvalTest, ProfileModelFillsFields) {
  MethodResult result;
  ProfileModel(env_, baselines::ModelKind::kLightTr, test_, &result);
  EXPECT_GT(result.parameters, 0);
  EXPECT_GT(result.flops_per_recovery, 0);
  EXPECT_GT(result.train_epoch_seconds, 0.0);
}

TEST_F(EvalTest, CentralizedMethodRunsAndScores) {
  const MethodResult result = RunCentralizedMethod(
      env_, baselines::ModelKind::kFc, clients_, /*epochs=*/1,
      /*learning_rate=*/3e-3, /*max_test_trajectories=*/8, /*seed=*/5);
  EXPECT_NE(result.method.find("centralized"), std::string::npos);
  EXPECT_GT(result.metrics.recovered_points, 0);
  EXPECT_GE(result.metrics.recall, 0.0);
  EXPECT_LE(result.metrics.recall, 1.0);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Scale, FromEnvParsesModes) {
  setenv("LIGHTTR_SCALE", "smoke", 1);
  EXPECT_EQ(ExperimentScale::FromEnv().name, "smoke");
  setenv("LIGHTTR_SCALE", "full", 1);
  const ExperimentScale full = ExperimentScale::FromEnv();
  EXPECT_EQ(full.name, "full");
  EXPECT_EQ(full.num_clients, 20);  // the paper's default N
  setenv("LIGHTTR_SCALE", "quick", 1);
  EXPECT_EQ(ExperimentScale::FromEnv().name, "quick");
  unsetenv("LIGHTTR_SCALE");
  EXPECT_EQ(ExperimentScale::FromEnv().name, "quick");
}

TEST(Scale, DefaultOptionsConsistent) {
  const ExperimentScale scale;  // quick defaults
  const MethodRunOptions options = DefaultRunOptions(scale);
  EXPECT_EQ(options.fed.rounds, scale.rounds);
  EXPECT_EQ(options.fed.local_epochs, scale.local_epochs);
  EXPECT_EQ(options.teacher.cycles, scale.teacher_cycles);
  const auto workload = DefaultWorkloadOptions(scale, 0.125);
  EXPECT_EQ(workload.num_clients, scale.num_clients);
  EXPECT_DOUBLE_EQ(workload.keep_ratio, 0.125);
  const auto profile = ScaledProfile(traj::TdriveLikeProfile(), scale);
  EXPECT_EQ(profile.trajectories_per_client, scale.trajectories_per_client);
}

}  // namespace
}  // namespace lighttr::eval
