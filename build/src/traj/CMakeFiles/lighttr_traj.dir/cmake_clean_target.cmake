file(REMOVE_RECURSE
  "liblighttr_traj.a"
)
