file(REMOVE_RECURSE
  "CMakeFiles/lighttr_test.dir/lighttr_test.cc.o"
  "CMakeFiles/lighttr_test.dir/lighttr_test.cc.o.d"
  "lighttr_test"
  "lighttr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
