// HMM map matching (the preprocessing step of paper Sec. IV-B1).
//
// Classic Hidden-Markov-Model matcher in the style of Newson & Krumm /
// the DHN preprocessing the paper references: candidate road positions
// come from a spatial index, emission probabilities are Gaussian in the
// perpendicular GPS error, transition probabilities penalise the gap
// between route distance and great-circle distance, and the most likely
// joint assignment is decoded with Viterbi.
#ifndef LIGHTTR_MAPMATCH_HMM_MAP_MATCHER_H_
#define LIGHTTR_MAPMATCH_HMM_MAP_MATCHER_H_

#include <vector>

#include "common/status.h"
#include "roadnet/segment_index.h"
#include "traj/trajectory.h"

namespace lighttr::mapmatch {

/// Tunables for HmmMapMatcher.
struct HmmOptions {
  double candidate_radius_m = 80.0;  // initial candidate search radius
  int radius_doublings = 2;          // fallbacks when no candidate is found
  int max_candidates = 8;            // per point, nearest first
  double emission_sigma_m = 25.0;    // GPS error scale (Gaussian)
  double transition_beta_m = 60.0;   // route-vs-line gap scale (exponential)
  double epsilon_s = 15.0;           // sampling rate for tid computation
};

/// Matches raw GPS trajectories onto a road network.
class HmmMapMatcher {
 public:
  HmmMapMatcher(const roadnet::SegmentIndex& index, HmmOptions options);

  /// Matches one trajectory. Returns InvalidArgument for empty input and
  /// NotFound when some point has no road candidate within the maximum
  /// search radius.
  Result<traj::MatchedTrajectory> Match(const traj::RawTrajectory& raw) const;

 private:
  const roadnet::SegmentIndex& index_;
  HmmOptions options_;
};

}  // namespace lighttr::mapmatch

#endif  // LIGHTTR_MAPMATCH_HMM_MAP_MATCHER_H_
