#include "fl/adversary.h"

#include <cmath>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/finite.h"
#include "fl/health.h"
#include "fl/privacy.h"

namespace lighttr::fl {
namespace {

constexpr uint32_t kAdversaryMagic = 0x4C544144u;  // "LTAD"
constexpr uint32_t kAdversaryVersion = 1;
/// Banked honest norms; matches the health monitor's norm window so the
/// adversary mimics exactly the history the defense judges against.
constexpr size_t kHonestNormWindow = 64;

}  // namespace

const char* AttackTypeName(AttackType attack) {
  switch (attack) {
    case AttackType::kNone:
      return "none";
    case AttackType::kSignFlip:
      return "sign-flip";
    case AttackType::kScaledAscent:
      return "scaled-ascent";
    case AttackType::kMinMax:
      return "min-max";
    case AttackType::kNormMatched:
      return "norm-matched";
  }
  return "unknown";
}

bool ParseAttackType(const std::string& text, AttackType* out) {
  LIGHTTR_CHECK(out != nullptr);
  if (text == "none") {
    *out = AttackType::kNone;
  } else if (text == "sign-flip" || text == "signflip") {
    *out = AttackType::kSignFlip;
  } else if (text == "scaled-ascent" || text == "ascent") {
    *out = AttackType::kScaledAscent;
  } else if (text == "min-max" || text == "minmax") {
    *out = AttackType::kMinMax;
  } else if (text == "norm-matched" || text == "stealth") {
    *out = AttackType::kNormMatched;
  } else {
    return false;
  }
  return true;
}

AdversaryEngine::AdversaryEngine(const AdversaryConfig& config)
    : config_(config), rng_(config.seed) {
  LIGHTTR_CHECK_GE(config_.num_attackers, 0);
  LIGHTTR_CHECK_GE(config_.start_round, 1);
  LIGHTTR_CHECK_GT(config_.ascent_scale, 0.0);
  LIGHTTR_CHECK_GT(config_.stealth_margin, 0.0);
}

void AdversaryEngine::BeginRound(int round, size_t param_count) {
  if (!ActiveInRound(round)) return;
  if (config_.attack != AttackType::kMinMax) return;
  // Fresh shared direction every round: colluders that repeat a drift
  // direction hand the defense a trivial signature.
  drift_.assign(param_count, nn::Scalar{0});
  double norm_sq = 0.0;
  for (nn::Scalar& d : drift_) {
    d = static_cast<nn::Scalar>(rng_.Uniform(-1.0, 1.0));
    norm_sq += d * d;
  }
  const double norm = std::sqrt(norm_sq);
  if (norm > 0.0) {
    const auto inv = static_cast<nn::Scalar>(1.0 / norm);
    for (nn::Scalar& d : drift_) d *= inv;
  } else if (!drift_.empty()) {
    drift_[0] = nn::Scalar{1};
  }
}

bool AdversaryEngine::Poison(const std::vector<nn::Scalar>& global,
                             std::vector<nn::Scalar>* upload,
                             Rng* rng) const {
  LIGHTTR_CHECK(upload != nullptr);
  LIGHTTR_CHECK(rng != nullptr);
  LIGHTTR_CHECK_EQ(upload->size(), global.size());
  const size_t n = upload->size();
  if (n == 0) return false;
  const double own_norm = DeltaNorm(*upload, global);
  switch (config_.attack) {
    case AttackType::kNone:
      return false;
    case AttackType::kSignFlip: {
      for (size_t i = 0; i < n; ++i) {
        (*upload)[i] = global[i] - ((*upload)[i] - global[i]);
      }
      return true;
    }
    case AttackType::kScaledAscent: {
      // +-10% jitter so the cohort's norms are not byte-identical — a
      // lazy tell real attackers avoid.
      const double scale =
          config_.ascent_scale * (0.9 + 0.2 * rng->Uniform());
      for (size_t i = 0; i < n; ++i) {
        (*upload)[i] = global[i] -
                       static_cast<nn::Scalar>(
                           ((*upload)[i] - global[i]) * scale);
      }
      return true;
    }
    case AttackType::kMinMax: {
      // Every colluder uploads the identical drifted model; BeginRound
      // already sized drift_ to the parameter count.
      LIGHTTR_CHECK_EQ(drift_.size(), n);
      const double target = TargetNorm(own_norm);
      for (size_t i = 0; i < n; ++i) {
        (*upload)[i] = global[i] +
                       static_cast<nn::Scalar>(target * drift_[i]);
      }
      return true;
    }
    case AttackType::kNormMatched: {
      // Sign-flipped direction, rescaled into the honest-norm envelope
      // (with per-attacker jitter under the margin).
      const double target =
          TargetNorm(own_norm) * (0.9 + 0.1 * rng->Uniform());
      if (own_norm > 0.0) {
        const double scale = target / own_norm;
        for (size_t i = 0; i < n; ++i) {
          (*upload)[i] = global[i] -
                         static_cast<nn::Scalar>(
                             ((*upload)[i] - global[i]) * scale);
        }
      } else {
        // Degenerate local step: fall back to a plain sign-flip (a
        // no-op here, but keeps the upload well-defined).
        for (size_t i = 0; i < n; ++i) (*upload)[i] = global[i];
      }
      return true;
    }
  }
  return false;
}

void AdversaryEngine::ObserveHonestNorm(double norm) {
  if (!IsFinite(norm) || norm < 0.0) return;
  honest_norms_.push_back(norm);
  if (honest_norms_.size() > kHonestNormWindow) {
    honest_norms_.erase(honest_norms_.begin());
  }
}

double AdversaryEngine::TargetNorm(double fallback) const {
  const double base =
      honest_norms_.empty() ? fallback : Median(honest_norms_);
  if (!(base > 0.0)) return fallback > 0.0 ? fallback : 1.0;
  return config_.stealth_margin * base;
}

std::string AdversaryEngine::SerializeState() const {
  BinaryWriter writer;
  writer.WriteU32(kAdversaryMagic);
  writer.WriteU32(kAdversaryVersion);
  writer.WriteString(rng_.SerializeState());
  writer.WriteU64(honest_norms_.size());
  for (const double norm : honest_norms_) writer.WriteF64(norm);
  return writer.Take();
}

Status AdversaryEngine::DeserializeState(const std::string& bytes) {
  BinaryReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&magic));
  if (magic != kAdversaryMagic) {
    return Status::InvalidArgument("adversary blob: bad magic");
  }
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version != kAdversaryVersion) {
    return Status::InvalidArgument("adversary blob: unknown version " +
                                   std::to_string(version));
  }
  std::string rng_state;
  LIGHTTR_RETURN_NOT_OK(reader.ReadString(&rng_state));
  uint64_t count = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU64(&count));
  if (count > kHonestNormWindow) {
    return Status::InvalidArgument("adversary blob: oversized norm window");
  }
  std::vector<double> norms(static_cast<size_t>(count));
  for (double& norm : norms) {
    LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&norm));
    if (!IsFinite(norm) || norm < 0.0) {
      return Status::InvalidArgument("adversary blob: corrupt norm entry");
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("adversary blob: trailing bytes");
  }
  Rng restored(config_.seed);
  LIGHTTR_RETURN_NOT_OK(restored.DeserializeState(rng_state));
  rng_ = restored;
  honest_norms_ = std::move(norms);
  drift_.clear();  // regenerated by the next BeginRound
  return Status::Ok();
}

}  // namespace lighttr::fl
