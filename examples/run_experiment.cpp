// Command-line experiment runner: train any method on any workload
// configuration without writing code.
//
//   ./build/examples/run_experiment --method=lighttr --dataset=geolife
//       --keep=0.125 --clients=8 --rounds=5 --epochs=2 --seed=42
//
// Methods: fc | rnn | mtrajrec | rntrajrec | lighttr | centralized
// Datasets: geolife | tdrive
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "eval/harness.h"
#include "fl/adversary.h"
#include "fl/aggregation.h"
#include "nn/kernels/kernels.h"

namespace {

using namespace lighttr;

// Strict numeric parsing: unlike atof/atoi, a malformed value falls
// back to Usage() instead of silently becoming 0.
bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != text.c_str() && *end == '\0';
}

bool ParseInt(const std::string& text, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0';
}

// Minimal --key=value parser (no external flag library).
std::string FlagValue(int argc, char** argv, const std::string& key,
                      const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

// Bare boolean flag: present as "--key" (or "--key=1" / "--key=true").
bool HasFlag(int argc, char** argv, const std::string& key) {
  const std::string bare = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  const std::string value = FlagValue(argc, argv, key, "0");
  return value == "1" || value == "true";
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: run_experiment [--method=lighttr|fc|rnn|mtrajrec|rntrajrec|"
      "centralized]\n"
      "                      [--dataset=geolife|tdrive] [--keep=0.125]\n"
      "                      [--clients=8] [--rounds=5] [--epochs=2]\n"
      "                      [--traj-per-client=20] [--grid=9] [--seed=42]\n"
      "                      [--lr=0.003] [--fraction=1.0]\n"
      "                      [--checkpoint-dir=DIR] [--checkpoint-every=1]\n"
      "                      [--resume] [--threads=0] [--kernel=auto]\n"
      "                      [--health] [--quarantine-threshold=0.6]\n"
      "                      [--max-rollbacks=3] [--clip-norm=0]\n"
      "                      [--net-drop=0] [--net-corrupt=0] [--net-delay=0]\n"
      "                      [--net-dup=0] [--net-reorder=0]\n"
      "                      [--net-truncate=0] [--net-retries=3]\n"
      "                      [--net-seed=1592639710] [--no-transport]\n"
      "                      [--aggregation=mean|median|trimmed|krum|\n"
      "                       multikrum|normbound] [--byzantine-fraction=0.25]\n"
      "                      [--exclude-suspected]\n"
      "                      [--adversary-count=0] [--adversary-attack=\n"
      "                       sign-flip|scaled-ascent|min-max|norm-matched]\n"
      "                      [--adversary-scale=10] [--adversary-start=1]\n"
      "                      [--adversary-seed=2915761665]\n"
      "\n"
      "Durability: --checkpoint-dir enables crash-safe snapshots + a round\n"
      "journal under DIR every --checkpoint-every rounds; --resume restarts\n"
      "an interrupted run from the newest valid snapshot in DIR (federated\n"
      "methods only).\n"
      "\n"
      "Parallelism: --threads=N trains the clients of each round on N\n"
      "executors and parallelizes large matrix products; results are\n"
      "bitwise identical for every N. --threads=1 forces the serial path;\n"
      "--threads=0 (default) uses LIGHTTR_THREADS or the hardware core\n"
      "count.\n"
      "\n"
      "Kernels: --kernel selects the math microkernels for GEMM and\n"
      "activation sweeps. auto (default) uses AVX2+FMA when the CPU\n"
      "supports it, else the scalar reference; scalar forces the\n"
      "reference loops; avx2 requests the vector path (falls back to\n"
      "scalar on machines without AVX2+FMA). Results are bitwise\n"
      "reproducible across runs and thread counts for a fixed kernel.\n"
      "\n"
      "Self-healing: --health turns on the round health monitor (divergence\n"
      "rollback + client quarantine, federated methods only);\n"
      "--quarantine-threshold sets the reputation score that quarantines a\n"
      "client; --max-rollbacks bounds divergence rollbacks before the run\n"
      "parks on its last healthy state. --clip-norm=C clips each local\n"
      "gradient to global L2 norm C before the optimizer step (0 = off).\n"
      "\n"
      "Transport: federated traffic travels as CRC32-framed messages over\n"
      "a simulated per-client channel with idempotent retries. --net-drop/\n"
      "--net-corrupt/--net-delay/--net-dup/--net-reorder/--net-truncate\n"
      "set per-frame fault probabilities in [0,1); --net-retries bounds\n"
      "retransmissions per exchange; --net-seed re-rolls the network's\n"
      "weather without touching any training draw. --no-transport falls\n"
      "back to the legacy in-process handoff with estimated byte counts.\n"
      "\n"
      "Byzantine robustness: --aggregation selects the server rule over\n"
      "screened uploads (federated methods only; mean is the paper's\n"
      "FedAvg). krum/multikrum assume --byzantine-fraction of each round's\n"
      "cohort is hostile and flag suspected poison; with\n"
      "--exclude-suspected the aggregate is the plain mean over the\n"
      "unflagged uploads instead of the Krum selection. Suspected flags\n"
      "feed the --health reputation ledger.\n"
      "\n"
      "Adversary (simulation only): --adversary-count compromises clients\n"
      "0..N-1, which train honestly and then rewrite their uploads with\n"
      "--adversary-attack from round --adversary-start on;\n"
      "--adversary-scale is the scaled-ascent multiplier.\n"
      "--adversary-seed re-rolls the attack weather without touching any\n"
      "training draw.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string method = FlagValue(argc, argv, "method", "lighttr");
  const std::string dataset = FlagValue(argc, argv, "dataset", "geolife");
  const std::string checkpoint_dir =
      FlagValue(argc, argv, "checkpoint-dir", "");
  const bool resume = HasFlag(argc, argv, "resume");
  const bool health = HasFlag(argc, argv, "health");
  const bool no_transport = HasFlag(argc, argv, "no-transport");
  const bool exclude_suspected = HasFlag(argc, argv, "exclude-suspected");
  double keep = 0.0;
  double lr = 0.0;
  double fraction = 0.0;
  double quarantine_threshold = 0.0;
  double clip_norm = 0.0;
  long long clients_ll = 0;
  long long rounds_ll = 0;
  long long epochs_ll = 0;
  long long traj_ll = 0;
  long long grid_ll = 0;
  long long seed_ll = 0;
  long long checkpoint_every_ll = 0;
  long long threads_ll = 0;
  long long max_rollbacks_ll = 0;
  double net_drop = 0.0;
  double net_corrupt = 0.0;
  double net_delay = 0.0;
  double net_dup = 0.0;
  double net_reorder = 0.0;
  double net_truncate = 0.0;
  long long net_retries_ll = 0;
  long long net_seed_ll = 0;
  double byzantine_fraction = 0.0;
  double adversary_scale = 0.0;
  long long adversary_count_ll = 0;
  long long adversary_start_ll = 0;
  long long adversary_seed_ll = 0;
  if (!ParseDouble(FlagValue(argc, argv, "keep", "0.125"), &keep) ||
      !ParseDouble(FlagValue(argc, argv, "lr", "0.003"), &lr) ||
      !ParseDouble(FlagValue(argc, argv, "fraction", "1.0"), &fraction) ||
      !ParseInt(FlagValue(argc, argv, "clients", "8"), &clients_ll) ||
      !ParseInt(FlagValue(argc, argv, "rounds", "5"), &rounds_ll) ||
      !ParseInt(FlagValue(argc, argv, "epochs", "2"), &epochs_ll) ||
      !ParseInt(FlagValue(argc, argv, "traj-per-client", "20"), &traj_ll) ||
      !ParseInt(FlagValue(argc, argv, "grid", "9"), &grid_ll) ||
      !ParseInt(FlagValue(argc, argv, "seed", "42"), &seed_ll) ||
      !ParseInt(FlagValue(argc, argv, "checkpoint-every", "1"),
                &checkpoint_every_ll) ||
      !ParseInt(FlagValue(argc, argv, "threads", "0"), &threads_ll) ||
      !ParseDouble(FlagValue(argc, argv, "quarantine-threshold", "0.6"),
                   &quarantine_threshold) ||
      !ParseDouble(FlagValue(argc, argv, "clip-norm", "0"), &clip_norm) ||
      !ParseInt(FlagValue(argc, argv, "max-rollbacks", "3"),
                &max_rollbacks_ll) ||
      !ParseDouble(FlagValue(argc, argv, "net-drop", "0"), &net_drop) ||
      !ParseDouble(FlagValue(argc, argv, "net-corrupt", "0"), &net_corrupt) ||
      !ParseDouble(FlagValue(argc, argv, "net-delay", "0"), &net_delay) ||
      !ParseDouble(FlagValue(argc, argv, "net-dup", "0"), &net_dup) ||
      !ParseDouble(FlagValue(argc, argv, "net-reorder", "0"), &net_reorder) ||
      !ParseDouble(FlagValue(argc, argv, "net-truncate", "0"),
                   &net_truncate) ||
      !ParseInt(FlagValue(argc, argv, "net-retries", "3"), &net_retries_ll) ||
      !ParseInt(FlagValue(argc, argv, "net-seed", "1592639710"),
                &net_seed_ll) ||
      !ParseDouble(FlagValue(argc, argv, "byzantine-fraction", "0.25"),
                   &byzantine_fraction) ||
      !ParseDouble(FlagValue(argc, argv, "adversary-scale", "10"),
                   &adversary_scale) ||
      !ParseInt(FlagValue(argc, argv, "adversary-count", "0"),
                &adversary_count_ll) ||
      !ParseInt(FlagValue(argc, argv, "adversary-start", "1"),
                &adversary_start_ll) ||
      !ParseInt(FlagValue(argc, argv, "adversary-seed", "2915761665"),
                &adversary_seed_ll)) {
    return Usage();
  }
  // Strict spellings: an unknown aggregation rule or attack name is a
  // usage error, never a silent fallback to the default.
  fl::AggregatorPolicy aggregation = fl::AggregatorPolicy::kMean;
  if (!fl::ParseAggregatorPolicy(
          FlagValue(argc, argv, "aggregation", "mean"), &aggregation)) {
    std::fprintf(stderr, "unknown --aggregation value '%s'\n",
                 FlagValue(argc, argv, "aggregation", "mean").c_str());
    return Usage();
  }
  fl::AttackType adversary_attack = fl::AttackType::kSignFlip;
  const std::string attack_text =
      FlagValue(argc, argv, "adversary-attack", "sign-flip");
  if (!fl::ParseAttackType(attack_text, &adversary_attack)) {
    std::fprintf(stderr, "unknown --adversary-attack value '%s'\n",
                 attack_text.c_str());
    return Usage();
  }
  const int clients_n = static_cast<int>(clients_ll);
  const int rounds = static_cast<int>(rounds_ll);
  const int epochs = static_cast<int>(epochs_ll);
  const int traj_per_client = static_cast<int>(traj_ll);
  const int grid = static_cast<int>(grid_ll);
  const auto seed = static_cast<uint64_t>(seed_ll);

  const int checkpoint_every = static_cast<int>(checkpoint_every_ll);
  const int threads = static_cast<int>(threads_ll);
  const int max_rollbacks = static_cast<int>(max_rollbacks_ll);

  // Fault probabilities live in [0,1): a rate of exactly 1.0 on every
  // frame can never complete a round, which is a test scenario, not an
  // experiment.
  const auto valid_rate = [](double rate) { return rate >= 0.0 && rate < 1.0; };
  if (keep <= 0.0 || keep > 1.0 || clients_n < 1 || rounds < 1 ||
      epochs < 1 || grid < 3 || checkpoint_every < 1 || threads < 0 ||
      quarantine_threshold <= 0.0 || quarantine_threshold > 1.0 ||
      clip_norm < 0.0 || max_rollbacks < 0 || !valid_rate(net_drop) ||
      !valid_rate(net_corrupt) || !valid_rate(net_delay) ||
      !valid_rate(net_dup) || !valid_rate(net_reorder) ||
      !valid_rate(net_truncate) || net_retries_ll < 0 ||
      byzantine_fraction < 0.0 || byzantine_fraction >= 1.0 ||
      adversary_scale <= 0.0 || adversary_count_ll < 0 ||
      adversary_count_ll > clients_ll || adversary_start_ll < 1) {
    return Usage();
  }
  nn::KernelMode kernel_mode;
  if (!nn::ParseKernelMode(FlagValue(argc, argv, "kernel", "auto"),
                           &kernel_mode)) {
    return Usage();
  }
  // Activate here so the centralized path (which never constructs a
  // FederatedTrainer) also runs the selected kernels.
  nn::ActivateKernels(kernel_mode);
  // Size the global pool (GEMM row splits) to match the request; the
  // federated trainer gets its own pool via options.fed.threads.
  SetGlobalThreadCount(ResolveThreadCount(threads));
  if ((resume || checkpoint_every != 1) && checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "--resume/--checkpoint-every need --checkpoint-dir\n");
    return Usage();
  }

  baselines::ModelKind kind;
  bool centralized = false;
  if (method == "fc") {
    kind = baselines::ModelKind::kFc;
  } else if (method == "rnn") {
    kind = baselines::ModelKind::kRnn;
  } else if (method == "mtrajrec") {
    kind = baselines::ModelKind::kMTrajRec;
  } else if (method == "rntrajrec") {
    kind = baselines::ModelKind::kRnTrajRec;
  } else if (method == "lighttr") {
    kind = baselines::ModelKind::kLightTr;
  } else if (method == "centralized") {
    kind = baselines::ModelKind::kMTrajRec;
    centralized = true;
  } else {
    return Usage();
  }

  traj::WorkloadProfile profile;
  if (dataset == "geolife") {
    profile = traj::GeolifeLikeProfile();
  } else if (dataset == "tdrive") {
    profile = traj::TdriveLikeProfile();
  } else {
    return Usage();
  }
  profile.trajectories_per_client = traj_per_client;

  std::printf("method=%s dataset=%s keep=%.4f clients=%d rounds=%d "
              "epochs=%d grid=%dx%d seed=%llu\n",
              method.c_str(), dataset.c_str(), keep, clients_n, rounds,
              epochs, grid, grid, static_cast<unsigned long long>(seed));

  eval::ExperimentEnv env(grid, grid, seed);
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = clients_n;
  workload.keep_ratio = keep;
  const auto clients = env.MakeWorkload(profile, workload, seed + 1);

  eval::MethodResult result;
  if (centralized) {
    if (!checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "note: --checkpoint-dir only applies to federated "
                   "methods; ignoring it for --method=centralized\n");
    }
    if (adversary_count_ll > 0 || aggregation != fl::AggregatorPolicy::kMean) {
      std::fprintf(stderr,
                   "note: --adversary-*/--aggregation only apply to "
                   "federated methods; ignoring them for "
                   "--method=centralized\n");
    }
    result = eval::RunCentralizedMethod(env, kind, clients,
                                        rounds * epochs, lr,
                                        /*max_test_trajectories=*/100,
                                        seed + 2);
  } else {
    eval::MethodRunOptions options;
    options.fed.rounds = rounds;
    options.fed.local_epochs = epochs;
    options.fed.learning_rate = lr;
    options.fed.client_fraction = fraction;
    options.fed.seed = seed + 3;
    options.fed.durability.dir = checkpoint_dir;
    options.fed.durability.snapshot_every = checkpoint_every;
    options.fed.durability.resume = resume;
    options.fed.threads = threads;
    options.fed.kernel = kernel_mode;
    options.fed.healing.enabled = health;
    options.fed.healing.reputation.quarantine_threshold = quarantine_threshold;
    options.fed.healing.max_rollbacks = max_rollbacks;
    options.fed.clip_norm = clip_norm;
    options.fed.transport.enabled = !no_transport;
    options.fed.transport.channel_seed = static_cast<uint64_t>(net_seed_ll);
    options.fed.transport.channel.drop_rate = net_drop;
    options.fed.transport.channel.corrupt_rate = net_corrupt;
    options.fed.transport.channel.delay_rate = net_delay;
    options.fed.transport.channel.duplicate_rate = net_dup;
    options.fed.transport.channel.reorder_rate = net_reorder;
    options.fed.transport.channel.truncate_rate = net_truncate;
    options.fed.transport.retry.max_retries =
        static_cast<int>(net_retries_ll);
    options.fed.tolerance.aggregator.policy = aggregation;
    options.fed.tolerance.aggregator.byzantine_fraction = byzantine_fraction;
    options.fed.tolerance.aggregator.exclude_suspected = exclude_suspected;
    options.fed.adversary.num_attackers = static_cast<int>(adversary_count_ll);
    options.fed.adversary.attack = adversary_attack;
    options.fed.adversary.start_round = static_cast<int>(adversary_start_ll);
    options.fed.adversary.ascent_scale = adversary_scale;
    options.fed.adversary.seed = static_cast<uint64_t>(adversary_seed_ll);
    options.teacher.learning_rate = lr;
    options.max_test_trajectories = 100;
    result = eval::RunFederatedMethod(env, kind, clients, options);
  }

  TablePrinter table({"Metric", "Value"});
  table.AddRow({"Method", result.method});
  table.AddRow({"Recall", TablePrinter::Fmt(result.metrics.recall)});
  table.AddRow({"Precision", TablePrinter::Fmt(result.metrics.precision)});
  table.AddRow({"MAE (km)", TablePrinter::Fmt(result.metrics.mae_km)});
  table.AddRow({"RMSE (km)", TablePrinter::Fmt(result.metrics.rmse_km)});
  table.AddRow({"Points", std::to_string(result.metrics.recovered_points)});
  table.AddRow({"Wall (s)", TablePrinter::Fmt(result.wall_seconds, 1)});
  if (result.run.comm.rounds > 0) {
    table.AddRow({"Comm (KiB)",
                  TablePrinter::Fmt(
                      static_cast<double>(result.run.comm.TotalBytes()) / 1024.0,
                      0)});
  }
  const fl::FaultStats& faults = result.run.faults;
  const bool net_active = faults.net_retries > 0 || faults.net_timeouts > 0 ||
                          faults.net_crc_drops > 0 ||
                          faults.net_dedup_drops > 0 ||
                          faults.net_late_drops > 0 || faults.net_lost > 0;
  if (net_active) {
    table.AddRow({"Net retries", std::to_string(faults.net_retries)});
    table.AddRow({"Net timeouts", std::to_string(faults.net_timeouts)});
    table.AddRow({"Net CRC drops", std::to_string(faults.net_crc_drops)});
    table.AddRow({"Net dedup drops", std::to_string(faults.net_dedup_drops)});
    table.AddRow({"Net late drops", std::to_string(faults.net_late_drops)});
    table.AddRow({"Net lost clients", std::to_string(faults.net_lost)});
  }
  if (faults.storage_write_failures > 0) {
    table.AddRow({"Storage write failures",
                  std::to_string(faults.storage_write_failures)});
  }
  // Attack/defense telemetry: shown whenever either side is in play so
  // a defended-vs-undefended pair of runs prints comparable tables.
  if (!centralized && (adversary_count_ll > 0 ||
                       aggregation != fl::AggregatorPolicy::kMean)) {
    table.AddRow({"Aggregation", fl::AggregatorPolicyName(aggregation)});
    if (adversary_count_ll > 0) {
      table.AddRow({"Attack", fl::AttackTypeName(adversary_attack)});
      table.AddRow({"Attackers",
                    std::to_string(static_cast<int>(adversary_count_ll))});
    }
    table.AddRow({"Poisoned uploads",
                  std::to_string(result.run.faults.poisoned_uploads)});
    table.AddRow({"Suspected uploads",
                  std::to_string(result.run.faults.suspected_uploads)});
    table.AddRow({"Quarantined skips",
                  std::to_string(result.run.faults.quarantined_skips)});
  }
  if (health) {
    table.AddRow({"Diverged rounds",
                  std::to_string(result.run.faults.diverged_rounds)});
    table.AddRow({"Rollbacks", std::to_string(result.run.faults.rollbacks)});
    table.AddRow({"Quarantine events",
                  std::to_string(result.run.faults.quarantine_events)});
    table.AddRow({"Parole events",
                  std::to_string(result.run.faults.parole_events)});
    table.AddRow({"Gave up", result.run.gave_up ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
