file(REMOVE_RECURSE
  "CMakeFiles/lighttr_traj.dir/downsample.cc.o"
  "CMakeFiles/lighttr_traj.dir/downsample.cc.o.d"
  "CMakeFiles/lighttr_traj.dir/encoding.cc.o"
  "CMakeFiles/lighttr_traj.dir/encoding.cc.o.d"
  "CMakeFiles/lighttr_traj.dir/generator.cc.o"
  "CMakeFiles/lighttr_traj.dir/generator.cc.o.d"
  "CMakeFiles/lighttr_traj.dir/stats.cc.o"
  "CMakeFiles/lighttr_traj.dir/stats.cc.o.d"
  "CMakeFiles/lighttr_traj.dir/trajectory.cc.o"
  "CMakeFiles/lighttr_traj.dir/trajectory.cc.o.d"
  "CMakeFiles/lighttr_traj.dir/workload.cc.o"
  "CMakeFiles/lighttr_traj.dir/workload.cc.o.d"
  "liblighttr_traj.a"
  "liblighttr_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
