#include "nn/ops.h"

#include <cmath>

#include "common/check.h"
#include "nn/flops.h"

namespace lighttr::nn {

namespace {

// Shorthand: number of elements, for element-wise FLOP accounting.
int64_t Elems(const Matrix& m) { return static_cast<int64_t>(m.size()); }

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddInPlace(b.value());
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b](TensorNode& self) {
    if (a.requires_grad()) a.grad().AddInPlace(self.grad);
    if (b.requires_grad()) b.grad().AddInPlace(self.grad);
  });
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  LIGHTTR_DCHECK_EQ(bias.rows(), 1u);
  LIGHTTR_DCHECK_EQ(bias.cols(), x.cols());
  Matrix out = x.value();
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) += bias.value()(0, c);
  }
  AddFlops(Elems(out));
  return Tensor::MakeOp(
      std::move(out), {x, bias}, [x, bias](TensorNode& self) {
        if (x.requires_grad()) x.grad().AddInPlace(self.grad);
        if (bias.requires_grad()) {
          Matrix& bg = bias.grad();
          for (size_t r = 0; r < self.grad.rows(); ++r) {
            for (size_t c = 0; c < self.grad.cols(); ++c) {
              bg(0, c) += self.grad(r, c);
            }
          }
        }
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddScaled(b.value(), Scalar{-1});
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b](TensorNode& self) {
    if (a.requires_grad()) a.grad().AddInPlace(self.grad);
    if (b.requires_grad()) b.grad().AddScaled(self.grad, Scalar{-1});
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] *= b.value().data()[i];
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b](TensorNode& self) {
    const size_t n = self.grad.size();
    if (a.requires_grad()) {
      Matrix& ag = a.grad();
      for (size_t i = 0; i < n; ++i) {
        ag.data()[i] += self.grad.data()[i] * b.value().data()[i];
      }
    }
    if (b.requires_grad()) {
      Matrix& bg = b.grad();
      for (size_t i = 0; i < n; ++i) {
        bg.data()[i] += self.grad.data()[i] * a.value().data()[i];
      }
    }
    AddFlops(2 * static_cast<int64_t>(n));
  });
}

Tensor Scale(const Tensor& a, Scalar s) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] *= s;
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a, s](TensorNode& self) {
    if (a.requires_grad()) a.grad().AddScaled(self.grad, s);
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK_EQ(a.cols(), b.rows());
  Matrix out = MatMulValues(a.value(), b.value());
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b](TensorNode& self) {
    if (a.requires_grad()) {
      MatMulTransBAccumulate(self.grad, b.value(), &a.grad());
    }
    if (b.requires_grad()) {
      MatMulTransAAccumulate(a.value(), self.grad, &b.grad());
    }
  });
}

Tensor Sigmoid(const Tensor& a) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = Scalar{1} / (Scalar{1} + std::exp(-out.data()[i]));
  }
  AddFlops(4 * Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      const Scalar y = self.value.data()[i];
      ag.data()[i] += self.grad.data()[i] * y * (Scalar{1} - y);
    }
    AddFlops(3 * static_cast<int64_t>(self.grad.size()));
  });
}

Tensor Tanh(const Tensor& a) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  AddFlops(4 * Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      const Scalar y = self.value.data()[i];
      ag.data()[i] += self.grad.data()[i] * (Scalar{1} - y * y);
    }
    AddFlops(3 * static_cast<int64_t>(self.grad.size()));
  });
}

Tensor Relu(const Tensor& a) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < Scalar{0}) out.data()[i] = Scalar{0};
  }
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      if (self.value.data()[i] > Scalar{0}) {
        ag.data()[i] += self.grad.data()[i];
      }
    }
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  LIGHTTR_DCHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) out(r, c) = a.value()(r, c);
    for (size_t c = 0; c < b.cols(); ++c) {
      out(r, a.cols() + c) = b.value()(r, c);
    }
  }
  const size_t na = a.cols();
  return Tensor::MakeOp(std::move(out), {a, b}, [a, b, na](TensorNode& self) {
    if (a.requires_grad()) {
      Matrix& ag = a.grad();
      for (size_t r = 0; r < ag.rows(); ++r) {
        for (size_t c = 0; c < ag.cols(); ++c) ag(r, c) += self.grad(r, c);
      }
    }
    if (b.requires_grad()) {
      Matrix& bg = b.grad();
      for (size_t r = 0; r < bg.rows(); ++r) {
        for (size_t c = 0; c < bg.cols(); ++c) {
          bg(r, c) += self.grad(r, na + c);
        }
      }
    }
  });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  LIGHTTR_CHECK(!parts.empty());
  const size_t cols = parts[0].cols();
  size_t rows = 0;
  for (const Tensor& p : parts) {
    LIGHTTR_DCHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  Matrix out(rows, cols);
  size_t offset = 0;
  for (const Tensor& p : parts) {
    for (size_t r = 0; r < p.rows(); ++r) {
      for (size_t c = 0; c < cols; ++c) out(offset + r, c) = p.value()(r, c);
    }
    offset += p.rows();
  }
  return Tensor::MakeOp(std::move(out), parts, [parts](TensorNode& self) {
    size_t row_offset = 0;
    for (const Tensor& p : parts) {
      if (p.requires_grad()) {
        Matrix& pg = p.grad();
        for (size_t r = 0; r < p.rows(); ++r) {
          for (size_t c = 0; c < pg.cols(); ++c) {
            pg(r, c) += self.grad(row_offset + r, c);
          }
        }
      }
      row_offset += p.rows();
    }
  });
}

Tensor SliceCols(const Tensor& a, size_t begin, size_t len) {
  LIGHTTR_DCHECK_LE(begin + len, a.cols());
  Matrix out(a.rows(), len);
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < len; ++c) out(r, c) = a.value()(r, begin + c);
  }
  return Tensor::MakeOp(std::move(out), {a}, [a, begin](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t r = 0; r < self.grad.rows(); ++r) {
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        ag(r, begin + c) += self.grad(r, c);
      }
    }
  });
}

Tensor SliceRows(const Tensor& a, size_t begin, size_t len) {
  LIGHTTR_DCHECK_LE(begin + len, a.rows());
  Matrix out(len, a.cols());
  for (size_t r = 0; r < len; ++r) {
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) = a.value()(begin + r, c);
  }
  return Tensor::MakeOp(std::move(out), {a}, [a, begin](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t r = 0; r < self.grad.rows(); ++r) {
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        ag(begin + r, c) += self.grad(r, c);
      }
    }
  });
}

Tensor Transpose(const Tensor& a) {
  Matrix out(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) out(c, r) = a.value()(r, c);
  }
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t r = 0; r < self.grad.rows(); ++r) {
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        ag(c, r) += self.grad(r, c);
      }
    }
  });
}

Tensor SoftmaxRows(const Tensor& a) {
  Matrix out = a.value();
  for (size_t r = 0; r < out.rows(); ++r) {
    Scalar row_max = out(r, 0);
    for (size_t c = 1; c < out.cols(); ++c) {
      row_max = std::max(row_max, out(r, c));
    }
    Scalar denom{0};
    for (size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = std::exp(out(r, c) - row_max);
      denom += out(r, c);
    }
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) /= denom;
  }
  AddFlops(5 * Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t r = 0; r < self.grad.rows(); ++r) {
      Scalar dot{0};
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        dot += self.grad(r, c) * self.value(r, c);
      }
      for (size_t c = 0; c < self.grad.cols(); ++c) {
        ag(r, c) += self.value(r, c) * (self.grad(r, c) - dot);
      }
    }
    AddFlops(4 * static_cast<int64_t>(self.grad.size()));
  });
}

Tensor Sum(const Tensor& a) {
  Matrix out(1, 1);
  Scalar total{0};
  for (size_t i = 0; i < a.value().size(); ++i) total += a.value().data()[i];
  out(0, 0) = total;
  AddFlops(Elems(a.value()));
  return Tensor::MakeOp(std::move(out), {a}, [a](TensorNode& self) {
    if (!a.requires_grad()) return;
    const Scalar g = self.grad(0, 0);
    Matrix& ag = a.grad();
    for (size_t i = 0; i < ag.size(); ++i) ag.data()[i] += g;
  });
}

Tensor Mean(const Tensor& a) {
  const auto n = static_cast<Scalar>(a.value().size());
  return Scale(Sum(a), Scalar{1} / n);
}

Tensor Dropout(const Tensor& a, double p, bool training, Rng* rng) {
  LIGHTTR_CHECK_GE(p, 0.0);
  LIGHTTR_CHECK_LT(p, 1.0);
  if (!training || p == 0.0) return a;
  LIGHTTR_CHECK(rng != nullptr);
  const Scalar keep_scale = Scalar{1} / static_cast<Scalar>(1.0 - p);
  auto mask = std::make_shared<std::vector<Scalar>>(a.value().size());
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    const Scalar m = rng->Bernoulli(p) ? Scalar{0} : keep_scale;
    (*mask)[i] = m;
    out.data()[i] *= m;
  }
  AddFlops(Elems(out));
  return Tensor::MakeOp(std::move(out), {a}, [a, mask](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    for (size_t i = 0; i < ag.size(); ++i) {
      ag.data()[i] += self.grad.data()[i] * (*mask)[i];
    }
  });
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids) {
  LIGHTTR_CHECK(!ids.empty());
  const size_t dim = table.cols();
  Matrix out(ids.size(), dim);
  for (size_t r = 0; r < ids.size(); ++r) {
    LIGHTTR_DCHECK_GE(ids[r], 0);
    LIGHTTR_DCHECK_LT(static_cast<size_t>(ids[r]), table.rows());
    for (size_t c = 0; c < dim; ++c) {
      out(r, c) = table.value()(static_cast<size_t>(ids[r]), c);
    }
  }
  return Tensor::MakeOp(std::move(out), {table}, [table, ids](TensorNode& self) {
    if (!table.requires_grad()) return;
    Matrix& tg = table.grad();
    for (size_t r = 0; r < ids.size(); ++r) {
      for (size_t c = 0; c < tg.cols(); ++c) {
        tg(static_cast<size_t>(ids[r]), c) += self.grad(r, c);
      }
    }
  });
}

Tensor LayerNormRows(const Tensor& a, Scalar epsilon) {
  const size_t rows = a.rows();
  const size_t cols = a.cols();
  LIGHTTR_CHECK_GE(cols, 1u);
  Matrix out(rows, cols);
  // Cache per-row mean and inverse stddev for the backward pass.
  auto stats = std::make_shared<Matrix>(rows, 2);
  for (size_t r = 0; r < rows; ++r) {
    Scalar mean{0};
    for (size_t c = 0; c < cols; ++c) mean += a.value()(r, c);
    mean /= static_cast<Scalar>(cols);
    Scalar var{0};
    for (size_t c = 0; c < cols; ++c) {
      const Scalar d = a.value()(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<Scalar>(cols);
    const Scalar inv_std = Scalar{1} / std::sqrt(var + epsilon);
    (*stats)(r, 0) = mean;
    (*stats)(r, 1) = inv_std;
    for (size_t c = 0; c < cols; ++c) {
      out(r, c) = (a.value()(r, c) - mean) * inv_std;
    }
  }
  AddFlops(static_cast<int64_t>(6 * rows * cols));
  return Tensor::MakeOp(std::move(out), {a}, [a, stats](TensorNode& self) {
    if (!a.requires_grad()) return;
    Matrix& ag = a.grad();
    const size_t grad_cols = ag.cols();
    const auto n = static_cast<Scalar>(grad_cols);
    for (size_t r = 0; r < ag.rows(); ++r) {
      const Scalar inv_std = (*stats)(r, 1);
      // dL/dx = inv_std * (g - mean(g) - y * mean(g * y))
      Scalar g_mean{0};
      Scalar gy_mean{0};
      for (size_t c = 0; c < grad_cols; ++c) {
        g_mean += self.grad(r, c);
        gy_mean += self.grad(r, c) * self.value(r, c);
      }
      g_mean /= n;
      gy_mean /= n;
      for (size_t c = 0; c < grad_cols; ++c) {
        ag(r, c) += inv_std * (self.grad(r, c) - g_mean -
                               self.value(r, c) * gy_mean);
      }
    }
    AddFlops(static_cast<int64_t>(8 * ag.size()));
  });
}

Tensor Im2RowCausal(const Tensor& x, size_t kernel) {
  LIGHTTR_CHECK_GE(kernel, 1u);
  const size_t steps = x.rows();
  const size_t channels = x.cols();
  Matrix out(steps, kernel * channels);
  for (size_t t = 0; t < steps; ++t) {
    for (size_t j = 0; j < kernel; ++j) {
      if (t + j + 1 < kernel) continue;  // zero padding before step 0
      const size_t src = t + j + 1 - kernel;
      for (size_t c = 0; c < channels; ++c) {
        out(t, j * channels + c) = x.value()(src, c);
      }
    }
  }
  return Tensor::MakeOp(std::move(out), {x}, [x, kernel](TensorNode& self) {
    if (!x.requires_grad()) return;
    Matrix& xg = x.grad();
    const size_t grad_channels = xg.cols();
    for (size_t t = 0; t < xg.rows(); ++t) {
      for (size_t j = 0; j < kernel; ++j) {
        if (t + j + 1 < kernel) continue;
        const size_t src = t + j + 1 - kernel;
        for (size_t c = 0; c < grad_channels; ++c) {
          xg(src, c) += self.grad(t, j * grad_channels + c);
        }
      }
    }
  });
}

Tensor CandidateLogits(const Tensor& h, const Tensor& w, const Tensor& b,
                       const std::vector<int>& candidates) {
  LIGHTTR_CHECK_EQ(h.rows(), 1u);
  LIGHTTR_CHECK_EQ(h.cols(), w.rows());
  LIGHTTR_CHECK_EQ(b.rows(), 1u);
  LIGHTTR_CHECK_EQ(b.cols(), w.cols());
  LIGHTTR_CHECK(!candidates.empty());
  const size_t hidden = h.cols();
  Matrix out(1, candidates.size());
  for (size_t k = 0; k < candidates.size(); ++k) {
    const auto cls = static_cast<size_t>(candidates[k]);
    LIGHTTR_CHECK_LT(cls, w.cols());
    Scalar acc = b.value()(0, cls);
    for (size_t i = 0; i < hidden; ++i) {
      acc += h.value()(0, i) * w.value()(i, cls);
    }
    out(0, k) = acc;
  }
  AddFlops(static_cast<int64_t>(2 * hidden * candidates.size()));
  return Tensor::MakeOp(
      std::move(out), {h, w, b}, [h, w, b, candidates](TensorNode& self) {
        const size_t grad_hidden = h.cols();
        for (size_t k = 0; k < candidates.size(); ++k) {
          const Scalar g = self.grad(0, k);
          if (g == Scalar{0}) continue;
          const auto cls = static_cast<size_t>(candidates[k]);
          if (h.requires_grad()) {
            Matrix& hg = h.grad();
            for (size_t i = 0; i < grad_hidden; ++i) {
              hg(0, i) += g * w.value()(i, cls);
            }
          }
          if (w.requires_grad()) {
            Matrix& wg = w.grad();
            for (size_t i = 0; i < grad_hidden; ++i) {
              wg(i, cls) += g * h.value()(0, i);
            }
          }
          if (b.requires_grad()) b.grad()(0, cls) += g;
        }
        AddFlops(static_cast<int64_t>(4 * grad_hidden * candidates.size()));
      });
}

}  // namespace lighttr::nn
