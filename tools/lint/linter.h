// lighttr-lint: a token-scanning static checker for repo invariants.
//
// The compiler already enforces type- and [[nodiscard]]-level contracts;
// this linter covers the invariants the type system cannot see:
//
//   no-raw-rand        ban rand()/std::random_device/ad-hoc std::mt19937
//                      outside common/rng.* (determinism of federated
//                      rounds depends on every draw flowing through Rng)
//   no-ignored-status  statement-level calls that discard a Status/Result
//                      return (heuristic companion to [[nodiscard]])
//   no-iostream-in-lib no std::cout/cerr/clog inside src/ outside
//                      common/table_printer.* and common/check.h
//   no-include-cycle   cycles in the quoted-include graph
//   no-direct-persistence
//                      no std::ofstream/std::fstream/fopen inside
//                      src/fl or src/nn — durable state there must go
//                      through common/file_util (atomic write / tagged
//                      append), or a crash can tear files
//   banned-fn          calls to atof/strcpy/sprintf/system/... class
//                      functions with safer repo-idiomatic replacements
//   no-raw-wire        no reinterpret_cast/memcpy struct serialization
//                      in src/ outside common/binary_io and fl/transport
//                      — bytes are (de)coded through BinaryWriter/
//                      BinaryReader so layout lives in one place and
//                      every decode is bounds-checked
//
// Diagnostics carry file:line and the rule name. A violation is
// suppressed by a comment on the same line:
//
//   std::mt19937 gen(7);  // lighttr-lint: allow(no-raw-rand)
//
// The scanner strips comments and string/char literals before matching,
// so quoted occurrences of banned tokens never fire.
#ifndef LIGHTTR_TOOLS_LINT_LINTER_H_
#define LIGHTTR_TOOLS_LINT_LINTER_H_

#include <string>
#include <vector>

namespace lighttr::lint {

/// One input file: path (used for rule exemptions and include-graph
/// resolution) plus its full contents.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation at a source location.
struct Diagnostic {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Renders "file:line: rule: message" (the clickable compiler format).
std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// Names of every rule the linter knows, e.g. for --help output.
const std::vector<std::string>& AllRuleNames();

/// Runs every rule over `files` and returns the violations in file /
/// line order. Cross-file state (the Status-returning function registry,
/// the include graph) is built from exactly the files given, so callers
/// should pass the whole tree they care about in one call.
std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files);

/// Recursively collects .h/.cc/.cpp files under each root (a root may
/// also name a single file) and runs Lint over them. Missing roots are
/// reported as a diagnostic rather than silently skipped.
std::vector<Diagnostic> LintPaths(const std::vector<std::string>& roots);

}  // namespace lighttr::lint

#endif  // LIGHTTR_TOOLS_LINT_LINTER_H_
