// Tests for SGD/Adam optimizers, clipping, weight decay, and the
// ParameterSet registry with its FedAvg helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/losses.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"

namespace lighttr::nn {
namespace {

// Minimizes ||w - target||^2 and returns the final w.
template <typename Opt>
Matrix MinimizeQuadratic(Opt* optimizer, int steps) {
  ParameterSet params;
  Tensor w = Tensor::Variable(Matrix::Full(1, 3, 5.0));
  params.Register("w", w);
  Matrix target(1, 3);
  target(0, 0) = 1.0;
  target(0, 1) = -2.0;
  target(0, 2) = 0.5;
  for (int i = 0; i < steps; ++i) {
    Tensor loss = MseLoss(w, target);
    loss.Backward();
    optimizer->Step(&params);
  }
  return w.value();
}

TEST(Sgd, ConvergesOnQuadratic) {
  SgdOptimizer sgd(0.2);
  const Matrix w = MinimizeQuadratic(&sgd, 200);
  EXPECT_NEAR(w(0, 0), 1.0, 1e-3);
  EXPECT_NEAR(w(0, 1), -2.0, 1e-3);
}

TEST(Sgd, MomentumConverges) {
  SgdOptimizer sgd(0.05, /*momentum=*/0.9);
  const Matrix w = MinimizeQuadratic(&sgd, 300);
  EXPECT_NEAR(w(0, 2), 0.5, 1e-2);
}

TEST(Adam, ConvergesOnQuadratic) {
  AdamOptimizer adam(0.1, 0.9, 0.999, 1e-8, /*clip_norm=*/0,
                     /*weight_decay=*/0);
  const Matrix w = MinimizeQuadratic(&adam, 400);
  EXPECT_NEAR(w(0, 0), 1.0, 1e-2);
  EXPECT_NEAR(w(0, 1), -2.0, 1e-2);
}

TEST(Adam, WeightDecayShrinksUnusedWeights) {
  ParameterSet params;
  Tensor w = Tensor::Variable(Matrix::Full(1, 1, 4.0));
  params.Register("w", w);
  AdamOptimizer adam(0.1, 0.9, 0.999, 1e-8, 0, /*weight_decay=*/0.5);
  for (int i = 0; i < 10; ++i) {
    w.grad();  // allocate zero grad: pure decay steps
    adam.Step(&params);
  }
  EXPECT_LT(std::abs(w.value()(0, 0)), 4.0);
}

TEST(Optimizer, StepZeroesGradients) {
  ParameterSet params;
  Tensor w = Tensor::Variable(Matrix::Full(1, 2, 1.0));
  params.Register("w", w);
  Tensor loss = Mean(w);
  loss.Backward();
  SgdOptimizer sgd(0.1);
  sgd.Step(&params);
  EXPECT_DOUBLE_EQ(w.grad()(0, 0), 0.0);
}

TEST(Clipping, ScalesDownLargeGradients) {
  ParameterSet params;
  Tensor w = Tensor::Variable(Matrix::Full(1, 4, 0.0));
  params.Register("w", w);
  Matrix& g = w.grad();
  g.Fill(10.0);  // norm = 20
  ClipGradientsByGlobalNorm(&params, 2.0);
  EXPECT_NEAR(std::sqrt(w.grad().SquaredNorm()), 2.0, 1e-9);
}

TEST(Clipping, LeavesSmallGradientsAlone) {
  ParameterSet params;
  Tensor w = Tensor::Variable(Matrix::Full(1, 4, 0.0));
  params.Register("w", w);
  w.grad().Fill(0.1);
  ClipGradientsByGlobalNorm(&params, 5.0);
  EXPECT_DOUBLE_EQ(w.grad()(0, 0), 0.1);
}

TEST(ParameterSet, FlattenAssignRoundTrip) {
  ParameterSet params;
  Rng rng(1);
  Tensor a = Tensor::Variable(Matrix::RandomUniform(2, 3, 1.0, &rng));
  Tensor b = Tensor::Variable(Matrix::RandomUniform(1, 4, 1.0, &rng));
  params.Register("a", a);
  params.Register("b", b);
  EXPECT_EQ(params.NumScalars(), 10);

  std::vector<Scalar> flat = params.Flatten();
  ASSERT_EQ(flat.size(), 10u);
  for (Scalar& x : flat) x += 1.0;
  params.AssignFlat(flat);
  EXPECT_EQ(params.Flatten(), flat);
}

TEST(ParameterSet, GetByName) {
  ParameterSet params;
  Tensor a = Tensor::Variable(Matrix::Full(1, 1, 7.0));
  params.Register("only", a);
  EXPECT_DOUBLE_EQ(params.Get("only").value()(0, 0), 7.0);
}

TEST(ParameterSet, SerializeDeserializeRoundTrip) {
  auto build = [](uint64_t seed) {
    auto params = std::make_unique<ParameterSet>();
    Rng rng(seed);
    params->Register("w1",
                     Tensor::Variable(Matrix::RandomUniform(3, 3, 1.0, &rng)));
    params->Register("w2",
                     Tensor::Variable(Matrix::RandomUniform(1, 5, 1.0, &rng)));
    return params;
  };
  auto source = build(1);
  auto dest = build(2);
  const std::string blob = source->Serialize();
  EXPECT_EQ(static_cast<int64_t>(blob.size()), source->WireBytes());
  ASSERT_TRUE(dest->Deserialize(blob).ok());
  // float32 wire format: equality within float precision.
  const auto a = source->Flatten();
  const auto b = dest->Flatten();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6);
  }
}

TEST(ParameterSet, DeserializeRejectsCorruption) {
  ParameterSet params;
  params.Register("w", Tensor::Variable(Matrix::Full(2, 2, 1.0)));
  const std::string blob = params.Serialize();

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(params.Deserialize(bad_magic).ok());

  EXPECT_FALSE(params.Deserialize(blob.substr(0, blob.size() - 3)).ok());
  EXPECT_FALSE(params.Deserialize(blob + "zz").ok());

  ParameterSet other_name;
  other_name.Register("v", Tensor::Variable(Matrix::Full(2, 2, 1.0)));
  EXPECT_FALSE(other_name.Deserialize(blob).ok());

  ParameterSet other_shape;
  other_shape.Register("w", Tensor::Variable(Matrix::Full(2, 3, 1.0)));
  EXPECT_FALSE(other_shape.Deserialize(blob).ok());
}

TEST(ParameterSet, AverageFlatIsElementwiseMean) {
  const std::vector<std::vector<Scalar>> flats = {
      {1.0, 2.0, 3.0}, {3.0, 4.0, 5.0}, {5.0, 6.0, 7.0}};
  const std::vector<Scalar> avg = AverageFlat(flats);
  EXPECT_DOUBLE_EQ(avg[0], 3.0);
  EXPECT_DOUBLE_EQ(avg[1], 4.0);
  EXPECT_DOUBLE_EQ(avg[2], 5.0);
}

}  // namespace
}  // namespace lighttr::nn
