// Unit tests for src/geo: distances, projection, grids, time bins.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geo_point.h"
#include "geo/grid.h"

namespace lighttr::geo {
namespace {

TEST(Haversine, ZeroForSamePoint) {
  const GeoPoint p{39.9, 116.4};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(Haversine, OneDegreeLatitude) {
  // One degree of latitude is ~111.2 km everywhere.
  const GeoPoint a{39.0, 116.0};
  const GeoPoint b{40.0, 116.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111194.9, 50.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{39.9, 116.3};
  const GeoPoint b{40.05, 116.52};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(Equirectangular, MatchesHaversineAtCityScale) {
  lighttr::Rng rng(1);
  const GeoPoint origin{39.9, 116.4};
  for (int i = 0; i < 200; ++i) {
    const GeoPoint p{origin.lat + rng.Uniform(-0.1, 0.1),
                     origin.lng + rng.Uniform(-0.1, 0.1)};
    const double h = HaversineMeters(origin, p);
    const double e = EquirectangularMeters(origin, p);
    EXPECT_NEAR(e, h, std::max(1.0, 0.002 * h));
  }
}

TEST(Lerp, Endpoints) {
  const GeoPoint a{39.0, 116.0};
  const GeoPoint b{40.0, 117.0};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  const GeoPoint mid = Lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.lat, 39.5);
  EXPECT_DOUBLE_EQ(mid.lng, 116.5);
}

TEST(LocalProjection, RoundTrip) {
  const LocalProjection plane(GeoPoint{39.9, 116.4});
  lighttr::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const GeoPoint p{39.9 + rng.Uniform(-0.05, 0.05),
                     116.4 + rng.Uniform(-0.05, 0.05)};
    const GeoPoint back = plane.FromXy(plane.ToXy(p));
    EXPECT_NEAR(back.lat, p.lat, 1e-9);
    EXPECT_NEAR(back.lng, p.lng, 1e-9);
  }
}

TEST(LocalProjection, DistancesPreserved) {
  const LocalProjection plane(GeoPoint{39.9, 116.4});
  const GeoPoint p{39.93, 116.45};
  const auto xy = plane.ToXy(p);
  const double planar = std::sqrt(xy.x * xy.x + xy.y * xy.y);
  EXPECT_NEAR(planar, HaversineMeters(plane.origin(), p),
              0.01 * planar + 1.0);
}

TEST(GridSpec, CellsTileTheBox) {
  const GridSpec grid({39.9, 116.3}, {40.0, 116.5}, 500.0);
  EXPECT_GT(grid.rows(), 0);
  EXPECT_GT(grid.cols(), 0);
  // Cell of the min corner is (0, 0); max corner lands in the last cell.
  const GridCell lo = grid.CellOf({39.9, 116.3});
  EXPECT_EQ(lo, (GridCell{0, 0}));
  const GridCell hi = grid.CellOf({40.0, 116.5});
  EXPECT_EQ(hi.x, grid.cols() - 1);
  EXPECT_EQ(hi.y, grid.rows() - 1);
}

TEST(GridSpec, OutOfBoundsClamped) {
  const GridSpec grid({39.9, 116.3}, {40.0, 116.5}, 500.0);
  EXPECT_EQ(grid.CellOf({0.0, 0.0}), (GridCell{0, 0}));
  const GridCell far = grid.CellOf({89.0, 179.0});
  EXPECT_EQ(far.x, grid.cols() - 1);
  EXPECT_EQ(far.y, grid.rows() - 1);
}

TEST(GridSpec, CellIdRoundTrip) {
  const GridSpec grid({39.9, 116.3}, {40.0, 116.5}, 300.0);
  for (int32_t y = 0; y < grid.rows(); ++y) {
    for (int32_t x = 0; x < grid.cols(); ++x) {
      const GridCell cell{x, y};
      EXPECT_EQ(grid.CellFromId(grid.CellId(cell)), cell);
    }
  }
}

TEST(GridSpec, CellCenterMapsBackToCell) {
  const GridSpec grid({39.9, 116.3}, {40.0, 116.5}, 250.0);
  lighttr::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const GridCell cell{
        static_cast<int32_t>(rng.UniformInt(0, grid.cols() - 1)),
        static_cast<int32_t>(rng.UniformInt(0, grid.rows() - 1))};
    EXPECT_EQ(grid.CellOf(grid.CellCenter(cell)), cell);
  }
}

TEST(GridSpec, CellSizeApproximatelyRequested) {
  const GridSpec grid({39.9, 116.3}, {40.0, 116.5}, 200.0);
  const GeoPoint c0 = grid.CellCenter({0, 0});
  const GeoPoint c1 = grid.CellCenter({1, 0});
  EXPECT_NEAR(HaversineMeters(c0, c1), 200.0, 40.0);
}

TEST(TimeBin, MatchesFloor) {
  EXPECT_EQ(TimeBin(0.0, 0.0, 15.0), 0);
  EXPECT_EQ(TimeBin(14.9, 0.0, 15.0), 0);
  EXPECT_EQ(TimeBin(15.0, 0.0, 15.0), 1);
  EXPECT_EQ(TimeBin(44.0, 0.0, 15.0), 2);
  EXPECT_EQ(TimeBin(-0.1, 0.0, 15.0), -1);
}

}  // namespace
}  // namespace lighttr::geo
