#include "eval/metrics.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "geo/geo_point.h"
#include "roadnet/shortest_path.h"

namespace lighttr::eval {

SetCounts SegmentSetCounts(
    const traj::IncompleteTrajectory& trajectory,
    const std::vector<roadnet::PointPosition>& recovered) {
  LIGHTTR_CHECK_EQ(recovered.size(), trajectory.size());
  std::unordered_map<int, int64_t> truth_counts;
  std::unordered_map<int, int64_t> recovered_counts;
  SetCounts counts;
  for (size_t t = 0; t < trajectory.size(); ++t) {
    if (trajectory.observed[t]) continue;
    ++truth_counts[trajectory.ground_truth.points[t].position.segment];
    ++recovered_counts[recovered[t].segment];
    ++counts.truth;
    ++counts.recovered;
  }
  for (const auto& [segment, count] : recovered_counts) {
    auto it = truth_counts.find(segment);
    if (it != truth_counts.end()) {
      counts.intersection += std::min(count, it->second);
    }
  }
  return counts;
}

RecoveryMetrics EvaluateRecovery(
    fl::RecoveryModel* model, const roadnet::RoadNetwork& network,
    const std::vector<traj::IncompleteTrajectory>& test) {
  LIGHTTR_CHECK(model != nullptr);
  roadnet::DijkstraEngine engine(network);

  int64_t intersection = 0;
  int64_t recovered_total = 0;
  int64_t truth_total = 0;
  double abs_sum_km = 0.0;
  double sq_sum_km = 0.0;
  int64_t points = 0;

  for (const traj::IncompleteTrajectory& trajectory : test) {
    const std::vector<roadnet::PointPosition> recovered =
        model->Recover(trajectory);
    const SetCounts counts = SegmentSetCounts(trajectory, recovered);
    intersection += counts.intersection;
    recovered_total += counts.recovered;
    truth_total += counts.truth;

    for (size_t t = 0; t < trajectory.size(); ++t) {
      if (trajectory.observed[t]) continue;
      const roadnet::PointPosition& truth =
          trajectory.ground_truth.points[t].position;
      double d_m = roadnet::ConstrainedDistance(network, engine, recovered[t],
                                                truth);
      if (d_m == roadnet::kUnreachable) {
        d_m = geo::HaversineMeters(network.PositionToPoint(recovered[t]),
                                   network.PositionToPoint(truth));
      }
      const double d_km = d_m / 1000.0;
      abs_sum_km += d_km;
      sq_sum_km += d_km * d_km;
      ++points;
    }
  }

  RecoveryMetrics metrics;
  metrics.recovered_points = points;
  if (truth_total > 0) {
    metrics.recall =
        static_cast<double>(intersection) / static_cast<double>(truth_total);
  }
  if (recovered_total > 0) {
    metrics.precision = static_cast<double>(intersection) /
                        static_cast<double>(recovered_total);
  }
  if (points > 0) {
    metrics.mae_km = abs_sum_km / static_cast<double>(points);
    metrics.rmse_km = std::sqrt(sq_sum_km / static_cast<double>(points));
  }
  return metrics;
}

std::vector<ClientMetrics> EvaluatePerClient(
    fl::RecoveryModel* model, const roadnet::RoadNetwork& network,
    const std::vector<traj::ClientDataset>& clients) {
  std::vector<ClientMetrics> out;
  out.reserve(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    ClientMetrics entry;
    entry.client_index = static_cast<int>(i);
    entry.metrics = EvaluateRecovery(model, network, clients[i].test);
    out.push_back(entry);
  }
  return out;
}

}  // namespace lighttr::eval
