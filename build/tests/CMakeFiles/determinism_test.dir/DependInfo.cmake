
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/determinism_test.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/determinism_test.dir/determinism_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/lighttr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lighttr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/lighttr/CMakeFiles/lighttr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/lighttr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/mapmatch/CMakeFiles/lighttr_mapmatch.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/lighttr_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/lighttr_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lighttr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lighttr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lighttr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
