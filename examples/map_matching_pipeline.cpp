// Preprocessing pipeline (paper Sec. IV-B1): noisy raw GPS trajectories
// are map-matched onto the road network with the HMM matcher, converted
// into incomplete map-matched trajectories, and finally recovered with
// a locally trained LTE model.
#include <cstdio>

#include "common/table_printer.h"
#include "eval/metrics.h"
#include "fl/local_trainer.h"
#include "lighttr/lte_model.h"
#include "mapmatch/hmm_map_matcher.h"
#include "nn/optimizer.h"
#include "roadnet/generators.h"
#include "roadnet/segment_index.h"
#include "traj/downsample.h"
#include "traj/encoding.h"
#include "traj/generator.h"

int main() {
  using namespace lighttr;

  // 1. A simulated city and its spatial index.
  Rng rng(9);
  roadnet::CityGridOptions city;
  city.rows = 8;
  city.cols = 8;
  const roadnet::RoadNetwork network = roadnet::GenerateCityGrid(city, &rng);
  const roadnet::SegmentIndex index(network);
  std::printf("city: %d vertices, %d segments\n", network.num_vertices(),
              network.num_segments());

  // 2. Simulated vehicles emit noisy GPS; the HMM matcher snaps them
  //    back onto the network.
  const traj::TrajectoryGenerator generator(network);
  const mapmatch::HmmMapMatcher matcher(index, {});
  double total_error_m = 0.0;
  int matched_points = 0;
  std::vector<traj::IncompleteTrajectory> dataset;
  while (dataset.size() < 24) {
    auto truth = generator.Generate({}, roadnet::kInvalidVertex, &rng);
    if (!truth.ok()) continue;
    const traj::RawTrajectory raw =
        traj::ToRawTrajectory(network, truth.value(), /*noise_m=*/25.0, &rng);
    auto matched = matcher.Match(raw);
    if (!matched.ok()) {
      std::printf("match failed: %s\n", matched.status().ToString().c_str());
      continue;
    }
    for (size_t i = 0; i < matched.value().size(); ++i) {
      total_error_m += geo::HaversineMeters(
          network.PositionToPoint(matched.value().points[i].position),
          network.PositionToPoint(truth.value().points[i].position));
      ++matched_points;
    }
    // 3. Downsample to a low-sampling-rate trajectory (keep 12.5%).
    dataset.push_back(
        traj::MakeIncomplete(std::move(matched).value(), 0.125, &rng));
  }
  std::printf("HMM matching error: %.1f m mean over %d points "
              "(GPS noise was 25 m)\n",
              total_error_m / matched_points, matched_points);

  // 4. Train an LTE model locally on the map-matched data and evaluate
  //    recovery quality on held-out trajectories.
  const traj::TrajectoryEncoder encoder(network, index);
  Rng model_rng(10);
  core::LteModel model(&encoder, core::LteConfig{}, &model_rng);
  const std::vector<traj::IncompleteTrajectory> train(dataset.begin(),
                                                      dataset.begin() + 18);
  const std::vector<traj::IncompleteTrajectory> test(dataset.begin() + 18,
                                                     dataset.end());
  nn::AdamOptimizer optimizer(3e-3);
  fl::LocalTrainOptions options;
  options.epochs = 12;
  Rng train_rng(11);
  const double loss =
      fl::TrainLocal(&model, &optimizer, train, options, &train_rng);
  const eval::RecoveryMetrics metrics =
      eval::EvaluateRecovery(&model, network, test);

  TablePrinter table({"Metric", "Value"});
  table.AddRow({"final train loss", TablePrinter::Fmt(loss)});
  table.AddRow({"Recall", TablePrinter::Fmt(metrics.recall)});
  table.AddRow({"Precision", TablePrinter::Fmt(metrics.precision)});
  table.AddRow({"MAE (km)", TablePrinter::Fmt(metrics.mae_km)});
  table.AddRow({"RMSE (km)", TablePrinter::Fmt(metrics.rmse_km)});
  std::printf("%s", table.ToString().c_str());
  return 0;
}
