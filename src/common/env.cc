#include "common/env.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

namespace lighttr {
namespace {

/// Production filesystem backend. This translation unit is the single
/// spot in src/ where raw std::filesystem mutation and file streams are
/// legal (the no-direct-persistence lint rule enforces it).
class RealFileSystem : public FileSystem {
 public:
  Status WriteFileAtomic(const std::string& path,
                         const std::string& contents) override {
    // Temp file in the same directory so the final rename never crosses
    // a filesystem boundary (cross-device rename is not atomic). The
    // trunc open clobbers any stale temp from a previous crashed writer.
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return Status::IoError("cannot open for writing: " + tmp);
      out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
      out.flush();
      if (!out) {
        out.close();
        std::error_code ec;
        (void)std::filesystem::remove(tmp, ec);  // hygiene: no partial left
        return Status::IoError("short write to " + tmp);
      }
      out.close();
      if (out.fail()) {
        std::error_code ec;
        (void)std::filesystem::remove(tmp, ec);  // hygiene: no partial left
        return Status::IoError("close failed for " + tmp);
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      std::error_code rm_ec;
      (void)std::filesystem::remove(tmp, rm_ec);  // hygiene: no orphan temp
      return Status::IoError("cannot rename " + tmp + " -> " + path + ": " +
                             ec.message());
    }
    return Status::Ok();
  }

  Status AppendToFile(const std::string& path,
                      const std::string& contents) override {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) return Status::IoError("cannot open for appending: " + path);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return Status::IoError("short append to " + path);
    out.close();
    if (out.fail()) return Status::IoError("close failed appending " + path);
    return Status::Ok();
  }

  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot open for reading: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    if (!std::filesystem::exists(dir, ec) || ec) {
      return Status::NotFound("no such directory: " + dir);
    }
    std::vector<std::string> names;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file(ec)) names.push_back(it->path().filename());
    }
    if (ec) return Status::IoError("cannot list " + dir + ": " + ec.message());
    std::sort(names.begin(), names.end());
    return names;
  }

  Status Remove(const std::string& path) override {
    std::error_code ec;
    (void)std::filesystem::remove(path, ec);  // false (missing) is fine
    if (ec) {
      return Status::IoError("cannot remove " + path + ": " + ec.message());
    }
    return Status::Ok();
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    (void)std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::IoError("cannot create " + dir + ": " + ec.message());
    }
    return Status::Ok();
  }

  bool Exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec) && !ec;
  }

  Status SyncAll() override {
    // Stream close-on-success is the durability point the rest of the
    // codebase has always assumed for the real disk; nothing extra here.
    return Status::Ok();
  }
};

/// Parent directory of `path` ("" when the path has no separator; "/"
/// collapses to "" too, which callers treat as always-existing).
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return std::string();
  return path.substr(0, slash);
}

}  // namespace

FileSystem* RealFileSystemInstance() {
  static RealFileSystem fs;
  return &fs;
}

// ---------------------------------------------------------------------------
// FaultyFileSystem
// ---------------------------------------------------------------------------

FaultyFileSystem::FaultyFileSystem(const StorageFaultConfig& config)
    : config_(config), rng_(config.seed) {}

bool FaultyFileSystem::ParentExists(const std::string& path) const {
  const std::string parent = ParentDir(path);
  if (parent.empty()) return true;  // cwd-relative or directly under root
  return dirs_.count(parent) > 0;
}

bool FaultyFileSystem::DrawFault(double rate) {
  // Draws are consumed only when the rate is configured on (the same
  // config-only conditionality rule the trainer's RNG forks follow), so
  // the fault schedule is a pure function of (seed, operation sequence).
  if (paused_ || rate <= 0.0) return false;
  return rng_.Bernoulli(rate);
}

void FaultyFileSystem::CleanTemp(const std::string& path) {
  const std::string tmp = path + ".tmp";
  files_.erase(tmp);
  litter_.erase(tmp);
}

Status FaultyFileSystem::WriteFileAtomic(const std::string& path,
                                         const std::string& contents) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ParentExists(path)) {
    return Status::IoError("cannot open for writing: " + path +
                           ".tmp (no parent directory)");
  }
  // The trunc open of the temp clobbers any stale `<path>.tmp` before
  // fault injection gets a say — even a failing write cleans old litter.
  CleanTemp(path);
  if (DrawFault(config_.enospc_rate)) {
    ++stats_.enospc_failures;
    return Status::IoError("injected ENOSPC writing " + path);
  }
  if (DrawFault(config_.rename_fail_rate)) {
    ++stats_.rename_failures;
    if (leak_tmp_) {
      // Planted-bug mode: the buggy writer forgets to clean its temp.
      // Deliberately NOT registered as injected litter — the chaos
      // orphan-temp invariant must see it as a genuine leak.
      files_[path + ".tmp"].data = contents;
    }
    return Status::IoError("injected rename failure for " + path);
  }
  MemFile& file = files_[path];  // preserves synced contents on rewrite
  file.data = contents;
  litter_.erase(path);
  if (DrawFault(config_.tmp_litter_rate)) {
    // A previous writer "crashed" here long ago: plant a stale partial
    // temp next to the freshly written file. Readers must ignore it and
    // the next writer to this path will clobber it.
    const std::string tmp = path + ".tmp";
    files_[tmp].data = contents.substr(0, contents.size() / 2);
    litter_.insert(tmp);
    ++stats_.tmp_litter_files;
  }
  return Status::Ok();
}

Status FaultyFileSystem::AppendToFile(const std::string& path,
                                      const std::string& contents) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ParentExists(path)) {
    return Status::IoError("cannot open for appending: " + path +
                           " (no parent directory)");
  }
  if (DrawFault(config_.enospc_rate)) {
    ++stats_.enospc_failures;
    return Status::IoError("injected ENOSPC appending to " + path);
  }
  if (DrawFault(config_.torn_append_rate)) {
    // A proper prefix lands, then the device gives out. The short write
    // is reported as an error — callers must never mistake it for
    // success (journal CRCs catch the torn tail on replay).
    size_t torn_len = 0;
    if (!contents.empty()) {
      torn_len = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(contents.size()) - 1));
    }
    files_[path].data.append(contents, 0, torn_len);
    ++stats_.torn_appends;
    return Status::IoError("injected torn append to " + path);
  }
  files_[path].data.append(contents);
  return Status::Ok();
}

Result<std::string> FaultyFileSystem::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string data = it->second.data;
  if (bitrot_once_.count(path) > 0) {
    bitrot_once_.erase(path);
    if (!data.empty()) {
      data[data.size() / 2] = static_cast<char>(
          static_cast<unsigned char>(data[data.size() / 2]) ^ 1u);
      ++stats_.bitrot_reads;
    }
    return data;
  }
  if (!data.empty() && DrawFault(config_.read_bitrot_rate)) {
    const size_t pos = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(data.size()) - 1));
    const int bit = static_cast<int>(rng_.UniformInt(0, 7));
    data[pos] = static_cast<char>(static_cast<unsigned char>(data[pos]) ^
                                  (1u << bit));
    ++stats_.bitrot_reads;
  }
  return data;
}

Result<std::vector<std::string>> FaultyFileSystem::ListDir(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dirs_.count(dir) == 0) {
    return Status::NotFound("no such directory: " + dir);
  }
  std::vector<std::string> names;  // map order => already sorted
  for (const auto& [path, file] : files_) {
    (void)file;
    if (ParentDir(path) == dir) {
      names.push_back(path.substr(dir.size() + 1));
    }
  }
  return names;
}

Status FaultyFileSystem::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  litter_.erase(path);
  return Status::Ok();
}

Status FaultyFileSystem::CreateDirs(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  // Register every ancestor so ParentExists sees the full chain.
  std::string prefix;
  size_t start = 0;
  while (start <= dir.size()) {
    const size_t slash = dir.find('/', start);
    const size_t end = (slash == std::string::npos) ? dir.size() : slash;
    if (end > start) {
      prefix = dir.substr(0, end);
      dirs_.insert(prefix);
    }
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return Status::Ok();
}

bool FaultyFileSystem::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Status FaultyFileSystem::SyncAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, file] : files_) {
    (void)path;
    file.synced = file.data;
    file.ever_synced = true;
  }
  return Status::Ok();
}

void FaultyFileSystem::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.lose_unsynced_on_crash) return;
  for (auto it = files_.begin(); it != files_.end();) {
    MemFile& file = it->second;
    if (!file.ever_synced) {
      litter_.erase(it->first);
      it = files_.erase(it);
      ++stats_.crash_lost_files;
      continue;
    }
    if (file.data != file.synced) {
      file.data = file.synced;
      ++stats_.crash_reverted_files;
    }
    ++it;
  }
}

StorageFaultStats FaultyFileSystem::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::string> FaultyFileSystem::AllFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  paths.reserve(files_.size());
  for (const auto& [path, file] : files_) {
    (void)file;
    paths.push_back(path);
  }
  return paths;
}

bool FaultyFileSystem::IsInjectedLitter(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return litter_.count(path) > 0;
}

void FaultyFileSystem::InjectBitrotOnce(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  bitrot_once_.insert(path);
}

void FaultyFileSystem::set_faults_paused(bool paused) {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = paused;
}

}  // namespace lighttr
