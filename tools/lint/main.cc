// CLI for lighttr-lint. Usage:
//
//   lighttr-lint <dir-or-file>...
//
// Scans every .h/.cc/.cpp under the given roots, prints one
// "file:line: rule: message" diagnostic per violation, and exits 1 if
// any were found (so a ctest registration fails the suite).
#include <cstdio>
#include <string>
#include <vector>

#include "lint/linter.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: lighttr-lint <dir-or-file>...\nrules:\n");
      for (const std::string& rule : lighttr::lint::AllRuleNames()) {
        std::printf("  %s\n", rule.c_str());
      }
      std::printf(
          "suppress a line with: // lighttr-lint: allow(<rule>[, <rule>])\n");
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "lighttr-lint: no input paths (try --help)\n");
    return 2;
  }

  const std::vector<lighttr::lint::Diagnostic> diagnostics =
      lighttr::lint::LintPaths(roots);
  for (const auto& diagnostic : diagnostics) {
    std::printf("%s\n", lighttr::lint::FormatDiagnostic(diagnostic).c_str());
  }
  if (!diagnostics.empty()) {
    std::fprintf(stderr, "lighttr-lint: %zu violation(s)\n",
                 diagnostics.size());
    return 1;
  }
  return 0;
}
