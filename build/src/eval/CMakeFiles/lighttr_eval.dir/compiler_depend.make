# Empty compiler generated dependencies file for lighttr_eval.
# This may be replaced when dependencies are built.
