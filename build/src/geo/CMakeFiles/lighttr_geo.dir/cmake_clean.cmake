file(REMOVE_RECURSE
  "CMakeFiles/lighttr_geo.dir/geo_point.cc.o"
  "CMakeFiles/lighttr_geo.dir/geo_point.cc.o.d"
  "CMakeFiles/lighttr_geo.dir/grid.cc.o"
  "CMakeFiles/lighttr_geo.dir/grid.cc.o.d"
  "liblighttr_geo.a"
  "liblighttr_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
