// Reproduces paper Table V: effect of the number of clients on LightTR
// (keep ratio 12.5%, both workloads).
//
// Expected shape: metrics improve as more clients (more decentralized
// data) participate, with possible small non-monotonicity at the top.
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"

int main() {
  using namespace lighttr;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Table V reproduction (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const std::vector<int> client_counts = {5, 10, 15, 20};
  const std::vector<traj::WorkloadProfile> profiles = {
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale),
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale)};

  TablePrinter table({"Dataset", "Clients", "Recall", "Precision", "MAE(km)",
                      "RMSE(km)"});
  for (const auto& profile : profiles) {
    for (int clients_n : client_counts) {
      traj::FederatedWorkloadOptions workload =
          eval::DefaultWorkloadOptions(scale, 0.125);
      workload.num_clients = clients_n;
      const auto clients =
          env->MakeWorkload(profile, workload, scale.seed + 2);
      const eval::MethodResult result = eval::RunFederatedMethod(
          *env, baselines::ModelKind::kLightTr, clients,
          eval::DefaultRunOptions(scale));
      table.AddRow({profile.name, std::to_string(clients_n),
                    TablePrinter::Fmt(result.metrics.recall),
                    TablePrinter::Fmt(result.metrics.precision),
                    TablePrinter::Fmt(result.metrics.mae_km),
                    TablePrinter::Fmt(result.metrics.rmse_km)});
      std::printf("done: %s N=%d\n", profile.name.c_str(), clients_n);
      std::fflush(stdout);
    }
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_table5_clients.csv", table.ToCsv());
  return 0;
}
