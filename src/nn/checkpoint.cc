#include "nn/checkpoint.h"

#include "common/check.h"
#include "common/file_util.h"

namespace lighttr::nn {

Status SaveCheckpoint(const std::string& path, const ParameterSet& params) {
  return WriteFile(path, params.Serialize());
}

Status LoadCheckpoint(const std::string& path, ParameterSet* params) {
  LIGHTTR_CHECK(params != nullptr);
  Result<std::string> contents = ReadFile(path);
  if (!contents.ok()) return contents.status();
  return params->Deserialize(contents.value());
}

}  // namespace lighttr::nn
