#include "common/crc32.h"

#include <array>

namespace lighttr {

namespace {

// Table-driven byte-at-a-time CRC-32 with the reflected IEEE polynomial.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendCrc32Trailer(std::string* buffer) {
  const uint32_t crc = Crc32(*buffer);
  for (int shift = 0; shift < 32; shift += 8) {
    buffer->push_back(static_cast<char>((crc >> shift) & 0xFFu));
  }
}

Status CheckCrc32Trailer(const std::string& bytes, size_t* body_len) {
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument("buffer too short to hold a CRC-32 trailer");
  }
  const size_t n = bytes.size() - sizeof(uint32_t);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[n + i]))
              << (8 * i);
  }
  if (Crc32Update(0, bytes.data(), n) != stored) {
    return Status::InvalidArgument(
        "CRC-32 trailer mismatch (truncated or corrupted bytes)");
  }
  *body_len = n;
  return Status::Ok();
}

}  // namespace lighttr
