#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/finite.h"
#include "fl/privacy.h"

namespace lighttr::fl {

const char* AggregatorPolicyName(AggregatorPolicy policy) {
  switch (policy) {
    case AggregatorPolicy::kMean:
      return "mean";
    case AggregatorPolicy::kMedian:
      return "median";
    case AggregatorPolicy::kTrimmedMean:
      return "trimmed_mean";
  }
  return "unknown";
}

Status ScreenUpload(std::vector<nn::Scalar>* upload,
                    const std::vector<nn::Scalar>& reference,
                    const UploadScreenConfig& config, bool* clipped) {
  LIGHTTR_CHECK(upload != nullptr);
  if (clipped != nullptr) *clipped = false;
  if (!config.enabled) return Status::Ok();
  if (upload->size() != reference.size()) {
    return Status::InvalidArgument("upload has wrong parameter count");
  }
  if (!AllFinite(*upload)) {
    return Status::InvalidArgument("upload contains non-finite scalars");
  }
  if (config.max_delta_norm > 0.0) {
    const double norm = DeltaNorm(*upload, reference);
    if (norm > config.max_delta_norm) {
      if (config.norm_policy == ScreenPolicy::kReject) {
        return Status::OutOfRange("upload delta norm " +
                                  std::to_string(norm) + " exceeds bound " +
                                  std::to_string(config.max_delta_norm));
      }
      // kClip: rescale the delta onto the bound, keeping its direction.
      if (clipped != nullptr) *clipped = true;
      const double scale = config.max_delta_norm / norm;
      for (size_t i = 0; i < upload->size(); ++i) {
        (*upload)[i] = reference[i] +
                       static_cast<nn::Scalar>(
                           ((*upload)[i] - reference[i]) * scale);
      }
    }
  }
  return Status::Ok();
}

Result<std::vector<nn::Scalar>> AggregateFlat(
    const std::vector<std::vector<nn::Scalar>>& uploads,
    const AggregatorConfig& config) {
  if (uploads.empty()) {
    return Status::FailedPrecondition("no uploads to aggregate");
  }
  const size_t n = uploads[0].size();
  for (const auto& flat : uploads) {
    if (flat.size() != n) {
      return Status::InvalidArgument("upload length mismatch in aggregation");
    }
  }
  const size_t m = uploads.size();

  switch (config.policy) {
    case AggregatorPolicy::kMean: {
      std::vector<nn::Scalar> out(n, nn::Scalar{0});
      for (const auto& flat : uploads) {
        for (size_t i = 0; i < n; ++i) out[i] += flat[i];
      }
      const auto inv = nn::Scalar{1} / static_cast<nn::Scalar>(m);
      for (nn::Scalar& x : out) x *= inv;
      return out;
    }
    case AggregatorPolicy::kMedian: {
      std::vector<nn::Scalar> out(n, nn::Scalar{0});
      std::vector<nn::Scalar> column(m);
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < m; ++c) column[c] = uploads[c][i];
        auto mid = column.begin() + static_cast<ptrdiff_t>(m / 2);
        std::nth_element(column.begin(), mid, column.end());
        if (m % 2 == 1) {
          out[i] = *mid;
        } else {
          const nn::Scalar upper = *mid;
          const nn::Scalar lower =
              *std::max_element(column.begin(), mid);
          out[i] = (lower + upper) / nn::Scalar{2};
        }
      }
      return out;
    }
    case AggregatorPolicy::kTrimmedMean: {
      if (config.trim_fraction < 0.0 || config.trim_fraction >= 0.5) {
        return Status::InvalidArgument("trim_fraction must be in [0, 0.5)");
      }
      size_t k = static_cast<size_t>(
          std::floor(config.trim_fraction * static_cast<double>(m)));
      if (2 * k >= m) k = (m - 1) / 2;  // always keep at least one value
      std::vector<nn::Scalar> out(n, nn::Scalar{0});
      std::vector<nn::Scalar> column(m);
      const auto inv = nn::Scalar{1} / static_cast<nn::Scalar>(m - 2 * k);
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < m; ++c) column[c] = uploads[c][i];
        std::sort(column.begin(), column.end());
        nn::Scalar sum{0};
        for (size_t c = k; c < m - k; ++c) sum += column[c];
        out[i] = sum * inv;
      }
      return out;
    }
  }
  return Status::Internal("unknown aggregator policy");
}

}  // namespace lighttr::fl
