// Tests for the storage-fault layer: FaultyFileSystem semantics (every
// fault axis, sync/crash behavior, seeded determinism), the
// failure-path hygiene contract both FileSystem backends share,
// cross-version run-state decoding (a v4 reader must load v1/v2/v3
// blobs), backoff saturation at extreme retry counts, and
// corrupted-newest snapshot fallback driven by a filesystem-injected
// read fault rather than on-disk byte surgery.
#include <gtest/gtest.h>

#include <climits>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/env.h"
#include "fl/federated_trainer.h"
#include "fl/run_state.h"
#include "nn/losses.h"
#include "roadnet/generators.h"
#include "traj/generator.h"
#include "traj/workload.h"

namespace lighttr {
namespace {

// Number of differing bits between two equal-length byte strings.
int BitDifference(const std::string& a, const std::string& b) {
  EXPECT_EQ(a.size(), b.size());
  int bits = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    unsigned char x = static_cast<unsigned char>(a[i]) ^
                      static_cast<unsigned char>(b[i]);
    for (; x != 0; x &= static_cast<unsigned char>(x - 1)) ++bits;
  }
  return bits;
}

std::string MustRead(FileSystem* fs, const std::string& path) {
  Result<std::string> contents = fs->ReadFile(path);
  EXPECT_TRUE(contents.ok()) << contents.status().ToString();
  return contents.ok() ? contents.value() : std::string();
}

// ---------------------------------------------------------------------
// FaultyFileSystem as a plain RAM disk (all-zero fault config).

TEST(FaultyFileSystem, CleanConfigActsAsDeterministicRamDisk) {
  FaultyFileSystem fs;
  ASSERT_TRUE(fs.CreateDirs("a/b").ok());
  EXPECT_TRUE(fs.Exists("a"));
  EXPECT_TRUE(fs.Exists("a/b"));

  ASSERT_TRUE(fs.WriteFileAtomic("a/b/x", "hello").ok());
  EXPECT_TRUE(fs.Exists("a/b/x"));
  EXPECT_EQ(MustRead(&fs, "a/b/x"), "hello");
  ASSERT_TRUE(fs.WriteFileAtomic("a/b/x", "rewritten").ok());
  EXPECT_EQ(MustRead(&fs, "a/b/x"), "rewritten");

  ASSERT_TRUE(fs.AppendToFile("a/b/log", "one ").ok());
  ASSERT_TRUE(fs.AppendToFile("a/b/log", "two").ok());
  EXPECT_EQ(MustRead(&fs, "a/b/log"), "one two");

  Result<std::vector<std::string>> names = fs.ListDir("a/b");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"log", "x"}));
  EXPECT_FALSE(fs.ListDir("missing").ok());
  EXPECT_EQ(fs.ListDir("missing").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(fs.Remove("a/b/log").ok());
  EXPECT_FALSE(fs.Exists("a/b/log"));
  ASSERT_TRUE(fs.Remove("a/b/log").ok());  // removing a missing file is OK

  // Writes into a directory that was never created must fail, not
  // invent parents behind the caller's back.
  EXPECT_FALSE(fs.WriteFileAtomic("nodir/f", "x").ok());
  EXPECT_FALSE(fs.AppendToFile("nodir/f", "x").ok());
  EXPECT_FALSE(fs.ReadFile("a/b/ghost").ok());

  const StorageFaultStats stats = fs.stats();
  EXPECT_EQ(stats.WriteFaults(), 0);
  EXPECT_EQ(stats.bitrot_reads, 0);
  EXPECT_EQ(stats.tmp_litter_files, 0);
}

// ---------------------------------------------------------------------
// Individual fault axes.

TEST(FaultyFileSystem, EnospcFailsTheCallAndLeavesContentsUntouched) {
  StorageFaultConfig config;
  config.enospc_rate = 1.0;
  FaultyFileSystem fs(config);
  fs.set_faults_paused(true);
  ASSERT_TRUE(fs.WriteFileAtomic("f", "old").ok());
  fs.set_faults_paused(false);

  EXPECT_EQ(fs.WriteFileAtomic("f", "new").code(), StatusCode::kIoError);
  EXPECT_EQ(fs.AppendToFile("f", "tail").code(), StatusCode::kIoError);
  EXPECT_EQ(MustRead(&fs, "f"), "old");
  EXPECT_FALSE(fs.Exists("f.tmp"));

  const StorageFaultStats stats = fs.stats();
  EXPECT_EQ(stats.enospc_failures, 2);
  EXPECT_EQ(stats.WriteFaults(), 2);
}

TEST(FaultyFileSystem, TornAppendWritesProperPrefixAndReportsIoError) {
  StorageFaultConfig config;
  config.torn_append_rate = 1.0;
  FaultyFileSystem fs(config);
  const std::string line = "0123456789";
  EXPECT_EQ(fs.AppendToFile("journal", line).code(), StatusCode::kIoError);

  // A proper prefix landed: strictly shorter than the payload, and
  // byte-identical to the payload's head.
  fs.set_faults_paused(true);
  const std::string tail = MustRead(&fs, "journal");
  EXPECT_LT(tail.size(), line.size());
  EXPECT_EQ(tail, line.substr(0, tail.size()));
  EXPECT_EQ(fs.stats().torn_appends, 1);
}

TEST(FaultyFileSystem, RenameFailureKeepsOldContentsAndCleansTemp) {
  StorageFaultConfig config;
  config.rename_fail_rate = 1.0;
  FaultyFileSystem fs(config);
  fs.set_faults_paused(true);
  ASSERT_TRUE(fs.WriteFileAtomic("f", "old").ok());
  fs.set_faults_paused(false);

  EXPECT_EQ(fs.WriteFileAtomic("f", "new").code(), StatusCode::kIoError);
  EXPECT_EQ(MustRead(&fs, "f"), "old");
  // The hygiene contract: the failed writer's temp does not survive.
  EXPECT_FALSE(fs.Exists("f.tmp"));
  for (const std::string& path : fs.AllFiles()) {
    EXPECT_EQ(path.find(".tmp"), std::string::npos) << path;
  }
  EXPECT_EQ(fs.stats().rename_failures, 1);
}

TEST(FaultyFileSystem, PlantedLeakLeavesOrphanTempThatIsNotLitter) {
  StorageFaultConfig config;
  config.rename_fail_rate = 1.0;
  FaultyFileSystem fs(config);
  fs.set_leak_tmp_on_rename_failure(true);
  EXPECT_FALSE(fs.WriteFileAtomic("f", "new").ok());
  // The planted bug leaks the temp — and it must NOT be classified as
  // injected litter, or the orphan-temp invariant could never see it.
  EXPECT_TRUE(fs.Exists("f.tmp"));
  EXPECT_FALSE(fs.IsInjectedLitter("f.tmp"));
}

TEST(FaultyFileSystem, ReadBitrotFlipsOneBitAndLeavesStorageIntact) {
  StorageFaultConfig config;
  config.read_bitrot_rate = 1.0;
  FaultyFileSystem fs(config);
  const std::string original = "the stored bytes stay intact";
  ASSERT_TRUE(fs.WriteFileAtomic("f", original).ok());

  const std::string rotted = MustRead(&fs, "f");
  EXPECT_EQ(BitDifference(original, rotted), 1);

  // Rot is read-path only: with faults paused the pristine contents
  // come back, so the "disk" was never damaged.
  fs.set_faults_paused(true);
  EXPECT_EQ(MustRead(&fs, "f"), original);
  EXPECT_EQ(fs.stats().bitrot_reads, 1);
}

TEST(FaultyFileSystem, InjectBitrotOnceCorruptsExactlyOneRead) {
  FaultyFileSystem fs;  // no configured rot: only the targeted hook
  const std::string original = "snapshot-bytes";
  ASSERT_TRUE(fs.WriteFileAtomic("f", original).ok());
  fs.InjectBitrotOnce("f");

  const std::string first = MustRead(&fs, "f");
  EXPECT_EQ(BitDifference(original, first), 1);
  EXPECT_EQ(MustRead(&fs, "f"), original);  // second read is clean
  EXPECT_EQ(fs.stats().bitrot_reads, 1);
}

TEST(FaultyFileSystem, TmpLitterIsTrackedAndClobberedByTheNextWriter) {
  StorageFaultConfig config;
  config.tmp_litter_rate = 1.0;
  FaultyFileSystem fs(config);
  ASSERT_TRUE(fs.WriteFileAtomic("f", "contents").ok());
  EXPECT_TRUE(fs.Exists("f.tmp"));
  EXPECT_TRUE(fs.IsInjectedLitter("f.tmp"));
  EXPECT_EQ(fs.stats().tmp_litter_files, 1);

  // The next writer's trunc-open clobbers the stale partial even
  // before fault injection gets a say.
  fs.set_faults_paused(true);
  ASSERT_TRUE(fs.WriteFileAtomic("f", "again").ok());
  EXPECT_FALSE(fs.Exists("f.tmp"));
  EXPECT_FALSE(fs.IsInjectedLitter("f.tmp"));
}

TEST(FaultyFileSystem, LossyCrashRevertsToSyncedAndDropsNeverSynced) {
  StorageFaultConfig config;
  config.lose_unsynced_on_crash = true;
  FaultyFileSystem fs(config);
  ASSERT_TRUE(fs.WriteFileAtomic("a", "v1").ok());
  ASSERT_TRUE(fs.SyncAll().ok());
  ASSERT_TRUE(fs.WriteFileAtomic("a", "v2").ok());   // unsynced rewrite
  ASSERT_TRUE(fs.WriteFileAtomic("b", "only").ok()); // never synced

  fs.SimulateCrash();
  EXPECT_EQ(MustRead(&fs, "a"), "v1");
  EXPECT_FALSE(fs.Exists("b"));

  const StorageFaultStats stats = fs.stats();
  EXPECT_EQ(stats.crash_reverted_files, 1);
  EXPECT_EQ(stats.crash_lost_files, 1);
}

TEST(FaultyFileSystem, KindCrashKeepsEverything) {
  FaultyFileSystem fs;  // lose_unsynced_on_crash defaults to false
  ASSERT_TRUE(fs.WriteFileAtomic("a", "unsynced").ok());
  fs.SimulateCrash();
  EXPECT_EQ(MustRead(&fs, "a"), "unsynced");
  EXPECT_EQ(fs.stats().crash_reverted_files, 0);
  EXPECT_EQ(fs.stats().crash_lost_files, 0);
}

// ---------------------------------------------------------------------
// Determinism of the fault schedule.

TEST(FaultyFileSystem, SameSeedSameOperationsSameFaultSchedule) {
  StorageFaultConfig config;
  config.seed = 99;
  config.enospc_rate = 0.3;
  config.torn_append_rate = 0.3;
  config.rename_fail_rate = 0.3;
  config.read_bitrot_rate = 0.3;
  FaultyFileSystem a(config);
  FaultyFileSystem b(config);
  for (int i = 0; i < 40; ++i) {
    const std::string path = "f" + std::to_string(i % 5);
    EXPECT_EQ(a.WriteFileAtomic(path, "payload").code(),
              b.WriteFileAtomic(path, "payload").code());
    EXPECT_EQ(a.AppendToFile("log", "line\n").code(),
              b.AppendToFile("log", "line\n").code());
    EXPECT_EQ(a.ReadFile("log").ok(), b.ReadFile("log").ok());
  }
  const StorageFaultStats sa = a.stats();
  const StorageFaultStats sb = b.stats();
  EXPECT_EQ(sa.enospc_failures, sb.enospc_failures);
  EXPECT_EQ(sa.torn_appends, sb.torn_appends);
  EXPECT_EQ(sa.rename_failures, sb.rename_failures);
  EXPECT_EQ(sa.bitrot_reads, sb.bitrot_reads);
  EXPECT_EQ(a.AllFiles(), b.AllFiles());
}

TEST(FaultyFileSystem, PausedOperationsConsumeNoFaultDraws) {
  StorageFaultConfig config;
  config.seed = 123;
  config.enospc_rate = 0.5;
  FaultyFileSystem paused_then_live(config);
  FaultyFileSystem fresh(config);

  // Twenty paused operations must not advance the fault stream: after
  // unpausing, the schedule matches a filesystem that never paused.
  paused_then_live.set_faults_paused(true);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(paused_then_live.WriteFileAtomic("warm", "x").ok());
  }
  paused_then_live.set_faults_paused(false);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(paused_then_live.WriteFileAtomic("f", "x").code(),
              fresh.WriteFileAtomic("f", "x").code())
        << "draw " << i;
  }
}

// ---------------------------------------------------------------------
// Hygiene contract on the real backend.

TEST(RealFileSystem, AtomicWriteClobbersStaleTempFromACrashedWriter) {
  FileSystem* fs = RealFileSystemInstance();
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "env_hygiene")
          .generic_string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(fs->CreateDirs(dir).ok());
  const std::string path = dir + "/f";
  ASSERT_TRUE(fs->AppendToFile(path + ".tmp", "stale partial").ok());

  ASSERT_TRUE(fs->WriteFileAtomic(path, "fresh").ok());
  EXPECT_FALSE(fs->Exists(path + ".tmp"));
  EXPECT_EQ(MustRead(fs, path), "fresh");
}

TEST(RealFileSystem, FailedAtomicWriteLeavesNoTemp) {
  FileSystem* fs = RealFileSystemInstance();
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "env_hygiene_fail")
          .generic_string();
  std::filesystem::remove_all(dir);
  // The parent directory does not exist, so the write must fail —
  // and fail cleanly, without leaving a temp anywhere.
  const std::string path = dir + "/missing/f";
  EXPECT_FALSE(fs->WriteFileAtomic(path, "x").ok());
  EXPECT_FALSE(fs->Exists(path + ".tmp"));
  EXPECT_FALSE(fs->Exists(path));
}

// ---------------------------------------------------------------------
// Backoff saturation (the overflow-hardening companion test).

TEST(Backoff, SaturatesAtExtremeRetryCounts) {
  BackoffConfig config;
  config.base_delay_s = 0.5;
  config.multiplier = 2.0;
  config.max_delay_s = 8.0;
  config.jitter = 0.0;
  // Naive pow-based schedules overflow to inf near retry 1024 (and a
  // shift-based one wraps at 63); the capped schedule must return the
  // cap for any huge retry index.
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 63, nullptr), 8.0);
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 1024, nullptr), 8.0);
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, INT_MAX, nullptr), 8.0);

  BackoffConfig flat = config;
  flat.multiplier = 1.0;  // non-growing schedules take the other branch
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(flat, 100000, nullptr), 0.5);

  BackoffConfig decaying = config;
  decaying.multiplier = 0.5;
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(decaying, 1, nullptr), 0.25);
  EXPECT_GE(BackoffDelaySeconds(decaying, 4096, nullptr), 0.0);
}

// ---------------------------------------------------------------------
// Cross-version run-state decoding: the v5 reader must load v1..v4
// blobs with the newer tails left at defaults. The encoders below
// replicate each historical layout byte for byte (shared prefix, then
// per-version tails), capped with the same whole-file CRC trailer.

fl::ServerRunState DistinctiveState() {
  fl::ServerRunState state;
  state.round = 9;
  state.rng_state = Rng(41).SerializeState();
  state.fault_rng_state = Rng(42).SerializeState();
  state.comm.bytes_downlink = 1111;
  state.comm.bytes_uplink = 2222;
  state.comm.messages = 33;
  state.comm.rounds = 9;
  state.faults.drops = 4;
  state.faults.retries = 6;
  state.faults.stragglers = 2;
  state.faults.rejected_uploads = 1;
  state.faults.clipped_uploads = 3;
  state.faults.quorum_misses = 1;
  state.faults.sampled_clients = 36;
  state.faults.reporting_clients = 30;
  state.faults.simulated_backoff_s = 2.75;
  state.global_params_blob = "fake-checkpoint";
  state.optimizer_blobs = {"opt-0", "opt-1"};
  state.faults.outlier_uploads = 5;
  state.faults.diverged_rounds = 1;
  state.faults.rollbacks = 1;
  state.faults.quarantine_events = 2;
  state.faults.parole_events = 1;
  state.faults.quarantined_skips = 3;
  state.reputation_blob = "rep";
  state.monitor_blob = "mon";
  state.escalated = true;
  state.faults.net_retries = 7;
  state.faults.net_timeouts = 2;
  state.faults.net_crc_drops = 1;
  state.faults.net_dedup_drops = 1;
  state.faults.net_late_drops = 2;
  state.faults.net_lost = 3;
  state.net_rng_state = Rng(43).SerializeState();
  state.faults.storage_write_failures = 4;
  state.faults.poisoned_uploads = 6;
  state.faults.suspected_uploads = 5;
  state.adversary_blob = "adv";
  state.normbound_blob = "nbw";
  return state;
}

std::string EncodeAtVersion(const fl::ServerRunState& state,
                            uint32_t version) {
  BinaryWriter writer;
  writer.WriteBytes("LTRS", 4);
  writer.WriteU32(version);
  writer.WriteU32(static_cast<uint32_t>(state.round));
  writer.WriteString(state.rng_state);
  writer.WriteString(state.fault_rng_state);
  writer.WriteI64(state.comm.bytes_downlink);
  writer.WriteI64(state.comm.bytes_uplink);
  writer.WriteI64(state.comm.messages);
  writer.WriteI64(state.comm.rounds);
  writer.WriteI64(state.faults.drops);
  writer.WriteI64(state.faults.retries);
  writer.WriteI64(state.faults.stragglers);
  writer.WriteI64(state.faults.rejected_uploads);
  writer.WriteI64(state.faults.clipped_uploads);
  writer.WriteI64(state.faults.quorum_misses);
  writer.WriteI64(state.faults.sampled_clients);
  writer.WriteI64(state.faults.reporting_clients);
  writer.WriteF64(state.faults.simulated_backoff_s);
  writer.WriteString(state.global_params_blob);
  writer.WriteU32(static_cast<uint32_t>(state.optimizer_blobs.size()));
  for (const std::string& blob : state.optimizer_blobs) {
    writer.WriteString(blob);
  }
  if (version >= 2) {
    writer.WriteI64(state.faults.outlier_uploads);
    writer.WriteI64(state.faults.diverged_rounds);
    writer.WriteI64(state.faults.rollbacks);
    writer.WriteI64(state.faults.quarantine_events);
    writer.WriteI64(state.faults.parole_events);
    writer.WriteI64(state.faults.quarantined_skips);
    writer.WriteString(state.reputation_blob);
    writer.WriteString(state.monitor_blob);
    writer.WriteU8(state.escalated ? 1 : 0);
  }
  if (version >= 3) {
    writer.WriteI64(state.faults.net_retries);
    writer.WriteI64(state.faults.net_timeouts);
    writer.WriteI64(state.faults.net_crc_drops);
    writer.WriteI64(state.faults.net_dedup_drops);
    writer.WriteI64(state.faults.net_late_drops);
    writer.WriteI64(state.faults.net_lost);
    writer.WriteString(state.net_rng_state);
  }
  if (version >= 4) {
    writer.WriteI64(state.faults.storage_write_failures);
  }
  if (version >= 5) {
    writer.WriteI64(state.faults.poisoned_uploads);
    writer.WriteI64(state.faults.suspected_uploads);
    writer.WriteString(state.adversary_blob);
    writer.WriteString(state.normbound_blob);
  }
  std::string out = writer.Take();
  AppendCrc32Trailer(&out);
  return out;
}

TEST(RunStateVersions, V1BlobDecodesWithNewerTailsAtDefaults) {
  const fl::ServerRunState state = DistinctiveState();
  fl::ServerRunState out;
  ASSERT_TRUE(fl::DecodeRunState(EncodeAtVersion(state, 1), &out).ok());
  // The shared prefix survives...
  EXPECT_EQ(out.round, state.round);
  EXPECT_EQ(out.rng_state, state.rng_state);
  EXPECT_EQ(out.fault_rng_state, state.fault_rng_state);
  EXPECT_EQ(out.comm.bytes_downlink, state.comm.bytes_downlink);
  EXPECT_EQ(out.faults.drops, state.faults.drops);
  EXPECT_EQ(out.faults.simulated_backoff_s, state.faults.simulated_backoff_s);
  EXPECT_EQ(out.global_params_blob, state.global_params_blob);
  EXPECT_EQ(out.optimizer_blobs, state.optimizer_blobs);
  // ...and every newer tail stays at its default.
  EXPECT_EQ(out.faults.outlier_uploads, 0);
  EXPECT_EQ(out.reputation_blob, "");
  EXPECT_EQ(out.monitor_blob, "");
  EXPECT_FALSE(out.escalated);
  EXPECT_EQ(out.faults.net_retries, 0);
  EXPECT_EQ(out.faults.net_lost, 0);
  EXPECT_EQ(out.net_rng_state, "");
  EXPECT_EQ(out.faults.storage_write_failures, 0);
}

TEST(RunStateVersions, V2BlobDecodesHealingTailButNotNewer) {
  const fl::ServerRunState state = DistinctiveState();
  fl::ServerRunState out;
  ASSERT_TRUE(fl::DecodeRunState(EncodeAtVersion(state, 2), &out).ok());
  EXPECT_EQ(out.faults.outlier_uploads, state.faults.outlier_uploads);
  EXPECT_EQ(out.faults.quarantined_skips, state.faults.quarantined_skips);
  EXPECT_EQ(out.reputation_blob, state.reputation_blob);
  EXPECT_EQ(out.monitor_blob, state.monitor_blob);
  EXPECT_TRUE(out.escalated);
  EXPECT_EQ(out.faults.net_retries, 0);
  EXPECT_EQ(out.net_rng_state, "");
  EXPECT_EQ(out.faults.storage_write_failures, 0);
}

TEST(RunStateVersions, V3BlobDecodesNetTailButNotStorage) {
  const fl::ServerRunState state = DistinctiveState();
  fl::ServerRunState out;
  ASSERT_TRUE(fl::DecodeRunState(EncodeAtVersion(state, 3), &out).ok());
  EXPECT_EQ(out.faults.net_retries, state.faults.net_retries);
  EXPECT_EQ(out.faults.net_lost, state.faults.net_lost);
  EXPECT_EQ(out.net_rng_state, state.net_rng_state);
  EXPECT_EQ(out.faults.storage_write_failures, 0);
}

TEST(RunStateVersions, V4BlobDecodesStorageTailButNotAdversary) {
  const fl::ServerRunState state = DistinctiveState();
  fl::ServerRunState out;
  ASSERT_TRUE(fl::DecodeRunState(EncodeAtVersion(state, 4), &out).ok());
  EXPECT_EQ(out.faults.storage_write_failures,
            state.faults.storage_write_failures);
  EXPECT_EQ(out.faults.poisoned_uploads, 0);
  EXPECT_EQ(out.faults.suspected_uploads, 0);
  EXPECT_EQ(out.adversary_blob, "");
  EXPECT_EQ(out.normbound_blob, "");
}

TEST(RunStateVersions, V5MatchesTheLiveEncoder) {
  const fl::ServerRunState state = DistinctiveState();
  // The hand-rolled v5 encoder and the live one must agree exactly —
  // this pins the layout the older-version encoders are derived from.
  EXPECT_EQ(EncodeAtVersion(state, 5), fl::EncodeRunState(state));
}

TEST(RunStateVersions, UnsupportedVersionsAreRejected) {
  const fl::ServerRunState state = DistinctiveState();
  for (uint32_t version : {0u, 6u, 999u}) {
    fl::ServerRunState out;
    const Status status =
        fl::DecodeRunState(EncodeAtVersion(state, version), &out);
    EXPECT_FALSE(status.ok()) << "version " << version;
  }
}

TEST(RunStateVersions, TrailingBytesAfterAKnownVersionAreRejected) {
  // A v1 header followed by v2-tail bytes is a corrupt file, not a
  // forward-compatible one: the reader must insist on AtEnd.
  const fl::ServerRunState state = DistinctiveState();
  std::string blob = EncodeAtVersion(state, 1);
  blob.resize(blob.size() - sizeof(uint32_t));  // strip the CRC trailer
  BinaryWriter extra;
  extra.WriteI64(777);
  blob += extra.Take();
  AppendCrc32Trailer(&blob);
  fl::ServerRunState out;
  EXPECT_FALSE(fl::DecodeRunState(blob, &out).ok());
}

// ---------------------------------------------------------------------
// Corrupted-newest snapshot fallback, driven through the filesystem:
// the read fault is injected by FaultyFileSystem (InjectBitrotOnce), so
// the test exercises the exact failure mode the Env layer models —
// read-path rot on an intact disk — rather than editing bytes on disk.

class ProbeModel : public fl::RecoveryModel {
 public:
  explicit ProbeModel(Rng* rng) {
    w_ = nn::Tensor::Variable(
        nn::Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool /*training*/, Rng* /*rng*/) override {
    nn::Matrix target(1, 1);
    target(0, 0) = static_cast<nn::Scalar>(trajectory.ground_truth.driver_id);
    fl::ForwardResult result;
    result.loss = nn::MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    return std::vector<roadnet::PointPosition>(trajectory.size(),
                                               roadnet::PointPosition{0, 0.0});
  }

 private:
  std::string name_ = "Probe";
  nn::ParameterSet params_;
  nn::Tensor w_;
};

std::unique_ptr<fl::RecoveryModel> MakeProbe(Rng* rng) {
  return std::make_unique<ProbeModel>(rng);
}

std::vector<traj::ClientDataset> MakeFallbackClients(uint64_t seed) {
  Rng rng(seed);
  roadnet::CityGridOptions grid;
  grid.rows = 6;
  grid.cols = 6;
  const roadnet::RoadNetwork net = roadnet::GenerateCityGrid(grid, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 4;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

TEST(SnapshotFallback, BitrottenNewestSnapshotFallsBackToOlderValidOne) {
  auto clients = MakeFallbackClients(71);
  fl::FederatedTrainerOptions options;
  options.rounds = 6;
  options.local_epochs = 1;
  options.learning_rate = 0.05;
  options.faults.dropout_rate = 0.2;
  options.tolerance.retry.max_retries = 1;
  options.durability.dir = "run";
  options.durability.snapshot_every = 2;
  options.durability.keep_snapshots = 3;

  FaultyFileSystem fs;  // clean RAM disk; only the targeted rot below
  options.durability.fs = &fs;
  fl::FederatedTrainer first(MakeProbe, &clients, options);
  const fl::FederatedRunResult expected = first.Run();
  const std::vector<nn::Scalar> expected_params =
      first.global_model()->params().Flatten();

  // The newest snapshot's next read returns one flipped bit. The CRC
  // must reject it and resume must fall back to the round-4 snapshot,
  // then re-run rounds 5..6 to a bitwise-identical final model.
  fs.InjectBitrotOnce(fl::SnapshotPath("run", 6));
  fl::FederatedTrainer resumed(MakeProbe, &clients, options);
  ASSERT_TRUE(resumed.ResumeFrom("run").ok());
  EXPECT_EQ(resumed.resumed_round(), 4);
  EXPECT_EQ(fs.stats().bitrot_reads, 1);

  const fl::FederatedRunResult result = resumed.Run();
  EXPECT_EQ(expected_params, resumed.global_model()->params().Flatten());
  ASSERT_EQ(result.history.size(), expected.history.size());
  for (size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_EQ(result.history[i].round, expected.history[i].round);
    EXPECT_EQ(result.history[i].mean_train_loss,
              expected.history[i].mean_train_loss);
    EXPECT_EQ(result.history[i].drops, expected.history[i].drops);
  }
  EXPECT_EQ(result.faults.drops, expected.faults.drops);
}

TEST(SnapshotFallback, AllSnapshotsRottenIsAnErrorNotAFreshStart) {
  auto clients = MakeFallbackClients(73);
  fl::FederatedTrainerOptions options;
  options.rounds = 4;
  options.local_epochs = 1;
  options.durability.dir = "run";
  options.durability.snapshot_every = 2;
  options.durability.keep_snapshots = 4;

  FaultyFileSystem fs;
  options.durability.fs = &fs;
  {
    fl::FederatedTrainer first(MakeProbe, &clients, options);
    first.Run();
  }
  fs.InjectBitrotOnce(fl::SnapshotPath("run", 2));
  fs.InjectBitrotOnce(fl::SnapshotPath("run", 4));
  fl::FederatedTrainer resumed(MakeProbe, &clients, options);
  EXPECT_FALSE(resumed.ResumeFrom("run").ok());
  EXPECT_EQ(resumed.resumed_round(), 0);
}

}  // namespace
}  // namespace lighttr
