// Tests for the wire-level federated transport: frame/message codecs
// under hostile input (truncation at every boundary, bit flips, lying
// length fields), the deterministic channel fault simulator, the
// ReliableLink retry/dedup state machine, and end-to-end federated runs
// over lossy links (quorum degradation, network-vs-client attribution).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "fl/federated_trainer.h"
#include "fl/transport/channel.h"
#include "fl/transport/link.h"
#include "fl/transport/wire.h"
#include "nn/losses.h"
#include "roadnet/generators.h"
#include "traj/generator.h"
#include "traj/workload.h"

namespace lighttr::fl::transport {
namespace {

// ---------------------------------------------------------------------
// Codec round-trips

TEST(WireCodec, ModelPullRequestRoundTrips) {
  ModelPullRequest msg;
  msg.round = 12;
  msg.client_id = 3;
  ModelPullRequest out;
  ASSERT_TRUE(DecodeModelPullRequest(EncodeModelPullRequest(msg), &out).ok());
  EXPECT_EQ(out.round, 12);
  EXPECT_EQ(out.client_id, 3);
}

TEST(WireCodec, ModelPullReplyRoundTrips) {
  ModelPullReply msg;
  msg.round = 4;
  msg.model_blob = std::string("blob\x00with\xff""bytes", 15);
  ModelPullReply out;
  ASSERT_TRUE(DecodeModelPullReply(EncodeModelPullReply(msg), &out).ok());
  EXPECT_EQ(out.round, 4);
  EXPECT_EQ(out.model_blob, msg.model_blob);
}

TEST(WireCodec, RawUpdatePushRoundTripsBitwise) {
  UpdatePush msg;
  msg.round = 7;
  msg.client_id = 2;
  msg.msg_id = PushMsgId(7, 2);
  msg.train_loss = 0.125;
  msg.kind = PayloadKind::kRawF64;
  // Values chosen to require exact f64 round-tripping.
  msg.raw = {1.0 / 3.0, -0.0, 1e-308, 123456.789012345};
  UpdatePush out;
  ASSERT_TRUE(DecodeUpdatePush(EncodeUpdatePush(msg), &out).ok());
  EXPECT_EQ(out.round, 7);
  EXPECT_EQ(out.client_id, 2);
  EXPECT_EQ(out.msg_id, PushMsgId(7, 2));
  EXPECT_DOUBLE_EQ(out.train_loss, 0.125);
  EXPECT_EQ(out.kind, PayloadKind::kRawF64);
  ASSERT_EQ(out.raw.size(), msg.raw.size());
  for (size_t i = 0; i < msg.raw.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.raw[i], msg.raw[i]);
  }
}

TEST(WireCodec, QuantizedUpdatePushRoundTrips) {
  UpdatePush msg;
  msg.round = 1;
  msg.client_id = 0;
  msg.msg_id = PushMsgId(1, 0);
  msg.kind = PayloadKind::kQuantizedInt8;
  msg.quantized.min_value = -2.5;
  msg.quantized.max_value = 3.5;
  msg.quantized.codes = {0, 17, 255, 128};
  UpdatePush out;
  ASSERT_TRUE(DecodeUpdatePush(EncodeUpdatePush(msg), &out).ok());
  EXPECT_EQ(out.kind, PayloadKind::kQuantizedInt8);
  EXPECT_DOUBLE_EQ(out.quantized.min_value, -2.5);
  EXPECT_DOUBLE_EQ(out.quantized.max_value, 3.5);
  EXPECT_EQ(out.quantized.codes, msg.quantized.codes);
}

TEST(WireCodec, PushAckRoundTrips) {
  PushAck msg;
  msg.round = 9;
  msg.client_id = 5;
  msg.msg_id = PushMsgId(9, 5);
  msg.duplicate = true;
  PushAck out;
  ASSERT_TRUE(DecodePushAck(EncodePushAck(msg), &out).ok());
  EXPECT_EQ(out.round, 9);
  EXPECT_EQ(out.client_id, 5);
  EXPECT_EQ(out.msg_id, PushMsgId(9, 5));
  EXPECT_TRUE(out.duplicate);
}

TEST(WireCodec, FrameRoundTripsAndMeasuresOverhead) {
  const std::string payload = "hello frame";
  const std::string frame = EncodeFrame(FrameType::kUpdatePush, payload);
  EXPECT_EQ(static_cast<int64_t>(frame.size()),
            kFrameOverheadBytes + static_cast<int64_t>(payload.size()));
  Frame out;
  ASSERT_TRUE(DecodeFrame(frame, &out).ok());
  EXPECT_EQ(out.type, FrameType::kUpdatePush);
  EXPECT_EQ(out.payload, payload);
}

// ---------------------------------------------------------------------
// Hostile-input battery

// A realistic frame for mutation: an UpdatePush with a payload vector.
std::string RealisticFrame() {
  UpdatePush msg;
  msg.round = 3;
  msg.client_id = 1;
  msg.msg_id = PushMsgId(3, 1);
  msg.train_loss = 0.5;
  msg.kind = PayloadKind::kRawF64;
  for (int i = 0; i < 16; ++i) msg.raw.push_back(0.25 * i);
  return EncodeFrame(FrameType::kUpdatePush, EncodeUpdatePush(msg));
}

TEST(WireFuzz, TruncationAtEveryBoundaryIsAStatusNotACrash) {
  const std::string frame = RealisticFrame();
  for (size_t len = 0; len < frame.size(); ++len) {
    Frame out;
    const Status status = DecodeFrame(frame.substr(0, len), &out);
    EXPECT_FALSE(status.ok()) << "truncation to " << len << " bytes decoded";
  }
}

TEST(WireFuzz, EverySingleBitFlipFailsTheCrc) {
  const std::string frame = RealisticFrame();
  Rng rng(99);
  // 64 seeded random single-bit flips across the whole frame (magic,
  // header, payload, CRC itself) — each must be rejected.
  for (int trial = 0; trial < 64; ++trial) {
    std::string damaged = frame;
    const auto pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(frame.size()) - 1));
    const int bit = static_cast<int>(rng.UniformInt(0, 7));
    damaged[pos] = static_cast<char>(static_cast<unsigned char>(damaged[pos]) ^
                                     (1u << bit));
    Frame out;
    EXPECT_FALSE(DecodeFrame(damaged, &out).ok())
        << "bit " << bit << " of byte " << pos << " flipped undetected";
  }
}

TEST(WireFuzz, PayloadTruncationInsideValidFrameIsAStatus) {
  // Re-frame progressively truncated payloads: the envelope is intact
  // (fresh CRC), so this exercises the message decoders' bounds checks
  // rather than the CRC.
  UpdatePush msg;
  msg.kind = PayloadKind::kRawF64;
  msg.raw = {1.0, 2.0, 3.0};
  const std::string payload = EncodeUpdatePush(msg);
  for (size_t len = 0; len < payload.size(); ++len) {
    UpdatePush out;
    EXPECT_FALSE(DecodeUpdatePush(payload.substr(0, len), &out).ok())
        << "payload truncated to " << len << " bytes decoded";
  }
}

TEST(WireFuzz, HostileElementCountIsRejectedBeforeAllocation) {
  // Hand-craft an UpdatePush payload whose element count claims 2^32-1
  // doubles but carries none: the decoder must reject the count against
  // the remaining byte budget instead of allocating 32 GiB.
  UpdatePush msg;
  msg.kind = PayloadKind::kRawF64;
  msg.raw = {1.0};
  std::string payload = EncodeUpdatePush(msg);
  // The count field is the u32 immediately after round(i32), client(i32),
  // msg_id(u64), loss(f64), kind(u8) = 25 bytes in.
  const size_t count_offset = 4 + 4 + 8 + 8 + 1;
  ASSERT_LT(count_offset + 4, payload.size());
  for (size_t i = 0; i < 4; ++i) payload[count_offset + i] = '\xff';
  UpdatePush out;
  EXPECT_FALSE(DecodeUpdatePush(payload, &out).ok());
}

TEST(WireFuzz, WrongVersionTypeAndLengthAreRejected) {
  const std::string frame = RealisticFrame();
  Frame out;

  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  // (CRC also fails, but the point is: it does not decode.)
  EXPECT_FALSE(DecodeFrame(bad_magic, &out).ok());

  // Re-encode with a hostile version / type / length by rebuilding the
  // envelope by hand so the CRC is *valid* — only the field is hostile.
  auto reframe = [&](uint8_t version, uint8_t type, uint32_t length_delta) {
    Frame parsed;
    EXPECT_TRUE(DecodeFrame(frame, &parsed).ok());
    std::string raw;
    raw += "LTRF";
    raw += static_cast<char>(version);
    raw += static_cast<char>(type);
    const auto len =
        static_cast<uint32_t>(parsed.payload.size()) + length_delta;
    for (int i = 0; i < 4; ++i) {
      raw += static_cast<char>((len >> (8 * i)) & 0xff);
    }
    raw += parsed.payload;
    AppendCrc32Trailer(&raw);
    return raw;
  };
  EXPECT_FALSE(DecodeFrame(reframe(kWireVersion + 1, 3, 0), &out).ok())
      << "future wire version accepted";
  EXPECT_FALSE(DecodeFrame(reframe(kWireVersion, 200, 0), &out).ok())
      << "unknown frame type accepted";
  EXPECT_FALSE(DecodeFrame(reframe(kWireVersion, 3, 5), &out).ok())
      << "length field lying long accepted";
  EXPECT_TRUE(DecodeFrame(reframe(kWireVersion, 3, 0), &out).ok())
      << "control re-framing must decode (the harness itself works)";
}

// ---------------------------------------------------------------------
// SimulatedChannel

TEST(SimulatedChannel, CleanChannelIsDrawFreeAndLossless) {
  ChannelFaultConfig config;  // all rates zero
  EXPECT_FALSE(config.enabled());
  SimulatedChannel channel(config);
  const std::string frame = RealisticFrame();
  // Null rng is legal on a clean channel: zero rates consume no draws.
  const std::vector<Delivery> arrived = channel.Transmit(frame, nullptr);
  ASSERT_EQ(arrived.size(), 1u);
  EXPECT_EQ(arrived[0].bytes, frame);
  EXPECT_FALSE(arrived[0].late);
}

TEST(SimulatedChannel, SameSeedSameWeather) {
  ChannelFaultConfig config;
  config.drop_rate = 0.3;
  config.duplicate_rate = 0.2;
  config.corrupt_rate = 0.2;
  config.reorder_rate = 0.2;
  config.delay_rate = 0.1;
  const std::string frame = RealisticFrame();
  auto run = [&]() {
    SimulatedChannel channel(config);
    Rng rng(1234);
    std::vector<std::pair<std::string, bool>> trace;
    for (int i = 0; i < 200; ++i) {
      for (const Delivery& d : channel.Transmit(frame, &rng)) {
        trace.emplace_back(d.bytes, d.late);
      }
    }
    for (const Delivery& d : channel.Flush()) {
      trace.emplace_back(d.bytes, d.late);
    }
    return trace;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  // The gauntlet actually fired: not every transmit arrived verbatim.
  size_t intact = 0;
  for (const auto& [bytes, late] : a) intact += (bytes == frame && !late);
  EXPECT_LT(intact, a.size());
  EXPECT_GT(a.size(), 0u);
}

TEST(SimulatedChannel, FullDropDeliversNothing) {
  ChannelFaultConfig config;
  config.drop_rate = 1.0;
  SimulatedChannel channel(config);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(channel.Transmit(RealisticFrame(), &rng).empty());
  }
}

TEST(SimulatedChannel, ReorderHoldsBackThenReleases) {
  ChannelFaultConfig config;
  config.reorder_rate = 1.0;
  SimulatedChannel channel(config);
  Rng rng(6);
  // Every frame is held back and released ahead of the *next* transmit.
  EXPECT_TRUE(channel.Transmit("frame-a", &rng).empty());
  const std::vector<Delivery> second = channel.Transmit("frame-b", &rng);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].bytes, "frame-a");
  const std::vector<Delivery> flushed = channel.Flush();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].bytes, "frame-b");
}

// ---------------------------------------------------------------------
// ReliableLink

// One round-shared pull-reply frame for link tests.
std::string PullReplyFrame(int round, const std::string& blob) {
  ModelPullReply reply;
  reply.round = round;
  reply.model_blob = blob;
  return EncodeFrame(FrameType::kModelPullReply, EncodeModelPullReply(reply));
}

UpdatePush MakePush(int round, int client, std::vector<double> values) {
  UpdatePush push;
  push.round = round;
  push.client_id = client;
  push.msg_id = PushMsgId(round, client);
  push.train_loss = 0.25;
  push.kind = PayloadKind::kRawF64;
  push.raw = std::move(values);
  return push;
}

TEST(ReliableLink, CleanLinkExchangesWithExactStats) {
  const std::string reply_frame = PullReplyFrame(2, "the-global-model");
  ChannelFaultConfig clean;
  BackoffConfig retry;
  ReliableLink link(clean, retry, /*round=*/2, /*client_id=*/1, &reply_frame,
                    /*rng=*/nullptr);

  Result<std::string> blob = link.PullModelBlob();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob.value(), "the-global-model");

  Result<std::vector<double>> received =
      link.PushUpdate(MakePush(2, 1, {1.0, -2.0, 3.0}));
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value(), (std::vector<double>{1.0, -2.0, 3.0}));

  const LinkStats& stats = link.stats();
  EXPECT_EQ(stats.uplink_frames, 2);    // pull request + push
  EXPECT_EQ(stats.downlink_frames, 2);  // pull reply + ack
  EXPECT_EQ(stats.downlink_bytes,
            static_cast<int64_t>(reply_frame.size()) +
                static_cast<int64_t>(
                    EncodeFrame(FrameType::kPushAck, EncodePushAck(PushAck{}))
                        .size()));
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.timeouts, 0);
  EXPECT_EQ(stats.crc_drops, 0);
  EXPECT_EQ(stats.dedup_drops, 0);
  EXPECT_DOUBLE_EQ(stats.backoff_s, 0.0);
}

TEST(ReliableLink, DuplicatedPushIsDeliveredExactlyOnce) {
  const std::string reply_frame = PullReplyFrame(0, "m");
  ChannelFaultConfig faults;
  faults.duplicate_rate = 1.0;  // every frame arrives twice
  BackoffConfig retry;
  Rng rng(77);
  ReliableLink link(faults, retry, 0, 0, &reply_frame, &rng);
  ASSERT_TRUE(link.PullModelBlob().ok());
  Result<std::vector<double>> received =
      link.PushUpdate(MakePush(0, 0, {4.0, 5.0}));
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value(), (std::vector<double>{4.0, 5.0}));
  // The second copy of the push hit server-side dedup: absorbed, acked
  // as duplicate, payload delivered exactly once.
  EXPECT_GE(link.stats().dedup_drops, 1);
}

TEST(ReliableLink, CorruptionIsRetriedAndAttributedToTheNetwork) {
  const std::string reply_frame = PullReplyFrame(0, "model-bytes");
  ChannelFaultConfig faults;
  faults.corrupt_rate = 0.6;  // most frames damaged; retries get through
  BackoffConfig retry;
  retry.max_retries = 64;  // ample budget: this test is about attribution
  Rng rng(11);
  ReliableLink link(faults, retry, 0, 0, &reply_frame, &rng);
  Result<std::string> blob = link.PullModelBlob();
  ASSERT_TRUE(blob.ok());
  // The blob that survives is *intact* — damaged frames were discarded
  // wholesale, never partially accepted.
  EXPECT_EQ(blob.value(), "model-bytes");
  ASSERT_TRUE(link.PushUpdate(MakePush(0, 0, {1.0})).ok());
  const LinkStats& stats = link.stats();
  EXPECT_GT(stats.crc_drops, 0);
  EXPECT_GT(stats.retries, 0);
  EXPECT_GT(stats.backoff_s, 0.0);
}

TEST(ReliableLink, DeadLinkExhaustsRetryBudgetAndReportsDown) {
  const std::string reply_frame = PullReplyFrame(0, "m");
  ChannelFaultConfig faults;
  faults.drop_rate = 1.0;
  BackoffConfig retry;
  retry.max_retries = 3;
  Rng rng(13);
  ReliableLink link(faults, retry, 0, 0, &reply_frame, &rng);
  Result<std::string> blob = link.PullModelBlob();
  EXPECT_FALSE(blob.ok());
  EXPECT_EQ(link.stats().timeouts, 4);  // initial attempt + 3 retries
  EXPECT_EQ(link.stats().retries, 3);
}

TEST(ReliableLink, ReorderingLeaksStaleFramesAcrossExchangesHarmlessly) {
  // With reordering forced on, frames from the pull exchange straggle
  // into the push exchange (and vice versa). The server endpoint and
  // reply-type check must discard the strays — charged to the network —
  // while retries carry both exchanges to completion with the payload
  // delivered exactly once.
  const std::string reply_frame = PullReplyFrame(0, "the-model");
  ChannelFaultConfig faults;
  faults.reorder_rate = 1.0;
  BackoffConfig retry;
  retry.max_retries = 16;
  Rng rng(19);
  ReliableLink link(faults, retry, 0, 0, &reply_frame, &rng);
  Result<std::string> blob = link.PullModelBlob();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob.value(), "the-model");
  Result<std::vector<double>> received =
      link.PushUpdate(MakePush(0, 0, {6.0, 7.0}));
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value(), (std::vector<double>{6.0, 7.0}));
  EXPECT_GT(link.stats().retries, 0);
}

// ---------------------------------------------------------------------
// End-to-end over lossy links

class StubModel : public RecoveryModel {
 public:
  explicit StubModel(Rng* rng) {
    w_ = nn::Tensor::Variable(
        nn::Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                        bool /*training*/, Rng* /*rng*/) override {
    nn::Matrix target(1, 1);
    target(0, 0) = static_cast<nn::Scalar>(trajectory.ground_truth.driver_id);
    ForwardResult result;
    result.loss = nn::MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    return std::vector<roadnet::PointPosition>(trajectory.size(),
                                               roadnet::PointPosition{0, 0.0});
  }

  double weight() const { return w_.value()(0, 0); }

 private:
  std::string name_ = "Stub";
  nn::ParameterSet params_;
  nn::Tensor w_;
};

std::vector<traj::ClientDataset> MakeClients(int n, uint64_t seed) {
  Rng rng(seed);
  roadnet::CityGridOptions options;
  options.rows = 6;
  options.cols = 6;
  static roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 5;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = n;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

std::unique_ptr<RecoveryModel> MakeStub(Rng* rng) {
  return std::make_unique<StubModel>(rng);
}

TEST(TransportEndToEnd, MinorityDeadLinksDegradeToQuorum) {
  auto clients = MakeClients(4, 31);
  FederatedTrainerOptions options;
  options.rounds = 3;
  options.local_epochs = 1;
  options.tolerance.quorum_fraction = 0.5;
  // Client 0's link is 100% loss in both directions; everyone else is
  // clean. The round must complete on the surviving 3/4 cohort.
  ChannelFaultConfig dead;
  dead.drop_rate = 1.0;
  options.transport.link_overrides.emplace_back(0, dead);
  FederatedTrainer trainer(MakeStub, &clients, options);
  const FederatedRunResult result = trainer.Run();

  EXPECT_EQ(result.faults.net_lost, 3);  // client 0, every round
  EXPECT_GT(result.faults.net_timeouts, 0);
  EXPECT_EQ(result.faults.quorum_misses, 0);
  for (const RoundRecord& record : result.history) {
    EXPECT_TRUE(record.quorum_met);
    EXPECT_EQ(record.sampled, 4);
    EXPECT_EQ(record.reporting, 3);
    EXPECT_EQ(record.net_lost, 1);
  }
  // A dead link is a network fact, not client misbehavior: no drops
  // (dropout faults), no rejected uploads charged anywhere.
  EXPECT_EQ(result.faults.drops, 0);
  EXPECT_EQ(result.faults.rejected_uploads, 0);
}

TEST(TransportEndToEnd, WireCorruptionNeverReachesAggregationOrScreening) {
  auto clients = MakeClients(3, 33);
  FederatedTrainerOptions options;
  options.rounds = 3;
  options.local_epochs = 1;
  options.transport.channel.corrupt_rate = 0.4;
  options.transport.retry.max_retries = 64;  // damage recovers via retry
  FederatedTrainer trainer(MakeStub, &clients, options);
  const FederatedRunResult result = trainer.Run();

  // The hostile wire shows up in network telemetry...
  EXPECT_GT(result.faults.net_crc_drops, 0);
  EXPECT_GT(result.faults.net_retries, 0);
  // ...but every payload that reached aggregation survived its CRC, so
  // screening saw only intact uploads and every client reported.
  EXPECT_EQ(result.faults.rejected_uploads, 0);
  EXPECT_EQ(result.faults.net_lost, 0);
  for (const RoundRecord& record : result.history) {
    EXPECT_EQ(record.reporting, record.sampled);
    EXPECT_TRUE(record.quorum_met);
  }
}

TEST(TransportEndToEnd, ChannelSeedChangesWeatherNotTraining) {
  // Changing the channel seed re-rolls the network's faults but must
  // not perturb model init / sampling / training draws: on a clean
  // channel the trained model is bitwise identical across seeds.
  auto run = [](uint64_t channel_seed) {
    auto clients = MakeClients(3, 35);
    FederatedTrainerOptions options;
    options.rounds = 2;
    options.local_epochs = 1;
    options.transport.channel_seed = channel_seed;
    FederatedTrainer trainer(MakeStub, &clients, options);
    trainer.Run();
    return trainer.global_model()->params().Serialize();
  };
  EXPECT_EQ(run(1), run(2));
}

TEST(TransportEndToEnd, LossyRunIsReproducibleFromTheChannelSeed) {
  auto run = [] {
    auto clients = MakeClients(4, 37);
    FederatedTrainerOptions options;
    options.rounds = 3;
    options.local_epochs = 1;
    options.transport.channel.drop_rate = 0.15;
    options.transport.channel.corrupt_rate = 0.2;
    options.transport.channel.duplicate_rate = 0.1;
    options.transport.retry.max_retries = 32;
    FederatedTrainer trainer(MakeStub, &clients, options);
    const FederatedRunResult result = trainer.Run();
    return std::make_pair(trainer.global_model()->params().Serialize(),
                          result.faults.net_crc_drops +
                              result.faults.net_retries * 1000);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace lighttr::fl::transport
