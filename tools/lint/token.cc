#include "lint/token.h"

#include <cctype>
#include <filesystem>

namespace lighttr::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// String-literal encoding prefixes (u8R etc. => raw).
bool IsStringPrefix(const std::string& ident, bool* raw) {
  if (ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
      ident == "u8R") {
    *raw = true;
    return true;
  }
  if (ident == "L" || ident == "u" || ident == "U" || ident == "u8") {
    *raw = false;
    return true;
  }
  return false;
}

}  // namespace

TokenizedFile Tokenize(const SourceFile& file) {
  TokenizedFile out;
  out.source = &file;
  out.norm_path =
      std::filesystem::path(file.path).lexically_normal().generic_string();

  const std::string& s = file.content;
  int line = 1;
  int brace_depth = 0;
  bool preproc = false;        // inside a preprocessor directive
  bool line_has_token = false; // a non-ws char was seen on this line

  auto comment_at = [&out](int at_line) -> std::string& {
    if (out.comments.size() < static_cast<size_t>(at_line)) {
      out.comments.resize(at_line);
    }
    return out.comments[at_line - 1];
  };

  auto push = [&](TokenKind kind, std::string text, int at_line) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = at_line;
    t.brace_depth = brace_depth;
    t.preproc = preproc;
    out.tokens.push_back(std::move(t));
  };

  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    const char c = s[i];
    const char next = i + 1 < n ? s[i + 1] : '\0';

    if (c == '\n') {
      // A directive continues onto the next line only via a trailing
      // backslash (whitespace after the backslash would end it too, but
      // clang-format never emits that and the scanner need not care).
      preproc = preproc && i > 0 && s[i - 1] == '\\';
      ++line;
      line_has_token = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Comments -> the per-line comment channel, never the token stream.
    if (c == '/' && next == '/') {
      i += 2;
      std::string& text = comment_at(line);
      while (i < n && s[i] != '\n') text += s[i++];
      continue;
    }
    if (c == '/' && next == '*') {
      i += 2;
      while (i < n && !(s[i] == '*' && i + 1 < n && s[i + 1] == '/')) {
        if (s[i] == '\n') {
          ++line;
        } else {
          comment_at(line) += s[i];
        }
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }

    if (!line_has_token && c == '#') {
      preproc = true;
    }
    line_has_token = true;

    // Identifier — possibly a string/char literal encoding prefix.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(s[j])) ++j;
      std::string ident = s.substr(i, j - i);
      bool raw = false;
      if (j < n && s[j] == '"' && IsStringPrefix(ident, &raw)) {
        if (raw) {
          // R"delim( ... )delim"
          size_t k = j + 1;
          std::string delim;
          while (k < n && s[k] != '(') delim += s[k++];
          ++k;  // past '('
          const std::string close = ")" + delim + "\"";
          const int start_line = line;
          std::string content;
          while (k < n && s.compare(k, close.size(), close) != 0) {
            if (s[k] == '\n') ++line;
            content += s[k++];
          }
          push(TokenKind::kString, std::move(content), start_line);
          i = k < n ? k + close.size() : n;
          continue;
        }
        // Prefixed ordinary string: fall through to the string scanner
        // below by repositioning at the quote.
        i = j;
        continue;
      }
      if (j < n && s[j] == '\'' &&
          (ident == "L" || ident == "u" || ident == "U" || ident == "u8")) {
        i = j;  // prefixed char literal
        continue;
      }
      push(TokenKind::kIdent, std::move(ident), line);
      i = j;
      continue;
    }

    // Number (digits, hex, floats, digit separators, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(next)))) {
      size_t j = i;
      std::string num;
      while (j < n) {
        const char d = s[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          num += d;
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = s[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            num += d;
            ++j;
            continue;
          }
        }
        break;
      }
      push(TokenKind::kNumber, std::move(num), line);
      i = j;
      continue;
    }

    // String literal.
    if (c == '"') {
      const int start_line = line;
      std::string content;
      ++i;
      while (i < n && s[i] != '"') {
        if (s[i] == '\\' && i + 1 < n) {
          content += s[i];
          content += s[i + 1];
          i += 2;
          continue;
        }
        if (s[i] == '\n') ++line;  // ill-formed, but keep line counts sane
        content += s[i++];
      }
      if (i < n) ++i;  // closing quote
      push(TokenKind::kString, std::move(content), start_line);
      continue;
    }

    // Character literal.
    if (c == '\'') {
      std::string content;
      ++i;
      while (i < n && s[i] != '\'') {
        if (s[i] == '\\' && i + 1 < n) {
          content += s[i];
          content += s[i + 1];
          i += 2;
          continue;
        }
        content += s[i++];
      }
      if (i < n) ++i;
      push(TokenKind::kChar, std::move(content), line);
      continue;
    }

    // Punctuation: munch `::` and `->`, else single char.
    if (c == ':' && next == ':') {
      push(TokenKind::kPunct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && next == '>') {
      push(TokenKind::kPunct, "->", line);
      i += 2;
      continue;
    }
    push(TokenKind::kPunct, std::string(1, c), line);
    if (c == '{') ++brace_depth;
    if (c == '}' && brace_depth > 0) --brace_depth;
    ++i;
  }

  if (out.comments.size() < static_cast<size_t>(line)) {
    out.comments.resize(line);
  }
  return out;
}

}  // namespace lighttr::lint
