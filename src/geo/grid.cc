#include "geo/grid.h"

#include <algorithm>
#include <cmath>

namespace lighttr::geo {

GridSpec::GridSpec(GeoPoint min_corner, GeoPoint max_corner,
                   double cell_meters)
    : min_corner_(min_corner),
      max_corner_(max_corner),
      cell_meters_(cell_meters) {
  LIGHTTR_CHECK_GT(cell_meters, 0.0);
  LIGHTTR_CHECK_LT(min_corner.lat, max_corner.lat);
  LIGHTTR_CHECK_LT(min_corner.lng, max_corner.lng);

  const double lat_extent_m = HaversineMeters(
      min_corner_, GeoPoint{max_corner_.lat, min_corner_.lng});
  const double lng_extent_m = HaversineMeters(
      min_corner_, GeoPoint{min_corner_.lat, max_corner_.lng});
  rows_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(lat_extent_m / cell_meters_)));
  cols_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(lng_extent_m / cell_meters_)));
  lat_step_ = (max_corner_.lat - min_corner_.lat) / rows_;
  lng_step_ = (max_corner_.lng - min_corner_.lng) / cols_;
}

GridCell GridSpec::CellOf(const GeoPoint& p) const {
  auto clamp_idx = [](double v, int32_t n) {
    const int32_t i = static_cast<int32_t>(std::floor(v));
    return std::clamp(i, 0, n - 1);
  };
  return {clamp_idx((p.lng - min_corner_.lng) / lng_step_, cols_),
          clamp_idx((p.lat - min_corner_.lat) / lat_step_, rows_)};
}

GeoPoint GridSpec::CellCenter(const GridCell& cell) const {
  return {min_corner_.lat + (cell.y + 0.5) * lat_step_,
          min_corner_.lng + (cell.x + 0.5) * lng_step_};
}

int64_t TimeBin(double t, double t0, double eps) {
  LIGHTTR_CHECK_GT(eps, 0.0);
  return static_cast<int64_t>(std::floor((t - t0) / eps));
}

}  // namespace lighttr::geo
