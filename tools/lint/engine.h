// Internal machinery shared by the lint rule passes. Not part of the
// public linter.h API: rule files and the driver include this, tests
// and the CLI stick to linter.h.
//
// The engine hands every pass the same Context: the full tokenized
// input set (cross-file passes walk all of it; per-file passes loop),
// the suppression tracker (so each `allow()` consumption is recorded
// for the unused-suppression audit), and the output diagnostic sink.
#ifndef LIGHTTR_TOOLS_LINT_ENGINE_H_
#define LIGHTTR_TOOLS_LINT_ENGINE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lint/linter.h"
#include "lint/token.h"

namespace lighttr::lint {

// ---------------------------------------------------------------------------
// Suppressions: `lighttr-lint: allow(<rule-a>, <rule-b>)` in a comment
// suppresses those rules on that line. Every entry is tracked; entries
// that consume zero diagnostics become unused-suppression errors.
// Entries whose name is not a plain [a-z0-9-] word (documentation
// placeholders like `allow(<rule>)`) are ignored entirely.
// ---------------------------------------------------------------------------

class Suppressions {
 public:
  explicit Suppressions(const std::vector<TokenizedFile>& files);

  /// True when `rule` is allowed on `line` (1-based) of file
  /// `file_index`; marks the matching entry as used.
  bool Consume(size_t file_index, int line, const std::string& rule);

  /// Appends an unused-suppression diagnostic for every entry that
  /// never suppressed anything (including entries naming unknown
  /// rules, which can never fire).
  void ReportUnused(const std::vector<TokenizedFile>& files,
                    std::vector<Diagnostic>* diagnostics) const;

 private:
  struct Entry {
    size_t file = 0;
    int line = 0;  // 1-based
    std::string rule;
    bool used = false;
  };
  std::vector<Entry> entries_;
};

// ---------------------------------------------------------------------------
// Pass context.
// ---------------------------------------------------------------------------

struct Context {
  const std::vector<TokenizedFile>& files;
  Suppressions* suppressions;
  std::vector<Diagnostic>* diagnostics;

  /// Emits a diagnostic unless an allow() on that line consumes it.
  void Report(size_t file_index, int line, const std::string& rule,
              std::string message);
};

// Pass entry points (one translation unit each).
void RunFileRules(Context* ctx);         // rules_file.cc
void RunDeterminismRules(Context* ctx);  // rules_determinism.cc
void RunCrossTuRules(Context* ctx);      // rules_crosstu.cc

// ---------------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------------

constexpr size_t kNpos = static_cast<size_t>(-1);

inline bool IsIdent(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokenKind::kIdent && t[i].text == text;
}

inline bool IsPunct(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokenKind::kPunct && t[i].text == text;
}

/// Identifier immediately invoked: `name(`.
inline bool IsCall(const std::vector<Token>& t, size_t i) {
  return i < t.size() && t[i].kind == TokenKind::kIdent &&
         IsPunct(t, i + 1, "(");
}

/// True when t[i] is reached through member access (`x.f`, `p->f`).
inline bool IsMemberAccess(const std::vector<Token>& t, size_t i) {
  return i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"));
}

/// True when t[i] is preceded by a `::` qualifier.
inline bool IsScopeQualified(const std::vector<Token>& t, size_t i) {
  return i > 0 && IsPunct(t, i - 1, "::");
}

/// True when t[i] is preceded by exactly `std::`.
inline bool IsStdQualified(const std::vector<Token>& t, size_t i) {
  return i >= 2 && IsPunct(t, i - 1, "::") && IsIdent(t, i - 2, "std");
}

/// A free-function call site for `t[i]`: either unqualified or
/// std::-qualified, never a member access or a foreign qualification.
inline bool IsFreeOrStdCall(const std::vector<Token>& t, size_t i) {
  if (!IsCall(t, i)) return false;
  if (IsMemberAccess(t, i)) return false;
  if (IsScopeQualified(t, i)) return IsStdQualified(t, i);
  return true;
}

/// Index of the delimiter closing t[open] (one of `()`, `[]`, `{}`,
/// `<>` by text), or kNpos when unbalanced. For `<>` the scan bails at
/// `;`, `{` or `}` so a stray comparison never eats the file.
size_t MatchingDelim(const std::vector<Token>& t, size_t open,
                     const char* open_text, const char* close_text);

// ---------------------------------------------------------------------------
// Path helpers (paths are lexically normal generic strings).
// ---------------------------------------------------------------------------

std::string NormalizedPath(const std::string& path);
bool PathEndsWith(const std::string& normalized, const std::string& suffix);
bool PathContainsDir(const std::string& normalized, const std::string& dir);

/// The directories under the determinism contract: src/fl, src/nn,
/// src/common (see DESIGN.md §12).
bool InDeterminismScope(const std::string& normalized);

}  // namespace lighttr::lint

#endif  // LIGHTTR_TOOLS_LINT_ENGINE_H_
