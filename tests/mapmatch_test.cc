// Tests for the HMM map matcher (Sec. IV-B1 preprocessing).
#include <gtest/gtest.h>

#include "mapmatch/hmm_map_matcher.h"
#include "roadnet/generators.h"
#include "traj/generator.h"

namespace lighttr::mapmatch {
namespace {

roadnet::RoadNetwork TestCity(uint64_t seed = 41) {
  Rng rng(seed);
  roadnet::CityGridOptions options;
  options.rows = 7;
  options.cols = 7;
  return roadnet::GenerateCityGrid(options, &rng);
}

TEST(HmmMapMatcher, EmptyTrajectoryRejected) {
  const roadnet::RoadNetwork net = TestCity();
  const roadnet::SegmentIndex index(net);
  const HmmMapMatcher matcher(index, {});
  EXPECT_FALSE(matcher.Match(traj::RawTrajectory{}).ok());
}

TEST(HmmMapMatcher, FarAwayPointRejected) {
  const roadnet::RoadNetwork net = TestCity();
  const roadnet::SegmentIndex index(net);
  HmmOptions options;
  options.candidate_radius_m = 50.0;
  options.radius_doublings = 0;
  const HmmMapMatcher matcher(index, options);
  traj::RawTrajectory raw;
  raw.points.push_back({{10.0, 10.0}, 0.0});  // nowhere near the city
  const auto result = matcher.Match(raw);
  ASSERT_FALSE(result.ok());
  // The ingestion boundary (traj::ValidateTrajectory) rejects far
  // out-of-grid points as malformed input before any candidate search.
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(HmmMapMatcher, NoiseFreeTrajectoryRecoveredClosely) {
  const roadnet::RoadNetwork net = TestCity();
  const roadnet::SegmentIndex index(net);
  const traj::TrajectoryGenerator generator(net);
  Rng rng(42);
  auto matched = generator.Generate({}, roadnet::kInvalidVertex, &rng);
  ASSERT_TRUE(matched.ok());
  const traj::RawTrajectory raw =
      traj::ToRawTrajectory(net, matched.value(), 0.0, nullptr);

  const HmmMapMatcher matcher(index, {});
  auto result = matcher.Match(raw);
  ASSERT_TRUE(result.ok());
  const traj::MatchedTrajectory& recovered = result.value();
  ASSERT_EQ(recovered.size(), matched.value().size());
  // Every matched point must sit within a few meters of the truth
  // (segment ids can differ on twins/endpoints; geometry must not).
  for (size_t i = 0; i < recovered.size(); ++i) {
    const double d = geo::HaversineMeters(
        net.PositionToPoint(recovered.points[i].position),
        net.PositionToPoint(matched.value().points[i].position));
    EXPECT_LT(d, 5.0) << "point " << i;
  }
}

TEST(HmmMapMatcher, AssignsTimeBins) {
  const roadnet::RoadNetwork net = TestCity();
  const roadnet::SegmentIndex index(net);
  const traj::TrajectoryGenerator generator(net);
  Rng rng(43);
  auto matched = generator.Generate({}, roadnet::kInvalidVertex, &rng);
  ASSERT_TRUE(matched.ok());
  const traj::RawTrajectory raw =
      traj::ToRawTrajectory(net, matched.value(), 5.0, &rng);
  const HmmMapMatcher matcher(index, {});
  auto result = matcher.Match(raw);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result.value().size(); ++i) {
    EXPECT_EQ(result.value().points[i].tid, static_cast<int64_t>(i));
  }
}

// Property: matching stays within a noise-dependent error bound.
class HmmNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(HmmNoiseSweep, ErrorBoundedByNoise) {
  const double noise = GetParam();
  const roadnet::RoadNetwork net = TestCity(44);
  const roadnet::SegmentIndex index(net);
  const traj::TrajectoryGenerator generator(net);
  Rng rng(45);
  HmmOptions options;
  options.emission_sigma_m = std::max(10.0, noise);
  const HmmMapMatcher matcher(index, options);

  double total_error = 0.0;
  int points = 0;
  for (int trial = 0; trial < 5; ++trial) {
    auto matched = generator.Generate({}, roadnet::kInvalidVertex, &rng);
    ASSERT_TRUE(matched.ok());
    const traj::RawTrajectory raw =
        traj::ToRawTrajectory(net, matched.value(), noise, &rng);
    auto result = matcher.Match(raw);
    ASSERT_TRUE(result.ok());
    for (size_t i = 0; i < result.value().size(); ++i) {
      total_error += geo::HaversineMeters(
          net.PositionToPoint(result.value().points[i].position),
          net.PositionToPoint(matched.value().points[i].position));
      ++points;
    }
  }
  // Matched error should be of the order of the GPS noise, not the
  // candidate radius.
  EXPECT_LT(total_error / points, 3.0 * noise + 20.0);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, HmmNoiseSweep,
                         ::testing::Values(5.0, 15.0, 30.0, 50.0));

}  // namespace
}  // namespace lighttr::mapmatch
