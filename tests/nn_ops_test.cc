// Forward-value and behaviour tests for the nn ops, FLOP accounting,
// NoGradScope, dropout semantics, and softmax properties.
#include <gtest/gtest.h>

#include <cmath>

#include "common/finite.h"
#include "nn/flops.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace lighttr::nn {
namespace {

Matrix M2x2(Scalar a, Scalar b, Scalar c, Scalar d) {
  Matrix m(2, 2);
  m(0, 0) = a;
  m(0, 1) = b;
  m(1, 0) = c;
  m(1, 1) = d;
  return m;
}

TEST(Ops, AddSubMulValues) {
  const Tensor a = Tensor::Constant(M2x2(1, 2, 3, 4));
  const Tensor b = Tensor::Constant(M2x2(5, 6, 7, 8));
  EXPECT_DOUBLE_EQ(Add(a, b).value()(1, 1), 12.0);
  EXPECT_DOUBLE_EQ(Sub(a, b).value()(0, 0), -4.0);
  EXPECT_DOUBLE_EQ(Mul(a, b).value()(1, 0), 21.0);
  EXPECT_DOUBLE_EQ(Scale(a, 0.5).value()(0, 1), 1.0);
}

TEST(Ops, MatMulKnownProduct) {
  const Tensor a = Tensor::Constant(M2x2(1, 2, 3, 4));
  const Tensor b = Tensor::Constant(M2x2(5, 6, 7, 8));
  const Matrix c = MatMul(a, b).value();
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Ops, AddRowBroadcast) {
  const Tensor x = Tensor::Constant(M2x2(1, 2, 3, 4));
  Matrix bias(1, 2);
  bias(0, 0) = 10;
  bias(0, 1) = 20;
  const Matrix y = AddRowBroadcast(x, Tensor::Constant(bias)).value();
  EXPECT_DOUBLE_EQ(y(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(y(1, 1), 24.0);
}

TEST(Ops, ActivationValues) {
  Matrix m(1, 3);
  m(0, 0) = 0.0;
  m(0, 1) = -2.0;
  m(0, 2) = 3.0;
  const Tensor x = Tensor::Constant(m);
  EXPECT_DOUBLE_EQ(Sigmoid(x).value()(0, 0), 0.5);
  EXPECT_NEAR(Tanh(x).value()(0, 2), std::tanh(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(Relu(x).value()(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(Relu(x).value()(0, 2), 3.0);
}

TEST(Ops, ConcatAndSlice) {
  const Tensor a = Tensor::Constant(M2x2(1, 2, 3, 4));
  const Tensor b = Tensor::Constant(M2x2(5, 6, 7, 8));
  const Tensor cat = ConcatCols(a, b);
  EXPECT_EQ(cat.cols(), 4u);
  EXPECT_DOUBLE_EQ(cat.value()(1, 2), 7.0);
  const Tensor rows = ConcatRows({a, b});
  EXPECT_EQ(rows.rows(), 4u);
  EXPECT_DOUBLE_EQ(rows.value()(3, 0), 7.0);
  EXPECT_DOUBLE_EQ(SliceCols(cat, 1, 2).value()(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(SliceRows(rows, 2, 1).value()(0, 1), 6.0);
}

TEST(Ops, TransposeValues) {
  const Tensor a = Tensor::Constant(M2x2(1, 2, 3, 4));
  const Matrix t = Transpose(a).value();
  EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 2.0);
}

TEST(Ops, SoftmaxRowsSumToOneAndOrder) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(0, 2) = 3.0;
  m(1, 0) = -1000.0;  // numerical stability check
  m(1, 1) = -1001.0;
  m(1, 2) = -1002.0;
  const Matrix p = SoftmaxRows(Tensor::Constant(m)).value();
  for (size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) sum += p(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(p(0, 2), p(0, 1));
  EXPECT_GT(p(1, 0), p(1, 2));
  EXPECT_FALSE(lighttr::IsNan(p(1, 0)));
}

TEST(Ops, SumAndMean) {
  const Tensor a = Tensor::Constant(M2x2(1, 2, 3, 4));
  EXPECT_DOUBLE_EQ(Sum(a).ScalarValue(), 10.0);
  EXPECT_DOUBLE_EQ(Mean(a).ScalarValue(), 2.5);
}

TEST(Ops, DropoutIdentityWhenNotTraining) {
  Rng rng(1);
  const Tensor a = Tensor::Constant(M2x2(1, 2, 3, 4));
  const Tensor out = Dropout(a, 0.5, /*training=*/false, &rng);
  EXPECT_DOUBLE_EQ(out.value()(1, 1), 4.0);
}

TEST(Ops, DropoutPreservesExpectation) {
  Rng rng(2);
  Matrix ones = Matrix::Full(1, 2000, 1.0);
  const Tensor a = Tensor::Constant(std::move(ones));
  const Tensor out = Dropout(a, 0.4, /*training=*/true, &rng);
  double sum = 0.0;
  int zeros = 0;
  for (size_t i = 0; i < out.value().size(); ++i) {
    sum += out.value().data()[i];
    zeros += out.value().data()[i] == 0.0 ? 1 : 0;
  }
  EXPECT_NEAR(sum / 2000.0, 1.0, 0.06);        // inverted scaling
  EXPECT_NEAR(zeros / 2000.0, 0.4, 0.05);      // drop rate
}

TEST(Ops, EmbeddingLookupGathersRows) {
  Matrix table(3, 2);
  table(0, 0) = 1;
  table(1, 0) = 2;
  table(2, 0) = 3;
  const Tensor t = Tensor::Constant(table);
  const Matrix out = EmbeddingLookup(t, {2, 0, 2}).value();
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_DOUBLE_EQ(out(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(out(2, 0), 3.0);
}

TEST(Ops, CandidateLogitsMatchesFullProjection) {
  Rng rng(3);
  const Tensor h = Tensor::Constant(Matrix::RandomUniform(1, 4, 1.0, &rng));
  const Tensor w = Tensor::Constant(Matrix::RandomUniform(4, 7, 1.0, &rng));
  const Tensor b = Tensor::Constant(Matrix::RandomUniform(1, 7, 1.0, &rng));
  const Matrix full = AddRowBroadcast(MatMul(h, w), b).value();
  const Matrix sparse = CandidateLogits(h, w, b, {1, 3, 6}).value();
  EXPECT_NEAR(sparse(0, 0), full(0, 1), 1e-12);
  EXPECT_NEAR(sparse(0, 1), full(0, 3), 1e-12);
  EXPECT_NEAR(sparse(0, 2), full(0, 6), 1e-12);
}

TEST(Ops, Im2RowCausalLayout) {
  Matrix x(3, 2);
  for (size_t r = 0; r < 3; ++r) {
    x(r, 0) = static_cast<Scalar>(10 * (r + 1));
    x(r, 1) = static_cast<Scalar>(10 * (r + 1) + 1);
  }
  const Matrix out = Im2RowCausal(Tensor::Constant(x), 2).value();
  ASSERT_EQ(out.cols(), 4u);
  // Row 0: [pad, x0]; row 2: [x1, x2].
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(out(2, 0), 20.0);
  EXPECT_DOUBLE_EQ(out(2, 2), 30.0);
}

TEST(Losses, CrossEntropyUniformLogits) {
  const Tensor logits = Tensor::Constant(Matrix::Zeros(2, 4));
  const Tensor loss = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(loss.ScalarValue(), std::log(4.0), 1e-9);
}

TEST(Losses, CrossEntropyBiasShiftsDistribution) {
  const Tensor logits = Tensor::Constant(Matrix::Zeros(1, 2));
  Matrix bias(1, 2);
  bias(0, 0) = 0.0;
  bias(0, 1) = -100.0;  // class 1 effectively masked out
  const Tensor loss = SoftmaxCrossEntropy(logits, {0}, &bias);
  EXPECT_NEAR(loss.ScalarValue(), 0.0, 1e-9);
}

TEST(Losses, MseKnownValue) {
  Matrix pred(2, 1);
  pred(0, 0) = 1.0;
  pred(1, 0) = 3.0;
  Matrix target(2, 1);
  target(0, 0) = 0.0;
  target(1, 0) = 1.0;
  const Tensor loss = MseLoss(Tensor::Constant(pred), target);
  EXPECT_NEAR(loss.ScalarValue(), (1.0 + 4.0) / 2.0, 1e-12);
}

TEST(Losses, ArgmaxRow) {
  Matrix m(2, 3);
  m(0, 1) = 5.0;
  m(1, 2) = 2.0;
  EXPECT_EQ(ArgmaxRow(m, 0), 1u);
  EXPECT_EQ(ArgmaxRow(m, 1), 2u);
}

TEST(Autograd, NoGradScopeSkipsTape) {
  Rng rng(4);
  Tensor w = Tensor::Variable(Matrix::RandomUniform(2, 2, 1.0, &rng));
  NoGradScope no_grad;
  Tensor y = MatMul(Tensor::Constant(M2x2(1, 2, 3, 4)), w);
  EXPECT_FALSE(y.requires_grad());
}

TEST(Autograd, BackwardAccumulatesAcrossCalls) {
  Tensor w = Tensor::Variable(M2x2(1, 1, 1, 1));
  Mean(w).Backward();
  Mean(w).Backward();
  EXPECT_NEAR(w.grad()(0, 0), 2.0 * 0.25, 1e-12);
  w.ZeroGrad();
  EXPECT_DOUBLE_EQ(w.grad()(0, 0), 0.0);
}

TEST(Autograd, BackwardOnConstantGraphIsNoOp) {
  const Tensor a = Tensor::Constant(M2x2(1, 2, 3, 4));
  Tensor loss = Mean(Mul(a, a));
  loss.Backward();  // must not crash
  SUCCEED();
}

TEST(Flops, MatMulCountsTwoMnk) {
  Rng rng(5);
  const Matrix a = Matrix::RandomUniform(3, 4, 1.0, &rng);
  const Matrix b = Matrix::RandomUniform(4, 5, 1.0, &rng);
  ScopedFlopCount counter;
  (void)MatMulValues(a, b);
  EXPECT_EQ(counter.Elapsed(), 2 * 3 * 4 * 5);
}

TEST(Flops, ScopedCounterIsolatesRegions) {
  Rng rng(6);
  const Matrix a = Matrix::RandomUniform(2, 2, 1.0, &rng);
  ScopedFlopCount outer;
  (void)MatMulValues(a, a);
  const int64_t first = outer.Elapsed();
  (void)MatMulValues(a, a);
  EXPECT_EQ(outer.Elapsed(), 2 * first);
}

TEST(Layers, DenseShapes) {
  ParameterSet params;
  Rng rng(7);
  Dense dense(3, 5, "d", &params, &rng);
  EXPECT_EQ(params.NumScalars(), 3 * 5 + 5);
  const Tensor y = dense.Forward(Tensor::Constant(Matrix::Zeros(4, 3)));
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 5u);
}

TEST(Layers, GruStateInRange) {
  ParameterSet params;
  Rng rng(8);
  GruCell gru(3, 4, "g", &params, &rng);
  Tensor h = gru.InitialState();
  for (int step = 0; step < 5; ++step) {
    h = gru.Forward(
        Tensor::Constant(Matrix::RandomUniform(1, 3, 2.0, &rng)), h);
    for (size_t i = 0; i < h.value().size(); ++i) {
      EXPECT_GT(h.value().data()[i], -1.0);
      EXPECT_LT(h.value().data()[i], 1.0);
    }
  }
}

TEST(Layers, AttentionIsConvexCombination) {
  // With a single key/value row, attention returns exactly that row.
  Rng rng(9);
  const Tensor q = Tensor::Constant(Matrix::RandomUniform(2, 4, 1.0, &rng));
  const Matrix value_row = Matrix::RandomUniform(1, 4, 1.0, &rng);
  const Tensor kv = Tensor::Constant(value_row);
  const Matrix out = ScaledDotProductAttention(q, kv, kv).value();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(out(r, c), value_row(0, c), 1e-12);
    }
  }
}

TEST(Layers, CausalConv1dShapes) {
  ParameterSet params;
  Rng rng(10);
  CausalConv1d conv(3, 5, 4, "c", &params, &rng);
  const Tensor y = conv.Forward(Tensor::Constant(Matrix::Zeros(7, 3)));
  EXPECT_EQ(y.rows(), 7u);
  EXPECT_EQ(y.cols(), 5u);
  EXPECT_EQ(params.NumScalars(), 3 * 4 * 5 + 5);
}

}  // namespace
}  // namespace lighttr::nn
