// Dataset statistics (paper Table III analog): trajectory counts, total
// length, point counts, speed and sampling-rate summaries of a workload.
#ifndef LIGHTTR_TRAJ_STATS_H_
#define LIGHTTR_TRAJ_STATS_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/trajectory.h"
#include "traj/workload.h"

namespace lighttr::traj {

/// Aggregate statistics of a trajectory dataset.
struct DatasetStats {
  int64_t trajectories = 0;
  int64_t points = 0;
  int64_t drivers = 0;          // distinct driver ids
  double total_length_km = 0.0; // sum of along-route travel
  double mean_points_per_trajectory = 0.0;
  double mean_speed_mps = 0.0;
  double epsilon_s = 0.0;       // sampling rate (common to the dataset)
  double observed_fraction = 0.0;  // kept points / all points
};

/// Computes statistics over a set of incomplete trajectories. Lengths are
/// measured along the road network between consecutive points.
DatasetStats ComputeDatasetStats(
    const roadnet::RoadNetwork& network,
    const std::vector<IncompleteTrajectory>& trajectories);

/// Convenience: pools every split of every client.
DatasetStats ComputeWorkloadStats(const roadnet::RoadNetwork& network,
                                  const std::vector<ClientDataset>& clients);

}  // namespace lighttr::traj

#endif  // LIGHTTR_TRAJ_STATS_H_
