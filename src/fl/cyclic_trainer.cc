#include "fl/cyclic_trainer.h"

#include "common/check.h"
#include "fl/local_trainer.h"

namespace lighttr::fl {

CyclicExchangeTrainer::CyclicExchangeTrainer(
    ModelFactory factory, const std::vector<traj::ClientDataset>* clients,
    CyclicTrainerOptions options)
    : clients_(clients), options_(options), rng_(options.seed) {
  LIGHTTR_CHECK(clients != nullptr);
  LIGHTTR_CHECK(!clients->empty());
  for (size_t i = 0; i < clients->size(); ++i) {
    Rng model_rng = rng_.Fork();
    models_.push_back(factory(&model_rng));
    optimizers_.push_back(std::make_unique<nn::AdamOptimizer>(
        static_cast<nn::Scalar>(options_.learning_rate)));
  }
}

CommStats CyclicExchangeTrainer::Run() {
  CommStats comm;
  const size_t n = models_.size();
  const int64_t wire_bytes = models_[0]->params().WireBytes();
  for (int round = 0; round < options_.rounds; ++round) {
    // Local training on every client.
    for (size_t i = 0; i < n; ++i) {
      LocalTrainOptions local;
      local.epochs = options_.local_epochs;
      Rng update_rng = rng_.Fork();
      TrainLocal(models_[i].get(), optimizers_[i].get(),
                 (*clients_)[i].train, local, &update_rng);
    }
    // Ring exchange: client i adopts the parameters client i-1 produced.
    std::vector<std::string> blobs;
    blobs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      blobs.push_back(models_[i]->params().Serialize());
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t from = (i + n - 1) % n;
      LIGHTTR_CHECK_OK(models_[i]->params().Deserialize(blobs[from]));
      comm.bytes_uplink += wire_bytes;  // peer-to-peer; count as uplink
      ++comm.messages;
    }
    ++comm.rounds;
  }
  return comm;
}

}  // namespace lighttr::fl
