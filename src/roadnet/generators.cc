#include "roadnet/generators.h"

#include <cmath>
#include <vector>

namespace lighttr::roadnet {

RoadNetwork GenerateCityGrid(const CityGridOptions& options, Rng* rng) {
  LIGHTTR_CHECK(rng != nullptr);
  LIGHTTR_CHECK_GE(options.rows, 2);
  LIGHTTR_CHECK_GE(options.cols, 2);
  RoadNetwork net;

  const geo::LocalProjection plane(options.origin);
  std::vector<std::vector<VertexId>> grid(
      options.rows, std::vector<VertexId>(options.cols, kInvalidVertex));

  for (int32_t r = 0; r < options.rows; ++r) {
    for (int32_t c = 0; c < options.cols; ++c) {
      const bool border = r == 0 || c == 0 || r == options.rows - 1 ||
                          c == options.cols - 1;
      const double jitter = options.jitter_frac * options.spacing_m;
      // The ring road stays regular so connectivity is guaranteed.
      const double jx = border ? 0.0 : rng->Uniform(-jitter, jitter);
      const double jy = border ? 0.0 : rng->Uniform(-jitter, jitter);
      const geo::LocalProjection::Xy xy{c * options.spacing_m + jx,
                                        r * options.spacing_m + jy};
      grid[r][c] = net.AddVertex(plane.FromXy(xy));
    }
  }

  auto add_street = [&](VertexId u, VertexId v, bool force_two_way) {
    if (!force_two_way && rng->Bernoulli(options.one_way_prob)) {
      // One-way with a random direction.
      if (rng->Bernoulli(0.5)) {
        net.AddSegment(u, v);
      } else {
        net.AddSegment(v, u);
      }
    } else {
      net.AddTwoWay(u, v);
    }
  };

  for (int32_t r = 0; r < options.rows; ++r) {
    for (int32_t c = 0; c < options.cols; ++c) {
      // Horizontal street to the east neighbour.
      if (c + 1 < options.cols) {
        const bool border_street = r == 0 || r == options.rows - 1;
        if (border_street || !rng->Bernoulli(options.missing_prob)) {
          add_street(grid[r][c], grid[r][c + 1], border_street);
        }
      }
      // Vertical street to the north neighbour.
      if (r + 1 < options.rows) {
        const bool border_street = c == 0 || c == options.cols - 1;
        if (border_street || !rng->Bernoulli(options.missing_prob)) {
          add_street(grid[r][c], grid[r + 1][c], border_street);
        }
      }
      // Occasional diagonal arterial across the block.
      if (r + 1 < options.rows && c + 1 < options.cols &&
          rng->Bernoulli(options.diagonal_prob)) {
        if (rng->Bernoulli(0.5)) {
          net.AddTwoWay(grid[r][c], grid[r + 1][c + 1]);
        } else {
          net.AddTwoWay(grid[r][c + 1], grid[r + 1][c]);
        }
      }
    }
  }

  net.Finalize();
  return net;
}

RoadNetwork GenerateChain(int32_t n, double spacing_m,
                          const geo::GeoPoint& origin) {
  LIGHTTR_CHECK_GE(n, 2);
  RoadNetwork net;
  const geo::LocalProjection plane(origin);
  std::vector<VertexId> ids;
  ids.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    ids.push_back(net.AddVertex(plane.FromXy({i * spacing_m, 0.0})));
  }
  for (int32_t i = 0; i + 1 < n; ++i) net.AddTwoWay(ids[i], ids[i + 1]);
  net.Finalize();
  return net;
}

RoadNetwork GenerateRing(int32_t n, double radius_m,
                         const geo::GeoPoint& center) {
  LIGHTTR_CHECK_GE(n, 3);
  RoadNetwork net;
  const geo::LocalProjection plane(center);
  std::vector<VertexId> ids;
  ids.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * i / n;
    ids.push_back(net.AddVertex(plane.FromXy(
        {radius_m * std::cos(angle), radius_m * std::sin(angle)})));
  }
  for (int32_t i = 0; i < n; ++i) net.AddTwoWay(ids[i], ids[(i + 1) % n]);
  net.Finalize();
  return net;
}

}  // namespace lighttr::roadnet
