// Durable server state for the federated loop: periodic full-state
// snapshots plus an append-only, CRC-tagged round journal, so a
// coordinator killed mid-run can resume and converge bitwise-identically
// to an uninterrupted run.
//
// Directory layout (everything under DurabilityConfig::dir):
//
//   snapshot-000012.ltrs   full ServerRunState after round 12
//   snapshot-000016.ltrs   ... the newest `keep_snapshots` are retained
//   journal.log            one line per completed round, CRC-tagged
//   *.tmp                  in-flight atomic writes; ignored by readers
//
// Snapshots are written via WriteFileAtomic and carry a whole-file
// CRC-32, so a crash at any point leaves either the previous snapshot
// set intact or a new fully-valid snapshot — never a half-written one
// that parses. The journal is append-only; a torn tail line fails its
// CRC and is discarded on replay.
#ifndef LIGHTTR_FL_RUN_STATE_H_
#define LIGHTTR_FL_RUN_STATE_H_

#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "fl/comm_stats.h"

namespace lighttr::fl {

/// Deterministic crash-injection hooks for the durability layer. Tests
/// configure a (point, round) pair; when the running trainer reaches
/// that point it throws InjectedCrash, simulating a process kill with
/// the disk in exactly the state a real crash would leave.
enum class CrashPoint {
  kNone = 0,
  kBeforeSave,  // snapshot round reached, nothing written yet
  kMidSave,     // temp file partially written, no rename
  kAfterSave,   // snapshot durable, crash before the run continues
  kMidRound,    // inside the round, before aggregation
};

const char* CrashPointName(CrashPoint point);

/// Thrown (only) by crash injection; never by real failure paths. Tests
/// catch it where a real deployment would see a dead process.
struct InjectedCrash {
  CrashPoint point = CrashPoint::kNone;
  int round = 0;
};

/// Server-side durability knobs. Durability is off (no files written)
/// while `dir` is empty.
struct DurabilityConfig {
  /// Directory for snapshots + journal; created on first save.
  std::string dir;
  /// Filesystem all durability IO goes through. Null means the real
  /// disk; tests and the chaos engine point this at a FaultyFileSystem
  /// to make every persistence call fault-injectable. Not owned; must
  /// outlive the trainer.
  FileSystem* fs = nullptr;
  /// Snapshot every K completed rounds (the final round always
  /// snapshots so a finished run is durable).
  int snapshot_every = 1;
  /// How many snapshots to retain; >= 2 keeps a fallback when the
  /// newest one is corrupted.
  int keep_snapshots = 2;
  /// Resume from `dir` at the start of Run (no-op when the directory
  /// holds no valid snapshot).
  bool resume = false;
  /// Test-only crash injection: throw InjectedCrash when `crash_point`
  /// is reached in round `crash_round` (1-based; 0 disables).
  CrashPoint crash_point = CrashPoint::kNone;
  int crash_round = 0;

  bool enabled() const { return !dir.empty(); }
};

/// Fires the configured injected crash if (point, round) matches.
void MaybeInjectCrash(const DurabilityConfig& config, CrashPoint point,
                      int round);

/// Everything the server must persist to resume a run exactly: the
/// last completed round, the RNG stream states, accumulated telemetry,
/// the global parameters (float64 checkpoint blob), and each client
/// optimizer's state. Version 2 appends the self-healing state: the
/// extra FaultStats counters, the reputation ledger, the health
/// monitor's rolling windows, and the escalation latch. Version 3
/// appends the wire-transport state: the net fault counters and the
/// channel RNG stream (so a resumed run replays the same network
/// weather). Version 4 appends the storage-fault counter
/// (FaultStats::storage_write_failures). Version 5 appends the
/// adversary tail: the poisoned/suspected counters, the adversary
/// engine's stream + honest-norm window, and the norm-bound
/// aggregator's rolling window (so a resumed run replays the same
/// attack weather and clips against the same bound). Older snapshots
/// still load, the newer tails defaulting to "fresh".
struct ServerRunState {
  int round = 0;
  std::string rng_state;        // FederatedTrainer::rng_
  std::string fault_rng_state;  // dedicated fault stream
  CommStats comm;
  FaultStats faults;
  std::string global_params_blob;            // nn::SerializeCheckpoint, f64
  std::vector<std::string> optimizer_blobs;  // one per client, in order
  // v2 fields (empty/false when decoded from a v1 snapshot):
  std::string reputation_blob;  // ReputationBook::Serialize
  std::string monitor_blob;     // RoundHealthMonitor::SerializeState
  bool escalated = false;       // screening escalation latch
  // v3 fields (empty when decoded from an older snapshot); the six
  // FaultStats net counters also ride in the v3 tail:
  std::string net_rng_state;    // dedicated channel-fault stream
  // v5 fields (empty when decoded from an older snapshot); the two
  // FaultStats adversary counters also ride in the v5 tail:
  std::string adversary_blob;   // AdversaryEngine::SerializeState
  std::string normbound_blob;   // trainer's rolling accepted-norm window
};

/// Encodes a snapshot ("LTRS" magic, version, fields, whole-file CRC).
std::string EncodeRunState(const ServerRunState& state);

/// Decodes an EncodeRunState blob; any integrity violation (bad magic,
/// truncation, CRC mismatch, oversized lengths) yields a non-OK Status.
[[nodiscard]] Status DecodeRunState(const std::string& bytes,
                                    ServerRunState* state);

/// Atomically writes `state` to `path` through `fs` (creating the
/// parent directory). The fs-less overload uses the real filesystem —
/// same for every pair below.
[[nodiscard]] Status SaveRunState(FileSystem* fs, const std::string& path,
                                  const ServerRunState& state);
[[nodiscard]] Status SaveRunState(const std::string& path,
                                  const ServerRunState& state);

/// Reads and decodes the snapshot at `path`.
[[nodiscard]] Result<ServerRunState> LoadRunState(FileSystem* fs,
                                                  const std::string& path);
[[nodiscard]] Result<ServerRunState> LoadRunState(const std::string& path);

/// Canonical snapshot path for a round: <dir>/snapshot-<round>.ltrs.
std::string SnapshotPath(const std::string& dir, int round);

/// Rounds with a snapshot file in `dir`, ascending. NotFound when the
/// directory does not exist; an empty vector when it is merely empty.
/// Partial `.tmp` files and unrelated names are ignored.
[[nodiscard]] Result<std::vector<int>> ListSnapshotRounds(
    FileSystem* fs, const std::string& dir);
[[nodiscard]] Result<std::vector<int>> ListSnapshotRounds(
    const std::string& dir);

/// Deletes all but the newest `keep` snapshots (best effort).
void PruneSnapshots(FileSystem* fs, const std::string& dir, int keep);
void PruneSnapshots(const std::string& dir, int keep);

/// Appends one CRC-tagged journal line for a completed round.
[[nodiscard]] Status AppendJournalRecord(FileSystem* fs,
                                         const std::string& dir,
                                         const RoundRecord& record);
[[nodiscard]] Status AppendJournalRecord(const std::string& dir,
                                         const RoundRecord& record);

/// Replays the journal: returns every leading record whose line passes
/// its CRC, silently dropping the torn tail a crash mid-append leaves.
/// A missing journal is an empty history, not an error.
[[nodiscard]] Result<std::vector<RoundRecord>> ReadJournal(
    FileSystem* fs, const std::string& dir);
[[nodiscard]] Result<std::vector<RoundRecord>> ReadJournal(
    const std::string& dir);

/// Atomically rewrites the journal to exactly `records` (used on resume
/// to drop records newer than the snapshot being resumed from, since
/// those rounds will be re-executed).
[[nodiscard]] Status RewriteJournal(FileSystem* fs, const std::string& dir,
                                    const std::vector<RoundRecord>& records);
[[nodiscard]] Status RewriteJournal(const std::string& dir,
                                    const std::vector<RoundRecord>& records);

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_RUN_STATE_H_
