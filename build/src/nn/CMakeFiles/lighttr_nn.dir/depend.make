# Empty dependencies file for lighttr_nn.
# This may be replaced when dependencies are built.
