// Tests for the chaos campaign engine: the flat repro grammar
// (format/parse round-trip, rejection of malformed input), axis
// accounting, a clean scenario flowing through the full invariant net,
// crash-axis firing, and the shrinker reducing the planted hygiene bug
// to a minimal replayable repro.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "chaos/scenario.h"
#include "common/rng.h"

namespace lighttr::chaos {
namespace {

ChaosScenario EverythingOnScenario() {
  ChaosScenario s;
  s.seed = 424242;
  s.rounds = 7;
  s.clients = 5;
  s.threads = 2;
  s.client_fraction = 0.8;
  s.quorum_fraction = 1.0 / 3.0;  // not representable in short decimal
  s.healing = true;
  s.storage_on = true;
  s.storage.seed = 17;
  s.storage.enospc_rate = 0.05;
  s.storage.torn_append_rate = 0.1;
  s.storage.rename_fail_rate = 0.125;
  s.storage.read_bitrot_rate = 0.01;
  s.storage.tmp_litter_rate = 0.2;
  s.storage.lose_unsynced_on_crash = true;
  s.net_on = true;
  s.net.drop_rate = 0.1;
  s.net.duplicate_rate = 0.05;
  s.net.reorder_rate = 0.02;
  s.net.corrupt_rate = 0.01;
  s.net.truncate_rate = 0.03;
  s.net.delay_rate = 0.07;
  s.client_faults_on = true;
  s.client_faults.dropout_rate = 0.2;
  s.client_faults.straggler_rate = 0.1;
  s.client_faults.corruption_rate = 0.05;
  s.crash_on = true;
  s.crash_point = fl::CrashPoint::kAfterSave;
  s.crash_round = 4;
  s.plant = PlantedBug::kLeakTmp;
  return s;
}

void ExpectSameScenario(const ChaosScenario& a, const ChaosScenario& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.clients, b.clients);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.client_fraction, b.client_fraction);
  EXPECT_EQ(a.quorum_fraction, b.quorum_fraction);
  EXPECT_EQ(a.healing, b.healing);
  EXPECT_EQ(a.storage_on, b.storage_on);
  if (a.storage_on && b.storage_on) {
    EXPECT_EQ(a.storage.seed, b.storage.seed);
    EXPECT_EQ(a.storage.enospc_rate, b.storage.enospc_rate);
    EXPECT_EQ(a.storage.torn_append_rate, b.storage.torn_append_rate);
    EXPECT_EQ(a.storage.rename_fail_rate, b.storage.rename_fail_rate);
    EXPECT_EQ(a.storage.read_bitrot_rate, b.storage.read_bitrot_rate);
    EXPECT_EQ(a.storage.tmp_litter_rate, b.storage.tmp_litter_rate);
    EXPECT_EQ(a.storage.lose_unsynced_on_crash,
              b.storage.lose_unsynced_on_crash);
  }
  EXPECT_EQ(a.net_on, b.net_on);
  if (a.net_on && b.net_on) {
    EXPECT_EQ(a.net.drop_rate, b.net.drop_rate);
    EXPECT_EQ(a.net.duplicate_rate, b.net.duplicate_rate);
    EXPECT_EQ(a.net.reorder_rate, b.net.reorder_rate);
    EXPECT_EQ(a.net.corrupt_rate, b.net.corrupt_rate);
    EXPECT_EQ(a.net.truncate_rate, b.net.truncate_rate);
    EXPECT_EQ(a.net.delay_rate, b.net.delay_rate);
  }
  EXPECT_EQ(a.client_faults_on, b.client_faults_on);
  if (a.client_faults_on && b.client_faults_on) {
    EXPECT_EQ(a.client_faults.dropout_rate, b.client_faults.dropout_rate);
    EXPECT_EQ(a.client_faults.straggler_rate, b.client_faults.straggler_rate);
    EXPECT_EQ(a.client_faults.corruption_rate,
              b.client_faults.corruption_rate);
  }
  EXPECT_EQ(a.crash_on, b.crash_on);
  if (a.crash_on && b.crash_on) {
    EXPECT_EQ(a.crash_point, b.crash_point);
    EXPECT_EQ(a.crash_round, b.crash_round);
  }
  EXPECT_EQ(a.plant, b.plant);
}

// ---------------------------------------------------------------------
// Repro grammar

TEST(ChaosRepro, DefaultScenarioRoundTrips) {
  const ChaosScenario s;
  Result<ChaosScenario> parsed = ParseRepro(FormatRepro(s));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameScenario(s, parsed.value());
  EXPECT_EQ(FormatRepro(parsed.value()), FormatRepro(s));
}

TEST(ChaosRepro, EverythingOnScenarioRoundTripsBitExactly) {
  const ChaosScenario s = EverythingOnScenario();
  const std::string text = FormatRepro(s);
  Result<ChaosScenario> parsed = ParseRepro(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameScenario(s, parsed.value());
  // Idempotence: re-serializing the parse reproduces the exact string
  // (the shortest-round-trip double formatting is what makes this
  // possible for values like 1/3).
  EXPECT_EQ(FormatRepro(parsed.value()), text);
}

TEST(ChaosRepro, SampledScenariosAlwaysRoundTrip) {
  Rng rng(2026);
  for (int i = 0; i < 50; ++i) {
    const ChaosScenario s = SampleScenario(&rng);
    const std::string text = FormatRepro(s);
    Result<ChaosScenario> parsed = ParseRepro(text);
    ASSERT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
    EXPECT_EQ(FormatRepro(parsed.value()), text) << "sample " << i;
  }
}

TEST(ChaosRepro, MalformedInputIsRejected) {
  const char* bad[] = {
      "",                                  // seed is mandatory
      "rounds=4",                          // still no seed
      "seed=7 bogus=1",                    // unknown key
      "seed=7 rounds=zero",                // malformed number
      "seed=7 rounds=0",                   // below range
      "seed=7 rounds=100000",              // above range
      "seed=7 threads=65",                 // above range
      "seed=7 fraction=0",                 // fraction must be positive
      "seed=7 quorum=1.5",                 // a rate, must stay in [0,1]
      "seed=7 storage=1 storage.rename=2", // rate out of range
      "seed=7 storage=2",                  // flags are strictly 0/1
      "seed=7 crash=1 crash.point=sideways",
      "seed=7 rounds=4 crash=1 crash.round=9",  // crash past the run
      "seed=7 rounds",                     // not key=value
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseRepro(text).ok()) << "accepted: " << text;
  }
}

TEST(ChaosRepro, AxisCountCountsEnabledAxes) {
  ChaosScenario s;
  EXPECT_EQ(AxisCount(s), 0);
  s.healing = true;
  s.storage_on = true;
  EXPECT_EQ(AxisCount(s), 2);
  s.net_on = true;
  s.client_faults_on = true;
  s.crash_on = true;
  EXPECT_EQ(AxisCount(s), 5);
}

// ---------------------------------------------------------------------
// Scenario execution

std::string FirstViolation(const ScenarioReport& report) {
  if (report.violations.empty()) return "(no violations)";
  return report.violations.front().label + ": " +
         report.violations.front().detail;
}

TEST(ChaosCampaign, CleanScenarioPassesEveryInvariant) {
  ChaosScenario s;
  s.seed = 21;
  s.rounds = 4;
  s.clients = 3;
  const ScenarioReport report = RunScenario(s);
  EXPECT_TRUE(report.ok()) << FirstViolation(report);
  EXPECT_EQ(report.rounds_completed, 4);
  EXPECT_FALSE(report.crash_fired);
  EXPECT_EQ(report.storage_stats.WriteFaults(), 0);
  EXPECT_EQ(report.trainer_storage_failures, 0);
}

TEST(ChaosCampaign, MidRoundCrashFiresAndStillPasses) {
  ChaosScenario s;
  s.seed = 23;
  s.rounds = 5;
  s.clients = 3;
  s.crash_on = true;
  s.crash_point = fl::CrashPoint::kMidRound;  // fires on any round
  s.crash_round = 2;
  const ScenarioReport report = RunScenario(s);
  EXPECT_TRUE(report.crash_fired);
  EXPECT_TRUE(report.ok()) << FirstViolation(report);
  EXPECT_EQ(report.rounds_completed, 5);
}

TEST(ChaosCampaign, ScenarioReportsAreDeterministic) {
  ChaosScenario s;
  s.seed = 29;
  s.rounds = 4;
  s.clients = 3;
  s.storage_on = true;
  s.storage.enospc_rate = 0.15;
  s.storage.torn_append_rate = 0.15;
  const ScenarioReport a = RunScenario(s);
  const ScenarioReport b = RunScenario(s);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.trainer_storage_failures, b.trainer_storage_failures);
  EXPECT_EQ(a.storage_stats.WriteFaults(), b.storage_stats.WriteFaults());
  EXPECT_EQ(a.storage_stats.torn_appends, b.storage_stats.torn_appends);
}

// ---------------------------------------------------------------------
// The planted bug: caught, shrunk, and the shrunk repro still fails.

TEST(ChaosShrink, PlantedLeakShrinksToMinimalReplayableRepro) {
  ChaosScenario s;
  s.seed = 31;
  s.rounds = 6;
  s.clients = 4;
  s.threads = 2;
  s.storage_on = true;
  s.storage.rename_fail_rate = 0.9;  // snapshot renames fail often
  s.net_on = true;                   // extra axis for the shrinker to drop
  s.net.drop_rate = 0.1;
  s.client_faults_on = true;
  s.client_faults.dropout_rate = 0.2;
  s.plant = PlantedBug::kLeakTmp;

  const ScenarioReport report = RunScenario(s);
  ASSERT_FALSE(report.ok()) << "planted bug was not caught";
  bool saw_orphan = false;
  for (const InvariantViolation& v : report.violations) {
    if (v.label == "orphan-temp-file") saw_orphan = true;
  }
  ASSERT_TRUE(saw_orphan);

  const ShrinkOutcome shrunk = ShrinkScenario(s, "orphan-temp-file");
  EXPECT_GT(shrunk.evaluations, 0);
  EXPECT_EQ(shrunk.label, "orphan-temp-file");
  // Axis-minimal: only the storage axis (which carries the plant)
  // should survive, and the run shape should have been bisected down.
  EXPECT_LE(AxisCount(shrunk.minimal), 2);
  EXPECT_TRUE(shrunk.minimal.storage_on);
  EXPECT_EQ(shrunk.minimal.plant, PlantedBug::kLeakTmp);
  EXPECT_LE(shrunk.minimal.rounds, s.rounds);
  EXPECT_LE(shrunk.minimal.clients, s.clients);
  EXPECT_LE(shrunk.minimal.threads, s.threads);

  // The minimal scenario replays through the repro grammar and still
  // trips the same invariant — the property every shrunk repro in a
  // campaign report must have.
  Result<ChaosScenario> replayed = ParseRepro(FormatRepro(shrunk.minimal));
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  const ScenarioReport rerun = RunScenario(replayed.value());
  bool still_fails = false;
  for (const InvariantViolation& v : rerun.violations) {
    if (v.label == "orphan-temp-file") still_fails = true;
  }
  EXPECT_TRUE(still_fails);
}

}  // namespace
}  // namespace lighttr::chaos
