// Multi-task prediction head with constraint mask, shared by the
// seq2seq baselines (MTrajRec, RNTrajRec). Mirrors the head of [16]:
// candidate-restricted segment logits with distance mask, plus a
// segment-embedding-conditioned moving-ratio regressor.
#ifndef LIGHTTR_BASELINES_MT_HEAD_H_
#define LIGHTTR_BASELINES_MT_HEAD_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "traj/encoding.h"

namespace lighttr::baselines {

/// One step's head output.
struct MtHeadStep {
  nn::Tensor ce_loss;       // cross-entropy vs the true segment
  nn::Tensor ratio;         // [1,1] predicted moving ratio
  int predicted_segment = 0;  // argmax under the mask
};

/// The multi-task head applied at each missing step.
class MtHead {
 public:
  MtHead(size_t hidden_dim, size_t seg_embed_dim, size_t num_segments,
         const std::string& prefix, nn::ParameterSet* params, Rng* rng);

  /// Runs the head on decoder state `state` ([1, hidden]) for the given
  /// candidates. `conditioning_segment` (ground truth when teacher
  /// forcing, else the prediction) drives the ratio branch; pass -1 to
  /// use the head's own argmax prediction.
  MtHeadStep Run(const nn::Tensor& state,
                 const traj::StepCandidates& candidates,
                 int conditioning_segment) const;

  /// Embedding of a segment id (for feeding predictions back into the
  /// decoder input).
  nn::Tensor SegmentEmbedding(int segment) const {
    return seg_embed_->Forward({segment});
  }

  size_t seg_embed_dim() const { return seg_embed_->dim(); }

 private:
  std::unique_ptr<nn::Dense> dense_;
  nn::Tensor seg_w_;
  nn::Tensor seg_b_;
  std::unique_ptr<nn::Embedding> seg_embed_;
  std::unique_ptr<nn::Dense> emb_proj_;
  std::unique_ptr<nn::Dense> ratio_head_;
};

}  // namespace lighttr::baselines

#endif  // LIGHTTR_BASELINES_MT_HEAD_H_
