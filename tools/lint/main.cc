// CLI for lighttr-lint. Usage:
//
//   lighttr-lint [--format=text|json] [--baseline <file>] [--stats]
//                <dir-or-file>...
//
// Scans every .h/.cc/.cpp/.hpp under the given roots and reports
// violations — compiler-style "file:line: rule: message" lines by
// default, a JSON array of {file,line,rule,message} records with
// --format=json. --baseline suppresses pre-existing findings listed in
// the given file (`<rule> <path-suffix>` per line) so new rules can
// land incrementally; --stats appends per-rule hit counts (baselined
// findings excluded) so rule coverage is visible in CI logs. Exits 1
// if any non-baselined violation was found, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: lighttr-lint [--format=text|json] [--baseline <file>] "
               "[--stats] <dir-or-file>...\nrules:\n");
  for (const std::string& rule : lighttr::lint::AllRuleNames()) {
    std::fprintf(out, "  %s\n", rule.c_str());
  }
  std::fprintf(out,
               "suppress a line with a comment: lighttr-lint: "
               "allow(<rule>[, <rule>])\n"
               "(a suppression that suppresses nothing is itself an error)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string format = "text";
  std::string baseline_path;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::fprintf(stderr, "lighttr-lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lighttr-lint: --baseline needs a file\n");
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lighttr-lint: unknown flag '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "lighttr-lint: no input paths (try --help)\n");
    return 2;
  }

  lighttr::lint::Baseline baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "lighttr-lint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    baseline = lighttr::lint::ParseBaseline(contents.str());
  }

  std::vector<lighttr::lint::Diagnostic> diagnostics =
      lighttr::lint::ApplyBaseline(lighttr::lint::LintPaths(roots), baseline);

  if (format == "json") {
    std::printf("[");
    for (size_t i = 0; i < diagnostics.size(); ++i) {
      std::printf("%s%s", i == 0 ? "\n" : ",\n",
                  lighttr::lint::FormatDiagnosticJson(diagnostics[i]).c_str());
    }
    std::printf("%s]\n", diagnostics.empty() ? "" : "\n");
  } else {
    for (const auto& diagnostic : diagnostics) {
      std::printf("%s\n",
                  lighttr::lint::FormatDiagnostic(diagnostic).c_str());
    }
  }

  if (stats) {
    // Per-rule hit counts over every known rule (zeros included), to
    // stderr so --format=json keeps stdout machine-readable.
    std::map<std::string, size_t> counts;
    for (const std::string& rule : lighttr::lint::AllRuleNames()) {
      counts[rule] = 0;
    }
    for (const auto& diagnostic : diagnostics) ++counts[diagnostic.rule];
    std::fprintf(stderr, "lighttr-lint rule hits (%zu rules):\n",
                 counts.size());
    for (const auto& [rule, count] : counts) {
      std::fprintf(stderr, "  %-24s %zu\n", rule.c_str(), count);
    }
  }

  if (!diagnostics.empty()) {
    std::fprintf(stderr, "lighttr-lint: %zu violation(s)\n",
                 diagnostics.size());
    return 1;
  }
  return 0;
}
