#include "common/crc32.h"

#include <array>

namespace lighttr {

namespace {

// Table-driven byte-at-a-time CRC-32 with the reflected IEEE polynomial.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace lighttr
