// Greedy nearest-segment map matching — the simple baseline the HMM
// matcher is measured against: each GPS point is snapped independently
// to its nearest road segment, ignoring route continuity.
#ifndef LIGHTTR_MAPMATCH_GREEDY_MAP_MATCHER_H_
#define LIGHTTR_MAPMATCH_GREEDY_MAP_MATCHER_H_

#include "common/status.h"
#include "roadnet/segment_index.h"
#include "traj/trajectory.h"

namespace lighttr::mapmatch {

/// Options for GreedyMapMatcher.
struct GreedyOptions {
  double candidate_radius_m = 80.0;
  int radius_doublings = 2;
  double epsilon_s = 15.0;
};

/// Point-independent nearest-segment matcher.
class GreedyMapMatcher {
 public:
  GreedyMapMatcher(const roadnet::SegmentIndex& index, GreedyOptions options);

  /// Matches each point to its nearest segment. Returns NotFound when a
  /// point has no candidate within the maximum search radius.
  Result<traj::MatchedTrajectory> Match(const traj::RawTrajectory& raw) const;

 private:
  const roadnet::SegmentIndex& index_;
  GreedyOptions options_;
};

}  // namespace lighttr::mapmatch

#endif  // LIGHTTR_MAPMATCH_GREEDY_MAP_MATCHER_H_
