// Status and Result<T>: exception-free error handling for fallible
// operations, in the style of absl::Status / arrow::Result.
//
// Functions that can fail due to bad input or environment return a Status
// (or Result<T> when they produce a value). Programming errors (broken
// invariants, shape mismatches) use the LIGHTTR_CHECK macros instead.
#ifndef LIGHTTR_COMMON_STATUS_H_
#define LIGHTTR_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace lighttr {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// Returns a human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result of an operation. Cheap to copy on the OK path.
/// [[nodiscard]] at class level: silently dropping a Status hides failures
/// (the screening/retry paths depend on every Status being inspected), so
/// discarding one is a compile error under LIGHTTR_WERROR. Discard
/// deliberately with `(void)` plus a rationale comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors arrow::Result.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so `return status;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lighttr

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define LIGHTTR_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::lighttr::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // LIGHTTR_COMMON_STATUS_H_
