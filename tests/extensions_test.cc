// Tests for the extension features: DP upload privacy, quantized
// communication, A* search, the greedy map-matching baseline, and the
// LSTM / LayerNorm additions to nn.
#include <gtest/gtest.h>

#include <cmath>

#include "fl/compression.h"
#include "fl/federated_trainer.h"
#include "fl/privacy.h"
#include "baselines/model_zoo.h"
#include "mapmatch/greedy_map_matcher.h"
#include "mapmatch/hmm_map_matcher.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "roadnet/astar.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "traj/generator.h"

namespace lighttr {
namespace {

// ---------------------------------------------------------------- privacy

TEST(Privacy, DisabledIsIdentity) {
  const std::vector<nn::Scalar> upload = {1.0, 2.0, 3.0};
  const std::vector<nn::Scalar> reference = {0.0, 0.0, 0.0};
  Rng rng(1);
  EXPECT_EQ(fl::PrivatizeUpload(upload, reference, fl::PrivacyConfig{}, &rng),
            upload);
}

TEST(Privacy, ClipsDeltaNorm) {
  const std::vector<nn::Scalar> reference = {0.0, 0.0, 0.0, 0.0};
  const std::vector<nn::Scalar> upload = {10.0, 0.0, 0.0, 0.0};
  fl::PrivacyConfig config;
  config.clip_norm = 2.0;
  config.noise_multiplier = 0.0;
  Rng rng(2);
  const auto out = fl::PrivatizeUpload(upload, reference, config, &rng);
  EXPECT_NEAR(fl::DeltaNorm(out, reference), 2.0, 1e-9);
  EXPECT_NEAR(out[0], 2.0, 1e-9);  // direction preserved
}

TEST(Privacy, SmallDeltaNotScaledUp) {
  const std::vector<nn::Scalar> reference = {1.0, 1.0};
  const std::vector<nn::Scalar> upload = {1.1, 1.0};
  fl::PrivacyConfig config;
  config.clip_norm = 5.0;
  Rng rng(3);
  const auto out = fl::PrivatizeUpload(upload, reference, config, &rng);
  EXPECT_NEAR(out[0], 1.1, 1e-12);
}

TEST(Privacy, NoiseHasConfiguredScale) {
  const std::vector<nn::Scalar> reference(2000, 0.0);
  const std::vector<nn::Scalar> upload(2000, 0.0);
  fl::PrivacyConfig config;
  config.clip_norm = 1.0;
  config.noise_multiplier = 0.5;  // sigma = 0.5
  Rng rng(4);
  const auto out = fl::PrivatizeUpload(upload, reference, config, &rng);
  double sq = 0.0;
  for (nn::Scalar x : out) sq += x * x;
  EXPECT_NEAR(std::sqrt(sq / 2000.0), 0.5, 0.05);
}

TEST(Privacy, DeltaNormIsEuclidean) {
  EXPECT_NEAR(fl::DeltaNorm({3.0, 0.0}, {0.0, 4.0}), 5.0, 1e-12);
}

// ------------------------------------------------------------ compression

TEST(Compression, RoundTripWithinQuantStep) {
  Rng rng(5);
  std::vector<nn::Scalar> flat(500);
  for (nn::Scalar& x : flat) x = rng.Uniform(-3.0, 7.0);
  const fl::QuantizedBlob blob = fl::QuantizeFlat(flat);
  const auto back = fl::DequantizeFlat(blob);
  ASSERT_EQ(back.size(), flat.size());
  const double step = fl::QuantizationStep(blob);
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_NEAR(back[i], flat[i], step + 1e-12);
  }
}

TEST(Compression, ConstantVectorExact) {
  const std::vector<nn::Scalar> flat(10, 2.5);
  const auto back = fl::DequantizeFlat(fl::QuantizeFlat(flat));
  for (nn::Scalar x : back) EXPECT_DOUBLE_EQ(x, 2.5);
}

TEST(Compression, WireBytesAreQuarterOfFloat32) {
  const std::vector<nn::Scalar> flat(1000, 1.0);
  const fl::QuantizedBlob blob = fl::QuantizeFlat(flat);
  EXPECT_EQ(blob.WireBytes(), 1000 + 2 * 8);
  // vs 4000 bytes at float32: ~3.9x reduction.
  EXPECT_LT(blob.WireBytes() * 3, 1000 * 4);
}

TEST(Compression, ExtremesRepresentable) {
  const std::vector<nn::Scalar> flat = {-1.0, 0.0, 1.0};
  const auto back = fl::DequantizeFlat(fl::QuantizeFlat(flat));
  EXPECT_DOUBLE_EQ(back[0], -1.0);
  EXPECT_DOUBLE_EQ(back[2], 1.0);
}

// ------------------------------------------------------------------ astar

class AStarVsDijkstra : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AStarVsDijkstra, SameDistancesFewerExpansions) {
  Rng rng(GetParam());
  roadnet::CityGridOptions options;
  options.rows = 8;
  options.cols = 8;
  const roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  roadnet::DijkstraEngine dijkstra(net);
  Rng pick(GetParam() + 10);
  int64_t total_expanded = 0;
  int queries = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const auto u = static_cast<roadnet::VertexId>(
        pick.UniformInt(0, net.num_vertices() - 1));
    const auto v = static_cast<roadnet::VertexId>(
        pick.UniformInt(0, net.num_vertices() - 1));
    const roadnet::AStarResult astar = roadnet::AStarDistance(net, u, v);
    const double expected = dijkstra.Distance(u, v);
    if (expected == roadnet::kUnreachable) {
      EXPECT_EQ(astar.distance_m, roadnet::kUnreachable);
    } else {
      EXPECT_NEAR(astar.distance_m, expected, 1e-6);
    }
    total_expanded += astar.expanded_vertices;
    ++queries;
  }
  // The heuristic must keep mean expansions well below |V|.
  EXPECT_LT(total_expanded / queries, net.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarVsDijkstra,
                         ::testing::Values(31, 32, 33, 34));

// ----------------------------------------------------------------- greedy

TEST(GreedyMatcher, HmmAtLeastAsAccurateOnNoisyData) {
  Rng rng(41);
  roadnet::CityGridOptions options;
  options.rows = 7;
  options.cols = 7;
  const roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  const roadnet::SegmentIndex index(net);
  const traj::TrajectoryGenerator generator(net);
  const mapmatch::HmmMapMatcher hmm(index, {});
  const mapmatch::GreedyMapMatcher greedy(index, {});

  double hmm_error = 0.0;
  double greedy_error = 0.0;
  int points = 0;
  for (int trial = 0; trial < 8; ++trial) {
    auto truth = generator.Generate({}, roadnet::kInvalidVertex, &rng);
    ASSERT_TRUE(truth.ok());
    const traj::RawTrajectory raw =
        traj::ToRawTrajectory(net, truth.value(), 30.0, &rng);
    auto hmm_match = hmm.Match(raw);
    auto greedy_match = greedy.Match(raw);
    ASSERT_TRUE(hmm_match.ok());
    ASSERT_TRUE(greedy_match.ok());
    for (size_t i = 0; i < raw.points.size(); ++i) {
      const geo::GeoPoint expected =
          net.PositionToPoint(truth.value().points[i].position);
      hmm_error += geo::HaversineMeters(
          net.PositionToPoint(hmm_match.value().points[i].position),
          expected);
      greedy_error += geo::HaversineMeters(
          net.PositionToPoint(greedy_match.value().points[i].position),
          expected);
      ++points;
    }
  }
  // Viterbi uses route continuity that the greedy matcher ignores.
  EXPECT_LE(hmm_error / points, greedy_error / points + 1.0);
}

TEST(GreedyMatcher, RejectsEmptyAndFarInput) {
  Rng rng(42);
  roadnet::CityGridOptions options;
  const roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  const roadnet::SegmentIndex index(net);
  mapmatch::GreedyOptions greedy_options;
  greedy_options.radius_doublings = 0;
  greedy_options.candidate_radius_m = 30.0;
  const mapmatch::GreedyMapMatcher greedy(index, greedy_options);
  EXPECT_FALSE(greedy.Match(traj::RawTrajectory{}).ok());
  traj::RawTrajectory far;
  far.points.push_back({{0.0, 0.0}, 0.0});
  EXPECT_FALSE(greedy.Match(far).ok());
}

// ------------------------------------------------------------- nn add-ons

TEST(Lstm, StateShapesAndRange) {
  nn::ParameterSet params;
  Rng rng(51);
  nn::LstmCell lstm(3, 4, "lstm", &params, &rng);
  EXPECT_EQ(params.NumScalars(), 4 * ((3 + 4) * 4 + 4));
  nn::LstmCell::State state = lstm.InitialState();
  for (int step = 0; step < 4; ++step) {
    state = lstm.Forward(
        nn::Tensor::Constant(nn::Matrix::RandomUniform(1, 3, 2.0, &rng)),
        state);
    EXPECT_EQ(state.h.cols(), 4u);
    EXPECT_EQ(state.c.cols(), 4u);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_GT(state.h.value()(0, i), -1.0);
      EXPECT_LT(state.h.value()(0, i), 1.0);
    }
  }
}

TEST(Lstm, GradCheckThroughTwoSteps) {
  nn::ParameterSet params;
  Rng rng(52);
  nn::LstmCell lstm(2, 3, "lstm", &params, &rng);
  nn::Tensor x = nn::Tensor::Variable(nn::Matrix::RandomUniform(1, 2, 0.8, &rng));

  auto build_loss = [&] {
    nn::LstmCell::State state = lstm.InitialState();
    state = lstm.Forward(x, state);
    state = lstm.Forward(x, state);
    return nn::Mean(state.h);
  };
  nn::Tensor loss = build_loss();
  x.ZeroGrad();
  params.ZeroGrads();
  loss.Backward();
  const nn::Matrix analytic = x.grad();

  const double eps = 1e-5;
  for (size_t i = 0; i < 2; ++i) {
    nn::Scalar* entry = x.mutable_value().data() + i;
    const nn::Scalar saved = *entry;
    *entry = saved + eps;
    const double up = build_loss().ScalarValue();
    *entry = saved - eps;
    const double down = build_loss().ScalarValue();
    *entry = saved;
    EXPECT_NEAR((up - down) / (2 * eps), analytic.data()[i], 1e-6);
  }
}

TEST(LayerNorm, RowsHaveZeroMeanUnitVariance) {
  Rng rng(53);
  const nn::Tensor x =
      nn::Tensor::Constant(nn::Matrix::RandomUniform(4, 16, 3.0, &rng));
  const nn::Matrix y = nn::LayerNormRows(x).value();
  for (size_t r = 0; r < 4; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (size_t c = 0; c < 16; ++c) mean += y(r, c);
    mean /= 16.0;
    for (size_t c = 0; c < 16; ++c) var += (y(r, c) - mean) * (y(r, c) - mean);
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GradCheck) {
  Rng rng(54);
  nn::Tensor x = nn::Tensor::Variable(nn::Matrix::RandomUniform(2, 5, 1.0, &rng));
  Rng wrng(55);
  const nn::Matrix w = nn::Matrix::RandomUniform(2, 5, 1.0, &wrng);
  auto build_loss = [&] {
    return nn::Mean(nn::Mul(nn::LayerNormRows(x), nn::Tensor::Constant(w)));
  };
  nn::Tensor loss = build_loss();
  x.ZeroGrad();
  loss.Backward();
  const nn::Matrix analytic = x.grad();
  const double eps = 1e-5;
  for (size_t i = 0; i < x.value().size(); ++i) {
    nn::Scalar* entry = x.mutable_value().data() + i;
    const nn::Scalar saved = *entry;
    *entry = saved + eps;
    const double up = build_loss().ScalarValue();
    *entry = saved - eps;
    const double down = build_loss().ScalarValue();
    *entry = saved;
    EXPECT_NEAR((up - down) / (2 * eps), analytic.data()[i], 1e-6);
  }
}

// -------------------------------------------- federated trainer plumbing

TEST(FederatedExtensions, QuantizedUploadsReduceUplink) {
  Rng rng(61);
  roadnet::CityGridOptions city;
  city.rows = 6;
  city.cols = 6;
  static roadnet::RoadNetwork net = roadnet::GenerateCityGrid(city, &rng);
  static roadnet::SegmentIndex index(net);
  static traj::TrajectoryEncoder encoder(net, index);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 2;
  Rng data_rng(62);
  const auto clients =
      traj::GenerateFederatedWorkload(net, profile, workload, &data_rng);

  const fl::ModelFactory factory =
      baselines::MakeFactory(baselines::ModelKind::kLightTr, &encoder);

  fl::FederatedTrainerOptions plain;
  plain.rounds = 1;
  plain.local_epochs = 1;
  fl::FederatedTrainer trainer_plain(factory, &clients, plain);
  const auto run_plain = trainer_plain.Run();

  fl::FederatedTrainerOptions quantized = plain;
  quantized.quantize_uploads = true;
  quantized.privacy.clip_norm = 50.0;
  quantized.privacy.noise_multiplier = 0.001;
  fl::FederatedTrainer trainer_q(factory, &clients, quantized);
  const auto run_q = trainer_q.Run();

  EXPECT_LT(run_q.comm.bytes_uplink, run_plain.comm.bytes_uplink / 3);
  EXPECT_EQ(run_q.comm.bytes_downlink, run_plain.comm.bytes_downlink);
  // The trained global model must still be usable.
  const auto recovered =
      trainer_q.global_model()->Recover(clients[0].test[0]);
  EXPECT_EQ(recovered.size(), clients[0].test[0].size());
}

}  // namespace
}  // namespace lighttr
