#include "roadnet/shortest_path.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace lighttr::roadnet {

namespace {

// (distance, vertex) min-heap entry.
using HeapEntry = std::pair<double, VertexId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

std::vector<double> SingleSourceDistances(const RoadNetwork& network,
                                          VertexId source) {
  LIGHTTR_CHECK(network.finalized());
  std::vector<double> dist(network.num_vertices(), kUnreachable);
  dist[source] = 0.0;
  MinHeap heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    for (SegmentId e : network.OutSegments(u)) {
      const Segment& seg = network.segment(e);
      const double nd = d + seg.length_m;
      if (nd < dist[seg.to]) {
        dist[seg.to] = nd;
        heap.push({nd, seg.to});
      }
    }
  }
  return dist;
}

double VertexDistance(const RoadNetwork& network, VertexId u, VertexId v) {
  DijkstraEngine engine(network);
  return engine.Distance(u, v);
}

Result<std::vector<SegmentId>> VertexRoute(const RoadNetwork& network,
                                           VertexId u, VertexId v) {
  LIGHTTR_CHECK(network.finalized());
  if (u == v) return std::vector<SegmentId>{};
  std::vector<double> dist(network.num_vertices(), kUnreachable);
  std::vector<SegmentId> parent_segment(network.num_vertices(),
                                        kInvalidSegment);
  dist[u] = 0.0;
  MinHeap heap;
  heap.push({0.0, u});
  while (!heap.empty()) {
    auto [d, x] = heap.top();
    heap.pop();
    if (x == v) break;
    if (d > dist[x]) continue;
    for (SegmentId e : network.OutSegments(x)) {
      const Segment& seg = network.segment(e);
      const double nd = d + seg.length_m;
      if (nd < dist[seg.to]) {
        dist[seg.to] = nd;
        parent_segment[seg.to] = e;
        heap.push({nd, seg.to});
      }
    }
  }
  if (dist[v] == kUnreachable) {
    return Status::NotFound("no directed route between vertices");
  }
  std::vector<SegmentId> route;
  for (VertexId x = v; x != u;) {
    const SegmentId e = parent_segment[x];
    route.push_back(e);
    x = network.segment(e).from;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

double DirectedTravelDistance(const RoadNetwork& network,
                              DijkstraEngine& engine, const PointPosition& a,
                              const PointPosition& b) {
  const Segment& sa = network.segment(a.segment);
  const Segment& sb = network.segment(b.segment);
  if (a.segment == b.segment && b.ratio >= a.ratio) {
    return (b.ratio - a.ratio) * sa.length_m;
  }
  const double to_end = (1.0 - a.ratio) * sa.length_m;
  const double from_start = b.ratio * sb.length_m;
  const double middle = engine.Distance(sa.to, sb.from);
  if (middle == kUnreachable) return kUnreachable;
  return to_end + middle + from_start;
}

double DirectedTravelDistance(const RoadNetwork& network,
                              const PointPosition& a, const PointPosition& b) {
  DijkstraEngine engine(network);
  return DirectedTravelDistance(network, engine, a, b);
}

double ConstrainedDistance(const RoadNetwork& network, DijkstraEngine& engine,
                           const PointPosition& a, const PointPosition& b) {
  return std::min(DirectedTravelDistance(network, engine, a, b),
                  DirectedTravelDistance(network, engine, b, a));
}

double ConstrainedDistance(const RoadNetwork& network, const PointPosition& a,
                           const PointPosition& b) {
  DijkstraEngine engine(network);
  return ConstrainedDistance(network, engine, a, b);
}

DijkstraEngine::DijkstraEngine(const RoadNetwork& network)
    : network_(network),
      dist_(network.num_vertices(), kUnreachable),
      epoch_(network.num_vertices(), 0) {
  LIGHTTR_CHECK(network.finalized());
}

double DijkstraEngine::Distance(VertexId u, VertexId v) {
  ++current_epoch_;
  auto get = [&](VertexId x) {
    return epoch_[x] == current_epoch_ ? dist_[x] : kUnreachable;
  };
  auto set = [&](VertexId x, double d) {
    epoch_[x] = current_epoch_;
    dist_[x] = d;
  };

  set(u, 0.0);
  MinHeap heap;
  heap.push({0.0, u});
  while (!heap.empty()) {
    auto [d, x] = heap.top();
    heap.pop();
    if (x == v) return d;
    if (d > get(x)) continue;
    for (SegmentId e : network_.OutSegments(x)) {
      const Segment& seg = network_.segment(e);
      const double nd = d + seg.length_m;
      if (nd < get(seg.to)) {
        set(seg.to, nd);
        heap.push({nd, seg.to});
      }
    }
  }
  return get(v);
}

}  // namespace lighttr::roadnet
