// Shared artifact-output policy for the handwritten bench mains.
//
// Every bench emits machine-readable artifacts (BENCH_*.json plus a
// .csv of the human table). Historically they landed silently in the
// process CWD; this helper makes the destination explicit and uniform:
//
//   --output-dir=DIR   highest precedence
//   LIGHTTR_BENCH_DIR  environment fallback
//   "."                default (current directory, as before)
//
// Benches call ParseBenchArgs(argc, argv) once, then WriteArtifact()
// per file; each write prints the resolved path so runs never leave
// mystery files behind. README.md documents the artifact locations.
#ifndef LIGHTTR_BENCH_BENCH_OUTPUT_H_
#define LIGHTTR_BENCH_BENCH_OUTPUT_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/file_util.h"

namespace lighttr::bench {

struct BenchArgs {
  std::string output_dir = ".";
  /// Set when a flag failed to parse; the bench should print usage and
  /// exit non-zero.
  bool error = false;
  /// Set by --smoke (bench_kernels and bench_adversary honour it
  /// today): run tiny sizes and assert invariants instead of measuring.
  bool smoke = false;
};

/// Environment-only resolution (LIGHTTR_BENCH_DIR or "."), for benches
/// that take no flags of their own.
inline BenchArgs EnvBenchArgs() {
  BenchArgs args;
  const char* env_dir = std::getenv("LIGHTTR_BENCH_DIR");
  if (env_dir != nullptr && env_dir[0] != '\0') args.output_dir = env_dir;
  return args;
}

/// Parses the common bench flags. Unknown flags are errors — benches
/// take no positional arguments.
inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args = EnvBenchArgs();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* prefix = "--output-dir=";
    if (std::strncmp(arg, prefix, std::strlen(prefix)) == 0) {
      args.output_dir = arg + std::strlen(prefix);
      if (args.output_dir.empty()) args.error = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      args.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (expected [--output-dir=DIR]"
                           " [--smoke])\n",
                   arg);
      args.error = true;
    }
  }
  return args;
}

/// Writes `contents` to `<output_dir>/<filename>`, creating the
/// directory if needed, and prints where the artifact landed. Returns
/// false (after printing the error) when the write fails.
inline bool WriteArtifact(const BenchArgs& args, const std::string& filename,
                          const std::string& contents) {
  std::error_code ec;
  std::filesystem::create_directories(args.output_dir, ec);
  const std::string path =
      (std::filesystem::path(args.output_dir) / filename).generic_string();
  const Status status = WriteFile(path, contents);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  std::printf("artifact: %s\n", path.c_str());
  return true;
}

}  // namespace lighttr::bench

#endif  // LIGHTTR_BENCH_BENCH_OUTPUT_H_
