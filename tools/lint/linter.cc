#include "lint/linter.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lighttr::lint {
namespace {

// ---------------------------------------------------------------------------
// Source scanning: split a file into per-line code text (comments and
// string/char literals blanked out) and per-line comment text (for
// suppression directives). Blanking preserves column positions.
// ---------------------------------------------------------------------------

struct ScannedFile {
  const SourceFile* source = nullptr;
  std::vector<std::string> code;      // literal-free code, one entry per line
  std::vector<std::string> comments;  // comment text, one entry per line
};

ScannedFile ScanFile(const SourceFile& file) {
  ScannedFile out;
  out.source = &file;
  const std::string& s = file.content;

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // delimiter of the active raw string literal
  bool preproc_string = false;  // inside a string on a preprocessor line
  std::string code_line;
  std::string comment_line;

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   s[i - 1])) &&
                               s[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          state = State::kRaw;
          raw_delim.clear();
          size_t j = i + 2;
          while (j < s.size() && s[j] != '(') raw_delim += s[j++];
          code_line += ' ';
          i = j;  // now positioned at '('
        } else if (c == '"') {
          state = State::kString;
          // Keep string contents on preprocessor lines: the include-graph
          // rule needs to read `#include "path"` targets.
          preproc_string =
              code_line.find_first_not_of(" \t") != std::string::npos &&
              code_line[code_line.find_first_not_of(" \t")] == '#';
          code_line += preproc_string ? '"' : ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          if (preproc_string) code_line += '"';
        } else if (preproc_string) {
          code_line += c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (s.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          i += close.size() - 1;
        }
        break;
      }
    }
  }
  flush_line();  // final (possibly empty) line
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: `lighttr-lint: allow(rule-a, rule-b)` inside a comment
// suppresses those rules on that line.
// ---------------------------------------------------------------------------

bool LineAllows(const ScannedFile& file, size_t line_index,
                const std::string& rule) {
  if (line_index >= file.comments.size()) return false;
  static const std::regex kAllow(R"(lighttr-lint:\s*allow\(([^)]*)\))");
  std::smatch m;
  const std::string& comment = file.comments[line_index];
  if (!std::regex_search(comment, m, kAllow)) return false;
  std::stringstream rules(m[1].str());
  std::string item;
  while (std::getline(rules, item, ',')) {
    item.erase(std::remove_if(item.begin(), item.end(),
                              [](unsigned char ch) { return std::isspace(ch); }),
               item.end());
    if (item == rule) return true;
  }
  return false;
}

std::string NormalizedPath(const std::string& path) {
  std::string p = std::filesystem::path(path).lexically_normal().generic_string();
  return p;
}

bool PathEndsWith(const std::string& normalized, const std::string& suffix) {
  if (normalized.size() < suffix.size()) return false;
  if (normalized.compare(normalized.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
    return false;
  }
  return normalized.size() == suffix.size() ||
         normalized[normalized.size() - suffix.size() - 1] == '/';
}

bool PathContainsDir(const std::string& normalized, const std::string& dir) {
  const std::string mid = "/" + dir + "/";
  return normalized.rfind(dir + "/", 0) == 0 ||
         normalized.find(mid) != std::string::npos;
}

void Report(std::vector<Diagnostic>* diagnostics, const ScannedFile& file,
            size_t line_index, const std::string& rule, std::string message) {
  if (LineAllows(file, line_index, rule)) return;
  diagnostics->push_back(Diagnostic{file.source->path,
                                    static_cast<int>(line_index) + 1, rule,
                                    std::move(message)});
}

// ---------------------------------------------------------------------------
// Rule: no-raw-rand
// ---------------------------------------------------------------------------

void CheckNoRawRand(const ScannedFile& file,
                    std::vector<Diagnostic>* diagnostics) {
  const std::string path = NormalizedPath(file.source->path);
  if (PathEndsWith(path, "common/rng.h") || PathEndsWith(path, "common/rng.cc")) {
    return;  // the one sanctioned home of raw engines
  }
  static const std::regex kRand(R"(\brand\s*\()");
  static const std::regex kDevice(R"(\bstd\s*::\s*random_device\b)");
  static const std::regex kEngine(
      R"(\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine)\b)");
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (std::regex_search(line, kRand)) {
      Report(diagnostics, file, i, "no-raw-rand",
             "call to rand(); draw from a seeded lighttr::Rng instead");
    }
    if (std::regex_search(line, kDevice)) {
      Report(diagnostics, file, i, "no-raw-rand",
             "std::random_device is nondeterministic; seed a lighttr::Rng "
             "explicitly");
    }
    if (std::regex_search(line, kEngine)) {
      Report(diagnostics, file, i, "no-raw-rand",
             "ad-hoc std engine construction; all randomness must flow "
             "through common/rng");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-thread
//
// common/thread_pool is the only sanctioned home of raw std::thread:
// every other concurrency use must go through ThreadPool::ParallelFor,
// whose canonical-order fork/merge discipline is what keeps results
// bitwise identical across thread counts (and keeps the TSan matrix
// meaningful). std::async is banned everywhere — its deferred/eager
// launch policy is scheduler-dependent.
// ---------------------------------------------------------------------------

void CheckNoRawThread(const ScannedFile& file,
                      std::vector<Diagnostic>* diagnostics) {
  const std::string path = NormalizedPath(file.source->path);
  const bool in_pool = PathEndsWith(path, "common/thread_pool.h") ||
                       PathEndsWith(path, "common/thread_pool.cc");
  static const std::regex kThread(R"(\bstd\s*::\s*(thread|jthread)\b)");
  static const std::regex kAsync(R"(\bstd\s*::\s*async\s*\()");
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    std::smatch m;
    if (!in_pool && std::regex_search(line, m, kThread)) {
      Report(diagnostics, file, i, "no-raw-thread",
             "std::" + m[1].str() +
                 " outside common/thread_pool; run the work through "
                 "ThreadPool::ParallelFor so determinism and TSan coverage "
                 "hold");
    }
    if (std::regex_search(line, kAsync)) {
      Report(diagnostics, file, i, "no-raw-thread",
             "std::async has scheduler-dependent launch semantics; use "
             "ThreadPool::ParallelFor");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-iostream-in-lib
// ---------------------------------------------------------------------------

void CheckNoIostreamInLib(const ScannedFile& file,
                          std::vector<Diagnostic>* diagnostics) {
  const std::string path = NormalizedPath(file.source->path);
  if (!PathContainsDir(path, "src")) return;  // tests/bench/tools may print
  if (PathEndsWith(path, "common/table_printer.h") ||
      PathEndsWith(path, "common/table_printer.cc") ||
      PathEndsWith(path, "common/check.h")) {
    return;
  }
  static const std::regex kStream(R"(\bstd\s*::\s*(cout|cerr|clog)\b)");
  for (size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(file.code[i], m, kStream)) {
      Report(diagnostics, file, i, "no-iostream-in-lib",
             "std::" + m[1].str() +
                 " in library code; route output through common/table_printer "
                 "or return data to the caller");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-fn
// ---------------------------------------------------------------------------

struct BannedFn {
  const char* name;
  const char* reason;
};

constexpr BannedFn kBannedFns[] = {
    {"atof", "silently returns 0.0 on garbage; use std::strtod or std::stod"},
    {"atoi", "silently returns 0 on garbage; use std::strtol or std::stoi"},
    {"atol", "silently returns 0 on garbage; use std::strtol"},
    {"strcpy", "unbounded copy; use std::string or std::snprintf"},
    {"strcat", "unbounded append; use std::string"},
    {"sprintf", "unbounded format; use std::snprintf"},
    {"vsprintf", "unbounded format; use std::vsnprintf"},
    {"gets", "unbounded read; use std::getline"},
    {"system", "shells out with inherited environment; spawn explicitly or "
               "restructure"},
    {"tmpnam", "racy temp naming; derive paths from a seed or PID instead"},
    {"mktemp", "racy temp naming; use WriteFileAtomic (common/file_util), "
               "which owns its temp-file lifecycle"},
};

void CheckBannedFn(const ScannedFile& file,
                   std::vector<Diagnostic>* diagnostics) {
  for (const BannedFn& banned : kBannedFns) {
    // Identifier followed by '(' — optionally std::-qualified, but not a
    // member access (x.system(...)) or other qualification.
    const std::regex call(std::string(R"((^|[^\w.>:])(std\s*::\s*)?)") +
                          banned.name + R"(\s*\()");
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (std::regex_search(file.code[i], call)) {
        Report(diagnostics, file, i, "banned-fn",
               std::string(banned.name) + ": " + banned.reason);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-direct-persistence
//
// src/fl and src/nn hold crash-safe state (snapshots, checkpoints, the
// round journal); every byte they persist must go through
// common/file_util so it is atomic (or CRC-tagged append). A raw
// std::ofstream/std::fstream there can tear files on crash and silently
// bypass the durability contract.
// ---------------------------------------------------------------------------

void CheckNoDirectPersistence(const ScannedFile& file,
                              std::vector<Diagnostic>* diagnostics) {
  const std::string path = NormalizedPath(file.source->path);
  if (!PathContainsDir(path, "src/fl") && !PathContainsDir(path, "src/nn")) {
    return;
  }
  static const std::regex kStream(R"(\bstd\s*::\s*(o?fstream)\b)");
  static const std::regex kFopen(R"((^|[^\w.>:])(std\s*::\s*)?fopen\s*\()");
  for (size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(file.code[i], m, kStream)) {
      Report(diagnostics, file, i, "no-direct-persistence",
             "std::" + m[1].str() +
                 " in src/fl|src/nn; persist through common/file_util "
                 "(WriteFileAtomic / AppendToFile) so crashes cannot tear "
                 "files");
    }
    if (std::regex_search(file.code[i], kFopen)) {
      Report(diagnostics, file, i, "no-direct-persistence",
             "fopen in src/fl|src/nn; persist through common/file_util "
             "(WriteFileAtomic / AppendToFile) so crashes cannot tear files");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-ignored-status
//
// Pass 1 collects names of functions declared to return Status or
// Result<T> anywhere in the input set. Pass 2 flags statements that are
// a bare call to such a function: the return value never touched. The
// compiler's [[nodiscard]] already rejects most of these; the lint rule
// additionally covers code compiled without LIGHTTR_WERROR and fixture
// trees. Explicit discards spell `(void)call(...)` (not matched — the
// statement no longer begins with the callee) plus a rationale comment.
// ---------------------------------------------------------------------------

std::set<std::string> CollectStatusFunctions(
    const std::vector<ScannedFile>& files) {
  std::set<std::string> names;
  static const std::regex kDecl(
      R"((?:^|[^\w<])(?:[A-Za-z_]\w*\s*::\s*)*(?:Status|Result\s*<[^;={}]*>)\s+([A-Za-z_]\w*)\s*\()");
  for (const ScannedFile& file : files) {
    std::string joined;
    for (const std::string& line : file.code) {
      joined += line;
      joined += '\n';
    }
    for (std::sregex_iterator it(joined.begin(), joined.end(), kDecl), end;
         it != end; ++it) {
      names.insert((*it)[1].str());
    }
  }
  return names;
}

void CheckNoIgnoredStatus(const ScannedFile& file,
                          const std::set<std::string>& status_fns,
                          std::vector<Diagnostic>* diagnostics) {
  if (status_fns.empty()) return;
  // Build a statement stream: code lines minus preprocessor directives,
  // split at ; { } — each statement remembers its starting line.
  struct Statement {
    std::string text;
    size_t line = 0;
    char terminator = ';';
  };
  std::vector<Statement> statements;
  Statement current;
  bool current_started = false;
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    const size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    for (char c : line) {
      if (c == ';' || c == '{' || c == '}') {
        current.terminator = c;
        statements.push_back(current);
        current = Statement{};
        current_started = false;
        continue;
      }
      if (!current_started && !std::isspace(static_cast<unsigned char>(c))) {
        current.line = i;
        current_started = true;
      }
      if (current_started) current.text += c;
    }
    if (current_started) current.text += ' ';
  }

  // A bare call statement: optional qualifier chain (ids joined by :: . ->
  // where non-final members may be zero-arg calls), then a known name,
  // then '('. Anchored at statement start so declarations ("Status Foo(")
  // and keyword statements ("return Foo(…)") never match.
  static const std::regex kCallHead(
      R"(^(?:[A-Za-z_]\w*(?:\(\s*\))?\s*(?:::|\.|->)\s*)*([A-Za-z_]\w*)\s*\()");
  for (const Statement& st : statements) {
    if (st.terminator != ';') continue;
    std::smatch m;
    if (!std::regex_search(st.text, m, kCallHead)) continue;
    const std::string callee = m[1].str();
    if (status_fns.count(callee) == 0) continue;
    Report(diagnostics, file, st.line, "no-ignored-status",
           "result of Status-returning call '" + callee +
               "' is discarded; handle it, LIGHTTR_CHECK_OK it, or discard "
               "explicitly with (void) and a rationale");
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-nonfinite
//
// Raw std::isnan / std::isinf calls scattered through the tree made the
// self-healing work inconsistent: some sites forgot the Inf half, others
// broke under -ffast-math assumptions. common/finite.h (IsNan / IsInf /
// IsFinite / ScanFinite) is the one sanctioned wrapper; src/fl/health is
// the classifier built on top of it. std::isfinite stays legal — the
// wrappers are for the two easy-to-misuse predicates.
// ---------------------------------------------------------------------------

void CheckNoRawNonfinite(const ScannedFile& file,
                         std::vector<Diagnostic>* diagnostics) {
  const std::string path = NormalizedPath(file.source->path);
  if (PathContainsDir(path, "src/common") ||
      PathEndsWith(path, "fl/health.h") || PathEndsWith(path, "fl/health.cc")) {
    return;  // the wrappers themselves, and the classifier built on them
  }
  static const std::regex kRaw(
      R"((^|[^\w.>:])(std\s*::\s*)?(isnan|isinf)\s*\()");
  for (size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(file.code[i], m, kRaw)) {
      Report(diagnostics, file, i, "no-raw-nonfinite",
             m[3].str() +
                 " outside common/finite; use lighttr::IsNan/IsInf (or "
                 "ScanFinite) so non-finite handling stays uniform");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-wire
//
// reinterpret_cast / memcpy struct (de)serialization scattered through
// the tree is how silent layout drift and unchecked-bounds decode bugs
// happen. common/binary_io is the one sanctioned place bytes are
// reinterpreted (bounds-checked, length-capped); fl/transport builds
// the framed wire protocol on top of it. Everywhere else in src/,
// serialization must flow through BinaryWriter/BinaryReader, and CRC
// trailers through common/crc32's Append/CheckCrc32Trailer.
// ---------------------------------------------------------------------------

void CheckNoRawWire(const ScannedFile& file,
                    std::vector<Diagnostic>* diagnostics) {
  const std::string path = NormalizedPath(file.source->path);
  if (!PathContainsDir(path, "src")) return;  // tests may craft hostile bytes
  if (PathEndsWith(path, "common/binary_io.h") ||
      PathContainsDir(path, "fl/transport")) {
    return;
  }
  static const std::regex kCast(R"(\breinterpret_cast\s*<)");
  static const std::regex kMemcpy(R"((^|[^\w.>:])(std\s*::\s*)?memcpy\s*\()");
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (std::regex_search(line, kCast)) {
      Report(diagnostics, file, i, "no-raw-wire",
             "reinterpret_cast in library code; (de)serialize through "
             "common/binary_io (BinaryWriter/BinaryReader) instead of "
             "reinterpreting struct bytes");
    }
    if (std::regex_search(line, kMemcpy)) {
      Report(diagnostics, file, i, "no-raw-wire",
             "memcpy-based serialization outside common/binary_io and "
             "fl/transport; use BinaryWriter/BinaryReader (or std::copy "
             "for typed buffers)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-include-cycle
// ---------------------------------------------------------------------------

struct IncludeEdge {
  size_t target;  // index into the scanned-file vector
  size_t line;    // line of the #include
};

void CheckIncludeCycles(const std::vector<ScannedFile>& files,
                        std::vector<Diagnostic>* diagnostics) {
  // Resolve quoted includes by path-suffix match against the input set.
  std::vector<std::string> normalized(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    normalized[i] = NormalizedPath(files[i].source->path);
  }
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  std::vector<std::vector<IncludeEdge>> graph(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    for (size_t l = 0; l < files[i].code.size(); ++l) {
      std::smatch m;
      if (!std::regex_search(files[i].code[l], m, kInclude)) continue;
      const std::string target = m[1].str();
      for (size_t j = 0; j < files.size(); ++j) {
        if (PathEndsWith(normalized[j], target)) {
          graph[i].push_back(IncludeEdge{j, l});
          break;
        }
      }
    }
  }

  // Iterative DFS with colors; report each back edge as one cycle.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files.size(), Color::kWhite);
  std::vector<size_t> parent_edge(files.size(), 0);
  std::set<std::pair<size_t, size_t>> reported;

  struct Frame {
    size_t node;
    size_t next_edge = 0;
  };
  for (size_t root = 0; root < files.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{Frame{root}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_edge < graph[frame.node].size()) {
        const IncludeEdge edge = graph[frame.node][frame.next_edge++];
        if (color[edge.target] == Color::kWhite) {
          color[edge.target] = Color::kGray;
          stack.push_back(Frame{edge.target});
        } else if (color[edge.target] == Color::kGray) {
          // Found a cycle: walk the stack back to the target.
          if (reported.insert({frame.node, edge.target}).second) {
            std::string chain = files[edge.target].source->path;
            size_t k = stack.size();
            std::vector<std::string> tail;
            while (k > 0 && stack[k - 1].node != edge.target) {
              tail.push_back(files[stack[k - 1].node].source->path);
              --k;
            }
            for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
              chain += " -> " + *it;
            }
            chain += " -> " + files[edge.target].source->path;
            Report(diagnostics, files[frame.node], edge.line,
                   "no-include-cycle", "include cycle: " + chain);
          }
        }
      } else {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
}

}  // namespace

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  std::ostringstream os;
  os << diagnostic.file << ":" << diagnostic.line << ": " << diagnostic.rule
     << ": " << diagnostic.message;
  return os.str();
}

const std::vector<std::string>& AllRuleNames() {
  static const std::vector<std::string> kNames = {
      "no-raw-rand",      "no-ignored-status",     "no-iostream-in-lib",
      "no-include-cycle", "no-direct-persistence", "banned-fn",
      "no-raw-thread",    "no-raw-nonfinite",      "no-raw-wire"};
  return kNames;
}

std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files) {
  std::vector<ScannedFile> scanned;
  scanned.reserve(files.size());
  for (const SourceFile& file : files) scanned.push_back(ScanFile(file));

  std::vector<Diagnostic> diagnostics;
  const std::set<std::string> status_fns = CollectStatusFunctions(scanned);
  for (const ScannedFile& file : scanned) {
    CheckNoRawRand(file, &diagnostics);
    CheckNoRawThread(file, &diagnostics);
    CheckNoIostreamInLib(file, &diagnostics);
    CheckBannedFn(file, &diagnostics);
    CheckNoDirectPersistence(file, &diagnostics);
    CheckNoRawNonfinite(file, &diagnostics);
    CheckNoRawWire(file, &diagnostics);
    CheckNoIgnoredStatus(file, status_fns, &diagnostics);
  }
  CheckIncludeCycles(scanned, &diagnostics);

  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return diagnostics;
}

std::vector<Diagnostic> LintPaths(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  std::vector<Diagnostic> diagnostics;
  auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
  };
  auto load = [&files](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    files.push_back(SourceFile{p.generic_string(), contents.str()});
  };
  for (const std::string& root : roots) {
    const fs::path path(root);
    if (fs::is_regular_file(path)) {
      load(path);
    } else if (fs::is_directory(path)) {
      std::vector<fs::path> found;
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && is_source(entry.path())) {
          found.push_back(entry.path());
        }
      }
      std::sort(found.begin(), found.end());
      for (const fs::path& p : found) load(p);
    } else {
      diagnostics.push_back(
          Diagnostic{root, 0, "bad-input", "no such file or directory"});
    }
  }
  std::vector<Diagnostic> lint_result = Lint(files);
  diagnostics.insert(diagnostics.end(), lint_result.begin(),
                     lint_result.end());
  return diagnostics;
}

}  // namespace lighttr::lint
