// Fleet recovery: several taxi platform centers (clients) with
// spatially skewed (Non-IID) local data collaboratively train LightTR
// without sharing raw trajectories, then each center recovers its own
// low-sampling-rate trips with the global model.
//
// Demonstrates: teacher pre-training (Algorithm 1), meta-knowledge
// enhanced federated training (Algorithms 2-3), per-round convergence,
// communication accounting, and the gain over plain FedAvg.
#include <cstdio>

#include "common/table_printer.h"
#include "eval/harness.h"

int main() {
  using namespace lighttr;

  eval::ExperimentEnv env(/*rows=*/9, /*cols=*/9, /*seed=*/3);

  // Six platform centers; each records taxis around its own home region.
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 16;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 6;
  workload.keep_ratio = 0.125;
  const auto clients = env.MakeWorkload(profile, workload, /*seed=*/4);
  std::printf("%d platform centers, %zu trajectories each\n",
              workload.num_clients, clients[0].TotalSize());

  eval::MethodRunOptions options;
  options.fed.rounds = 6;
  options.fed.local_epochs = 2;
  options.fed.learning_rate = 3e-3;
  options.teacher.learning_rate = 3e-3;

  // Full LightTR.
  const eval::MethodResult with_meta = eval::RunFederatedMethod(
      env, baselines::ModelKind::kLightTr, clients, options);
  // Plain FedAvg (the w/o_Meta ablation).
  eval::MethodRunOptions plain = options;
  plain.lighttr_use_teacher = false;
  const eval::MethodResult without_meta = eval::RunFederatedMethod(
      env, baselines::ModelKind::kLightTr, clients, plain);

  std::printf("\nConvergence (validation segment accuracy per round):\n");
  for (size_t i = 0; i < with_meta.run.history.size(); ++i) {
    std::printf("  round %d: LightTR=%.3f  FedAvg-only=%.3f\n",
                with_meta.run.history[i].round,
                with_meta.run.history[i].global_valid_accuracy,
                without_meta.run.history[i].global_valid_accuracy);
  }

  TablePrinter table({"Variant", "Recall", "Precision", "MAE(km)",
                      "RMSE(km)", "Comm(KiB)"});
  for (const auto* result : {&with_meta, &without_meta}) {
    table.AddRow(
        {result == &with_meta ? "LightTR (meta)" : "w/o meta (FedAvg)",
         TablePrinter::Fmt(result->metrics.recall),
         TablePrinter::Fmt(result->metrics.precision),
         TablePrinter::Fmt(result->metrics.mae_km),
         TablePrinter::Fmt(result->metrics.rmse_km),
         TablePrinter::Fmt(
             static_cast<double>(result->run.comm.TotalBytes()) / 1024.0,
             0)});
  }
  std::printf("\n%s", table.ToString().c_str());

  // Under a 10 Mbps uplink with 50 ms latency, the whole training run
  // would have cost this much transfer time:
  std::printf("simulated transfer time @10Mbps+50ms: %.2f s\n",
              with_meta.run.comm.SimulatedSeconds(10e6 / 8.0, 0.05));
  return 0;
}
