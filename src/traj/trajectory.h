// Trajectory data model (paper Definitions 3, 5, 6):
// raw GPS trajectories, map-matched epsilon-sampling-rate trajectories,
// and incomplete trajectories with an observation mask.
#ifndef LIGHTTR_TRAJ_TRAJECTORY_H_
#define LIGHTTR_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geo/geo_point.h"
#include "roadnet/road_network.h"

namespace lighttr::traj {

/// A raw GPS sample (p_i, t_i) of Definition 3.
struct RawPoint {
  geo::GeoPoint position;
  double t = 0.0;  // seconds
};

/// A raw (possibly low-sampling-rate) trajectory tau (Definition 3).
struct RawTrajectory {
  std::vector<RawPoint> points;
  int64_t driver_id = 0;
};

/// A map-matched trajectory point (p~_i, t_i): road segment + moving
/// ratio at a timestamp, plus its time bin tid (Eq. 4).
struct MatchedPoint {
  roadnet::PointPosition position;
  double t = 0.0;
  int64_t tid = 0;
};

/// A map-matched epsilon-sampling-rate trajectory T (Definition 5): one
/// point per sampling interval, tid strictly increasing by 1.
struct MatchedTrajectory {
  std::vector<MatchedPoint> points;
  double epsilon_s = 0.0;  // sampling rate (Definition 4)
  int64_t driver_id = 0;

  size_t size() const { return points.size(); }
};

/// An incomplete map-matched trajectory T_icp (Definition 6): the full
/// ground truth plus an observation mask. `observed[i]` is true for
/// points kept after keep-ratio downsampling; the recovery task is to
/// predict position at every masked index.
struct IncompleteTrajectory {
  MatchedTrajectory ground_truth;
  std::vector<bool> observed;

  /// Indices of the observed (kept) points, ascending.
  std::vector<size_t> ObservedIndices() const {
    std::vector<size_t> idx;
    for (size_t i = 0; i < observed.size(); ++i) {
      if (observed[i]) idx.push_back(i);
    }
    return idx;
  }

  /// Indices of the missing (to recover) points, ascending.
  std::vector<size_t> MissingIndices() const {
    std::vector<size_t> idx;
    for (size_t i = 0; i < observed.size(); ++i) {
      if (!observed[i]) idx.push_back(i);
    }
    return idx;
  }

  size_t size() const { return ground_truth.size(); }
};

/// Converts a matched trajectory back to raw GPS points, optionally adding
/// isotropic Gaussian noise of `noise_m` meters (simulated GPS error).
RawTrajectory ToRawTrajectory(const roadnet::RoadNetwork& network,
                              const MatchedTrajectory& matched,
                              double noise_m, Rng* rng);

/// Ingestion-boundary validation of a raw GPS trajectory (Definition
/// 3): rejects non-finite coordinates/timestamps, non-monotonic
/// timestamps, and points outside the road network's bounding box
/// (padded by `grid_margin_deg` degrees, since GPS noise legitimately
/// strays slightly past the outermost vertices). Malformed inputs are
/// refused here so NaNs never propagate into map matching or training.
[[nodiscard]] Status ValidateTrajectory(const roadnet::RoadNetwork& network,
                                        const RawTrajectory& trajectory,
                                        double grid_margin_deg = 0.01);

/// Validates Definition 5 invariants: consecutive tids differ by one,
/// ratios are within [0, 1], segments are valid ids, and timestamps and
/// ratios are finite.
[[nodiscard]] Status ValidateMatchedTrajectory(const roadnet::RoadNetwork& network,
                                 const MatchedTrajectory& trajectory);

}  // namespace lighttr::traj

#endif  // LIGHTTR_TRAJ_TRAJECTORY_H_
