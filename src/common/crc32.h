// CRC-32 (IEEE 802.3, polynomial 0xEDB88320): the integrity checksum
// used by every persistence path (checkpoints, run-state snapshots, the
// round journal). A checksum mismatch means the bytes on disk are not
// the bytes that were written — truncation, a torn write, or bit rot —
// and the loader must reject the file instead of propagating garbage
// into the global model.
#ifndef LIGHTTR_COMMON_CRC32_H_
#define LIGHTTR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace lighttr {

/// Extends a running CRC-32 over `n` bytes. Start from `crc = 0` and
/// chain calls to checksum discontiguous buffers.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t n);

/// One-shot CRC-32 of a buffer.
inline uint32_t Crc32(const void* data, size_t n) {
  return Crc32Update(0, data, n);
}

/// One-shot CRC-32 of a string's bytes.
inline uint32_t Crc32(const std::string& bytes) {
  return Crc32Update(0, bytes.data(), bytes.size());
}

/// Appends the CRC-32 of `buffer` as four trailing bytes (low byte
/// first). This is the one sanctioned way to stamp the integrity
/// trailer every persistence blob and wire frame carries; pairing it
/// with CheckCrc32Trailer keeps the byte layout in a single place
/// instead of ad-hoc reinterpret_cast/memcpy at every call site.
void AppendCrc32Trailer(std::string* buffer);

/// Verifies a trailer appended by AppendCrc32Trailer. On success stores
/// the body length (bytes before the trailer) in `body_len`. A short
/// buffer or a checksum mismatch — truncation, bit rot, an in-flight
/// flip — yields a non-OK Status.
[[nodiscard]] Status CheckCrc32Trailer(const std::string& bytes,
                                       size_t* body_len);

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_CRC32_H_
