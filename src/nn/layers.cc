#include "nn/layers.h"

#include <cmath>

#include "common/check.h"
#include "nn/ops.h"

namespace lighttr::nn {

Dense::Dense(size_t in_dim, size_t out_dim, const std::string& prefix,
             ParameterSet* params, Rng* rng) {
  LIGHTTR_CHECK(params != nullptr);
  LIGHTTR_CHECK_GE(in_dim, 1u);
  LIGHTTR_CHECK_GE(out_dim, 1u);
  w_ = Tensor::Variable(Matrix::Xavier(in_dim, out_dim, rng));
  b_ = Tensor::Variable(Matrix::Zeros(1, out_dim));
  params->Register(prefix + ".w", w_);
  params->Register(prefix + ".b", b_);
}

Tensor Dense::Forward(const Tensor& x) const {
  LIGHTTR_DCHECK_EQ(x.cols(), in_dim());
  return AddRowBroadcast(MatMul(x, w_), b_);
}

GruCell::GruCell(size_t input_dim, size_t hidden_dim,
                 const std::string& prefix, ParameterSet* params, Rng* rng)
    : hidden_dim_(hidden_dim),
      gate_r_(hidden_dim + input_dim, hidden_dim, prefix + ".r", params, rng),
      gate_z_(hidden_dim + input_dim, hidden_dim, prefix + ".z", params, rng),
      gate_h_(hidden_dim + input_dim, hidden_dim, prefix + ".h", params, rng) {}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h_prev) const {
  LIGHTTR_DCHECK_EQ(h_prev.cols(), hidden_dim_);
  LIGHTTR_DCHECK_EQ(h_prev.rows(), x.rows());
  // One fused graph node instead of the ~12-op chain
  //   Add(h, Mul(z, Sub(Tanh(...), h))) — see GruStep in nn/ops.h.
  return GruStep(x, h_prev, gate_r_.weight(), gate_r_.bias(),
                 gate_z_.weight(), gate_z_.bias(), gate_h_.weight(),
                 gate_h_.bias());
}

Tensor GruCell::InitialState() const {
  return Tensor::Constant(Matrix::Zeros(1, hidden_dim_));
}

LstmCell::LstmCell(size_t input_dim, size_t hidden_dim,
                   const std::string& prefix, ParameterSet* params, Rng* rng)
    : hidden_dim_(hidden_dim),
      gate_i_(hidden_dim + input_dim, hidden_dim, prefix + ".i", params, rng),
      gate_f_(hidden_dim + input_dim, hidden_dim, prefix + ".f", params, rng),
      gate_o_(hidden_dim + input_dim, hidden_dim, prefix + ".o", params, rng),
      gate_g_(hidden_dim + input_dim, hidden_dim, prefix + ".g", params,
              rng) {}

LstmCell::State LstmCell::Forward(const Tensor& x,
                                  const State& previous) const {
  LIGHTTR_DCHECK_EQ(previous.h.cols(), hidden_dim_);
  LIGHTTR_DCHECK_EQ(previous.c.cols(), hidden_dim_);
  LIGHTTR_DCHECK_EQ(previous.h.rows(), x.rows());
  const Tensor hx = ConcatCols(previous.h, x);
  const Tensor i = Sigmoid(gate_i_.Forward(hx));
  const Tensor f = Sigmoid(gate_f_.Forward(hx));
  const Tensor o = Sigmoid(gate_o_.Forward(hx));
  const Tensor g = Tanh(gate_g_.Forward(hx));
  State next;
  next.c = Add(Mul(f, previous.c), Mul(i, g));
  next.h = Mul(o, Tanh(next.c));
  return next;
}

LstmCell::State LstmCell::InitialState() const {
  return State{Tensor::Constant(Matrix::Zeros(1, hidden_dim_)),
               Tensor::Constant(Matrix::Zeros(1, hidden_dim_))};
}

RnnCell::RnnCell(size_t input_dim, size_t hidden_dim,
                 const std::string& prefix, ParameterSet* params, Rng* rng)
    : hidden_dim_(hidden_dim),
      cell_(hidden_dim + input_dim, hidden_dim, prefix + ".cell", params,
            rng) {}

Tensor RnnCell::Forward(const Tensor& x, const Tensor& h_prev) const {
  LIGHTTR_DCHECK_EQ(h_prev.cols(), hidden_dim_);
  LIGHTTR_DCHECK_EQ(h_prev.rows(), x.rows());
  return Tanh(cell_.Forward(ConcatCols(h_prev, x)));
}

Tensor RnnCell::InitialState() const {
  return Tensor::Constant(Matrix::Zeros(1, hidden_dim_));
}

Embedding::Embedding(size_t vocab, size_t dim, const std::string& prefix,
                     ParameterSet* params, Rng* rng) {
  LIGHTTR_CHECK(params != nullptr);
  // Small-range init, as customary for embeddings.
  table_ = Tensor::Variable(Matrix::RandomUniform(vocab, dim, 0.1, rng));
  params->Register(prefix + ".table", table_);
}

Tensor Embedding::Forward(const std::vector<int>& ids) const {
  return EmbeddingLookup(table_, ids);
}

CausalConv1d::CausalConv1d(size_t in_dim, size_t out_dim, size_t kernel,
                           const std::string& prefix, ParameterSet* params,
                           Rng* rng)
    : kernel_(kernel),
      dense_(in_dim * kernel, out_dim, prefix + ".conv", params, rng) {
  LIGHTTR_CHECK_GE(kernel, 1u);
}

Tensor CausalConv1d::Forward(const Tensor& x) const {
  return dense_.Forward(Im2RowCausal(x, kernel_));
}

Tensor ScaledDotProductAttention(const Tensor& q, const Tensor& k,
                                 const Tensor& v) {
  LIGHTTR_DCHECK_EQ(q.cols(), k.cols());
  LIGHTTR_DCHECK_EQ(k.rows(), v.rows());
  const auto d = static_cast<Scalar>(q.cols());
  const Tensor scores =
      Scale(MatMul(q, Transpose(k)), Scalar{1} / std::sqrt(d));
  return MatMul(SoftmaxRows(scores), v);
}

}  // namespace lighttr::nn
