// AVX2+FMA kernel table. The ONLY translation unit in the tree compiled
// with -mavx2 -mfma and the only one allowed to include <immintrin.h>
// (the no-raw-intrinsics lint rule enforces this); every other TU stays
// portable and reaches these kernels through the dispatch table.
//
// Determinism: each output element's reduction order is fixed by the
// loop structure alone — vector lanes always cover the same index
// ranges for a given shape, tails always run the same scalar code at
// the same positions — so results are bitwise stable across runs and
// thread splits. They differ from the scalar table by bounded rounding
// (FMA keeps the product unrounded; the vector exp is a polynomial,
// not libm) — kernels_test bounds that drift against the scalar
// reference.
#include "nn/kernels/kernel_table.h"

// The build system compiles this TU with -mavx2 -mfma when the compiler
// supports them; anywhere that didn't happen (non-x86 target, ancient
// toolchain) the table is simply absent and dispatch stays scalar.
#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace lighttr::nn::kernels {

namespace {

// Same blocking geometry as the scalar table (see kernels.cc): B panel
// sized for L2, C row segment L1-resident across the k loop.
constexpr size_t kBlockK = 64;
constexpr size_t kBlockN = 256;

// ---------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------

// One k-quad of row updates over columns [jj, j_end): crow[j] +=
// a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j], 8 columns per iteration
// (two 4-wide FMA chains amortize the loop overhead).
inline void RowQuadUpdate(Scalar* crow, const Scalar* b0, const Scalar* b1,
                          const Scalar* b2, const Scalar* b3, __m256d a0,
                          __m256d a1, __m256d a2, __m256d a3, Scalar s0,
                          Scalar s1, Scalar s2, Scalar s3, size_t jj,
                          size_t j_end) {
  size_t j = jj;
  for (; j + 8 <= j_end; j += 8) {
    __m256d c0 = _mm256_loadu_pd(crow + j);
    __m256d c1 = _mm256_loadu_pd(crow + j + 4);
    c0 = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + j), c0);
    c1 = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + j + 4), c1);
    c0 = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b1 + j), c0);
    c1 = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b1 + j + 4), c1);
    c0 = _mm256_fmadd_pd(a2, _mm256_loadu_pd(b2 + j), c0);
    c1 = _mm256_fmadd_pd(a2, _mm256_loadu_pd(b2 + j + 4), c1);
    c0 = _mm256_fmadd_pd(a3, _mm256_loadu_pd(b3 + j), c0);
    c1 = _mm256_fmadd_pd(a3, _mm256_loadu_pd(b3 + j + 4), c1);
    _mm256_storeu_pd(crow + j, c0);
    _mm256_storeu_pd(crow + j + 4, c1);
  }
  for (; j + 4 <= j_end; j += 4) {
    __m256d c0 = _mm256_loadu_pd(crow + j);
    c0 = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + j), c0);
    c0 = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b1 + j), c0);
    c0 = _mm256_fmadd_pd(a2, _mm256_loadu_pd(b2 + j), c0);
    c0 = _mm256_fmadd_pd(a3, _mm256_loadu_pd(b3 + j), c0);
    _mm256_storeu_pd(crow + j, c0);
  }
  for (; j < j_end; ++j) {
    crow[j] += s0 * b0[j] + s1 * b1[j] + s2 * b2[j] + s3 * b3[j];
  }
}

// Single-k row update: crow[j] += av * brow[j] over [jj, j_end).
inline void RowUpdate(Scalar* crow, const Scalar* brow, Scalar av, size_t jj,
                      size_t j_end) {
  const __m256d avv = _mm256_set1_pd(av);
  size_t j = jj;
  for (; j + 4 <= j_end; j += 4) {
    const __m256d c0 = _mm256_fmadd_pd(avv, _mm256_loadu_pd(brow + j),
                                       _mm256_loadu_pd(crow + j));
    _mm256_storeu_pd(crow + j, c0);
  }
  for (; j < j_end; ++j) crow[j] += av * brow[j];
}

// Scalar column tail (n % 4 columns). std::fma, not a*b+c: the vector
// paths keep the product unrounded, and leaving the scalar tail to the
// compiler's contraction whims could make the same element round
// differently depending on which row path handled it.
inline void ScalarColumnTail(Scalar* crow, const Scalar* arow, const Scalar* b,
                             size_t n, size_t pp, size_t p_end, size_t j,
                             size_t j_end) {
  for (; j < j_end; ++j) {
    Scalar acc = crow[j];
    for (size_t p = pp; p < p_end; ++p) acc = std::fma(arow[p], b[p * n + j], acc);
    crow[j] = acc;
  }
}

// One row of the blocked kernel over columns [jj, j_end), k-range
// [pp, p_end): accumulators live in registers across the whole k-range
// (one C load + store per column group instead of one per k step).
inline void RowBlockUpdate(Scalar* crow, const Scalar* arow, const Scalar* b,
                           size_t n, size_t pp, size_t p_end, size_t jj,
                           size_t j_end) {
  size_t j = jj;
  for (; j + 8 <= j_end; j += 8) {
    __m256d c0 = _mm256_loadu_pd(crow + j);
    __m256d c1 = _mm256_loadu_pd(crow + j + 4);
    for (size_t p = pp; p < p_end; ++p) {
      const __m256d av = _mm256_set1_pd(arow[p]);
      const Scalar* brow = b + p * n;
      c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + j), c0);
      c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + j + 4), c1);
    }
    _mm256_storeu_pd(crow + j, c0);
    _mm256_storeu_pd(crow + j + 4, c1);
  }
  for (; j + 4 <= j_end; j += 4) {
    __m256d c0 = _mm256_loadu_pd(crow + j);
    for (size_t p = pp; p < p_end; ++p) {
      c0 = _mm256_fmadd_pd(_mm256_set1_pd(arow[p]),
                           _mm256_loadu_pd(b + p * n + j), c0);
    }
    _mm256_storeu_pd(crow + j, c0);
  }
  ScalarColumnTail(crow, arow, b, n, pp, p_end, j, j_end);
}

// Register-tiled blocked GEMM: 4 rows x 8 columns of C held in eight
// ymm accumulators across the k-block, so each k step costs two B loads
// plus four broadcasts for eight FMAs — FMA-bound instead of load-bound.
//
// Determinism across row splits: every path (4-row tile, 1-row tail,
// 4-wide and scalar column tails) applies exactly one fused
// multiply-add per k step to each C element, in the same pp-block
// order, so an element's reduction sequence does not depend on which
// tile or split boundary covered its row.
void Avx2GemmRowsBlocked(const Scalar* a, const Scalar* b, Scalar* c, size_t k,
                         size_t n, size_t row_begin, size_t row_end) {
  for (size_t jj = 0; jj < n; jj += kBlockN) {
    const size_t j_end = std::min(jj + kBlockN, n);
    for (size_t pp = 0; pp < k; pp += kBlockK) {
      const size_t p_end = std::min(pp + kBlockK, k);
      size_t i = row_begin;
      for (; i + 4 <= row_end; i += 4) {
        const Scalar* a0 = a + i * k;
        const Scalar* a1 = a0 + k;
        const Scalar* a2 = a1 + k;
        const Scalar* a3 = a2 + k;
        Scalar* c0 = c + i * n;
        Scalar* c1 = c0 + n;
        Scalar* c2 = c1 + n;
        Scalar* c3 = c2 + n;
        size_t j = jj;
        for (; j + 8 <= j_end; j += 8) {
          __m256d acc00 = _mm256_loadu_pd(c0 + j);
          __m256d acc01 = _mm256_loadu_pd(c0 + j + 4);
          __m256d acc10 = _mm256_loadu_pd(c1 + j);
          __m256d acc11 = _mm256_loadu_pd(c1 + j + 4);
          __m256d acc20 = _mm256_loadu_pd(c2 + j);
          __m256d acc21 = _mm256_loadu_pd(c2 + j + 4);
          __m256d acc30 = _mm256_loadu_pd(c3 + j);
          __m256d acc31 = _mm256_loadu_pd(c3 + j + 4);
          for (size_t p = pp; p < p_end; ++p) {
            const Scalar* brow = b + p * n;
            const __m256d bv0 = _mm256_loadu_pd(brow + j);
            const __m256d bv1 = _mm256_loadu_pd(brow + j + 4);
            const __m256d av0 = _mm256_set1_pd(a0[p]);
            acc00 = _mm256_fmadd_pd(av0, bv0, acc00);
            acc01 = _mm256_fmadd_pd(av0, bv1, acc01);
            const __m256d av1 = _mm256_set1_pd(a1[p]);
            acc10 = _mm256_fmadd_pd(av1, bv0, acc10);
            acc11 = _mm256_fmadd_pd(av1, bv1, acc11);
            const __m256d av2 = _mm256_set1_pd(a2[p]);
            acc20 = _mm256_fmadd_pd(av2, bv0, acc20);
            acc21 = _mm256_fmadd_pd(av2, bv1, acc21);
            const __m256d av3 = _mm256_set1_pd(a3[p]);
            acc30 = _mm256_fmadd_pd(av3, bv0, acc30);
            acc31 = _mm256_fmadd_pd(av3, bv1, acc31);
          }
          _mm256_storeu_pd(c0 + j, acc00);
          _mm256_storeu_pd(c0 + j + 4, acc01);
          _mm256_storeu_pd(c1 + j, acc10);
          _mm256_storeu_pd(c1 + j + 4, acc11);
          _mm256_storeu_pd(c2 + j, acc20);
          _mm256_storeu_pd(c2 + j + 4, acc21);
          _mm256_storeu_pd(c3 + j, acc30);
          _mm256_storeu_pd(c3 + j + 4, acc31);
        }
        for (; j + 4 <= j_end; j += 4) {
          __m256d acc0 = _mm256_loadu_pd(c0 + j);
          __m256d acc1 = _mm256_loadu_pd(c1 + j);
          __m256d acc2 = _mm256_loadu_pd(c2 + j);
          __m256d acc3 = _mm256_loadu_pd(c3 + j);
          for (size_t p = pp; p < p_end; ++p) {
            const __m256d bv = _mm256_loadu_pd(b + p * n + j);
            acc0 = _mm256_fmadd_pd(_mm256_set1_pd(a0[p]), bv, acc0);
            acc1 = _mm256_fmadd_pd(_mm256_set1_pd(a1[p]), bv, acc1);
            acc2 = _mm256_fmadd_pd(_mm256_set1_pd(a2[p]), bv, acc2);
            acc3 = _mm256_fmadd_pd(_mm256_set1_pd(a3[p]), bv, acc3);
          }
          _mm256_storeu_pd(c0 + j, acc0);
          _mm256_storeu_pd(c1 + j, acc1);
          _mm256_storeu_pd(c2 + j, acc2);
          _mm256_storeu_pd(c3 + j, acc3);
        }
        if (j < j_end) {
          ScalarColumnTail(c0, a0, b, n, pp, p_end, j, j_end);
          ScalarColumnTail(c1, a1, b, n, pp, p_end, j, j_end);
          ScalarColumnTail(c2, a2, b, n, pp, p_end, j, j_end);
          ScalarColumnTail(c3, a3, b, n, pp, p_end, j, j_end);
        }
      }
      for (; i < row_end; ++i) {
        RowBlockUpdate(c + i * n, a + i * k, b, n, pp, p_end, jj, j_end);
      }
    }
  }
}

void Avx2GemmSmallNN(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                     size_t k, size_t n, size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    Scalar* crow = c + i * ldc;
    const Scalar* arow = a + i * k;
    size_t p = 0;
    for (; p + 4 <= k; p += 4) {
      const Scalar* b0 = b + p * n;
      RowQuadUpdate(crow, b0, b0 + n, b0 + 2 * n, b0 + 3 * n,
                    _mm256_set1_pd(arow[p]), _mm256_set1_pd(arow[p + 1]),
                    _mm256_set1_pd(arow[p + 2]), _mm256_set1_pd(arow[p + 3]),
                    arow[p], arow[p + 1], arow[p + 2], arow[p + 3], 0, n);
    }
    for (; p < k; ++p) RowUpdate(crow, b + p * n, arow[p], 0, n);
  }
}

void Avx2GemmSmallTA(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                     size_t k, size_t n) {
  for (size_t p = 0; p < k; ++p) {
    const Scalar* arow = a + p * m;
    const Scalar* brow = b + p * n;
    for (size_t i = 0; i < m; ++i) {
      RowUpdate(c + i * n, brow, arow[i], 0, n);
    }
  }
}

void Avx2GemmSmallTB(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                     size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const Scalar* arow = a + i * k;
    Scalar* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const Scalar* brow = b + j * k;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + p),
                               _mm256_loadu_pd(brow + p), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + p + 4),
                               _mm256_loadu_pd(brow + p + 4), acc1);
      }
      for (; p + 4 <= k; p += 4) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + p),
                               _mm256_loadu_pd(brow + p), acc0);
      }
      const __m256d sum = _mm256_add_pd(acc0, acc1);
      const __m128d lo = _mm256_castpd256_pd128(sum);
      const __m128d hi = _mm256_extractf128_pd(sum, 1);
      const __m128d pair = _mm_add_pd(lo, hi);
      Scalar acc =
          _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
      for (; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

// ---------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------

// Vector exp(x), Cephes-style: Cody-Waite range reduction against ln 2,
// a rational polynomial on the reduced argument, and 2^n reassembled by
// writing the biased exponent field directly. Inputs are clamped to
// [-708, 709] so the result is always finite and normal (the clamp only
// engages where sigmoid/tanh have long saturated).
inline __m256d ExpPd(__m256d x) {
  const __m256d kMax = _mm256_set1_pd(709.0);
  const __m256d kMin = _mm256_set1_pd(-708.0);
  x = _mm256_min_pd(_mm256_max_pd(x, kMin), kMax);
  // n = round(x / ln 2)
  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, kLog2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  // r = x - n * ln 2, in two pieces to keep the residual exact.
  const __m256d kC1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d kC2 = _mm256_set1_pd(1.42860682030941723212e-6);
  __m256d r = _mm256_fnmadd_pd(n, kC1, x);
  r = _mm256_fnmadd_pd(n, kC2, r);
  const __m256d r2 = _mm256_mul_pd(r, r);
  // exp(r) = 1 + 2 r P(r^2) / (Q(r^2) - r P(r^2))  (Cephes exp.c)
  __m256d p = _mm256_set1_pd(1.26177193074810590878e-4);
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(3.02994407707441961300e-2));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(9.99999999999999999910e-1));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_set1_pd(3.00198505138664455042e-6);
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.52448340349684104192e-3));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.27265548208155028766e-1));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.0));
  const __m256d e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
  const __m256d expr =
      _mm256_fmadd_pd(_mm256_set1_pd(2.0), e, _mm256_set1_pd(1.0));
  // expr * 2^n: n is in [-1022, 1023] after the clamp, so the biased
  // exponent stays normal.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i pow2 = _mm256_slli_epi64(
      _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(expr, _mm256_castsi256_pd(pow2));
}

void Avx2SigmoidInPlace(Scalar* x, size_t n) {
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kZero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    const __m256d ez = ExpPd(_mm256_sub_pd(kZero, v));
    _mm256_storeu_pd(x + i, _mm256_div_pd(kOne, _mm256_add_pd(kOne, ez)));
  }
  for (; i < n; ++i) x[i] = Scalar{1} / (Scalar{1} + std::exp(-x[i]));
}

void Avx2TanhInPlace(Scalar* x, size_t n) {
  // tanh(x) = (e^{2x} - 1) / (e^{2x} + 1). ExpPd's clamp keeps e^{2x}
  // finite and nonzero, so the quotient saturates cleanly to +/-1. Near
  // zero the subtraction cancels — absolute error stays ~1e-16 (the
  // parity test uses a combined abs+rel bound for exactly this).
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kTwo = _mm256_set1_pd(2.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    const __m256d e2 = ExpPd(_mm256_mul_pd(kTwo, v));
    _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_sub_pd(e2, kOne),
                                          _mm256_add_pd(e2, kOne)));
  }
  for (; i < n; ++i) x[i] = std::tanh(x[i]);
}

}  // namespace

const KernelTable* Avx2KernelTable() {
  static constexpr KernelTable kTable = {
      &Avx2GemmRowsBlocked, &Avx2GemmSmallNN, &Avx2GemmSmallTA,
      &Avx2GemmSmallTB,     &Avx2SigmoidInPlace, &Avx2TanhInPlace,
  };
  return &kTable;
}

}  // namespace lighttr::nn::kernels

#else  // !(__AVX2__ && __FMA__)

namespace lighttr::nn::kernels {

const KernelTable* Avx2KernelTable() { return nullptr; }

}  // namespace lighttr::nn::kernels

#endif
