// RNN+FL baseline (paper Sec. V-A3): stacked recurrent layers over the
// encoded trajectory with full-vocabulary segment prediction. Captures
// temporal dependencies but lacks the constraint mask and multi-task
// segment-embedding feedback of LightTR.
#ifndef LIGHTTR_BASELINES_RNN_MODEL_H_
#define LIGHTTR_BASELINES_RNN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "fl/recovery_model.h"
#include "nn/layers.h"
#include "traj/encoding.h"

namespace lighttr::baselines {

/// Configuration for RnnModel.
struct RnnConfig {
  size_t hidden_dim = 32;
  size_t num_layers = 2;
  double dropout = 0.2;
  double mu = 1.0;
};

/// Stacked-GRU recovery model.
class RnnModel : public fl::RecoveryModel {
 public:
  RnnModel(const traj::TrajectoryEncoder* encoder, const RnnConfig& config,
           Rng* rng);

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool training, Rng* rng) override;

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override;

 private:
  nn::Tensor HiddenForMissing(const traj::IncompleteTrajectory& trajectory,
                              bool training, Rng* rng,
                              std::vector<size_t>* missing) const;

  std::string name_ = "RNN+FL";
  const traj::TrajectoryEncoder* encoder_;
  RnnConfig config_;
  nn::ParameterSet params_;
  std::vector<std::unique_ptr<nn::GruCell>> layers_;
  std::unique_ptr<nn::Dense> seg_head_;
  std::unique_ptr<nn::Dense> ratio_head_;
};

}  // namespace lighttr::baselines

#endif  // LIGHTTR_BASELINES_RNN_MODEL_H_
