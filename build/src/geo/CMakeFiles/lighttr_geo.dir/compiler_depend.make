# Empty compiler generated dependencies file for lighttr_geo.
# This may be replaced when dependencies are built.
