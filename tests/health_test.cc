// Tests for the self-healing layer: round health verdicts (fl/health),
// per-client reputation + quarantine (fl/reputation), and the trainer's
// divergence-rollback protocol end to end on the stub model.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/finite.h"
#include "fl/federated_trainer.h"
#include "fl/health.h"
#include "fl/reputation.h"
#include "nn/losses.h"
#include "roadnet/generators.h"
#include "traj/workload.h"

namespace lighttr::fl {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------
// Median / MAD

TEST(HealthStats, MedianOddEvenAndEmpty) {
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(HealthStats, MedianAbsDeviation) {
  EXPECT_DOUBLE_EQ(MedianAbsDeviation({}, 0.0), 0.0);
  // Deviations from 3: {2, 0, 2} -> median 2.
  EXPECT_DOUBLE_EQ(MedianAbsDeviation({1.0, 3.0, 5.0}, 3.0), 2.0);
}

// ---------------------------------------------------------------------
// RoundHealthMonitor::Judge

UpdateObservation Accepted(int client, double norm) {
  UpdateObservation obs;
  obs.client_index = client;
  obs.accepted = true;
  obs.delta_norm = norm;
  return obs;
}

UpdateObservation Corrupt(int client) {
  UpdateObservation obs;
  obs.client_index = client;
  obs.corrupt = true;
  return obs;
}

// Feeds `rounds` clean rounds of 4 accepted uploads with norm ~1 and
// loss ~1 so both envelopes are armed.
void ArmMonitor(RoundHealthMonitor* monitor, int rounds = 3) {
  const std::vector<nn::Scalar> sane = {0.1, 0.2};
  for (int r = 0; r < rounds; ++r) {
    std::vector<UpdateObservation> obs = {
        Accepted(0, 1.0), Accepted(1, 1.1), Accepted(2, 0.9),
        Accepted(3, 1.0)};
    const RoundHealthReport report = monitor->Judge(&obs, sane, 1.0 + 0.01 * r);
    ASSERT_EQ(report.verdict, HealthVerdict::kHealthy);
  }
}

TEST(RoundHealthMonitor, CleanRoundIsHealthy) {
  RoundHealthMonitor monitor;
  std::vector<UpdateObservation> obs = {Accepted(0, 1.0), Accepted(1, 1.2)};
  const RoundHealthReport report = monitor.Judge(&obs, {0.1, 0.2}, 0.8);
  EXPECT_EQ(report.verdict, HealthVerdict::kHealthy);
  EXPECT_EQ(report.outlier_uploads, 0);
  EXPECT_EQ(monitor.norm_history(), 2);
  EXPECT_EQ(monitor.loss_history(), 1);
}

TEST(RoundHealthMonitor, CorruptOrRejectedUploadMakesRoundSuspect) {
  RoundHealthMonitor monitor;
  std::vector<UpdateObservation> obs = {Corrupt(0), Accepted(1, 1.0)};
  EXPECT_EQ(monitor.Judge(&obs, {0.1}, 0.8).verdict, HealthVerdict::kSuspect);

  UpdateObservation rejected;
  rejected.client_index = 2;
  rejected.norm_rejected = true;
  std::vector<UpdateObservation> obs2 = {rejected, Accepted(1, 1.0)};
  const RoundHealthReport report = monitor.Judge(&obs2, {0.1}, 0.8);
  EXPECT_EQ(report.verdict, HealthVerdict::kSuspect);
  EXPECT_EQ(report.rejected_uploads, 1);
}

TEST(RoundHealthMonitor, NonFiniteDeltaNormReclassifiedAsCorrupt) {
  // Screening disabled upstream: an accepted upload can carry a NaN
  // delta norm. Judge must re-attribute it so the reputation ledger
  // still blames the right client.
  RoundHealthMonitor monitor;
  std::vector<UpdateObservation> obs = {Accepted(0, kNan), Accepted(1, 1.0)};
  const RoundHealthReport report = monitor.Judge(&obs, {0.1}, 0.8);
  EXPECT_EQ(report.verdict, HealthVerdict::kSuspect);
  EXPECT_EQ(report.corrupt_uploads, 1);
  EXPECT_TRUE(obs[0].corrupt);
  EXPECT_FALSE(obs[0].accepted);
  EXPECT_EQ(monitor.norm_history(), 1);  // the NaN norm was never banked
}

TEST(RoundHealthMonitor, NormOutlierFlaggedOnceArmedAndNotBanked) {
  RoundHealthMonitor monitor;
  ArmMonitor(&monitor);  // 12 norms banked >= min_norm_history
  const int banked = monitor.norm_history();
  std::vector<UpdateObservation> obs = {Accepted(0, 1000.0),
                                        Accepted(1, 1.0)};
  const RoundHealthReport report = monitor.Judge(&obs, {0.1}, 1.0);
  EXPECT_EQ(report.verdict, HealthVerdict::kSuspect);
  EXPECT_EQ(report.outlier_uploads, 1);
  EXPECT_TRUE(obs[0].outlier);
  EXPECT_FALSE(obs[1].outlier);
  EXPECT_GT(report.norm_median, 0.0);
  // Only the sane norm entered the window: the outlier cannot vouch for
  // a follow-up burst.
  EXPECT_EQ(monitor.norm_history(), banked + 1);
}

TEST(RoundHealthMonitor, OutlierDetectionSilentUntilArmed) {
  RoundHealthMonitor monitor;  // min_norm_history = 8, nothing banked
  std::vector<UpdateObservation> obs = {Accepted(0, 1000.0),
                                        Accepted(1, 1.0)};
  const RoundHealthReport report = monitor.Judge(&obs, {0.1}, 1.0);
  EXPECT_EQ(report.verdict, HealthVerdict::kHealthy);
  EXPECT_EQ(report.outlier_uploads, 0);
}

TEST(RoundHealthMonitor, NonFiniteGlobalModelDiverges) {
  RoundHealthMonitor monitor;
  std::vector<UpdateObservation> obs = {Accepted(0, 1.0)};
  const RoundHealthReport report =
      monitor.Judge(&obs, {0.1, static_cast<nn::Scalar>(kNan)}, 0.8);
  EXPECT_EQ(report.verdict, HealthVerdict::kDiverged);
  EXPECT_TRUE(report.global_nonfinite);
}

TEST(RoundHealthMonitor, NonFiniteValidationLossDiverges) {
  RoundHealthMonitor monitor;
  std::vector<UpdateObservation> obs = {Accepted(0, 1.0)};
  const RoundHealthReport report = monitor.Judge(&obs, {0.1}, kInf);
  EXPECT_EQ(report.verdict, HealthVerdict::kDiverged);
  EXPECT_TRUE(report.loss_nonfinite);
  EXPECT_EQ(monitor.loss_history(), 0);  // diverged losses are not banked
}

TEST(RoundHealthMonitor, LossSpikeDivergesAndIsNotBanked) {
  RoundHealthMonitor monitor;
  ArmMonitor(&monitor);  // 3 losses ~1.0 banked >= min_loss_history
  const int banked = monitor.loss_history();
  std::vector<UpdateObservation> obs = {Accepted(0, 1.0)};
  const RoundHealthReport report = monitor.Judge(&obs, {0.1}, 1e6);
  EXPECT_EQ(report.verdict, HealthVerdict::kDiverged);
  EXPECT_TRUE(report.loss_spike);
  EXPECT_FALSE(report.loss_nonfinite);
  EXPECT_EQ(monitor.loss_history(), banked);

  // A merely elevated loss inside the envelope stays healthy.
  std::vector<UpdateObservation> obs2 = {Accepted(0, 1.0)};
  const RoundHealthReport calm = monitor.Judge(&obs2, {0.1}, 1.5);
  EXPECT_EQ(calm.verdict, HealthVerdict::kHealthy);
  EXPECT_EQ(monitor.loss_history(), banked + 1);
}

TEST(RoundHealthMonitor, SpikeDetectionSilentUntilArmed) {
  RoundHealthMonitor monitor;  // min_loss_history = 3, nothing banked
  std::vector<UpdateObservation> obs = {Accepted(0, 1.0)};
  EXPECT_EQ(monitor.Judge(&obs, {0.1}, 1e9).verdict, HealthVerdict::kHealthy);
}

TEST(RoundHealthMonitor, StateRoundTripsThroughSerialization) {
  RoundHealthMonitor monitor;
  ArmMonitor(&monitor);
  const std::string blob = monitor.SerializeState();

  RoundHealthMonitor restored;
  ASSERT_TRUE(restored.DeserializeState(blob).ok());
  EXPECT_EQ(restored.norm_history(), monitor.norm_history());
  EXPECT_EQ(restored.loss_history(), monitor.loss_history());
  EXPECT_EQ(restored.SerializeState(), blob);
}

TEST(RoundHealthMonitor, MalformedStateRejectedWithoutDamage) {
  RoundHealthMonitor monitor;
  ArmMonitor(&monitor);
  const std::string good = monitor.SerializeState();

  RoundHealthMonitor victim;
  ArmMonitor(&victim);
  EXPECT_FALSE(victim.DeserializeState("").ok());
  EXPECT_FALSE(victim.DeserializeState("garbage").ok());
  EXPECT_FALSE(victim.DeserializeState(good.substr(0, good.size() - 3)).ok());
  EXPECT_FALSE(victim.DeserializeState(good + "x").ok());
  std::string bad_magic = good;
  bad_magic[0] = static_cast<char>(bad_magic[0] + 1);
  EXPECT_FALSE(victim.DeserializeState(bad_magic).ok());
  // Every rejection left the current state untouched.
  EXPECT_EQ(victim.SerializeState(), good);
}

// ---------------------------------------------------------------------
// ReputationBook

ReputationConfig QuickQuarantine() {
  ReputationConfig config;  // alpha .5, threshold .6, parole 4
  return config;
}

TEST(ReputationBook, CorruptUploadsEscalateToQuarantine) {
  ReputationBook book(3, QuickQuarantine());
  // One corrupt event: score 0.5, below the 0.6 threshold.
  EXPECT_FALSE(book.Observe(1, /*corrupt=*/true, false, false));
  EXPECT_FALSE(book.IsQuarantined(1));
  EXPECT_DOUBLE_EQ(book.client(1).score, 0.5);
  // Second in a row: 0.75 >= 0.6 -> quarantined, transition reported.
  EXPECT_TRUE(book.Observe(1, true, false, false));
  EXPECT_TRUE(book.IsQuarantined(1));
  EXPECT_EQ(book.QuarantinedCount(), 1);
  EXPECT_EQ(book.client(1).corrupt_events, 2);
  // Already quarantined: no second transition.
  EXPECT_FALSE(book.Observe(1, true, false, false));
  // Bystanders untouched.
  EXPECT_FALSE(book.IsQuarantined(0));
  EXPECT_FALSE(book.IsQuarantined(2));
}

TEST(ReputationBook, CleanRoundsDecayTheScore) {
  ReputationBook book(1, QuickQuarantine());
  EXPECT_FALSE(book.Observe(0, true, false, false));
  const double after_offence = book.client(0).score;
  EXPECT_FALSE(book.Observe(0, false, false, false));
  EXPECT_LT(book.client(0).score, after_offence);
}

TEST(ReputationBook, MaxSeverityWinsWhenEventsOverlap) {
  ReputationBook book(1, QuickQuarantine());
  // corrupt (1.0) beats outlier (0.5): one observation scores 0.5.
  book.Observe(0, true, false, true);
  EXPECT_DOUBLE_EQ(book.client(0).score, 0.5);
  EXPECT_EQ(book.client(0).corrupt_events, 1);
  EXPECT_EQ(book.client(0).outlier_events, 1);
}

TEST(ReputationBook, ParoleAfterServingAndProbationScore) {
  ReputationConfig config = QuickQuarantine();
  config.parole_rounds = 2;
  ReputationBook book(2, config);
  book.Observe(0, true, false, false);
  book.Observe(0, true, false, false);
  ASSERT_TRUE(book.IsQuarantined(0));
  EXPECT_EQ(book.Tick(), 0);  // served 1 of 2
  EXPECT_TRUE(book.IsQuarantined(0));
  EXPECT_EQ(book.Tick(), 1);  // served 2 of 2 -> paroled
  EXPECT_FALSE(book.IsQuarantined(0));
  EXPECT_DOUBLE_EQ(book.client(0).score, 0.5 * config.quarantine_threshold);
  // Probation: one more corrupt upload goes straight back.
  EXPECT_TRUE(book.Observe(0, true, false, false));
  EXPECT_TRUE(book.IsQuarantined(0));
}

TEST(ReputationBook, LedgerRoundTripsThroughSerialization) {
  ReputationBook book(3, QuickQuarantine());
  book.Observe(0, true, false, false);
  book.Observe(1, false, true, false);
  book.Observe(2, true, false, false);
  book.Observe(2, true, false, false);
  book.Tick();
  const std::string blob = book.Serialize();

  ReputationBook restored(3, QuickQuarantine());
  ASSERT_TRUE(restored.Deserialize(blob).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(restored.client(i).score, book.client(i).score);
    EXPECT_EQ(restored.client(i).quarantined, book.client(i).quarantined);
    EXPECT_EQ(restored.client(i).quarantine_age, book.client(i).quarantine_age);
    EXPECT_EQ(restored.client(i).corrupt_events, book.client(i).corrupt_events);
  }
  EXPECT_EQ(restored.Serialize(), blob);
}

TEST(ReputationBook, MalformedLedgerRejectedWithoutDamage) {
  ReputationBook book(2, QuickQuarantine());
  book.Observe(0, true, false, false);
  const std::string good = book.Serialize();

  EXPECT_FALSE(book.Deserialize("").ok());
  EXPECT_FALSE(book.Deserialize(good.substr(0, good.size() - 1)).ok());
  EXPECT_FALSE(book.Deserialize(good + "y").ok());
  // A ledger for a different fleet size must not load.
  ReputationBook bigger(5, QuickQuarantine());
  EXPECT_FALSE(bigger.Deserialize(good).ok());
  EXPECT_EQ(book.Serialize(), good);
}

// ---------------------------------------------------------------------
// End to end: divergence rollback + quarantine on the stub model.

class StubModel : public RecoveryModel {
 public:
  explicit StubModel(Rng* rng) {
    w_ = nn::Tensor::Variable(
        nn::Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                        bool /*training*/, Rng* /*rng*/) override {
    nn::Matrix target(1, 1);
    target(0, 0) = static_cast<nn::Scalar>(trajectory.ground_truth.driver_id);
    ForwardResult result;
    result.loss = nn::MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    return std::vector<roadnet::PointPosition>(trajectory.size(),
                                               roadnet::PointPosition{0, 0.0});
  }

  double weight() const { return w_.value()(0, 0); }

 private:
  std::string name_ = "Stub";
  nn::ParameterSet params_;
  nn::Tensor w_;
};

std::unique_ptr<RecoveryModel> MakeStub(Rng* rng) {
  return std::make_unique<StubModel>(rng);
}

std::vector<traj::ClientDataset> MakeClients(int n, uint64_t seed) {
  Rng rng(seed);
  roadnet::CityGridOptions options;
  options.rows = 6;
  options.cols = 6;
  static roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = n;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

// A hostile client: behaves until it has seen `clean_updates` rounds,
// then uploads a huge (finite) weight every round after. With screening
// off and plain-mean aggregation this blows up the global model; the
// health monitor has banked enough history by then to catch it.
class TurncoatUpdate : public LocalUpdateStrategy {
 public:
  explicit TurncoatUpdate(int hostile_client, int clean_updates)
      : hostile_client_(hostile_client), clean_updates_(clean_updates) {}

  double Update(int client_index, RecoveryModel* model,
                nn::Optimizer* optimizer, const traj::ClientDataset& data,
                int epochs, Rng* rng) override {
    const double loss =
        plain_.Update(client_index, model, optimizer, data, epochs, rng);
    if (client_index == hostile_client_ && ++updates_ > clean_updates_) {
      model->params().AssignFlat(
          std::vector<nn::Scalar>(model->params().Flatten().size(),
                                  nn::Scalar{1e8}));
    }
    return loss;
  }

 private:
  PlainLocalUpdate plain_;
  int hostile_client_;
  int clean_updates_;
  int updates_ = 0;  // serial runs only (options.threads = 1)
};

FederatedTrainerOptions HealingOptions(int rounds, bool healing) {
  FederatedTrainerOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.learning_rate = 0.05;
  options.threads = 1;  // TurncoatUpdate counts its own invocations
  options.tolerance.screen.enabled = false;  // let the poison through
  options.healing.enabled = healing;
  // Outliers score 0.5 per offence; a 0.4 threshold quarantines a
  // repeat offender after a few flagged rounds.
  options.healing.reputation.quarantine_threshold = 0.4;
  return options;
}

TEST(SelfHealingTrainer, DivergenceIsDetectedRolledBackAndQuarantined) {
  const int rounds = 12;
  auto clients = MakeClients(4, 51);

  // Baseline: same poison, healing off. The mean aggregate absorbs the
  // 1e8 upload every round; the run ends far from any client target.
  FederatedTrainer unguarded(MakeStub, &clients, HealingOptions(rounds, false));
  TurncoatUpdate poison_off(/*hostile_client=*/0, /*clean_updates=*/3);
  const FederatedRunResult off = unguarded.Run(&poison_off);
  const double off_loss = off.history.back().valid_loss;
  EXPECT_GT(std::fabs(
                dynamic_cast<StubModel*>(unguarded.global_model())->weight()),
            1e4);

  FederatedTrainer guarded(MakeStub, &clients, HealingOptions(rounds, true));
  TurncoatUpdate poison_on(/*hostile_client=*/0, /*clean_updates=*/3);
  const FederatedRunResult on = guarded.Run(&poison_on);

  // The blow-up was detected and rolled back, not committed.
  EXPECT_GE(on.faults.diverged_rounds, 1);
  EXPECT_GE(on.faults.rollbacks, 1);
  EXPECT_FALSE(on.gave_up);
  ASSERT_EQ(on.history.size(), static_cast<size_t>(rounds));
  for (const RoundRecord& record : on.history) {
    EXPECT_NE(record.verdict, static_cast<int>(HealthVerdict::kDiverged));
    EXPECT_TRUE(IsFinite(record.valid_loss));
  }
  // Escalation latched: rounds after the divergence ran hardened.
  EXPECT_TRUE(on.history.back().escalated);

  // The offender was flagged, quarantined, and skipped.
  EXPECT_GE(on.faults.outlier_uploads, 1);
  EXPECT_GE(on.faults.quarantine_events, 1);
  EXPECT_GE(on.faults.quarantined_skips, 1);
  ASSERT_NE(guarded.reputation(), nullptr);
  EXPECT_GE(guarded.reputation()->client(0).outlier_events, 1);

  // The healed run ends finite and far better than the unguarded one.
  const auto flat = guarded.global_model()->params().Flatten();
  EXPECT_TRUE(AllFinite(flat));
  EXPECT_LT(std::fabs(
                dynamic_cast<StubModel*>(guarded.global_model())->weight()),
            100.0);
  EXPECT_LT(on.history.back().valid_loss, off_loss);
}

TEST(SelfHealingTrainer, RollbackBudgetZeroParksAtLastHealthyState) {
  auto clients = MakeClients(4, 53);
  FederatedTrainerOptions options = HealingOptions(12, true);
  options.healing.max_rollbacks = 0;
  FederatedTrainer trainer(MakeStub, &clients, options);
  TurncoatUpdate poison(/*hostile_client=*/0, /*clean_updates=*/3);
  const FederatedRunResult result = trainer.Run(&poison);

  EXPECT_TRUE(result.gave_up);
  // The first divergence (round 4) stops the run at round 3's state.
  EXPECT_EQ(result.history.size(), 3u);
  EXPECT_EQ(result.faults.diverged_rounds, 1);
  EXPECT_EQ(result.faults.rollbacks, 0);
  EXPECT_TRUE(AllFinite(trainer.global_model()->params().Flatten()));
}

TEST(SelfHealingTrainer, HealthyRunsAreUnaffectedByTheHealingLayer) {
  auto clients = MakeClients(4, 55);
  FederatedTrainerOptions off_options = HealingOptions(8, false);
  off_options.tolerance.screen.enabled = true;
  FederatedTrainer off_trainer(MakeStub, &clients, off_options);
  const FederatedRunResult off = off_trainer.Run();

  FederatedTrainerOptions on_options = HealingOptions(8, true);
  on_options.tolerance.screen.enabled = true;
  FederatedTrainer on_trainer(MakeStub, &clients, on_options);
  const FederatedRunResult on = on_trainer.Run();

  // No faults, no quarantine: the healing layer is pure observation and
  // the trained model is bitwise identical to the plain run.
  EXPECT_EQ(on.faults.diverged_rounds, 0);
  EXPECT_EQ(on.faults.rollbacks, 0);
  EXPECT_EQ(on.faults.quarantine_events, 0);
  EXPECT_EQ(dynamic_cast<StubModel*>(on_trainer.global_model())->weight(),
            dynamic_cast<StubModel*>(off_trainer.global_model())->weight());
  ASSERT_EQ(on.history.size(), off.history.size());
  for (size_t r = 0; r < on.history.size(); ++r) {
    EXPECT_EQ(on.history[r].verdict,
              static_cast<int>(HealthVerdict::kHealthy));
    EXPECT_DOUBLE_EQ(on.history[r].valid_loss, off.history[r].valid_loss);
  }
}

TEST(SelfHealingTrainer, ReputationSurvivesSnapshotResume) {
  const std::string dir =
      (std::string(testing::TempDir()) + "/lighttr_health_resume");
  auto clients = MakeClients(4, 57);
  FederatedTrainerOptions options = HealingOptions(8, true);
  options.durability.dir = dir;

  FederatedTrainer first(MakeStub, &clients, options);
  TurncoatUpdate poison(/*hostile_client=*/0, /*clean_updates=*/3);
  first.Run(&poison);
  ASSERT_NE(first.reputation(), nullptr);
  const std::string ledger = first.reputation()->Serialize();

  FederatedTrainer second(MakeStub, &clients, options);
  ASSERT_TRUE(second.ResumeFrom(dir).ok());
  ASSERT_NE(second.reputation(), nullptr);
  EXPECT_EQ(second.reputation()->Serialize(), ledger);
  EXPECT_EQ(second.resumed_round(), 8);
}

// ---------------------------------------------------------------------
// Attribution guard: network damage vs. client misbehaviour.

TEST(SelfHealingTrainer, WireCorruptionNeverFeedsReputation) {
  // A filthy wire with an ample retry budget: every damaged frame fails
  // its CRC, is discarded, and is re-sent intact. Reputation judges
  // only payloads that survived the CRC, so it must see zero evidence
  // against any client — no events, no score, no quarantine.
  auto clients = MakeClients(3, 61);
  FederatedTrainerOptions options;
  options.rounds = 6;
  options.local_epochs = 1;
  options.healing.enabled = true;
  options.healing.reputation.quarantine_threshold = 0.4;
  options.transport.channel.corrupt_rate = 0.4;
  options.transport.retry.max_retries = 64;
  FederatedTrainer trainer(MakeStub, &clients, options);
  const FederatedRunResult result = trainer.Run();

  EXPECT_GT(result.faults.net_crc_drops, 0);  // the wire really was hostile
  EXPECT_GT(result.faults.net_retries, 0);
  ASSERT_NE(trainer.reputation(), nullptr);
  for (int c = 0; c < trainer.num_clients(); ++c) {
    EXPECT_DOUBLE_EQ(trainer.reputation()->client(c).score, 0.0);
    EXPECT_EQ(trainer.reputation()->client(c).corrupt_events, 0);
    EXPECT_EQ(trainer.reputation()->client(c).outlier_events, 0);
    EXPECT_FALSE(trainer.reputation()->client(c).quarantined);
  }
  EXPECT_EQ(result.faults.quarantine_events, 0);
  EXPECT_EQ(result.faults.rejected_uploads, 0);
}

TEST(SelfHealingTrainer, ClientCorruptionStillScoresThroughTheTransport) {
  // The mirror image: FaultModel corruption is *client* misbehaviour.
  // It ships inside CRC-valid frames, so screening and reputation see
  // it and score the offender even with the framed transport on.
  auto clients = MakeClients(3, 63);
  FederatedTrainerOptions options;
  options.rounds = 8;
  options.local_epochs = 1;
  options.healing.enabled = true;
  options.faults.corruption_rate = 1.0;
  FederatedTrainer trainer(MakeStub, &clients, options);
  const FederatedRunResult result = trainer.Run();

  EXPECT_GT(result.faults.rejected_uploads, 0);
  ASSERT_NE(trainer.reputation(), nullptr);
  int corrupt_events = 0;
  for (int c = 0; c < trainer.num_clients(); ++c) {
    corrupt_events += trainer.reputation()->client(c).corrupt_events;
  }
  EXPECT_GT(corrupt_events, 0);
  // And the clean wire stays clean: no network-attributed incidents.
  EXPECT_EQ(result.faults.net_crc_drops, 0);
  EXPECT_EQ(result.faults.net_retries, 0);
  EXPECT_EQ(result.faults.net_lost, 0);
}

}  // namespace
}  // namespace lighttr::fl
