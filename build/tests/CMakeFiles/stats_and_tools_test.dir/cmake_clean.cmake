file(REMOVE_RECURSE
  "CMakeFiles/stats_and_tools_test.dir/stats_and_tools_test.cc.o"
  "CMakeFiles/stats_and_tools_test.dir/stats_and_tools_test.cc.o.d"
  "stats_and_tools_test"
  "stats_and_tools_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_and_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
