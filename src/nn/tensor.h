// Reverse-mode automatic differentiation on matrices.
//
// A Tensor is a shared handle to a node in a dynamically built
// computation graph. Operations (nn/ops.h) create new nodes that record
// their parents and a backward closure; Tensor::Backward() on a scalar
// runs the closures in reverse creation order, accumulating gradients.
//
// Nodes whose inputs all have requires_grad == false skip graph
// recording entirely, so inference is tape-free.
#ifndef LIGHTTR_NN_TENSOR_H_
#define LIGHTTR_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace lighttr::nn {

class Tensor;

/// One vertex of the computation graph. Library users interact with
/// Tensor; TensorNode is exposed for op implementations.
struct TensorNode {
  Matrix value;
  Matrix grad;  // empty until EnsureGrad()
  std::vector<Tensor> parents;
  /// Accumulates into the parents' grads given this node's grad.
  std::function<void(TensorNode&)> backward_fn;
  bool requires_grad = false;
  uint64_t sequence = 0;  // creation order; a valid topological order
  /// Backward()'s visited mark: equals the walk's epoch when this node
  /// has been reached. Avoids a pointer-keyed set (whose iteration
  /// order would depend on allocator addresses). Process-global epochs
  /// keep tags valid when a client model migrates between pool workers.
  uint64_t visit_tag = 0;

  /// Allocates (zero-filled) grad storage on first use.
  Matrix& EnsureGrad() {
    if (grad.empty() && !value.empty()) {
      grad = Matrix::Zeros(value.rows(), value.cols());
    }
    return grad;
  }
};

/// Disables graph recording while alive (inference / teacher forward).
/// Ops created inside the scope behave as if no input required a
/// gradient. Scopes nest.
class NoGradScope {
 public:
  NoGradScope();
  ~NoGradScope();
  NoGradScope(const NoGradScope&) = delete;
  NoGradScope& operator=(const NoGradScope&) = delete;

  /// True when any NoGradScope is alive.
  static bool Active();
};

/// Shared handle to a TensorNode; cheap to copy.
class Tensor {
 public:
  /// Null tensor (no node). Most APIs require a non-null tensor.
  Tensor() = default;

  /// Wraps a constant matrix (no gradient).
  static Tensor Constant(Matrix value);

  /// Wraps a leaf variable that accumulates gradients (a parameter).
  static Tensor Variable(Matrix value);

  /// Creates an op result node. If no parent requires a gradient the
  /// parents and closure are dropped (inference fast path).
  static Tensor MakeOp(Matrix value, std::vector<Tensor> parents,
                       std::function<void(TensorNode&)> backward_fn);

  // Accessors are const even when they expose mutable node state: a
  // Tensor is a shared handle, so constness is shallow (like shared_ptr).
  // Dereferencing a null (default-constructed) tensor is a contract
  // violation — the DCHECK turns it into a named failure at the call site
  // instead of a raw segfault inside an op.
  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const {
    LIGHTTR_DCHECK(node_ != nullptr);
    return node_->value;
  }
  Matrix& mutable_value() const {
    LIGHTTR_DCHECK(node_ != nullptr);
    return node_->value;
  }
  Matrix& grad() const {
    LIGHTTR_DCHECK(node_ != nullptr);
    return node_->EnsureGrad();
  }
  const Matrix& grad_or_empty() const {
    LIGHTTR_DCHECK(node_ != nullptr);
    return node_->grad;
  }
  bool requires_grad() const {
    LIGHTTR_DCHECK(node_ != nullptr);
    return node_->requires_grad;
  }
  TensorNode* node() const { return node_.get(); }

  size_t rows() const { return value().rows(); }
  size_t cols() const { return value().cols(); }

  /// Convenience for 1x1 tensors (losses).
  Scalar ScalarValue() const;

  /// Runs reverse-mode differentiation from this scalar node: seeds its
  /// gradient with 1 and applies every reachable backward closure in
  /// reverse creation order. Leaf gradients accumulate across calls
  /// until explicitly zeroed.
  void Backward();

  /// Zeroes the gradient (leaves allocation in place).
  void ZeroGrad() const {
    if (!node_->grad.empty()) node_->grad.Fill(Scalar{0});
  }

 private:
  explicit Tensor(std::shared_ptr<TensorNode> node) : node_(std::move(node)) {}

  std::shared_ptr<TensorNode> node_;
};

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_TENSOR_H_
