// Differentiable operations on Tensors.
//
// Every function returns a new Tensor whose backward closure accumulates
// gradients into its inputs. Shapes are validated with LIGHTTR_CHECK
// (shape errors are programming errors, not runtime conditions).
#ifndef LIGHTTR_NN_OPS_H_
#define LIGHTTR_NN_OPS_H_

#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace lighttr::nn {

/// Element-wise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);

/// x + bias with bias broadcast across rows; x is [m,n], bias [1,n].
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);

/// Element-wise a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Element-wise (Hadamard) product a * b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// s * a for a compile-time-constant scalar s.
Tensor Scale(const Tensor& a, Scalar s);

/// Matrix product a ([m,k]) x b ([k,n]).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Element-wise logistic sigmoid.
Tensor Sigmoid(const Tensor& a);

/// Element-wise hyperbolic tangent.
Tensor Tanh(const Tensor& a);

/// Element-wise max(x, 0).
Tensor Relu(const Tensor& a);

/// Horizontal concatenation [a | b]; equal row counts.
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Vertical concatenation of tensors with equal column counts. Used to
/// assemble per-step row vectors into a [T, n] sequence matrix.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Columns [begin, begin+len) of a.
Tensor SliceCols(const Tensor& a, size_t begin, size_t len);

/// Rows [begin, begin+len) of a.
Tensor SliceRows(const Tensor& a, size_t begin, size_t len);

/// a^T.
Tensor Transpose(const Tensor& a);

/// Row-wise softmax (used by attention).
Tensor SoftmaxRows(const Tensor& a);

/// Sum of all entries, as a 1x1 tensor.
Tensor Sum(const Tensor& a);

/// Mean of all entries, as a 1x1 tensor.
Tensor Mean(const Tensor& a);

/// Inverted dropout. Identity when !training or p == 0.
Tensor Dropout(const Tensor& a, double p, bool training, Rng* rng);

/// Gathers rows of `table` ([V,D]) at `ids`, giving [ids.size(), D].
/// Backward scatter-adds into the table rows.
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids);

/// Row-wise layer normalisation (no learned affine): each row is
/// centred and scaled to unit variance (epsilon-stabilised).
Tensor LayerNormRows(const Tensor& a, Scalar epsilon = Scalar{1e-5});

/// One fused GRU step (paper Eq. 5), replacing the ~12-node op chain a
/// composed implementation builds per step with a single graph node:
///   r = sigma(x_h W_r + b_r)   with x_h = [h_prev | x] (never
///   z = sigma(x_h W_z + b_z)    materialized: the weight blocks are
///   h~ = tanh([r*h_prev | x] W_h + b_h)        addressed directly)
///   out = h_prev + z * (h~ - h_prev)
/// The r/z pre-activations share one packed [n, 2H] buffer filled by
/// offset GEMM calls and activated in a single vectorized sigmoid
/// sweep; the backward is hand-derived (validated by
/// GradCheck.GruCellUnrolled). Weights are [(H+I), H], biases [1, H].
Tensor GruStep(const Tensor& x, const Tensor& h_prev, const Tensor& wr,
               const Tensor& br, const Tensor& wz, const Tensor& bz,
               const Tensor& wh, const Tensor& bh);

/// Causal temporal im2row: stacks each row of x ([T, C]) with its k-1
/// predecessors (zero-padded at the start) into [T, k*C]. A Dense layer
/// on the result is a causal 1-D convolution — the CNN-based ST-operator
/// of paper Table II.
Tensor Im2RowCausal(const Tensor& x, size_t kernel);

/// Logits restricted to candidate classes: h ([1,H]) against columns
/// `candidates` of W ([H,C]) plus b ([1,C]) entries, giving [1,K].
/// This is the fast path of the constraint mask layer: only candidate
/// road segments get logits, cutting the output-projection cost from
/// O(H*C) to O(H*K).
Tensor CandidateLogits(const Tensor& h, const Tensor& w, const Tensor& b,
                       const std::vector<int>& candidates);

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_OPS_H_
