# Empty dependencies file for lighttr_traj.
# This may be replaced when dependencies are built.
