// Microkernel benchmark: the PR-9 acceptance gauge for the SIMD kernel
// layer, the fused GRU step, and the tensor arena.
//
// Sections (each swept over --kernel-equivalent modes scalar/avx2):
//  1. GEMM trio GFLOP/s — blocked NN at 128/256/384, plus the small
//     NN/TA/TB kernels at real training shapes ([4,43]x[43,32] class).
//     Acceptance: AVX2 blocked GEMM >= 2.5x scalar single-thread.
//  2. GRU step — fused GruStep (one graph node, packed gates) vs the
//     composed ~12-op chain it replaced, forward+backward.
//  3. Arena — steady-state heap allocations across identically-shaped
//     training steps (must be 0), and arena-vs-bypass timing.
//
// Emits BENCH_kernels.json (kernel variant recorded per row) and
// bench_kernels.csv via the common --output-dir/LIGHTTR_BENCH_DIR
// policy. `--smoke` runs tiny sizes and asserts the invariants
// (SIMD >= scalar, scalar/AVX2 parity, arena zero-alloc) — registered
// as the bench_kernels_smoke ctest so every test run gates on them.
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_output.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "nn/arena.h"
#include "nn/kernels/kernels.h"
#include "nn/matrix.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace {

using namespace lighttr;

double BestOfRuns(int runs, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < runs; ++r) {
    Stopwatch watch;
    fn();
    const double elapsed = watch.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

std::string JsonRow(const std::string& section, const char* kernel,
                    const std::string& shape, double seconds, double gflops,
                    double speedup_vs_scalar) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  {\"section\": \"%s\", \"kernel\": \"%s\", \"shape\": "
                "\"%s\", \"seconds\": %.6f, \"gflops\": %.3f, "
                "\"speedup_vs_scalar\": %.3f}",
                section.c_str(), kernel, shape.c_str(), seconds, gflops,
                speedup_vs_scalar);
  return buffer;
}

std::vector<nn::Scalar> RandomVec(size_t n, Rng* rng) {
  std::vector<nn::Scalar> v(n);
  for (nn::Scalar& x : v) x = static_cast<nn::Scalar>(rng->Uniform(-1.0, 1.0));
  return v;
}

// One GRU training step (forward + backward) through the fused op.
void FusedGruStep(const nn::Tensor& x, const nn::Tensor& h,
                  const nn::Tensor& wr, const nn::Tensor& br,
                  const nn::Tensor& wz, const nn::Tensor& bz,
                  const nn::Tensor& wh, const nn::Tensor& bh) {
  nn::Tensor out = nn::GruStep(x, h, wr, br, wz, bz, wh, bh);
  nn::Tensor loss = nn::Mean(out);
  loss.Backward();
}

// The composed implementation GruStep replaced (nn/layers.cc pre-PR-9):
// concat, three matmuls over the concatenated input, separate
// activation nodes — ~12 graph nodes per step.
void ComposedGruStep(const nn::Tensor& x, const nn::Tensor& h,
                     const nn::Tensor& wr, const nn::Tensor& br,
                     const nn::Tensor& wz, const nn::Tensor& bz,
                     const nn::Tensor& wh, const nn::Tensor& bh) {
  const nn::Tensor hx = nn::ConcatCols(h, x);
  const nn::Tensor r =
      nn::Sigmoid(nn::AddRowBroadcast(nn::MatMul(hx, wr), br));
  const nn::Tensor z =
      nn::Sigmoid(nn::AddRowBroadcast(nn::MatMul(hx, wz), bz));
  const nn::Tensor gated = nn::ConcatCols(nn::Mul(r, h), x);
  const nn::Tensor ht =
      nn::Tanh(nn::AddRowBroadcast(nn::MatMul(gated, wh), bh));
  nn::Tensor out = nn::Add(h, nn::Mul(z, nn::Sub(ht, h)));
  nn::Tensor loss = nn::Mean(out);
  loss.Backward();
}

struct GruFixture {
  nn::Tensor x, h, wr, br, wz, bz, wh, bh;
};

GruFixture MakeGruFixture(size_t batch, size_t in_dim, size_t hidden,
                          Rng* rng) {
  GruFixture f;
  f.x = nn::Tensor::Constant(
      nn::Matrix::RandomUniform(batch, in_dim, 1.0, rng));
  f.h = nn::Tensor::Variable(
      nn::Matrix::RandomUniform(batch, hidden, 1.0, rng));
  f.wr = nn::Tensor::Variable(nn::Matrix::Xavier(hidden + in_dim, hidden, rng));
  f.br = nn::Tensor::Variable(nn::Matrix::Zeros(1, hidden));
  f.wz = nn::Tensor::Variable(nn::Matrix::Xavier(hidden + in_dim, hidden, rng));
  f.bz = nn::Tensor::Variable(nn::Matrix::Zeros(1, hidden));
  f.wh = nn::Tensor::Variable(nn::Matrix::Xavier(hidden + in_dim, hidden, rng));
  f.bh = nn::Tensor::Variable(nn::Matrix::Zeros(1, hidden));
  return f;
}

// Max combined abs/rel deviation between two buffers.
double MaxDeviation(const std::vector<nn::Scalar>& a,
                    const std::vector<nn::Scalar>& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({1.0, std::abs(a[i]), std::abs(b[i])});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

int Fail(const char* what) {
  std::printf("SMOKE FAIL: %s\n", what);
  return 1;
}

// Tiny-size invariant gate for ctest: parity, SIMD-not-slower, arena
// zero-alloc. Sizes are small enough for sanitizer builds.
int RunSmoke() {
  const bool avx2 = nn::CpuHasAvx2Fma();
  std::printf("bench_kernels --smoke (avx2=%d)\n", avx2 ? 1 : 0);

  // Parity: scalar vs active-auto GEMM + activations on odd shapes.
  Rng rng(5);
  const size_t m = 7, k = 43, n = 33;
  const std::vector<nn::Scalar> a = RandomVec(m * k, &rng);
  const std::vector<nn::Scalar> b = RandomVec(k * n, &rng);
  std::vector<nn::Scalar> ref(m * n, nn::Scalar{0});
  std::vector<nn::Scalar> vec(m * n, nn::Scalar{0});
  nn::ActivateKernels(nn::KernelMode::kScalar);
  nn::kernels::GemmSmallNN(a.data(), b.data(), ref.data(), m, k, n, n);
  nn::ActivateKernels(nn::KernelMode::kAuto);
  nn::kernels::GemmSmallNN(a.data(), b.data(), vec.data(), m, k, n, n);
  if (MaxDeviation(ref, vec) > 1e-13) return Fail("GEMM parity");

  std::vector<nn::Scalar> act_ref = RandomVec(1001, &rng);
  std::vector<nn::Scalar> act_vec = act_ref;
  nn::ActivateKernels(nn::KernelMode::kScalar);
  nn::kernels::TanhInPlace(act_ref.data(), act_ref.size());
  nn::ActivateKernels(nn::KernelMode::kAuto);
  nn::kernels::TanhInPlace(act_vec.data(), act_vec.size());
  if (MaxDeviation(act_ref, act_vec) > 1e-12) return Fail("tanh parity");

  // SIMD >= scalar on a blocked GEMM big enough to time reliably.
  if (avx2) {
    const size_t dim = 192;
    Rng grng(7);
    const std::vector<nn::Scalar> ga = RandomVec(dim * dim, &grng);
    const std::vector<nn::Scalar> gb = RandomVec(dim * dim, &grng);
    std::vector<nn::Scalar> gc(dim * dim, nn::Scalar{0});
    nn::ActivateKernels(nn::KernelMode::kScalar);
    const double scalar_s = BestOfRuns(5, [&] {
      nn::kernels::GemmRowsBlocked(ga.data(), gb.data(), gc.data(), dim, dim,
                                   0, dim);
    });
    nn::ActivateKernels(nn::KernelMode::kAvx2);
    const double avx2_s = BestOfRuns(5, [&] {
      nn::kernels::GemmRowsBlocked(ga.data(), gb.data(), gc.data(), dim, dim,
                                   0, dim);
    });
    std::printf("blocked %zu^3: scalar %.4fs avx2 %.4fs (%.2fx)\n", dim,
                scalar_s, avx2_s, scalar_s / avx2_s);
    if (avx2_s > scalar_s) return Fail("AVX2 slower than scalar");
  }

  // Arena: identically-shaped training steps allocate nothing after
  // the first.
  nn::ActivateKernels(nn::KernelMode::kAuto);
  {
    Rng frng(11);
    GruFixture f = MakeGruFixture(4, 11, 32, &frng);
    FusedGruStep(f.x, f.h, f.wr, f.br, f.wz, f.bz, f.wh, f.bh);
    const nn::ArenaStats warm = nn::ThreadArenaStats();
    for (int i = 0; i < 5; ++i) {
      FusedGruStep(f.x, f.h, f.wr, f.br, f.wz, f.bz, f.wh, f.bh);
    }
    const nn::ArenaStats after = nn::ThreadArenaStats();
    const int64_t heap = after.heap_allocations - warm.heap_allocations;
    std::printf("steady-state heap allocations over 5 GRU steps: %lld\n",
                static_cast<long long>(heap));
    if (heap != 0) return Fail("steady-state heap allocations");
  }
  std::printf("SMOKE OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  if (args.error) return 2;
  if (args.smoke) return RunSmoke();

  const bool avx2 = nn::CpuHasAvx2Fma();
  std::printf("Kernel microbenchmarks (avx2+fma available: %d)\n",
              avx2 ? 1 : 0);
  TablePrinter table(
      {"Section", "Kernel", "Shape", "Seconds", "GFLOP/s", "vs scalar"});
  std::vector<std::string> json_rows;
  std::vector<nn::KernelMode> modes = {nn::KernelMode::kScalar};
  if (avx2) modes.push_back(nn::KernelMode::kAvx2);

  const int runs = 5;
  auto add_row = [&](const std::string& section, const char* kernel,
                     const std::string& shape, double seconds, double flops,
                     double scalar_seconds) {
    const double gflops = flops / seconds / 1e9;
    const double speedup = scalar_seconds / seconds;
    table.AddRow({section, kernel, shape, TablePrinter::Fmt(seconds, 5),
                  TablePrinter::Fmt(gflops, 2), TablePrinter::Fmt(speedup, 2)});
    json_rows.push_back(
        JsonRow(section, kernel, shape, seconds, gflops, speedup));
  };

  // ---- Section 1: blocked GEMM (single thread; the parallel split is
  // bench_parallel_scaling's subject).
  for (size_t dim : {128u, 256u, 384u}) {
    Rng rng(17 + dim);
    const std::vector<nn::Scalar> a = RandomVec(dim * dim, &rng);
    const std::vector<nn::Scalar> b = RandomVec(dim * dim, &rng);
    std::vector<nn::Scalar> c(dim * dim, nn::Scalar{0});
    const double flops = 2.0 * static_cast<double>(dim) *
                         static_cast<double>(dim) * static_cast<double>(dim);
    const std::string shape = std::to_string(dim) + "^3";
    double scalar_s = 0.0;
    for (nn::KernelMode mode : modes) {
      nn::ActivateKernels(mode);
      const double seconds = BestOfRuns(runs, [&] {
        nn::kernels::GemmRowsBlocked(a.data(), b.data(), c.data(), dim, dim,
                                     0, dim);
      });
      if (mode == nn::KernelMode::kScalar) scalar_s = seconds;
      add_row("gemm-blocked", nn::KernelModeName(mode), shape, seconds, flops,
              scalar_s);
    }
  }

  // ---- Section 2: the small-GEMM trio at a real training shape. One
  // timed call loops the kernel to get above timer resolution.
  {
    const size_t m = 4, k = 43, n = 32;
    const int reps = 2000;
    Rng rng(23);
    const std::vector<nn::Scalar> a = RandomVec(m * k, &rng);
    const std::vector<nn::Scalar> b = RandomVec(k * n, &rng);
    const std::vector<nn::Scalar> bt = RandomVec(n * k, &rng);
    std::vector<nn::Scalar> c(m * n, nn::Scalar{0});
    std::vector<nn::Scalar> cta(k * n, nn::Scalar{0});
    const double flops = 2.0 * m * k * n * reps;
    const char* shape = "4x43x32 x2000";
    struct SmallKernel {
      const char* name;
      std::function<void()> run;
    };
    const SmallKernel kernels_under_test[] = {
        {"small-nn",
         [&] {
           for (int i = 0; i < reps; ++i) {
             nn::kernels::GemmSmallNN(a.data(), b.data(), c.data(), m, k, n,
                                      n);
           }
         }},
        {"small-ta",
         [&] {
           // c [k,n] += a^T b with a [m,k] read as [k,m] operand shape.
           for (int i = 0; i < reps; ++i) {
             nn::kernels::GemmSmallTA(a.data(), b.data(), cta.data(), k,
                                      m, n);
           }
         }},
        {"small-tb",
         [&] {
           for (int i = 0; i < reps; ++i) {
             nn::kernels::GemmSmallTB(a.data(), bt.data(), c.data(), m, k,
                                      n);
           }
         }},
    };
    for (const SmallKernel& kernel : kernels_under_test) {
      double scalar_s = 0.0;
      for (nn::KernelMode mode : modes) {
        nn::ActivateKernels(mode);
        const double seconds = BestOfRuns(runs, kernel.run);
        if (mode == nn::KernelMode::kScalar) scalar_s = seconds;
        add_row(kernel.name, nn::KernelModeName(mode), shape, seconds, flops,
                scalar_s);
      }
    }
  }

  // ---- Section 3: fused vs composed GRU step, forward+backward.
  {
    const size_t batch = 4, in_dim = 43, hidden = 32;
    const int reps = 200;
    const double flops_per_step =
        6.0 * batch * (hidden + in_dim) * hidden * 3.0;  // fwd+bwd approx
    const std::string shape = "b4 i43 h32 x200";
    for (nn::KernelMode mode : modes) {
      nn::ActivateKernels(mode);
      Rng rng(29);
      GruFixture f = MakeGruFixture(batch, in_dim, hidden, &rng);
      const double composed_s = BestOfRuns(runs, [&] {
        for (int i = 0; i < reps; ++i) {
          ComposedGruStep(f.x, f.h, f.wr, f.br, f.wz, f.bz, f.wh, f.bh);
        }
      });
      const double fused_s = BestOfRuns(runs, [&] {
        for (int i = 0; i < reps; ++i) {
          FusedGruStep(f.x, f.h, f.wr, f.br, f.wz, f.bz, f.wh, f.bh);
        }
      });
      add_row("gru-composed", nn::KernelModeName(mode), shape, composed_s,
              flops_per_step * reps, composed_s);
      add_row("gru-fused", nn::KernelModeName(mode), shape, fused_s,
              flops_per_step * reps, composed_s);
    }
  }

  // ---- Section 4: arena vs bypass on the fused GRU training step,
  // plus the steady-state allocation count.
  {
    const size_t batch = 4, in_dim = 43, hidden = 32;
    const int reps = 200;
    nn::ActivateKernels(avx2 ? nn::KernelMode::kAvx2
                             : nn::KernelMode::kScalar);
    Rng rng(31);
    GruFixture f = MakeGruFixture(batch, in_dim, hidden, &rng);
    auto step_loop = [&] {
      for (int i = 0; i < reps; ++i) {
        FusedGruStep(f.x, f.h, f.wr, f.br, f.wz, f.bz, f.wh, f.bh);
      }
    };
    step_loop();  // warm the freelists
    const nn::ArenaStats warm = nn::ThreadArenaStats();
    const double arena_s = BestOfRuns(runs, step_loop);
    const nn::ArenaStats after = nn::ThreadArenaStats();
    const bool bypass_saved = nn::SetArenaBypass(true);
    const double bypass_s = BestOfRuns(runs, step_loop);
    nn::SetArenaBypass(bypass_saved);
    const long long steady_heap_allocs = static_cast<long long>(
        after.heap_allocations - warm.heap_allocations);
    add_row("arena-on", "-", "gru-step x200", arena_s, 0.0, bypass_s);
    add_row("arena-bypass", "-", "gru-step x200", bypass_s, 0.0, bypass_s);
    std::printf("steady-state heap allocations across %d timed GRU "
                "steps: %lld (pool hits +%lld)\n",
                runs * reps, steady_heap_allocs,
                static_cast<long long>(after.pool_hits - warm.pool_hits));
  }

  std::printf("%s", table.ToString().c_str());
  std::string json = "{\"avx2_available\": ";
  json += avx2 ? "true" : "false";
  json += ", \"rows\": [\n";
  for (size_t i = 0; i < json_rows.size(); ++i) {
    json += json_rows[i];
    json += (i + 1 < json_rows.size()) ? ",\n" : "\n";
  }
  json += "]}\n";
  if (!bench::WriteArtifact(args, "BENCH_kernels.json", json) ||
      !bench::WriteArtifact(args, "bench_kernels.csv", table.ToCsv())) {
    return 1;
  }
  return 0;
}
