# Empty compiler generated dependencies file for lighttr_core.
# This may be replaced when dependencies are built.
