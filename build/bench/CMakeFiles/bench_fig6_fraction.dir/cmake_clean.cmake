file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fraction.dir/bench_fig6_fraction.cc.o"
  "CMakeFiles/bench_fig6_fraction.dir/bench_fig6_fraction.cc.o.d"
  "bench_fig6_fraction"
  "bench_fig6_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
