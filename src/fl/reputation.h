// Per-client reputation and quarantine for the self-healing loop.
//
// The health monitor (fl/health) judges rounds; this module remembers
// *who* caused trouble. Every screened upload outcome becomes an
// observation: corrupt (non-finite scalars), norm-rejected, or
// norm-outlier events raise a client's EWMA misbehaviour score, clean
// reports decay it. A client whose score crosses the quarantine
// threshold is excluded from future cohorts until it has sat out a
// parole period, after which it re-enters with a halved score — one
// more offence sends it straight back.
//
// The book lives on the coordinating thread and is a pure function of
// the observation sequence, so quarantine decisions are bitwise
// deterministic across thread widths. It serializes into fl/run_state
// snapshots (v2) so a resumed run remembers its offenders. Rollback,
// deliberately, does NOT restore the book: the whole point of rolling
// back is to replay the round with the offenders remembered.
#ifndef LIGHTTR_FL_REPUTATION_H_
#define LIGHTTR_FL_REPUTATION_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace lighttr::fl {

/// EWMA scoring + quarantine thresholds.
struct ReputationConfig {
  /// EWMA smoothing: score = (1-alpha)*score + alpha*event_weight.
  double alpha = 0.5;
  /// Quarantine when score reaches this value. With alpha 0.5 and
  /// corrupt weight 1.0, two corrupt uploads in a row cross 0.6.
  double quarantine_threshold = 0.6;
  /// Rounds a quarantined client sits out before parole.
  int parole_rounds = 4;
  // Event weights, by decreasing severity. When several apply to one
  // upload, the maximum wins.
  double corrupt_weight = 1.0;
  double rejected_weight = 0.7;
  /// Byzantine-aggregator detection (fl/aggregation suspected flag).
  /// Deliberately above the outlier weight: with alpha 0.5 the EWMA of
  /// a repeated weight-w event converges to w, so outlier-only
  /// offenders (0.5) never cross the default 0.6 threshold while a
  /// suspected poisoner (0.7) crosses it on its third straight flag.
  double suspect_weight = 0.7;
  double outlier_weight = 0.5;
};

/// One client's standing.
struct ClientReputation {
  double score = 0.0;
  bool quarantined = false;
  /// Rounds served in quarantine so far (valid while quarantined).
  int quarantine_age = 0;
  // Lifetime event counts, for telemetry.
  int corrupt_events = 0;
  int rejected_events = 0;
  int outlier_events = 0;
  int suspect_events = 0;
};

/// The server's ledger over all clients. Not thread-safe; coordinator
/// use only.
class ReputationBook {
 public:
  ReputationBook(int num_clients, ReputationConfig config);

  const ReputationConfig& config() const { return config_; }
  int num_clients() const { return static_cast<int>(clients_.size()); }
  const ClientReputation& client(int index) const;

  bool IsQuarantined(int index) const { return client(index).quarantined; }
  int QuarantinedCount() const;

  /// Records one upload outcome for `index` and updates its EWMA score.
  /// Crossing the threshold quarantines the client; returns true
  /// exactly when this observation triggered that transition.
  /// `suspected` marks a Byzantine-aggregator detection (the upload was
  /// screened-finite and norm-plausible yet flagged as probable poison).
  bool Observe(int index, bool corrupt, bool rejected, bool outlier,
               bool suspected = false);

  /// Advances every quarantined client's clock by one round and paroles
  /// those that served `parole_rounds`, re-admitting them with score
  /// threshold/2. Returns the number of clients paroled. Call once per
  /// completed (non-rolled-back) round.
  int Tick();

  /// Serializes the ledger (for fl/run_state v2 snapshots).
  std::string Serialize() const;

  /// Restores Serialize output. Rejects malformed input (including a
  /// client count that disagrees with this book's) without touching
  /// the current state.
  [[nodiscard]] Status Deserialize(const std::string& bytes);

 private:
  ReputationConfig config_;
  std::vector<ClientReputation> clients_;
};

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_REPUTATION_H_
