// Tests for the trajectory encoder: features, targets, candidates, the
// constraint mask (Eq. 10/11), and route-based interpolation.
#include <gtest/gtest.h>

#include "roadnet/generators.h"
#include "roadnet/segment_index.h"
#include "traj/downsample.h"
#include "traj/encoding.h"
#include "traj/generator.h"
#include "traj/workload.h"

namespace lighttr::traj {
namespace {

class EncodingTest : public ::testing::Test {
 protected:
  EncodingTest() {
    Rng rng(31);
    roadnet::CityGridOptions options;
    options.rows = 7;
    options.cols = 7;
    network_ = roadnet::GenerateCityGrid(options, &rng);
    index_ = std::make_unique<roadnet::SegmentIndex>(network_);
    encoder_ = std::make_unique<TrajectoryEncoder>(network_, *index_);
  }

  IncompleteTrajectory MakeSample(double keep_ratio = 0.25,
                                  uint64_t seed = 32) {
    Rng rng(seed);
    const TrajectoryGenerator generator(network_);
    auto result = generator.Generate({}, roadnet::kInvalidVertex, &rng);
    EXPECT_TRUE(result.ok());
    return MakeIncomplete(std::move(result).value(), keep_ratio, &rng);
  }

  roadnet::RoadNetwork network_;
  std::unique_ptr<roadnet::SegmentIndex> index_;
  std::unique_ptr<TrajectoryEncoder> encoder_;
};

TEST_F(EncodingTest, InputShapeAndRanges) {
  const IncompleteTrajectory icp = MakeSample();
  const nn::Matrix inputs = encoder_->EncodeInputs(icp);
  EXPECT_EQ(inputs.rows(), icp.size());
  EXPECT_EQ(inputs.cols(), TrajectoryEncoder::kFeatureDim);
  for (size_t r = 0; r < inputs.rows(); ++r) {
    for (size_t c = 0; c < inputs.cols(); ++c) {
      EXPECT_GE(inputs(r, c), 0.0) << r << "," << c;
      EXPECT_LE(inputs(r, c), 1.0) << r << "," << c;
    }
    EXPECT_EQ(inputs(r, 0), icp.observed[r] ? 1.0 : 0.0);
  }
}

TEST_F(EncodingTest, TargetsMatchGroundTruth) {
  const IncompleteTrajectory icp = MakeSample();
  const auto targets = encoder_->EncodeTargets(icp);
  ASSERT_EQ(targets.size(), icp.size());
  for (size_t t = 0; t < targets.size(); ++t) {
    EXPECT_EQ(targets[t].segment,
              icp.ground_truth.points[t].position.segment);
    EXPECT_DOUBLE_EQ(targets[t].ratio,
                     icp.ground_truth.points[t].position.ratio);
    EXPECT_EQ(targets[t].missing, !icp.observed[t]);
  }
}

TEST_F(EncodingTest, CandidatesAlwaysContainTruth) {
  const IncompleteTrajectory icp = MakeSample(0.125, 33);
  for (size_t t = 0; t < icp.size(); ++t) {
    const StepCandidates candidates = encoder_->CandidatesForStep(icp, t);
    ASSERT_GE(candidates.target_index, 0);
    ASSERT_LT(static_cast<size_t>(candidates.target_index),
              candidates.segments.size());
    EXPECT_EQ(candidates.segments[candidates.target_index],
              icp.ground_truth.points[t].position.segment);
    EXPECT_EQ(candidates.segments.size(), candidates.log_mask.size());
  }
}

TEST_F(EncodingTest, MaskIsLogWeightNonPositiveNearZeroForTruthAtObserved) {
  const IncompleteTrajectory icp = MakeSample(0.25, 34);
  const double bonus = encoder_->options().route_prior_bonus;
  for (size_t t = 0; t < icp.size(); ++t) {
    const StepCandidates candidates = encoder_->CandidatesForStep(icp, t);
    // Only the route-prior candidate may carry a positive (bonus) mask.
    int positive = 0;
    for (nn::Scalar mask : candidates.log_mask) {
      EXPECT_LE(mask, bonus + 1e-12);
      positive += mask > 1e-12 ? 1 : 0;
    }
    EXPECT_LE(positive, 1);
    if (icp.observed[t]) {
      // At observed points the estimate sits on the true segment, whose
      // distance term vanishes (direction term may not for twins).
      EXPECT_GE(candidates.log_mask[candidates.target_index], -4.5);
    }
  }
}

TEST_F(EncodingTest, InterpolatedPointIsExactAtObservedSteps) {
  const IncompleteTrajectory icp = MakeSample(0.25, 35);
  for (size_t t = 0; t < icp.size(); ++t) {
    if (!icp.observed[t]) continue;
    const geo::GeoPoint expected =
        network_.PositionToPoint(icp.ground_truth.points[t].position);
    EXPECT_NEAR(geo::HaversineMeters(encoder_->InterpolatedPoint(icp, t),
                                     expected),
                0.0, 0.01);
  }
}

TEST_F(EncodingTest, RouteInterpolationRecoversConstantSpeedChainExactly) {
  // A straight chain with a constant-speed trajectory: the route-based
  // interpolation must land on the true segment with the true ratio.
  const roadnet::RoadNetwork chain = roadnet::GenerateChain(20, 100.0);
  const roadnet::SegmentIndex index(chain);
  const TrajectoryEncoder encoder(chain, index);

  MatchedTrajectory t;
  t.epsilon_s = 10.0;
  // 50 m per step eastward along the chain (segment k covers [100k, 100k+100]).
  for (int i = 0; i < 16; ++i) {
    const double meters = 50.0 * i;
    const int vertex = static_cast<int>(meters / 100.0);
    const double ratio = (meters - vertex * 100.0) / 100.0;
    const roadnet::SegmentId seg = chain.FindSegment(vertex, vertex + 1);
    ASSERT_NE(seg, roadnet::kInvalidSegment);
    t.points.push_back(MatchedPoint{{seg, ratio}, i * 10.0, i});
  }
  IncompleteTrajectory icp;
  icp.observed.assign(16, false);
  icp.observed[0] = icp.observed[5] = icp.observed[10] = icp.observed[15] =
      true;
  icp.ground_truth = std::move(t);

  for (size_t i = 0; i < 16; ++i) {
    auto position = encoder.RouteInterpolatedPosition(icp, i);
    ASSERT_TRUE(position.has_value()) << i;
    EXPECT_EQ(position->segment,
              icp.ground_truth.points[i].position.segment)
        << i;
    EXPECT_NEAR(position->ratio, icp.ground_truth.points[i].position.ratio,
                1e-6)
        << i;
  }
}

TEST_F(EncodingTest, DirectionMaskPrefersTravelDirection) {
  // On a two-way chain, the mask must rank the forward segment above its
  // reverse twin at interior missing steps.
  const roadnet::RoadNetwork chain = roadnet::GenerateChain(20, 100.0);
  const roadnet::SegmentIndex index(chain);
  const TrajectoryEncoder encoder(chain, index);

  MatchedTrajectory t;
  t.epsilon_s = 10.0;
  for (int i = 0; i < 12; ++i) {
    const double meters = 80.0 * i;
    const int vertex = static_cast<int>(meters / 100.0);
    const double ratio = (meters - vertex * 100.0) / 100.0;
    const roadnet::SegmentId seg = chain.FindSegment(vertex, vertex + 1);
    t.points.push_back(MatchedPoint{{seg, ratio}, i * 10.0, i});
  }
  IncompleteTrajectory icp;
  icp.observed.assign(12, false);
  icp.observed[0] = icp.observed[11] = true;
  icp.ground_truth = std::move(t);

  for (size_t i = 1; i < 11; ++i) {
    const StepCandidates candidates = encoder_->CandidatesForStep(icp, i);
    (void)candidates;
    const StepCandidates chain_candidates = encoder.CandidatesForStep(icp, i);
    const int truth = icp.ground_truth.points[i].position.segment;
    const auto& seg = chain.segment(truth);
    const roadnet::SegmentId reverse = chain.FindSegment(seg.to, seg.from);
    double truth_mask = 1.0;
    double reverse_mask = 1.0;
    for (size_t k = 0; k < chain_candidates.segments.size(); ++k) {
      if (chain_candidates.segments[k] == truth) {
        truth_mask = chain_candidates.log_mask[k];
      }
      if (chain_candidates.segments[k] == reverse) {
        reverse_mask = chain_candidates.log_mask[k];
      }
    }
    EXPECT_LT(reverse_mask, truth_mask) << "step " << i;
  }
}

TEST_F(EncodingTest, FullyObservedTrajectoryHasNoMissingTargets) {
  IncompleteTrajectory icp = MakeSample(1.0, 36);
  for (size_t i = 0; i < icp.size(); ++i) icp.observed[i] = true;
  const auto targets = encoder_->EncodeTargets(icp);
  for (const StepTarget& target : targets) EXPECT_FALSE(target.missing);
}

}  // namespace
}  // namespace lighttr::traj
