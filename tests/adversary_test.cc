// Tests for the Byzantine layer: the seeded model-poisoning adversary
// engine, the robust aggregation policies (Krum / Multi-Krum /
// norm-bound) with their suspicion certificates, the reputation
// suspected-flag path, and the trainer's end-to-end defense contract
// (attackers quarantined, honest clients untouched, bitwise determinism
// across thread counts and crash/resume).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "fl/adversary.h"
#include "fl/aggregation.h"
#include "fl/federated_trainer.h"
#include "fl/privacy.h"
#include "fl/reputation.h"
#include "fl/run_state.h"
#include "nn/losses.h"
#include "roadnet/generators.h"
#include "traj/generator.h"
#include "traj/workload.h"

namespace lighttr::fl {
namespace {

// ---------------------------------------------------------------------
// AdversaryEngine unit tests
// ---------------------------------------------------------------------

AdversaryConfig BaseConfig(AttackType attack, int attackers = 2) {
  AdversaryConfig config;
  config.num_attackers = attackers;
  config.attack = attack;
  config.start_round = 1;
  return config;
}

TEST(AttackType, NameParseRoundTrip) {
  const AttackType all[] = {AttackType::kNone, AttackType::kSignFlip,
                            AttackType::kScaledAscent, AttackType::kMinMax,
                            AttackType::kNormMatched};
  for (AttackType attack : all) {
    AttackType parsed = AttackType::kNone;
    ASSERT_TRUE(ParseAttackType(AttackTypeName(attack), &parsed))
        << AttackTypeName(attack);
    EXPECT_EQ(parsed, attack);
  }
  AttackType out = AttackType::kSignFlip;
  EXPECT_FALSE(ParseAttackType("gradient-inversion", &out));
  EXPECT_EQ(out, AttackType::kSignFlip);  // untouched on failure
  // CLI shorthand spellings.
  ASSERT_TRUE(ParseAttackType("ascent", &out));
  EXPECT_EQ(out, AttackType::kScaledAscent);
  ASSERT_TRUE(ParseAttackType("stealth", &out));
  EXPECT_EQ(out, AttackType::kNormMatched);
  ASSERT_TRUE(ParseAttackType("minmax", &out));
  EXPECT_EQ(out, AttackType::kMinMax);
}

TEST(AdversaryConfig, EnabledAndAttribution) {
  AdversaryConfig off;
  EXPECT_FALSE(off.Enabled());
  AdversaryConfig on = BaseConfig(AttackType::kSignFlip, 3);
  EXPECT_TRUE(on.Enabled());
  EXPECT_TRUE(on.IsAttacker(0));
  EXPECT_TRUE(on.IsAttacker(2));
  EXPECT_FALSE(on.IsAttacker(3));
  // Attack type kNone disables even with a cohort configured.
  on.attack = AttackType::kNone;
  EXPECT_FALSE(on.Enabled());
  EXPECT_FALSE(on.IsAttacker(0));
}

TEST(AdversaryEngine, InactiveBeforeStartRound) {
  AdversaryConfig config = BaseConfig(AttackType::kSignFlip);
  config.start_round = 5;
  AdversaryEngine engine(config);
  EXPECT_FALSE(engine.ActiveInRound(1));
  EXPECT_FALSE(engine.ActiveInRound(4));
  EXPECT_TRUE(engine.ActiveInRound(5));
  EXPECT_TRUE(engine.ActiveInRound(9));
}

TEST(AdversaryEngine, SignFlipIsExactInverse) {
  AdversaryEngine engine(BaseConfig(AttackType::kSignFlip));
  const std::vector<nn::Scalar> global = {1.0, -2.0, 0.5, 3.0};
  std::vector<nn::Scalar> upload = {1.5, -2.5, 0.25, 3.0};
  engine.BeginRound(1, global.size());
  Rng stream = engine.ForkStream();
  ASSERT_TRUE(engine.Poison(global, &upload, &stream));
  // The flipped upload is exactly global - (honest - global).
  EXPECT_EQ(upload[0], 0.5);
  EXPECT_EQ(upload[1], -1.5);
  EXPECT_EQ(upload[2], 0.75);
  EXPECT_EQ(upload[3], 3.0);
}

TEST(AdversaryEngine, ScaledAscentScalesWithinJitterBand) {
  AdversaryConfig config = BaseConfig(AttackType::kScaledAscent);
  config.ascent_scale = 10.0;
  AdversaryEngine engine(config);
  const std::vector<nn::Scalar> global = {0.0, 0.0};
  std::vector<nn::Scalar> upload = {1.0, -1.0};
  engine.BeginRound(1, global.size());
  Rng stream = engine.ForkStream();
  ASSERT_TRUE(engine.Poison(global, &upload, &stream));
  // upload = global - s * delta with s in [9, 11] (ascent x +-10%).
  const double s = -upload[0];
  EXPECT_GE(s, 9.0);
  EXPECT_LE(s, 11.0);
  EXPECT_EQ(upload[1], s);  // both coordinates share the same draw
}

TEST(AdversaryEngine, MinMaxColludersUploadBitwiseIdentical) {
  AdversaryConfig config = BaseConfig(AttackType::kMinMax);
  config.stealth_margin = 0.9;
  AdversaryEngine engine(config);
  // Bank honest norms so TargetNorm has a median to mimic.
  engine.ObserveHonestNorm(1.0);
  engine.ObserveHonestNorm(2.0);
  engine.ObserveHonestNorm(3.0);
  const std::vector<nn::Scalar> global = {0.5, -0.5, 1.0, 0.0};
  engine.BeginRound(1, global.size());
  std::vector<nn::Scalar> a = {0.6, -0.4, 1.2, 0.1};  // distinct honest
  std::vector<nn::Scalar> b = {0.3, -0.7, 0.9, -0.2};  // trainings
  Rng stream_a = engine.ForkStream();
  Rng stream_b = engine.ForkStream();
  ASSERT_TRUE(engine.Poison(global, &a, &stream_a));
  ASSERT_TRUE(engine.Poison(global, &b, &stream_b));
  EXPECT_EQ(a, b);  // the collusion tell the certificate fires on
  // Delta norm lands exactly on stealth_margin x median honest norm.
  EXPECT_NEAR(DeltaNorm(a, global), 0.9 * 2.0, 1e-9);
}

TEST(AdversaryEngine, MinMaxResamplesDriftEveryRound) {
  AdversaryConfig config = BaseConfig(AttackType::kMinMax);
  AdversaryEngine engine(config);
  engine.ObserveHonestNorm(1.0);
  const std::vector<nn::Scalar> global(6, nn::Scalar{0});
  engine.BeginRound(1, global.size());
  std::vector<nn::Scalar> first = global;
  Rng s1 = engine.ForkStream();
  ASSERT_TRUE(engine.Poison(global, &first, &s1));
  engine.BeginRound(2, global.size());
  std::vector<nn::Scalar> second = global;
  Rng s2 = engine.ForkStream();
  ASSERT_TRUE(engine.Poison(global, &second, &s2));
  EXPECT_NE(first, second);  // repeated drift would be a signature
}

TEST(AdversaryEngine, NormMatchedFlipsAndLandsUnderHonestEnvelope) {
  AdversaryConfig config = BaseConfig(AttackType::kNormMatched);
  config.stealth_margin = 0.9;
  AdversaryEngine engine(config);
  engine.ObserveHonestNorm(2.0);
  const std::vector<nn::Scalar> global = {0.0, 0.0, 0.0};
  const std::vector<nn::Scalar> honest = {3.0, 4.0, 0.0};  // norm 5
  std::vector<nn::Scalar> upload = honest;
  engine.BeginRound(1, global.size());
  Rng stream = engine.ForkStream();
  ASSERT_TRUE(engine.Poison(global, &upload, &stream));
  // Direction is the exact flip of the honest delta...
  double dot = 0.0;
  for (size_t i = 0; i < global.size(); ++i) dot += upload[i] * honest[i];
  EXPECT_LT(dot, 0.0);
  // ...at a norm inside [0.9, 1.0] x (margin x median honest norm), so
  // it never exceeds what norm screening considers plausible.
  const double norm = DeltaNorm(upload, global);
  EXPECT_GE(norm, 0.9 * 0.9 * 2.0 - 1e-12);
  EXPECT_LE(norm, 0.9 * 2.0 + 1e-12);
}

TEST(AdversaryEngine, TargetNormFallsBackBeforeHistory) {
  AdversaryEngine engine(BaseConfig(AttackType::kNormMatched));
  EXPECT_EQ(engine.honest_norm_history(), 0);
  EXPECT_NEAR(engine.TargetNorm(5.0), 0.9 * 5.0, 1e-12);
  EXPECT_EQ(engine.TargetNorm(0.0), 1.0);  // fully degenerate fallback
  engine.ObserveHonestNorm(10.0);
  EXPECT_EQ(engine.honest_norm_history(), 1);
  EXPECT_NEAR(engine.TargetNorm(5.0), 0.9 * 10.0, 1e-12);
  // Non-finite and negative norms are never banked.
  engine.ObserveHonestNorm(-1.0);
  engine.ObserveHonestNorm(std::nan(""));
  EXPECT_EQ(engine.honest_norm_history(), 1);
}

TEST(AdversaryEngine, SameSeedSamePoisonDifferentSeedDifferent) {
  AdversaryConfig config = BaseConfig(AttackType::kScaledAscent);
  const std::vector<nn::Scalar> global = {0.0, 0.0};
  auto run = [&](uint64_t seed) {
    AdversaryConfig c = config;
    c.seed = seed;
    AdversaryEngine engine(c);
    engine.BeginRound(1, global.size());
    std::vector<nn::Scalar> upload = {1.0, 2.0};
    Rng stream = engine.ForkStream();
    engine.Poison(global, &upload, &stream);
    return upload;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(AdversaryEngine, SerializeStateRoundTripsBitwise) {
  AdversaryConfig config = BaseConfig(AttackType::kMinMax);
  AdversaryEngine engine(config);
  engine.ObserveHonestNorm(1.5);
  engine.ObserveHonestNorm(2.5);
  engine.BeginRound(1, 8);  // consume stream state mid-run
  const std::string blob = engine.SerializeState();

  AdversaryEngine restored(config);
  ASSERT_TRUE(restored.DeserializeState(blob).ok());
  EXPECT_EQ(restored.honest_norm_history(), 2);
  // Replaying the same rounds from the restored state must reproduce
  // the original stream bitwise (drift is regenerated by BeginRound).
  const std::vector<nn::Scalar> global(8, nn::Scalar{0});
  auto next_poison = [&](AdversaryEngine* e) {
    e->BeginRound(2, global.size());
    std::vector<nn::Scalar> upload = global;
    Rng stream = e->ForkStream();
    e->Poison(global, &upload, &stream);
    return upload;
  };
  EXPECT_EQ(next_poison(&engine), next_poison(&restored));
}

TEST(AdversaryEngine, DeserializeRejectsGarbageWithoutMutating) {
  AdversaryEngine engine(BaseConfig(AttackType::kSignFlip));
  engine.ObserveHonestNorm(4.0);
  const std::string good = engine.SerializeState();
  EXPECT_FALSE(engine.DeserializeState("").ok());
  EXPECT_FALSE(engine.DeserializeState("garbage").ok());
  std::string truncated = good.substr(0, good.size() - 3);
  EXPECT_FALSE(engine.DeserializeState(truncated).ok());
  std::string trailing = good + "x";
  EXPECT_FALSE(engine.DeserializeState(trailing).ok());
  // State untouched by the failed loads.
  EXPECT_EQ(engine.honest_norm_history(), 1);
  EXPECT_EQ(engine.SerializeState(), good);
}

// ---------------------------------------------------------------------
// Robust aggregation: policies, edge cases, suspicion certificates
// ---------------------------------------------------------------------

TEST(ParseAggregatorPolicy, StrictSpellings) {
  const AggregatorPolicy all[] = {
      AggregatorPolicy::kMean,     AggregatorPolicy::kMedian,
      AggregatorPolicy::kTrimmedMean, AggregatorPolicy::kKrum,
      AggregatorPolicy::kMultiKrum, AggregatorPolicy::kNormBound};
  for (AggregatorPolicy policy : all) {
    AggregatorPolicy parsed = AggregatorPolicy::kMean;
    ASSERT_TRUE(ParseAggregatorPolicy(AggregatorPolicyName(policy), &parsed))
        << AggregatorPolicyName(policy);
    EXPECT_EQ(parsed, policy);
  }
  AggregatorPolicy out = AggregatorPolicy::kMedian;
  EXPECT_FALSE(ParseAggregatorPolicy("average", &out));
  EXPECT_EQ(out, AggregatorPolicy::kMedian);  // untouched
  ASSERT_TRUE(ParseAggregatorPolicy("trimmed", &out));
  EXPECT_EQ(out, AggregatorPolicy::kTrimmedMean);
  ASSERT_TRUE(ParseAggregatorPolicy("multikrum", &out));
  EXPECT_EQ(out, AggregatorPolicy::kMultiKrum);
  ASSERT_TRUE(ParseAggregatorPolicy("normbound", &out));
  EXPECT_EQ(out, AggregatorPolicy::kNormBound);
}

TEST(Aggregation, TrimmedMeanRejectsEmptySliceLoudly) {
  // Regression: trim_fraction >= 0.5 used to clamp silently and could
  // average an empty slice; it must be a parameter error instead.
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kTrimmedMean;
  config.trim_fraction = 0.5;
  const std::vector<std::vector<nn::Scalar>> uploads = {{1.0}, {2.0}};
  EXPECT_FALSE(AggregateFlat(uploads, config).ok());
  config.trim_fraction = -0.1;
  EXPECT_FALSE(AggregateFlat(uploads, config).ok());
  // A legal fraction on a tiny cohort trims nothing and degrades to
  // the mean rather than failing.
  config.trim_fraction = 0.4;  // k = floor(0.4 * 2) = 0
  Result<std::vector<nn::Scalar>> ok = AggregateFlat(uploads, config);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value()[0], 1.5);
}

TEST(Aggregation, SingleClientRoundIsIdentityForEveryPolicy) {
  const std::vector<std::vector<nn::Scalar>> uploads = {{1.0, -2.0, 3.0}};
  const std::vector<nn::Scalar> reference = {0.0, 0.0, 0.0};
  const AggregatorPolicy all[] = {
      AggregatorPolicy::kMean,     AggregatorPolicy::kMedian,
      AggregatorPolicy::kTrimmedMean, AggregatorPolicy::kKrum,
      AggregatorPolicy::kMultiKrum, AggregatorPolicy::kNormBound};
  for (AggregatorPolicy policy : all) {
    SCOPED_TRACE(AggregatorPolicyName(policy));
    AggregatorConfig config;
    config.policy = policy;
    std::vector<uint8_t> suspected;
    Result<std::vector<nn::Scalar>> out =
        AggregateFlat(uploads, config, &reference, /*norm_bound=*/0.0,
                      &suspected);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out.value(), uploads[0]);
    ASSERT_EQ(suspected.size(), 1u);
    EXPECT_EQ(suspected[0], 0);  // a lone reporter is never suspect
  }
}

TEST(Aggregation, CoordinateMedianAveragesEvenCohortMiddle) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMedian;
  // Even cohort: median of {1, 2, 4, 100} is (2 + 4) / 2; a duplicated
  // middle value (tie) must still average exactly.
  const std::vector<std::vector<nn::Scalar>> uploads = {
      {1.0, 5.0}, {2.0, 5.0}, {4.0, 5.0}, {100.0, -3.0}};
  Result<std::vector<nn::Scalar>> out = AggregateFlat(uploads, config);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0], 3.0);
  EXPECT_EQ(out.value()[1], 5.0);  // tie: (5 + 5) / 2
}

TEST(Aggregation, KrumSmallCohortFallsBackToMedian) {
  AggregatorConfig krum;
  krum.policy = AggregatorPolicy::kKrum;
  krum.byzantine_fraction = 0.4;
  // m = 2, f = 0, but m < f + 3: Krum cannot score a single neighbor
  // pool, so the result must equal the coordinate median.
  const std::vector<std::vector<nn::Scalar>> uploads = {{1.0, 8.0},
                                                        {3.0, 2.0}};
  Result<std::vector<nn::Scalar>> out = AggregateFlat(uploads, krum);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0], 2.0);
  EXPECT_EQ(out.value()[1], 5.0);
}

TEST(Aggregation, KrumPicksHonestCenterAndFlagsOutlier) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kKrum;
  config.byzantine_fraction = 0.25;  // f = 1 of m = 5
  const std::vector<nn::Scalar> reference = {0.0};
  // Honest cluster around 1.0 plus one far outlier. One parameter:
  // both certificates sit out (dimension gates) so this isolates the
  // score rule.
  const std::vector<std::vector<nn::Scalar>> uploads = {
      {0.9}, {1.0}, {1.1}, {1.05}, {25.0}};
  std::vector<uint8_t> suspected;
  Result<std::vector<nn::Scalar>> out =
      AggregateFlat(uploads, config, &reference, 0.0, &suspected);
  ASSERT_TRUE(out.ok());
  // Krum selects exactly one upload, from inside the cluster.
  EXPECT_GE(out.value()[0], 0.9);
  EXPECT_LE(out.value()[0], 1.1);
  ASSERT_EQ(suspected.size(), 5u);
  EXPECT_EQ(suspected[4], 1);  // the outlier
  for (int i = 0; i < 4; ++i) EXPECT_EQ(suspected[i], 0) << i;
}

TEST(Aggregation, MultiKrumAveragesLowestScores) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMultiKrum;
  config.byzantine_fraction = 0.25;  // f = 1, selected = m - f = 4
  const std::vector<std::vector<nn::Scalar>> uploads = {
      {1.0}, {2.0}, {3.0}, {4.0}, {1000.0}};
  Result<std::vector<nn::Scalar>> out = AggregateFlat(uploads, config);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0], (1.0 + 2.0 + 3.0 + 4.0) / 4.0);
}

TEST(Aggregation, SuspicionAnchorShieldsDegenerateHonestCluster) {
  // The chaos probe scenario: a near-degenerate honest cluster whose
  // median score is ~0. A purely relative rule would flag the cluster's
  // own straggler; the magnitude anchor (median squared distance to the
  // reference) must keep everyone clean.
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMultiKrum;
  config.byzantine_fraction = 0.25;
  const std::vector<nn::Scalar> reference = {0.0};
  const std::vector<std::vector<nn::Scalar>> uploads = {
      {1.0000}, {1.0001}, {1.0002}, {1.0001}, {1.0040}};  // all honest
  std::vector<uint8_t> suspected;
  Result<std::vector<nn::Scalar>> out =
      AggregateFlat(uploads, config, &reference, 0.0, &suspected);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < suspected.size(); ++i) {
    EXPECT_EQ(suspected[i], 0) << i;
  }
  // Without a reference the anchor is 0 and the relative rule runs
  // alone — the regression this anchor fixed — so the straggler IS
  // flagged; this documents why the trainer always passes the global
  // model as reference.
  std::vector<uint8_t> unanchored;
  ASSERT_TRUE(
      AggregateFlat(uploads, config, nullptr, 0.0, &unanchored).ok());
  EXPECT_EQ(unanchored[4], 1);
}

TEST(Aggregation, CollusionCertificateFlagsIdenticalUploads) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMultiKrum;
  config.byzantine_fraction = 0.25;
  const std::vector<nn::Scalar> reference = {0.0, 0.0};
  // Two byte-identical colluders hiding INSIDE the honest envelope:
  // their mutual zero distance deflates their Krum scores below the
  // suspicion bar, which is exactly why the certificate exists.
  const std::vector<std::vector<nn::Scalar>> uploads = {
      {0.50, 0.50}, {0.50, 0.50}, {0.60, 0.40}, {0.45, 0.55}, {0.55, 0.62}};
  std::vector<uint8_t> suspected;
  ASSERT_TRUE(
      AggregateFlat(uploads, config, &reference, 0.0, &suspected).ok());
  EXPECT_EQ(suspected[0], 1);
  EXPECT_EQ(suspected[1], 1);
  EXPECT_EQ(suspected[2], 0);
  EXPECT_EQ(suspected[3], 0);
  EXPECT_EQ(suspected[4], 0);
}

TEST(Aggregation, CollusionCertificateDimensionAndDegeneracyGates) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMultiKrum;
  config.byzantine_fraction = 0.25;
  // One parameter: coinciding scalars are coincidence, not collusion.
  const std::vector<std::vector<nn::Scalar>> scalar_uploads = {
      {0.5}, {0.5}, {0.6}, {0.45}, {0.55}};
  std::vector<uint8_t> suspected;
  ASSERT_TRUE(AggregateFlat(scalar_uploads, config, nullptr, 0.0,
                            &suspected)
                  .ok());
  EXPECT_EQ(suspected[0], 0);
  EXPECT_EQ(suspected[1], 0);
  // Fully degenerate round (every upload identical, max score 0): no
  // pair can be singled out, nobody is flagged.
  const std::vector<std::vector<nn::Scalar>> same(
      5, std::vector<nn::Scalar>{0.5, 0.5});
  ASSERT_TRUE(AggregateFlat(same, config, nullptr, 0.0, &suspected).ok());
  for (size_t i = 0; i < suspected.size(); ++i) {
    EXPECT_EQ(suspected[i], 0) << i;
  }
}

// Builds an anti-alignment scenario: honest uploads step +delta (with
// small per-client wobble) from a zero reference, flipped uploads step
// -delta at the same norm.
std::vector<std::vector<nn::Scalar>> AlignedCohort(size_t dims,
                                                   int honest,
                                                   int flipped) {
  std::vector<std::vector<nn::Scalar>> uploads;
  // The per-client constant keeps every vector distinct (no accidental
  // collusion-certificate hits), the per-coordinate wobble keeps
  // pairwise distances from being a separator.
  for (int c = 0; c < honest; ++c) {
    std::vector<nn::Scalar> u(dims);
    for (size_t i = 0; i < dims; ++i) {
      u[i] = 1.0 + 0.03 * static_cast<double>(c) +
             0.05 * static_cast<double>((c + i) % 3);
    }
    uploads.push_back(u);
  }
  for (int c = 0; c < flipped; ++c) {
    std::vector<nn::Scalar> u(dims);
    for (size_t i = 0; i < dims; ++i) {
      u[i] = -(1.0 + 0.03 * static_cast<double>(honest + c) +
               0.05 * static_cast<double>((c + i) % 3));
    }
    uploads.push_back(u);
  }
  return uploads;
}

TEST(Aggregation, AntiAlignmentCertificateFlagsFlippedDeltas) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMultiKrum;
  config.byzantine_fraction = 0.25;  // f = 1 of 6
  const std::vector<nn::Scalar> reference(12, nn::Scalar{0});
  // Sign-flipping preserves norms and (for weakly-correlated clients)
  // distance statistics; only the direction test can see it.
  const auto uploads = AlignedCohort(12, /*honest=*/5, /*flipped=*/1);
  std::vector<uint8_t> suspected;
  ASSERT_TRUE(
      AggregateFlat(uploads, config, &reference, 0.0, &suspected).ok());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(suspected[i], 0) << i;
  EXPECT_EQ(suspected[5], 1);
}

TEST(Aggregation, AntiAlignmentCertificateNeedsDimensionsAndReference) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMultiKrum;
  config.byzantine_fraction = 0.25;
  // 4 < kMinDirectionParams dimensions: a low-dimensional flip is weak
  // evidence, the certificate must not fire. (The honest wobble keeps
  // pairwise distances nonzero so the collusion certificate also stays
  // quiet, and the flipped upload ranks into the selected set under
  // f = 1 so the score rule never examines it.)
  const std::vector<nn::Scalar> small_ref(4, nn::Scalar{0});
  const auto small = AlignedCohort(4, 5, 1);
  std::vector<uint8_t> suspected;
  ASSERT_TRUE(
      AggregateFlat(small, config, &small_ref, 0.0, &suspected).ok());
  // The score rule may still catch a genuinely distant upload; what
  // must NOT happen is a flag on any honest client.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(suspected[i], 0) << i;
  // Without a reference there is no delta direction (and no anchor:
  // the bare score rule may still catch the far-away flip), but no
  // honest client may be flagged by the degraded rule either.
  const auto big = AlignedCohort(12, 5, 1);
  ASSERT_TRUE(AggregateFlat(big, config, nullptr, 0.0, &suspected).ok());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(suspected[i], 0) << i;
}

TEST(Aggregation, ExcludeSuspectedMeansOverUnflaggedUploads) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMultiKrum;
  config.byzantine_fraction = 0.25;
  config.exclude_suspected = true;
  const std::vector<nn::Scalar> reference(12, nn::Scalar{0});
  const auto uploads = AlignedCohort(12, 5, 1);
  std::vector<uint8_t> suspected;
  Result<std::vector<nn::Scalar>> out =
      AggregateFlat(uploads, config, &reference, 0.0, &suspected);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(suspected[5], 1);
  // The aggregate is the plain mean over the five honest uploads —
  // including the "outer" ones Krum selection would have discarded.
  for (size_t i = 0; i < reference.size(); ++i) {
    nn::Scalar mean{0};
    for (int c = 0; c < 5; ++c) mean += uploads[c][i];
    mean *= nn::Scalar{1} / nn::Scalar{5};  // the aggregator's rounding
    EXPECT_EQ(out.value()[i], mean) << i;
  }
  // Clean round, nothing flagged: exclude_suspected returns the mean
  // of ALL uploads (zero selection tax).
  const auto clean = AlignedCohort(12, 6, 0);
  Result<std::vector<nn::Scalar>> clean_out =
      AggregateFlat(clean, config, &reference, 0.0, &suspected);
  ASSERT_TRUE(clean_out.ok());
  for (uint8_t flag : suspected) EXPECT_EQ(flag, 0);
  for (size_t i = 0; i < reference.size(); ++i) {
    nn::Scalar mean{0};
    for (int c = 0; c < 6; ++c) mean += clean[c][i];
    mean *= nn::Scalar{1} / nn::Scalar{6};
    EXPECT_EQ(clean_out.value()[i], mean) << i;
  }
}

TEST(Aggregation, NormBoundClipsAndFlagsOnlyExtremeDeltas) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kNormBound;
  config.suspicion_mult = 4.0;
  const std::vector<nn::Scalar> reference = {0.0};
  const std::vector<std::vector<nn::Scalar>> uploads = {
      {1.0}, {1.5}, {10.0}};
  // Unarmed bound (<= 0): plain mean, nobody suspected.
  std::vector<uint8_t> suspected;
  Result<std::vector<nn::Scalar>> unarmed =
      AggregateFlat(uploads, config, &reference, 0.0, &suspected);
  ASSERT_TRUE(unarmed.ok());
  EXPECT_NEAR(unarmed.value()[0], (1.0 + 1.5 + 10.0) / 3.0, 1e-12);
  for (uint8_t flag : suspected) EXPECT_EQ(flag, 0);
  // Armed at 2.0: the 10.0 delta is clipped to the bound and, being
  // over suspicion_mult x bound, flagged; the 1.5 delta sails through.
  Result<std::vector<nn::Scalar>> armed =
      AggregateFlat(uploads, config, &reference, 2.0, &suspected);
  ASSERT_TRUE(armed.ok());
  EXPECT_NEAR(armed.value()[0], (1.0 + 1.5 + 2.0) / 3.0, 1e-12);
  EXPECT_EQ(suspected[0], 0);
  EXPECT_EQ(suspected[1], 0);
  EXPECT_EQ(suspected[2], 1);
  // NormBound without a reference is a parameter error, not a crash.
  EXPECT_FALSE(AggregateFlat(uploads, config).ok());
}

// ---------------------------------------------------------------------
// Reputation: the suspected-flag path
// ---------------------------------------------------------------------

TEST(Reputation, SuspectedFlagsQuarantineRepeatOffenders) {
  ReputationConfig config;
  config.quarantine_threshold = 0.45;  // the defended-preset value
  ReputationBook book(2, config);
  // First flag: 0.5 * 0.7 = 0.35 < 0.45, still at large.
  EXPECT_FALSE(book.Observe(0, false, false, false, /*suspected=*/true));
  EXPECT_FALSE(book.IsQuarantined(0));
  EXPECT_EQ(book.client(0).suspect_events, 1);
  // Second consecutive flag: 0.525 >= 0.45, quarantined.
  EXPECT_TRUE(book.Observe(0, false, false, false, /*suspected=*/true));
  EXPECT_TRUE(book.IsQuarantined(0));
  // An honest client's clean reports decay toward zero and never
  // approach the threshold.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(book.Observe(1, false, false, false, false));
  }
  EXPECT_FALSE(book.IsQuarantined(1));
  EXPECT_EQ(book.QuarantinedCount(), 1);
}

TEST(Reputation, SuspectWeightOutranksOutlierOnSameUpload) {
  ReputationConfig config;
  ReputationBook book(1, config);
  // suspected + outlier on one upload: the max weight (0.7) wins.
  book.Observe(0, false, false, /*outlier=*/true, /*suspected=*/true);
  EXPECT_NEAR(book.client(0).score, 0.5 * 0.7, 1e-12);
  EXPECT_EQ(book.client(0).suspect_events, 1);
  EXPECT_EQ(book.client(0).outlier_events, 1);
}

// ---------------------------------------------------------------------
// End-to-end: FederatedTrainer under attack
// ---------------------------------------------------------------------

// Minimal RecoveryModel in the fl_test mold, but trained toward a
// SHARED constant rather than the per-client driver_id: honest clients
// must agree on a consensus direction for a Byzantine defense to have
// something to defend (the per-client-target stub models a pathological
// zero-consensus federation where no robust aggregator can distinguish
// honest disagreement from attack).
class StubModel : public RecoveryModel {
 public:
  explicit StubModel(Rng* rng) {
    w_ = nn::Tensor::Variable(
        nn::Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  ForwardResult Forward(const traj::IncompleteTrajectory& /*trajectory*/,
                        bool /*training*/, Rng* /*rng*/) override {
    nn::Matrix target(1, 1);
    target(0, 0) = nn::Scalar{2.0};
    ForwardResult result;
    result.loss = nn::MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    return std::vector<roadnet::PointPosition>(trajectory.size(),
                                               roadnet::PointPosition{0, 0.0});
  }

 private:
  std::string name_ = "Stub";
  nn::ParameterSet params_;
  nn::Tensor w_;
};

std::unique_ptr<RecoveryModel> MakeStub(Rng* rng) {
  return std::make_unique<StubModel>(rng);
}

std::vector<traj::ClientDataset> MakeClients(int n, uint64_t seed,
                                             int per_client = 6) {
  Rng rng(seed);
  roadnet::CityGridOptions options;
  options.rows = 6;
  options.cols = 6;
  static roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = per_client;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = n;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

// The defended configuration bench_adversary gates on, shrunk for unit
// runtime: Multi-Krum detection with exclusion aggregation, suspicion
// feeding the reputation ledger, quarantine after two flags.
FederatedTrainerOptions DefendedOptions(AttackType attack, int rounds = 10) {
  FederatedTrainerOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.learning_rate = 0.05;
  options.client_fraction = 1.0;
  options.adversary.num_attackers = 2;
  options.adversary.attack = attack;
  options.adversary.start_round = 2;
  options.tolerance.aggregator.policy = AggregatorPolicy::kMultiKrum;
  options.tolerance.aggregator.byzantine_fraction = 0.3;
  options.tolerance.aggregator.exclude_suspected = true;
  options.healing.enabled = true;
  options.healing.reputation.quarantine_threshold = 0.45;
  options.healing.reputation.parole_rounds = rounds + 100;  // no parole
  return options;
}

TEST(FederatedTrainerAdversary, DisabledEngineIsNullAndCountsZero) {
  auto clients = MakeClients(4, 61);
  FederatedTrainerOptions options;
  options.rounds = 2;
  FederatedTrainer trainer(MakeStub, &clients, options);
  EXPECT_EQ(trainer.adversary(), nullptr);
  const FederatedRunResult result = trainer.Run();
  EXPECT_EQ(result.faults.poisoned_uploads, 0);
  for (const RoundRecord& record : result.history) {
    EXPECT_EQ(record.poisoned_uploads, 0);
  }
}

TEST(FederatedTrainerAdversary, QuarantinesAttackersAndOnlyAttackers) {
  auto clients = MakeClients(8, 62);
  FederatedTrainerOptions options = DefendedOptions(AttackType::kScaledAscent);
  FederatedTrainer trainer(MakeStub, &clients, options);
  ASSERT_NE(trainer.adversary(), nullptr);
  const FederatedRunResult result = trainer.Run();
  EXPECT_GT(result.faults.poisoned_uploads, 0);
  EXPECT_GT(result.faults.suspected_uploads, 0);
  const ReputationBook* book = trainer.reputation();
  ASSERT_NE(book, nullptr);
  EXPECT_TRUE(book->IsQuarantined(0));
  EXPECT_TRUE(book->IsQuarantined(1));
  for (int c = 2; c < 8; ++c) {
    EXPECT_FALSE(book->IsQuarantined(c)) << "honest client " << c;
  }
  // Once quarantined, the attackers stop reaching the wire: poisoned
  // uploads must plateau before the run ends.
  EXPECT_GT(result.faults.quarantined_skips, 0);
}

TEST(FederatedTrainerAdversary, AttackSeedIsAnIndependentKnob) {
  // Changing only the adversary seed must leave honest training draws
  // untouched: with zero attackers the seed is fully inert.
  auto clients = MakeClients(4, 63);
  auto run = [&](uint64_t adversary_seed) {
    FederatedTrainerOptions options;
    options.rounds = 3;
    options.local_epochs = 1;
    options.learning_rate = 0.05;
    options.adversary.seed = adversary_seed;
    FederatedTrainer trainer(MakeStub, &clients, options);
    trainer.Run();
    return trainer.global_model()->params().Flatten();
  };
  EXPECT_EQ(run(1), run(999));
}

TEST(FederatedTrainerAdversary, BitwiseIdenticalAcrossThreadCounts) {
  auto clients = MakeClients(8, 64);
  std::vector<nn::Scalar> reference_params;
  std::vector<int> reference_poisoned;
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    FederatedTrainerOptions options =
        DefendedOptions(AttackType::kNormMatched, /*rounds=*/6);
    options.threads = threads;
    FederatedTrainer trainer(MakeStub, &clients, options);
    const FederatedRunResult result = trainer.Run();
    std::vector<int> poisoned;
    for (const RoundRecord& record : result.history) {
      poisoned.push_back(record.poisoned_uploads);
    }
    const std::vector<nn::Scalar> params =
        trainer.global_model()->params().Flatten();
    if (threads == 1) {
      reference_params = params;
      reference_poisoned = poisoned;
    } else {
      EXPECT_EQ(params, reference_params);
      EXPECT_EQ(poisoned, reference_poisoned);
    }
  }
}

TEST(FederatedTrainerAdversary, CrashResumeReplaysAttackBitwise) {
  auto clients = MakeClients(8, 65);
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "adversary_crash")
          .generic_string();
  std::filesystem::remove_all(dir);

  // Uninterrupted reference run (no durability side effects on state:
  // snapshots observe, they never perturb).
  FederatedTrainerOptions reference_options =
      DefendedOptions(AttackType::kMinMax, /*rounds=*/8);
  FederatedTrainer reference(MakeStub, &clients, reference_options);
  reference.Run();
  const std::vector<nn::Scalar> expected =
      reference.global_model()->params().Flatten();

  // Crash mid-run with the adversary live, then resume: the v5
  // snapshot must carry the adversary stream so the replayed attack
  // (and therefore the final model) is bitwise identical.
  FederatedTrainerOptions options =
      DefendedOptions(AttackType::kMinMax, /*rounds=*/8);
  options.durability.dir = dir;
  options.durability.snapshot_every = 2;
  options.durability.crash_point = CrashPoint::kAfterSave;
  options.durability.crash_round = 4;
  bool crashed = false;
  {
    FederatedTrainer victim(MakeStub, &clients, options);
    try {
      victim.Run();
    } catch (const InjectedCrash& crash) {
      crashed = true;
      EXPECT_EQ(crash.round, 4);
    }
  }
  ASSERT_TRUE(crashed);

  options.durability.crash_point = CrashPoint::kNone;
  options.durability.crash_round = 0;
  options.durability.resume = true;
  FederatedTrainer resumed(MakeStub, &clients, options);
  resumed.Run();
  EXPECT_GT(resumed.resumed_round(), 0);
  EXPECT_EQ(resumed.global_model()->params().Flatten(), expected);
  // The defense outcome survives the crash too.
  const ReputationBook* book = resumed.reputation();
  ASSERT_NE(book, nullptr);
  for (int c = 2; c < 8; ++c) {
    EXPECT_FALSE(book->IsQuarantined(c)) << "honest client " << c;
  }
}

}  // namespace
}  // namespace lighttr::fl
