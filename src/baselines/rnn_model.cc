#include "baselines/rnn_model.h"

#include <algorithm>

#include "common/check.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace lighttr::baselines {

RnnModel::RnnModel(const traj::TrajectoryEncoder* encoder,
                   const RnnConfig& config, Rng* rng)
    : encoder_(encoder), config_(config) {
  LIGHTTR_CHECK(encoder != nullptr);
  LIGHTTR_CHECK_GE(config_.num_layers, 1u);
  size_t in_dim = traj::TrajectoryEncoder::kFeatureDim;
  for (size_t i = 0; i < config_.num_layers; ++i) {
    layers_.push_back(std::make_unique<nn::GruCell>(
        in_dim, config_.hidden_dim, "gru" + std::to_string(i), &params_,
        rng));
    in_dim = config_.hidden_dim;
  }
  seg_head_ = std::make_unique<nn::Dense>(
      config_.hidden_dim, encoder_->num_segments(), "seg_head", &params_, rng);
  ratio_head_ = std::make_unique<nn::Dense>(config_.hidden_dim, 1,
                                            "ratio_head", &params_, rng);
}

nn::Tensor RnnModel::HiddenForMissing(
    const traj::IncompleteTrajectory& trajectory, bool training, Rng* rng,
    std::vector<size_t>* missing) const {
  *missing = trajectory.MissingIndices();
  const nn::Tensor x_all =
      nn::Tensor::Constant(encoder_->EncodeInputs(trajectory));
  const size_t steps = trajectory.size();

  // Layer-by-layer unroll.
  std::vector<nn::Tensor> current;
  current.reserve(steps);
  for (size_t t = 0; t < steps; ++t) {
    current.push_back(nn::SliceRows(x_all, t, 1));
  }
  for (const auto& layer : layers_) {
    nn::Tensor h = layer->InitialState();
    for (size_t t = 0; t < steps; ++t) {
      h = layer->Forward(current[t], h);
      current[t] = nn::Dropout(h, config_.dropout, training, rng);
    }
  }
  std::vector<nn::Tensor> rows;
  rows.reserve(missing->size());
  for (size_t t : *missing) rows.push_back(current[t]);
  if (rows.empty()) return nn::Tensor();
  return nn::ConcatRows(rows);
}

fl::ForwardResult RnnModel::Forward(
    const traj::IncompleteTrajectory& trajectory, bool training, Rng* rng) {
  fl::ForwardResult result;
  std::vector<size_t> missing;
  nn::Tensor hidden = HiddenForMissing(trajectory, training, rng, &missing);
  if (!hidden.defined()) {
    result.loss = nn::Tensor::Constant(nn::Matrix::Zeros(1, 1));
    return result;
  }
  const auto targets = encoder_->EncodeTargets(trajectory);
  // Candidate-restricted decoding without constraint-mask weights (the
  // recurrent state is the only advantage over FC+FL).
  std::vector<nn::Tensor> ce_losses;
  nn::Matrix ratio_target(missing.size(), 1);
  for (size_t i = 0; i < missing.size(); ++i) {
    ratio_target(i, 0) = static_cast<nn::Scalar>(targets[missing[i]].ratio);
    const traj::StepCandidates candidates =
        encoder_->CandidatesForStep(trajectory, missing[i]);
    if (!candidates.target_in_range) continue;
    const nn::Tensor logits =
        nn::CandidateLogits(nn::SliceRows(hidden, i, 1), seg_head_->weight(),
                            seg_head_->bias(), candidates.segments);
    ce_losses.push_back(
        nn::SoftmaxCrossEntropy(logits, {candidates.target_index}));
  }
  const nn::Tensor ratio = nn::Sigmoid(ratio_head_->Forward(hidden));
  nn::Tensor loss = nn::Scale(nn::MseLoss(ratio, ratio_target),
                              static_cast<nn::Scalar>(config_.mu));
  if (!ce_losses.empty()) {
    nn::Tensor ce_total = ce_losses[0];
    for (size_t i = 1; i < ce_losses.size(); ++i) {
      ce_total = nn::Add(ce_total, ce_losses[i]);
    }
    loss = nn::Add(loss, nn::Scale(ce_total, nn::Scalar{1} /
                                   static_cast<nn::Scalar>(ce_losses.size())));
  }
  result.loss = loss;
  result.representation = hidden;
  return result;
}

std::vector<roadnet::PointPosition> RnnModel::Recover(
    const traj::IncompleteTrajectory& trajectory) {
  nn::NoGradScope no_grad;
  std::vector<roadnet::PointPosition> positions(trajectory.size());
  for (size_t t = 0; t < trajectory.size(); ++t) {
    positions[t] = trajectory.ground_truth.points[t].position;
  }
  std::vector<size_t> missing;
  nn::Tensor hidden = HiddenForMissing(trajectory, /*training=*/false,
                                       nullptr, &missing);
  if (!hidden.defined()) return positions;
  const nn::Tensor ratio = nn::Sigmoid(ratio_head_->Forward(hidden));
  for (size_t i = 0; i < missing.size(); ++i) {
    const traj::StepCandidates candidates =
        encoder_->CandidatesForStep(trajectory, missing[i]);
    const nn::Tensor logits =
        nn::CandidateLogits(nn::SliceRows(hidden, i, 1), seg_head_->weight(),
                            seg_head_->bias(), candidates.segments);
    positions[missing[i]] = roadnet::PointPosition{
        candidates.segments[nn::ArgmaxRow(logits.value(), 0)],
        std::clamp(ratio.value()(i, 0), 0.0, 1.0)};
  }
  return positions;
}

}  // namespace lighttr::baselines
