// lighttr-chaos: deterministic chaos campaign runner.
//
// Samples seeded scenarios across every fault axis (storage faults,
// hostile network, injected crashes, client faults, self-healing,
// model-poisoning adversary), runs short federated training on a
// fault-injecting in-memory filesystem, checks the chaos invariant
// library, and shrinks any violation to a minimal repro replayable via
// --repro.
//
// Usage:
//   lighttr-chaos [--scenarios=N] [--seed=S] [--no-shrink]
//                 [--plant=leak-tmp|stealth-poison]
//                 [--repro="seed=... ..."]
//
// Exit status:
//   normal mode   0 iff every scenario satisfied every invariant
//   --plant mode  0 iff the planted bug was caught, shrunk to a repro
//                 with at most two fault axes, and that repro replayed
//   --repro mode  0 iff the replayed scenario satisfied every invariant
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/campaign.h"
#include "chaos/scenario.h"
#include "nn/kernels/kernels.h"

namespace {

using lighttr::chaos::AxisCount;
using lighttr::chaos::CampaignOptions;
using lighttr::chaos::CampaignResult;
using lighttr::chaos::ChaosScenario;
using lighttr::chaos::FailingCase;
using lighttr::chaos::FormatRepro;
using lighttr::chaos::ParseRepro;
using lighttr::chaos::PlantedBug;
using lighttr::chaos::RunCampaign;
using lighttr::chaos::RunScenario;
using lighttr::chaos::ScenarioReport;

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenarios=N] [--seed=S] [--no-shrink]\n"
      "          [--plant=leak-tmp|stealth-poison]\n"
      "          [--repro=\"seed=... ...\"]\n"
      "          [--kernel=auto|scalar|avx2]\n"
      "\n"
      "Runs N seeded chaos scenarios across all fault axes and checks the\n"
      "invariant library; failures are shrunk to minimal repros. --plant\n"
      "injects a known bug and verifies the campaign catches and shrinks\n"
      "it; --repro replays one scenario from its repro string. --kernel\n"
      "selects the math microkernels (determinism invariants must hold\n"
      "for every kernel).\n",
      argv0);
}

bool ParseIntFlag(const std::string& value, int* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  if (parsed < 1 || parsed > 1'000'000) return false;
  *out = static_cast<int>(parsed);
  return true;
}

bool ParseSeedFlag(const std::string& value, uint64_t* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(parsed);
  return true;
}

void PrintProgress(int index, const ScenarioReport& report) {
  std::printf("scenario %3d  axes=%d%s%s  rounds=%d  violations=%zu\n",
              index, AxisCount(report.scenario),
              report.crash_fired ? " crash" : "",
              report.fresh_restart ? "+fresh-restart" : "",
              report.rounds_completed, report.violations.size());
}

void PrintViolations(const ScenarioReport& report) {
  for (const lighttr::chaos::InvariantViolation& violation :
       report.violations) {
    std::printf("  VIOLATION [%s] %s\n", violation.label.c_str(),
                violation.detail.c_str());
  }
}

int RunReproMode(const std::string& repro) {
  const lighttr::Result<ChaosScenario> parsed = ParseRepro(repro);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad --repro: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  const ScenarioReport report = RunScenario(parsed.value());
  std::printf("repro: %s\n", FormatRepro(report.scenario).c_str());
  std::printf("axes=%d crash_fired=%d rounds=%d violations=%zu\n",
              AxisCount(report.scenario), report.crash_fired ? 1 : 0,
              report.rounds_completed, report.violations.size());
  PrintViolations(report);
  return report.ok() ? 0 : 1;
}

int RunCampaignMode(const CampaignOptions& options) {
  const CampaignResult result = RunCampaign(options);
  std::printf("campaign: %d scenarios, %d crashes fired, %zu failing\n",
              result.scenarios_run, result.crashes_fired,
              result.failures.size());
  for (const FailingCase& failing : result.failures) {
    std::printf("failing scenario: %s\n",
                FormatRepro(failing.report.scenario).c_str());
    PrintViolations(failing.report);
    std::printf("  shrunk (%d evaluations, %d axes): %s\n",
                failing.shrink_evaluations, AxisCount(failing.minimal),
                FormatRepro(failing.minimal).c_str());
    std::printf("  replay with: --repro=\"%s\"\n",
                FormatRepro(failing.minimal).c_str());
  }

  if (options.plant == PlantedBug::kNone) {
    return result.failures.empty() ? 0 : 1;
  }

  // Plant mode: the campaign must CATCH the planted bug, SHRINK it to a
  // small repro, and the repro must REPLAY deterministically.
  if (result.failures.empty()) {
    std::printf("plant-check: FAILED (planted bug not caught)\n");
    return 1;
  }
  const FailingCase& first = result.failures[0];
  const int axes = AxisCount(first.minimal);
  if (options.shrink && axes > 2) {
    std::printf("plant-check: FAILED (shrunk repro still has %d axes)\n",
                axes);
    return 1;
  }
  const std::string repro = FormatRepro(first.minimal);
  const lighttr::Result<ChaosScenario> round_trip = ParseRepro(repro);
  if (!round_trip.ok()) {
    std::printf("plant-check: FAILED (repro does not parse: %s)\n",
                round_trip.status().ToString().c_str());
    return 1;
  }
  const ScenarioReport replay = RunScenario(round_trip.value());
  bool reproduced = false;
  for (const lighttr::chaos::InvariantViolation& violation :
       replay.violations) {
    if (violation.label == first.report.violations[0].label) {
      reproduced = true;
      break;
    }
  }
  if (!reproduced) {
    std::printf("plant-check: FAILED (shrunk repro did not replay)\n");
    return 1;
  }
  std::printf("plant-check: OK (caught, shrunk to %d axes, replayed)\n", axes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions options;
  options.progress = PrintProgress;
  std::string repro;
  bool repro_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--scenarios=", 0) == 0) {
      if (!ParseIntFlag(value_of("--scenarios="), &options.scenarios)) {
        std::fprintf(stderr, "bad --scenarios value\n");
        return 2;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!ParseSeedFlag(value_of("--seed="), &options.seed)) {
        std::fprintf(stderr, "bad --seed value\n");
        return 2;
      }
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg.rfind("--plant=", 0) == 0) {
      const std::string bug = value_of("--plant=");
      if (bug == lighttr::chaos::PlantedBugName(PlantedBug::kLeakTmp)) {
        options.plant = PlantedBug::kLeakTmp;
      } else if (bug == lighttr::chaos::PlantedBugName(
                            PlantedBug::kStealthPoison)) {
        options.plant = PlantedBug::kStealthPoison;
      } else {
        std::fprintf(stderr, "unknown --plant bug '%s'\n", bug.c_str());
        return 2;
      }
    } else if (arg.rfind("--repro=", 0) == 0) {
      repro = value_of("--repro=");
      repro_mode = true;
    } else if (arg.rfind("--kernel=", 0) == 0) {
      lighttr::nn::KernelMode mode;
      if (!lighttr::nn::ParseKernelMode(value_of("--kernel="), &mode)) {
        std::fprintf(stderr, "bad --kernel value\n");
        return 2;
      }
      lighttr::nn::ActivateKernels(mode);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (repro_mode) return RunReproMode(repro);
  return RunCampaignMode(options);
}
