#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "nn/flops.h"
#include "nn/kernels/kernels.h"

namespace lighttr::nn {

Matrix Matrix::RandomUniform(size_t rows, size_t cols, Scalar range,
                             Rng* rng) {
  LIGHTTR_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.data_.size(); ++i) {
    m.data_[i] = static_cast<Scalar>(rng->Uniform(-range, range));
  }
  return m;
}

Matrix Matrix::Xavier(size_t fan_in, size_t fan_out, Rng* rng) {
  const Scalar range = std::sqrt(Scalar{6} / static_cast<Scalar>(fan_in + fan_out));
  return RandomUniform(fan_in, fan_out, range, rng);
}

Matrix Matrix::RowVector(const std::vector<Scalar>& values) {
  Matrix m(1, values.size());
  for (size_t i = 0; i < values.size(); ++i) m.data_[i] = values[i];
  return m;
}

void Matrix::AddInPlace(const Matrix& other) {
  LIGHTTR_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, Scalar scale) {
  LIGHTTR_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

Scalar Matrix::SquaredNorm() const {
  Scalar total{0};
  for (Scalar x : data_) total += x * x;
  return total;
}

namespace {

// --------------------------------------------------------------------
// GEMM dispatch. The kernels themselves (scalar reference and the
// AVX2+FMA variants) live in nn/kernels/; this file owns only the size
// regimes and the thread-pool row split. One blocked i-k-j core handles
// all three public products: plain A*B runs on B directly; A*B^T and
// A^T*B transpose-pack their non-streaming operand into a thread-local
// scratch buffer and reuse the same core. Three size regimes, all
// chosen by problem shape only (never by thread count or kernel mode),
// so results are deterministic for a fixed kernel choice:
//
//  - tiny products (most training-step matmuls, [1,H] rows) run the
//    kernel table's small loops — in scalar mode bit-identical to the
//    pre-blocking kernels, in AVX2 mode vectorized the same way as the
//    blocked core (real LightTR training lives below this threshold,
//    so the SIMD path must cover it to speed actual rounds);
//  - larger products run the cache-blocked core: k is unrolled by 4
//    under (j, k) blocking that keeps the active B panel in cache;
//  - products above kParallelMinFlops additionally split their C rows
//    into contiguous chunks across the global thread pool. Each row's
//    FP reduction order is fixed by the kernel's blocking alone, so any
//    chunk count — including 1 — produces bitwise identical output.
// --------------------------------------------------------------------

// Below this many FLOPs (2*m*k*n) the simple loops win: no packing, no
// block bookkeeping.
constexpr size_t kSimpleMaxFlops = size_t{1} << 14;
// Above this many FLOPs the row split across the pool pays for its
// dispatch overhead.
constexpr size_t kParallelMinFlops = size_t{1} << 21;

// Dispatches the blocked core over the pool when the product is large
// enough; chunk boundaries never change per-row results.
void BlockedGemm(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                 size_t k, size_t n) {
  const size_t flops = 2 * m * k * n;
  ThreadPool* pool = GlobalThreadPool();
  const size_t max_chunks =
      std::min(m, static_cast<size_t>(pool->threads()));
  if (flops < kParallelMinFlops || max_chunks <= 1 ||
      ThreadPool::OnWorkerThread()) {
    kernels::GemmRowsBlocked(a, b, c, k, n, 0, m);
    return;
  }
  const size_t rows_per_chunk = (m + max_chunks - 1) / max_chunks;
  const size_t chunks = (m + rows_per_chunk - 1) / rows_per_chunk;
  // Workers write disjoint row ranges of `c`; no two chunks overlap.
  pool->ParallelFor(chunks, [&](size_t chunk) {  // lint: shared-state(c)
    const size_t begin = chunk * rows_per_chunk;
    const size_t end = std::min(begin + rows_per_chunk, m);
    kernels::GemmRowsBlocked(a, b, c, k, n, begin, end);
  });
}

// Thread-local packing scratch: transpose-packed operands live here so
// steady-state GEMMs allocate nothing. Safe under the pool — each
// thread packs into its own buffer (parallel row splits pack on the
// caller before dispatch; workers only read the caller's buffer).
std::vector<Scalar>& PackScratch() {
  thread_local std::vector<Scalar> scratch;
  return scratch;
}

}  // namespace

Matrix MatMulValues(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  MatMulAccumulate(a, b, &c);
  return c;
}

void MatMulAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  LIGHTTR_DCHECK_EQ(a.cols(), b.rows());
  LIGHTTR_DCHECK_EQ(c->rows(), a.rows());
  LIGHTTR_DCHECK_EQ(c->cols(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  AddFlops(static_cast<int64_t>(2 * m * k * n));
  if (2 * m * k * n < kSimpleMaxFlops) {
    kernels::GemmSmallNN(a.data(), b.data(), c->data(), m, k, n, n);
    return;
  }
  BlockedGemm(a.data(), b.data(), c->data(), m, k, n);
}

void MatMulTransAAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  LIGHTTR_DCHECK_EQ(a.rows(), b.rows());
  LIGHTTR_DCHECK_EQ(c->rows(), a.cols());
  LIGHTTR_DCHECK_EQ(c->cols(), b.cols());
  const size_t m = a.cols();
  const size_t k = a.rows();
  const size_t n = b.cols();
  AddFlops(static_cast<int64_t>(2 * m * k * n));
  if (2 * m * k * n < kSimpleMaxFlops) {
    kernels::GemmSmallTA(a.data(), b.data(), c->data(), m, k, n);
    return;
  }
  // Transpose-pack a ([k,m]) into at ([m,k]) and reuse the i-k-j core.
  std::vector<Scalar>& at = PackScratch();
  at.resize(m * k);
  for (size_t p = 0; p < k; ++p) {
    const Scalar* arow = a.data() + p * m;
    for (size_t i = 0; i < m; ++i) at[i * k + p] = arow[i];
  }
  BlockedGemm(at.data(), b.data(), c->data(), m, k, n);
}

void MatMulTransBAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  LIGHTTR_DCHECK_EQ(a.cols(), b.cols());
  LIGHTTR_DCHECK_EQ(c->rows(), a.rows());
  LIGHTTR_DCHECK_EQ(c->cols(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  AddFlops(static_cast<int64_t>(2 * m * k * n));
  if (2 * m * k * n < kSimpleMaxFlops) {
    kernels::GemmSmallTB(a.data(), b.data(), c->data(), m, k, n);
    return;
  }
  // Transpose-pack b ([n,k]) into bt ([k,n]) and reuse the i-k-j core.
  std::vector<Scalar>& bt = PackScratch();
  bt.resize(k * n);
  for (size_t j = 0; j < n; ++j) {
    const Scalar* brow = b.data() + j * k;
    for (size_t p = 0; p < k; ++p) bt[p * n + j] = brow[p];
  }
  BlockedGemm(a.data(), bt.data(), c->data(), m, k, n);
}

}  // namespace lighttr::nn
