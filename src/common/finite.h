// Shared finite-scan helpers: the one sanctioned home of NaN/Inf
// classification outside src/fl/health.
//
// Numerical hygiene decisions (reject an upload, flag a diverged model,
// refuse a checkpoint) must agree everywhere, so ad-hoc std::isnan /
// std::isinf sprinkling is banned by the `no-raw-nonfinite` lint rule;
// call these helpers instead. std::isfinite on a single freshly computed
// value is tolerated, but vector scans should go through ScanFinite /
// AllFinite so telemetry (NaN vs Inf counts, first bad index) is uniform.
#ifndef LIGHTTR_COMMON_FINITE_H_
#define LIGHTTR_COMMON_FINITE_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace lighttr {

/// True when `x` is neither NaN nor an infinity.
inline bool IsFinite(double x) { return std::isfinite(x); }

/// True when `x` is NaN.
inline bool IsNan(double x) { return std::isnan(x); }

/// True when `x` is +Inf or -Inf.
inline bool IsInf(double x) { return std::isinf(x); }

/// Outcome of scanning a vector for non-finite values.
struct FiniteScan {
  size_t nan_count = 0;
  size_t inf_count = 0;
  /// Index of the first non-finite element; meaningful when !all_finite().
  size_t first_bad = 0;

  size_t bad_count() const { return nan_count + inf_count; }
  bool all_finite() const { return bad_count() == 0; }
};

/// Counts NaN and Inf entries of `values` and records the first offender.
template <typename T>
FiniteScan ScanFinite(const std::vector<T>& values) {
  FiniteScan scan;
  for (size_t i = 0; i < values.size(); ++i) {
    const double x = static_cast<double>(values[i]);
    if (IsNan(x)) {
      if (scan.bad_count() == 0) scan.first_bad = i;
      ++scan.nan_count;
    } else if (IsInf(x)) {
      if (scan.bad_count() == 0) scan.first_bad = i;
      ++scan.inf_count;
    }
  }
  return scan;
}

/// True when every entry of `values` is finite. Early-exits on the first
/// offender, so prefer this over ScanFinite when counts are not needed.
template <typename T>
bool AllFinite(const std::vector<T>& values) {
  for (const T& value : values) {
    if (!IsFinite(static_cast<double>(value))) return false;
  }
  return true;
}

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_FINITE_H_
