// Reproduces paper Table II: time/space analysis of the base
// ST-operator families — CNN (causal temporal convolution), RNN (GRU),
// Attn (scaled dot-product self-attention), and the pure-MLP operator
// LightTR builds on. Google-benchmark timings of one forward+backward
// pass over a [L, D] sequence, swept over L and D; parameter counts are
// reported as counters.
//
// Expected shape (paper): CNN/RNN scale as O(D^2 L); Attn picks up an
// extra O(L (D + L)) factor and dominates at long L; MLP is cheapest.
#include <benchmark/benchmark.h>

#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace {

using namespace lighttr;
using nn::Tensor;

nn::Matrix RandomInput(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  return nn::Matrix::RandomUniform(rows, cols, 0.5, &rng);
}

// One training step: forward, scalar loss, backward.
void RunStep(const std::function<Tensor(const Tensor&)>& op,
             const nn::Matrix& input, nn::ParameterSet* params) {
  Tensor x = Tensor::Constant(input);
  Tensor loss = nn::Mean(op(x));
  loss.Backward();
  params->ZeroGrads();
}

void BM_StCnn(benchmark::State& state) {
  const auto length = static_cast<size_t>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  nn::ParameterSet params;
  Rng rng(1);
  nn::CausalConv1d conv(dim, dim, /*kernel=*/3, "cnn", &params, &rng);
  const nn::Matrix input = RandomInput(length, dim, 2);
  for (auto _ : state) {
    RunStep([&](const Tensor& x) { return nn::Relu(conv.Forward(x)); },
            input, &params);
  }
  state.counters["params"] = static_cast<double>(params.NumScalars());
}

void BM_StRnn(benchmark::State& state) {
  const auto length = static_cast<size_t>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  nn::ParameterSet params;
  Rng rng(1);
  nn::GruCell gru(dim, dim, "rnn", &params, &rng);
  const nn::Matrix input = RandomInput(length, dim, 2);
  for (auto _ : state) {
    RunStep(
        [&](const Tensor& x) {
          Tensor h = gru.InitialState();
          std::vector<Tensor> states;
          for (size_t t = 0; t < x.rows(); ++t) {
            h = gru.Forward(nn::SliceRows(x, t, 1), h);
            states.push_back(h);
          }
          return nn::ConcatRows(states);
        },
        input, &params);
  }
  state.counters["params"] = static_cast<double>(params.NumScalars());
}

void BM_StAttn(benchmark::State& state) {
  const auto length = static_cast<size_t>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  nn::ParameterSet params;
  Rng rng(1);
  nn::Dense q(dim, dim, "q", &params, &rng);
  nn::Dense k(dim, dim, "k", &params, &rng);
  nn::Dense v(dim, dim, "v", &params, &rng);
  const nn::Matrix input = RandomInput(length, dim, 2);
  for (auto _ : state) {
    RunStep(
        [&](const Tensor& x) {
          return nn::ScaledDotProductAttention(q.Forward(x), k.Forward(x),
                                               v.Forward(x));
        },
        input, &params);
  }
  state.counters["params"] = static_cast<double>(params.NumScalars());
}

void BM_StMlp(benchmark::State& state) {
  const auto length = static_cast<size_t>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  nn::ParameterSet params;
  Rng rng(1);
  // The lightweight operator applies a position-wise MLP; the sequence
  // axis costs O(L + D) memory rather than O(L^2) or O(D^2 L).
  nn::Dense mlp(dim, dim, "mlp", &params, &rng);
  const nn::Matrix input = RandomInput(length, dim, 2);
  for (auto _ : state) {
    RunStep([&](const Tensor& x) { return nn::Relu(mlp.Forward(x)); },
            input, &params);
  }
  state.counters["params"] = static_cast<double>(params.NumScalars());
}

void StArgs(benchmark::internal::Benchmark* bench) {
  // Sweep sequence length L at fixed D, and embedding size D at fixed L.
  for (int length : {16, 32, 64, 128}) bench->Args({length, 32});
  for (int dim : {16, 32, 64, 128}) bench->Args({32, dim});
}

BENCHMARK(BM_StCnn)->Apply(StArgs);
BENCHMARK(BM_StRnn)->Apply(StArgs);
BENCHMARK(BM_StAttn)->Apply(StArgs);
BENCHMARK(BM_StMlp)->Apply(StArgs);

}  // namespace

BENCHMARK_MAIN();
