#include "traj/trajectory.h"

#include <cmath>
#include <string>

#include "common/finite.h"

namespace lighttr::traj {

RawTrajectory ToRawTrajectory(const roadnet::RoadNetwork& network,
                              const MatchedTrajectory& matched,
                              double noise_m, Rng* rng) {
  LIGHTTR_CHECK_GE(noise_m, 0.0);
  if (noise_m > 0.0) LIGHTTR_CHECK(rng != nullptr);
  RawTrajectory raw;
  raw.driver_id = matched.driver_id;
  raw.points.reserve(matched.points.size());
  for (const MatchedPoint& mp : matched.points) {
    geo::GeoPoint p = network.PositionToPoint(mp.position);
    if (noise_m > 0.0) {
      const geo::LocalProjection plane(p);
      const geo::LocalProjection::Xy noisy{rng->Normal(0.0, noise_m),
                                           rng->Normal(0.0, noise_m)};
      p = plane.FromXy(noisy);
    }
    raw.points.push_back(RawPoint{p, mp.t});
  }
  return raw;
}

Status ValidateTrajectory(const roadnet::RoadNetwork& network,
                          const RawTrajectory& trajectory,
                          double grid_margin_deg) {
  if (trajectory.points.empty()) {
    return Status::InvalidArgument("raw trajectory has no points");
  }
  const geo::GeoPoint lo = network.min_corner();
  const geo::GeoPoint hi = network.max_corner();
  for (size_t i = 0; i < trajectory.points.size(); ++i) {
    const RawPoint& p = trajectory.points[i];
    if (!IsFinite(p.position.lat) || !IsFinite(p.position.lng) ||
        !IsFinite(p.t)) {
      return Status::InvalidArgument(
          "raw point " + std::to_string(i) +
          " has a non-finite coordinate or timestamp");
    }
    if (i > 0 && p.t <= trajectory.points[i - 1].t) {
      return Status::InvalidArgument("raw point " + std::to_string(i) +
                                     " has a non-increasing timestamp");
    }
    if (p.position.lat < lo.lat - grid_margin_deg ||
        p.position.lat > hi.lat + grid_margin_deg ||
        p.position.lng < lo.lng - grid_margin_deg ||
        p.position.lng > hi.lng + grid_margin_deg) {
      return Status::InvalidArgument("raw point " + std::to_string(i) +
                                     " lies outside the road-network grid");
    }
  }
  return Status::Ok();
}

Status ValidateMatchedTrajectory(const roadnet::RoadNetwork& network,
                                 const MatchedTrajectory& trajectory) {
  if (trajectory.points.empty()) {
    return Status::InvalidArgument("trajectory has no points");
  }
  if (trajectory.epsilon_s <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  for (size_t i = 0; i < trajectory.points.size(); ++i) {
    const MatchedPoint& mp = trajectory.points[i];
    if (mp.position.segment < 0 ||
        mp.position.segment >= network.num_segments()) {
      return Status::InvalidArgument("point references invalid segment");
    }
    if (!IsFinite(mp.position.ratio) || mp.position.ratio < 0.0 ||
        mp.position.ratio > 1.0) {
      return Status::InvalidArgument("moving ratio outside [0, 1]");
    }
    if (!IsFinite(mp.t)) {
      return Status::InvalidArgument("matched point has non-finite timestamp");
    }
    if (i > 0 && trajectory.points[i].tid != trajectory.points[i - 1].tid + 1) {
      return Status::InvalidArgument(
          "tid must increase by exactly 1 between consecutive points");
    }
  }
  return Status::Ok();
}

}  // namespace lighttr::traj
