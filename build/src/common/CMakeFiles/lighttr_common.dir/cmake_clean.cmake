file(REMOVE_RECURSE
  "CMakeFiles/lighttr_common.dir/file_util.cc.o"
  "CMakeFiles/lighttr_common.dir/file_util.cc.o.d"
  "CMakeFiles/lighttr_common.dir/rng.cc.o"
  "CMakeFiles/lighttr_common.dir/rng.cc.o.d"
  "CMakeFiles/lighttr_common.dir/status.cc.o"
  "CMakeFiles/lighttr_common.dir/status.cc.o.d"
  "CMakeFiles/lighttr_common.dir/table_printer.cc.o"
  "CMakeFiles/lighttr_common.dir/table_printer.cc.o.d"
  "liblighttr_common.a"
  "liblighttr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
