#include "nn/checkpoint.h"

#include <cmath>
#include <cstring>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/crc32.h"
#include "common/finite.h"

namespace lighttr::nn {

namespace {

constexpr char kMagicV2[4] = {'L', 'T', 'C', '2'};
constexpr char kMagicV1[4] = {'L', 'T', 'R', '1'};
constexpr uint32_t kVersion = 2;
// Parameter names in this codebase are short ("encoder.w1"); anything
// beyond this cap is a corrupted or hostile length field.
constexpr uint64_t kMaxNameLen = 4096;

size_t ElementWidth(CheckpointDtype dtype) {
  return dtype == CheckpointDtype::kFloat64 ? sizeof(double) : sizeof(float);
}

}  // namespace

std::string SerializeCheckpoint(const ParameterSet& params,
                                CheckpointDtype dtype) {
  BinaryWriter writer;
  writer.WriteBytes(kMagicV2, sizeof(kMagicV2));
  writer.WriteU32(kVersion);
  writer.WriteU8(static_cast<uint8_t>(dtype));
  writer.WriteU32(static_cast<uint32_t>(params.size()));
  for (size_t p = 0; p < params.size(); ++p) {
    const std::string& name = params.name(p);
    const Matrix& m = params.tensor(p).value();
    writer.WriteU32(static_cast<uint32_t>(name.size()));
    writer.WriteBytes(name.data(), name.size());
    writer.WriteU32(static_cast<uint32_t>(m.rows()));
    writer.WriteU32(static_cast<uint32_t>(m.cols()));
    BinaryWriter payload;
    for (size_t i = 0; i < m.size(); ++i) {
      if (dtype == CheckpointDtype::kFloat64) {
        payload.WriteF64(static_cast<double>(m.data()[i]));
      } else {
        payload.WriteF32(static_cast<float>(m.data()[i]));
      }
    }
    writer.WriteU32(Crc32(payload.bytes()));
    writer.WriteBytes(payload.bytes().data(), payload.bytes().size());
  }
  std::string out = writer.Take();
  AppendCrc32Trailer(&out);
  return out;
}

Status ParseCheckpoint(const std::string& bytes, ParameterSet* params) {
  LIGHTTR_CHECK(params != nullptr);
  if (bytes.size() >= sizeof(kMagicV1) &&
      std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    // Legacy v1 checkpoint: the raw FL wire format, no checksums.
    return params->Deserialize(bytes);
  }
  // The whole-file CRC is checked before any field is interpreted, so
  // truncation and bit flips are caught no matter where they land.
  if (bytes.size() < sizeof(kMagicV2) + sizeof(uint32_t)) {
    return Status::InvalidArgument("checkpoint too short to hold a header");
  }
  size_t body_len = 0;
  if (!CheckCrc32Trailer(bytes, &body_len).ok()) {
    return Status::InvalidArgument(
        "checkpoint failed whole-file CRC check (truncated or corrupted)");
  }
  const std::string body = bytes.substr(0, body_len);

  BinaryReader reader(body);
  char magic[4];
  LIGHTTR_RETURN_NOT_OK(reader.ReadBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  uint32_t version = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  uint8_t dtype_raw = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU8(&dtype_raw));
  if (dtype_raw != static_cast<uint8_t>(CheckpointDtype::kFloat32) &&
      dtype_raw != static_cast<uint8_t>(CheckpointDtype::kFloat64)) {
    return Status::InvalidArgument("unknown checkpoint dtype " +
                                   std::to_string(dtype_raw));
  }
  const auto dtype = static_cast<CheckpointDtype>(dtype_raw);
  uint32_t count = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&count));
  if (count != params->size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: checkpoint has " + std::to_string(count) +
        ", model has " + std::to_string(params->size()));
  }

  for (size_t p = 0; p < params->size(); ++p) {
    uint32_t name_len = 0;
    LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&name_len));
    if (name_len > kMaxNameLen || name_len > reader.remaining()) {
      return Status::InvalidArgument("oversized parameter name length " +
                                     std::to_string(name_len));
    }
    std::string name(name_len, '\0');
    LIGHTTR_RETURN_NOT_OK(reader.ReadBytes(name.data(), name_len));
    if (name != params->name(p)) {
      return Status::InvalidArgument("parameter name mismatch: expected " +
                                     params->name(p) + ", got " + name);
    }
    uint32_t rows = 0;
    uint32_t cols = 0;
    LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&rows));
    LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&cols));
    Matrix& m = params->tensor(p).mutable_value();
    if (rows != m.rows() || cols != m.cols()) {
      return Status::InvalidArgument("parameter shape mismatch for " + name);
    }
    uint32_t payload_crc = 0;
    LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&payload_crc));
    const size_t payload_bytes = m.size() * ElementWidth(dtype);
    if (payload_bytes > reader.remaining()) {
      return Status::InvalidArgument("truncated payload for parameter " + name);
    }
    if (Crc32(body.data() + reader.offset(), payload_bytes) != payload_crc) {
      return Status::InvalidArgument("payload CRC mismatch for parameter " +
                                     name);
    }
    for (size_t i = 0; i < m.size(); ++i) {
      double v = 0.0;
      if (dtype == CheckpointDtype::kFloat64) {
        LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&v));
      } else {
        float f = 0.0f;
        LIGHTTR_RETURN_NOT_OK(reader.ReadF32(&f));
        v = static_cast<double>(f);
      }
      if (!IsFinite(v)) {
        return Status::InvalidArgument("non-finite value in parameter " + name);
      }
      m.data()[i] = static_cast<Scalar>(v);
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in checkpoint");
  }
  return Status::Ok();
}

Status SaveCheckpoint(const std::string& path, const ParameterSet& params) {
  return SaveCheckpoint(path, params, CheckpointDtype::kFloat32);
}

Status SaveCheckpoint(const std::string& path, const ParameterSet& params,
                      CheckpointDtype dtype) {
  return SaveCheckpoint(RealFileSystemInstance(), path, params, dtype);
}

Status SaveCheckpoint(FileSystem* fs, const std::string& path,
                      const ParameterSet& params, CheckpointDtype dtype) {
  LIGHTTR_CHECK(fs != nullptr);
  return fs->WriteFileAtomic(path, SerializeCheckpoint(params, dtype));
}

Status LoadCheckpoint(const std::string& path, ParameterSet* params) {
  return LoadCheckpoint(RealFileSystemInstance(), path, params);
}

Status LoadCheckpoint(FileSystem* fs, const std::string& path,
                      ParameterSet* params) {
  LIGHTTR_CHECK(fs != nullptr);
  LIGHTTR_CHECK(params != nullptr);
  Result<std::string> contents = fs->ReadFile(path);
  if (!contents.ok()) return contents.status();
  return ParseCheckpoint(contents.value(), params);
}

}  // namespace lighttr::nn
