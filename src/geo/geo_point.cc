#include "geo/geo_point.h"

#include <algorithm>

namespace lighttr::geo {

double HaversineMeters(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlng = (b.lng - a.lng) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlng / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters *
         std::asin(std::sqrt(std::clamp(h, 0.0, 1.0)));
}

double EquirectangularMeters(const GeoPoint& a, const GeoPoint& b) {
  const double mean_lat = 0.5 * (a.lat + b.lat) * kDegToRad;
  const double x = (b.lng - a.lng) * kDegToRad * std::cos(mean_lat);
  const double y = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusMeters * std::sqrt(x * x + y * y);
}

GeoPoint Lerp(const GeoPoint& a, const GeoPoint& b, double t) {
  return {a.lat + (b.lat - a.lat) * t, a.lng + (b.lng - a.lng) * t};
}

}  // namespace lighttr::geo
