// Shared experiment harness: builds the simulated city + encoder, runs a
// recovery method end-to-end (federated or centralized), and evaluates
// it. Every bench binary composes these pieces.
#ifndef LIGHTTR_EVAL_HARNESS_H_
#define LIGHTTR_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "eval/metrics.h"
#include "eval/scale.h"
#include "fl/federated_trainer.h"
#include "lighttr/meta_local_update.h"
#include "lighttr/teacher_training.h"
#include "roadnet/road_network.h"
#include "roadnet/segment_index.h"
#include "traj/encoding.h"
#include "traj/workload.h"

namespace lighttr::eval {

/// Owns the simulated city and its derived structures.
class ExperimentEnv {
 public:
  /// Builds a city grid, spatial index, and encoder. Deterministic for a
  /// given (rows, cols, seed).
  ExperimentEnv(int rows, int cols, uint64_t seed);

  static std::unique_ptr<ExperimentEnv> FromScale(
      const ExperimentScale& scale) {
    return std::make_unique<ExperimentEnv>(scale.grid_rows, scale.grid_cols,
                                           scale.seed);
  }

  const roadnet::RoadNetwork& network() const { return network_; }
  const roadnet::SegmentIndex& index() const { return *index_; }
  const traj::TrajectoryEncoder& encoder() const { return *encoder_; }

  /// Generates a federated workload on this city.
  std::vector<traj::ClientDataset> MakeWorkload(
      const traj::WorkloadProfile& profile,
      const traj::FederatedWorkloadOptions& options, uint64_t seed) const;

  /// Pools client test sets, capped at `max_trajectories`.
  static std::vector<traj::IncompleteTrajectory> PooledTestSet(
      const std::vector<traj::ClientDataset>& clients, int max_trajectories);

 private:
  roadnet::RoadNetwork network_;
  std::unique_ptr<roadnet::SegmentIndex> index_;
  std::unique_ptr<traj::TrajectoryEncoder> encoder_;
};

/// Everything a method run reports.
struct MethodResult {
  std::string method;
  RecoveryMetrics metrics;
  fl::FederatedRunResult run;   // empty history for centralized runs
  double wall_seconds = 0.0;
  double train_epoch_seconds = 0.0;  // mean local-epoch wall time (Fig. 5a)
  int64_t parameters = 0;
  int64_t flops_per_recovery = 0;    // forward FLOPs of one Recover call
};

/// Options shared by federated method runs.
struct MethodRunOptions {
  fl::FederatedTrainerOptions fed;
  core::TeacherTrainingOptions teacher;
  core::MetaLocalOptions meta;
  bool lighttr_use_teacher = true;  // w/o_Meta ablation sets false
  int max_test_trajectories = 60;
};

/// Canonical run options for a scale preset: uniform learning rate and
/// round budget across methods (fair comparison, Sec. V-A4).
MethodRunOptions DefaultRunOptions(const ExperimentScale& scale);

/// Canonical workload options for a scale preset.
traj::FederatedWorkloadOptions DefaultWorkloadOptions(
    const ExperimentScale& scale, double keep_ratio);

/// Applies the scale's per-client dataset size to a profile.
traj::WorkloadProfile ScaledProfile(traj::WorkloadProfile profile,
                                    const ExperimentScale& scale);

/// Trains `kind` federated on `clients` and evaluates on the pooled test
/// set. LightTR runs the full pipeline (Algorithms 1-3); baselines run
/// plain FedAvg (Algorithm 3), matching the paper's "+FL" constructions.
MethodResult RunFederatedMethod(const ExperimentEnv& env,
                                baselines::ModelKind kind,
                                const std::vector<traj::ClientDataset>& clients,
                                const MethodRunOptions& options);

/// Trains `kind` on the pooled (centralized) training data — Table VI.
MethodResult RunCentralizedMethod(
    const ExperimentEnv& env, baselines::ModelKind kind,
    const std::vector<traj::ClientDataset>& clients, int epochs,
    double learning_rate, int max_test_trajectories, uint64_t seed);

/// Profiles a single model replica: parameter count, forward FLOPs of
/// one recovery, and mean wall seconds of one local training epoch.
void ProfileModel(const ExperimentEnv& env, baselines::ModelKind kind,
                  const std::vector<traj::IncompleteTrajectory>& sample,
                  MethodResult* result);

}  // namespace lighttr::eval

#endif  // LIGHTTR_EVAL_HARNESS_H_
