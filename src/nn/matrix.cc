#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "nn/flops.h"

namespace lighttr::nn {

Matrix Matrix::RandomUniform(size_t rows, size_t cols, Scalar range,
                             Rng* rng) {
  LIGHTTR_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.data_.size(); ++i) {
    m.data_[i] = static_cast<Scalar>(rng->Uniform(-range, range));
  }
  return m;
}

Matrix Matrix::Xavier(size_t fan_in, size_t fan_out, Rng* rng) {
  const Scalar range = std::sqrt(Scalar{6} / static_cast<Scalar>(fan_in + fan_out));
  return RandomUniform(fan_in, fan_out, range, rng);
}

Matrix Matrix::RowVector(const std::vector<Scalar>& values) {
  Matrix m(1, values.size());
  for (size_t i = 0; i < values.size(); ++i) m.data_[i] = values[i];
  return m;
}

void Matrix::AddInPlace(const Matrix& other) {
  LIGHTTR_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, Scalar scale) {
  LIGHTTR_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

Scalar Matrix::SquaredNorm() const {
  Scalar total{0};
  for (Scalar x : data_) total += x * x;
  return total;
}

namespace {

// --------------------------------------------------------------------
// GEMM kernels. One blocked i-k-j core handles all three public
// products: plain A*B runs on B directly; A*B^T and A^T*B transpose-
// pack their non-streaming operand into a thread-local scratch buffer
// and reuse the same core. Three size regimes, all chosen by problem
// shape only (never by thread count), so results are deterministic:
//
//  - tiny products (most training-step matmuls, [1,H] rows) use the
//    seed's simple loops — bit-identical to the pre-blocking kernels
//    and free of packing overhead;
//  - larger products run the cache-blocked core: k is unrolled by 4
//    (one C-row load/store amortized over 4 fused updates) under
//    (j, k) blocking that keeps the active B panel in cache;
//  - products above kParallelMinFlops additionally split their C rows
//    into contiguous chunks across the global thread pool. Each row's
//    FP reduction order is fixed by the blocking alone, so any chunk
//    count — including 1 — produces bitwise identical output.
// --------------------------------------------------------------------

// Below this many FLOPs (2*m*k*n) the simple loops win: no packing, no
// block bookkeeping. Also keeps gradcheck-scale numerics bit-identical
// to the seed kernels.
constexpr size_t kSimpleMaxFlops = size_t{1} << 14;
// Above this many FLOPs the row split across the pool pays for its
// dispatch overhead.
constexpr size_t kParallelMinFlops = size_t{1} << 21;
// Block sizes: the active B panel is kBlockK x kBlockN Scalars (128 KiB)
// — sized for L2 — and each i iteration streams kBlockK a-values and a
// kBlockN-wide C row segment (2 KiB, L1-resident across the k loop).
constexpr size_t kBlockK = 64;
constexpr size_t kBlockN = 256;

// c rows [row_begin, row_end) += a * b with a [m,k], b [k,n], both
// row-major. The i-k-j loop order streams b and c rows contiguously;
// the 4-wide k unroll performs 4 fused row updates per pass over the
// C row segment. The summation tree per C element is fixed by the
// blocking, independent of how rows are distributed over threads.
void BlockedGemmRows(const Scalar* a, const Scalar* b, Scalar* c, size_t k,
                     size_t n, size_t row_begin, size_t row_end) {
  for (size_t jj = 0; jj < n; jj += kBlockN) {
    const size_t j_end = std::min(jj + kBlockN, n);
    for (size_t pp = 0; pp < k; pp += kBlockK) {
      const size_t p_end = std::min(pp + kBlockK, k);
      for (size_t i = row_begin; i < row_end; ++i) {
        const Scalar* arow = a + i * k;
        Scalar* crow = c + i * n;
        size_t p = pp;
        for (; p + 4 <= p_end; p += 4) {
          const Scalar a0 = arow[p];
          const Scalar a1 = arow[p + 1];
          const Scalar a2 = arow[p + 2];
          const Scalar a3 = arow[p + 3];
          const Scalar* b0 = b + p * n;
          const Scalar* b1 = b0 + n;
          const Scalar* b2 = b1 + n;
          const Scalar* b3 = b2 + n;
          for (size_t j = jj; j < j_end; ++j) {
            crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
        }
        for (; p < p_end; ++p) {
          const Scalar av = arow[p];
          const Scalar* brow = b + p * n;
          for (size_t j = jj; j < j_end; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// Dispatches the blocked core over the pool when the product is large
// enough; chunk boundaries never change per-row results.
void BlockedGemm(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                 size_t k, size_t n) {
  const size_t flops = 2 * m * k * n;
  ThreadPool* pool = GlobalThreadPool();
  const size_t max_chunks =
      std::min(m, static_cast<size_t>(pool->threads()));
  if (flops < kParallelMinFlops || max_chunks <= 1 ||
      ThreadPool::OnWorkerThread()) {
    BlockedGemmRows(a, b, c, k, n, 0, m);
    return;
  }
  const size_t rows_per_chunk = (m + max_chunks - 1) / max_chunks;
  const size_t chunks = (m + rows_per_chunk - 1) / rows_per_chunk;
  // Workers write disjoint row ranges of `c`; no two chunks overlap.
  pool->ParallelFor(chunks, [&](size_t chunk) {  // lint: shared-state(c)
    const size_t begin = chunk * rows_per_chunk;
    const size_t end = std::min(begin + rows_per_chunk, m);
    BlockedGemmRows(a, b, c, k, n, begin, end);
  });
}

// Thread-local packing scratch: transpose-packed operands live here so
// steady-state GEMMs allocate nothing. Safe under the pool — each
// thread packs into its own buffer (parallel row splits pack on the
// caller before dispatch; workers only read the caller's buffer).
std::vector<Scalar>& PackScratch() {
  thread_local std::vector<Scalar> scratch;
  return scratch;
}

}  // namespace

Matrix MatMulValues(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  MatMulAccumulate(a, b, &c);
  return c;
}

void MatMulAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  LIGHTTR_DCHECK_EQ(a.cols(), b.rows());
  LIGHTTR_DCHECK_EQ(c->rows(), a.rows());
  LIGHTTR_DCHECK_EQ(c->cols(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  AddFlops(static_cast<int64_t>(2 * m * k * n));
  if (2 * m * k * n < kSimpleMaxFlops) {
    // i-k-j loop order: streams through b and c rows contiguously.
    for (size_t i = 0; i < m; ++i) {
      Scalar* crow = c->data() + i * n;
      const Scalar* arow = a.data() + i * k;
      for (size_t p = 0; p < k; ++p) {
        const Scalar av = arow[p];
        if (av == Scalar{0}) continue;
        const Scalar* brow = b.data() + p * n;
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }
  BlockedGemm(a.data(), b.data(), c->data(), m, k, n);
}

void MatMulTransAAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  LIGHTTR_DCHECK_EQ(a.rows(), b.rows());
  LIGHTTR_DCHECK_EQ(c->rows(), a.cols());
  LIGHTTR_DCHECK_EQ(c->cols(), b.cols());
  const size_t m = a.cols();
  const size_t k = a.rows();
  const size_t n = b.cols();
  AddFlops(static_cast<int64_t>(2 * m * k * n));
  if (2 * m * k * n < kSimpleMaxFlops) {
    for (size_t p = 0; p < k; ++p) {
      const Scalar* arow = a.data() + p * m;
      const Scalar* brow = b.data() + p * n;
      for (size_t i = 0; i < m; ++i) {
        const Scalar av = arow[i];
        if (av == Scalar{0}) continue;
        Scalar* crow = c->data() + i * n;
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }
  // Transpose-pack a ([k,m]) into at ([m,k]) and reuse the i-k-j core.
  std::vector<Scalar>& at = PackScratch();
  at.resize(m * k);
  for (size_t p = 0; p < k; ++p) {
    const Scalar* arow = a.data() + p * m;
    for (size_t i = 0; i < m; ++i) at[i * k + p] = arow[i];
  }
  BlockedGemm(at.data(), b.data(), c->data(), m, k, n);
}

void MatMulTransBAccumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  LIGHTTR_DCHECK_EQ(a.cols(), b.cols());
  LIGHTTR_DCHECK_EQ(c->rows(), a.rows());
  LIGHTTR_DCHECK_EQ(c->cols(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  AddFlops(static_cast<int64_t>(2 * m * k * n));
  if (2 * m * k * n < kSimpleMaxFlops) {
    for (size_t i = 0; i < m; ++i) {
      const Scalar* arow = a.data() + i * k;
      Scalar* crow = c->data() + i * n;
      for (size_t j = 0; j < n; ++j) {
        const Scalar* brow = b.data() + j * k;
        Scalar acc{0};
        for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
    return;
  }
  // Transpose-pack b ([n,k]) into bt ([k,n]) and reuse the i-k-j core.
  std::vector<Scalar>& bt = PackScratch();
  bt.resize(k * n);
  for (size_t j = 0; j < n; ++j) {
    const Scalar* brow = b.data() + j * k;
    for (size_t p = 0; p < k; ++p) bt[p * n + j] = brow[p];
  }
  BlockedGemm(a.data(), bt.data(), c->data(), m, k, n);
}

}  // namespace lighttr::nn
