#include "common/file_util.h"

#include "common/env.h"

namespace lighttr {

// Legacy free-function surface: thin delegates to the process-wide real
// filesystem. Code that needs fault injection takes a FileSystem*
// instead (common/env.h); these wrappers keep the CSV/bench/example
// call sites untouched.

Status WriteFile(const std::string& path, const std::string& contents) {
  // Historical entry point; now atomic so existing CSV/checkpoint dumps
  // can no longer be observed half-written.
  return RealFileSystemInstance()->WriteFileAtomic(path, contents);
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  return RealFileSystemInstance()->WriteFileAtomic(path, contents);
}

Status AppendToFile(const std::string& path, const std::string& contents) {
  return RealFileSystemInstance()->AppendToFile(path, contents);
}

Result<std::string> ReadFile(const std::string& path) {
  return RealFileSystemInstance()->ReadFile(path);
}

}  // namespace lighttr
