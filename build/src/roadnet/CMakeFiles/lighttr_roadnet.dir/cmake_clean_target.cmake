file(REMOVE_RECURSE
  "liblighttr_roadnet.a"
)
