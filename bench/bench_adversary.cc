// Byzantine-robustness gate for the model-poisoning adversary
// (fl/adversary): the same federated LightTR run with a compromised
// client cohort, defense off (plain mean, no healing) vs defense on
// (Multi-Krum aggregation + the reputation ledger), across all four
// attack types.
//
// Expected shape: undefended, every attack drags (or quietly biases)
// the global model; defended, Multi-Krum keeps the poisoned uploads out
// of the aggregate, the suspicion pass feeds the reputation ledger, and
// the whole attacker cohort — and nobody else — ends quarantined, so
// the tail of the run trains clean and the final validation loss beats
// the undefended run. Two determinism legs re-run one poisoned defended
// scenario across thread widths {1, 2, 8} and across an injected
// crash + resume: final parameters must be bitwise identical (the
// adversary RNG + counters ride in the v5 snapshot tail).
//
// Emits a human table plus BENCH_adversary.json, and exits non-zero if
// any gate fails. --smoke shrinks the workload to the sanitizer-budget
// tier-1 size without weakening any gate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "bench/bench_output.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "fl/adversary.h"
#include "fl/federated_trainer.h"
#include "nn/parameter.h"

namespace {

using namespace lighttr;

// Keeps the emitted JSON valid when the undefended run blows its
// validation loss up to infinity.
double JsonSafe(double v) { return std::isfinite(v) ? v : 9.9e307; }

constexpr int kNumAttackers = 2;
constexpr char kSnapshotDir[] = "bench-adv";

struct RunOutcome {
  fl::FederatedRunResult run;
  std::vector<nn::Scalar> params;
  std::vector<int> quarantined;
  double valid_loss = 0.0;
  double recall = 0.0;
  double seconds = 0.0;
  bool finite = false;
};

std::string JsonRow(const std::string& attack, const std::string& leg,
                    bool defended, const RunOutcome& o) {
  const fl::FaultStats& f = o.run.faults;
  char buffer[384];
  std::snprintf(
      buffer, sizeof(buffer),
      "  {\"attack\": \"%s\", \"leg\": \"%s\", \"defended\": %d, "
      "\"valid_loss\": %.6g, \"recall\": %.4f, \"poisoned\": %lld, "
      "\"suspected\": %lld, \"quarantine\": %lld, \"finite\": %d, "
      "\"gave_up\": %d, \"seconds\": %.3f}",
      attack.c_str(), leg.c_str(), defended ? 1 : 0, JsonSafe(o.valid_loss),
      o.recall, static_cast<long long>(f.poisoned_uploads),
      static_cast<long long>(f.suspected_uploads),
      static_cast<long long>(f.quarantine_events), o.finite ? 1 : 0,
      o.run.gave_up ? 1 : 0, o.seconds);
  return buffer;
}

std::string JoinInts(const std::vector<int>& v) {
  std::string out;
  for (const int x : v) {
    if (!out.empty()) out += ",";
    out += std::to_string(x);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  if (args.error) return 2;
  eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  if (args.smoke) {
    // Tier-1 / sanitizer budget: smallest workload that still leaves a
    // meaningful honest majority and enough rounds to attack, detect,
    // quarantine, and recover. Every gate below still applies.
    scale.name = "smoke";
    scale.grid_rows = 6;
    scale.grid_cols = 6;
    scale.trajectories_per_client = 10;
    scale.local_epochs = 1;
    scale.max_test_trajectories = 24;
  }
  // >= 8 clients keeps f = floor(0.35 * clients) covering the cohort;
  // 12 rounds give the undefended runs time to pay for the poison they
  // keep aggregating after the defended runs have quarantined it.
  scale.num_clients = std::max(scale.num_clients, 8);
  const int rounds = std::max(scale.rounds, 12);
  std::printf("Adversary sweep (scale=%s, %d clients, %d attackers, "
              "%d rounds)\n",
              scale.name.c_str(), scale.num_clients, kNumAttackers, rounds);

  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 19);
  const std::vector<traj::IncompleteTrajectory> test =
      eval::ExperimentEnv::PooledTestSet(clients, scale.max_test_trajectories);

  const auto fed_options = [&](fl::AttackType attack, bool defended,
                               int threads) {
    fl::FederatedTrainerOptions options = eval::DefaultRunOptions(scale).fed;
    options.rounds = rounds;
    options.threads = threads;
    // Full participation: the attacker cohort reports every round, so
    // quarantine timing (and with it the whole sweep) is deterministic.
    options.client_fraction = 1.0;
    // Attack from round 2 on: round 1 banks honest delta norms, which
    // the stealthy attacks (min-max, norm-matched) size themselves to.
    options.adversary.num_attackers = kNumAttackers;
    options.adversary.attack = attack;
    options.adversary.start_round = 2;
    if (defended) {
      options.tolerance.aggregator.policy = fl::AggregatorPolicy::kMultiKrum;
      // f = floor(0.3 * clients) covers the 2-attacker cohort from 8
      // clients up, and drops to f=1 once quarantine shrinks the cohort
      // to the 6 honest clients — the cheapest selection tax that still
      // provisions for the attackers while they are live.
      options.tolerance.aggregator.byzantine_fraction = 0.3;
      // Detection-only Krum: clean rounds aggregate the plain mean
      // (zero selection tax), attack rounds sit out exactly the
      // flagged uploads.
      options.tolerance.aggregator.exclude_suspected = true;
      options.healing.enabled = true;
      // Below the suspect weight's EWMA asymptote (0.7), so the second
      // consecutive suspicion flag quarantines. It also sits below the
      // outlier asymptote (0.5): only a *persistent* norm outlier could
      // cross on outlier events alone, which honest clients in this
      // workload never are.
      options.healing.reputation.quarantine_threshold = 0.45;
      // No parole inside the sweep: "ends quarantined" is the gate.
      options.healing.reputation.parole_rounds = rounds + 100;
    }
    return options;
  };

  const auto run_once = [&](const fl::FederatedTrainerOptions& options,
                            bool evaluate) {
    fl::FederatedTrainer trainer(
        baselines::MakeFactory(baselines::ModelKind::kLightTr, &env->encoder()),
        &clients, options);
    Stopwatch watch;
    RunOutcome outcome;
    outcome.run = trainer.Run();
    outcome.seconds = watch.ElapsedSeconds();
    outcome.params = trainer.global_model()->params().Flatten();
    outcome.valid_loss = outcome.run.history.empty()
                             ? 0.0
                             : outcome.run.history.back().valid_loss;
    outcome.finite = true;
    for (const nn::Scalar v : outcome.params) {
      if (!std::isfinite(v)) outcome.finite = false;
    }
    if (trainer.reputation() != nullptr) {
      for (int i = 0; i < trainer.num_clients(); ++i) {
        if (trainer.reputation()->IsQuarantined(i)) {
          outcome.quarantined.push_back(i);
        }
      }
    }
    if (evaluate) {
      outcome.recall =
          eval::EvaluateRecovery(trainer.global_model(), env->network(), test)
              .recall;
    }
    return outcome;
  };

  TablePrinter table({"Attack", "Defense", "ValidLoss", "Recall", "Poisoned",
                      "Suspected", "Quarantined", "Finite", "Wall(s)"});
  std::vector<std::string> json_rows;
  const auto report = [&](const std::string& attack, const std::string& leg,
                          bool defended, const RunOutcome& o) {
    table.AddRow({attack, defended ? "on" : "off",
                  TablePrinter::Fmt(JsonSafe(o.valid_loss)),
                  TablePrinter::Fmt(o.recall),
                  std::to_string(o.run.faults.poisoned_uploads),
                  std::to_string(o.run.faults.suspected_uploads),
                  JoinInts(o.quarantined), o.finite ? "yes" : "no",
                  TablePrinter::Fmt(o.seconds, 2)});
    json_rows.push_back(JsonRow(attack, leg, defended, o));
    std::printf("%s defense=%s: valid_loss=%.6g poisoned=%lld "
                "suspected=%lld quarantined=[%s] finite=%d (%.2fs)\n",
                attack.c_str(), defended ? "on" : "off", o.valid_loss,
                static_cast<long long>(o.run.faults.poisoned_uploads),
                static_cast<long long>(o.run.faults.suspected_uploads),
                JoinInts(o.quarantined).c_str(), o.finite ? 1 : 0, o.seconds);
    std::fflush(stdout);
  };

  std::vector<int> expected_quarantine;
  for (int i = 0; i < kNumAttackers; ++i) expected_quarantine.push_back(i);

  // ---- Gate 1: per attack type, defense-on beats defense-off and
  // quarantines exactly the attacker cohort.
  const fl::AttackType attacks[] = {
      fl::AttackType::kSignFlip, fl::AttackType::kScaledAscent,
      fl::AttackType::kMinMax, fl::AttackType::kNormMatched};
  bool gate_ok = true;
  RunOutcome reference;  // scaled-ascent defended, threads=1
  for (const fl::AttackType attack : attacks) {
    const std::string name = fl::AttackTypeName(attack);
    const RunOutcome off = run_once(
        fed_options(attack, /*defended=*/false, /*threads=*/1), true);
    report(name, "sweep", false, off);
    const RunOutcome on = run_once(
        fed_options(attack, /*defended=*/true, /*threads=*/1), true);
    report(name, "sweep", true, on);
    if (attack == fl::AttackType::kScaledAscent) reference = on;
    if (off.run.faults.poisoned_uploads <= 0) {
      std::printf("ERROR[%s]: the attack never fired\n", name.c_str());
      gate_ok = false;
    }
    if (!on.finite || on.run.gave_up) {
      std::printf("ERROR[%s]: defended run did not finish healthy\n",
                  name.c_str());
      gate_ok = false;
    }
    if (!(JsonSafe(on.valid_loss) < JsonSafe(off.valid_loss))) {
      std::printf("ERROR[%s]: defense-on loss %.6g does not beat "
                  "defense-off %.6g\n",
                  name.c_str(), JsonSafe(on.valid_loss),
                  JsonSafe(off.valid_loss));
      gate_ok = false;
    }
    if (on.quarantined != expected_quarantine) {
      std::printf("ERROR[%s]: quarantined [%s], want exactly the attacker "
                  "cohort [%s]\n",
                  name.c_str(), JoinInts(on.quarantined).c_str(),
                  JoinInts(expected_quarantine).c_str());
      gate_ok = false;
    }
  }

  // ---- Gate 2: thread-width determinism on a poisoned defended run.
  for (const int threads : {2, 8}) {
    const RunOutcome wide = run_once(
        fed_options(fl::AttackType::kScaledAscent, /*defended=*/true, threads),
        false);
    report("scaled-ascent", "threads=" + std::to_string(threads), true, wide);
    if (wide.params != reference.params ||
        wide.quarantined != reference.quarantined) {
      std::printf("ERROR: threads=%d diverged bitwise from threads=1\n",
                  threads);
      gate_ok = false;
    }
  }

  // ---- Gate 3: crash/resume determinism with the attack stream live.
  // A zero-fault FaultyFileSystem is a deterministic RAM disk: the
  // snapshots never touch the real disk, and SimulateCrash drops
  // exactly what a power cut would.
  {
    FaultyFileSystem fs{StorageFaultConfig{}};
    fl::FederatedTrainerOptions crashing =
        fed_options(fl::AttackType::kScaledAscent, /*defended=*/true, 1);
    crashing.durability.dir = kSnapshotDir;
    crashing.durability.fs = &fs;
    crashing.durability.crash_point = fl::CrashPoint::kAfterSave;
    crashing.durability.crash_round = rounds / 2;
    RunOutcome resumed;
    bool crash_fired = false;
    {
      fl::FederatedTrainer trainer(
          baselines::MakeFactory(baselines::ModelKind::kLightTr,
                                 &env->encoder()),
          &clients, crashing);
      try {
        trainer.Run();
      } catch (const fl::InjectedCrash&) {
        crash_fired = true;
      }
    }
    if (!crash_fired) {
      std::printf("ERROR: injected crash never fired\n");
      gate_ok = false;
    } else {
      fs.SimulateCrash();
      fl::FederatedTrainerOptions after = crashing;
      after.durability.crash_point = fl::CrashPoint::kNone;
      after.durability.crash_round = 0;
      fl::FederatedTrainer trainer(
          baselines::MakeFactory(baselines::ModelKind::kLightTr,
                                 &env->encoder()),
          &clients, after);
      const Status restore = trainer.ResumeFrom(kSnapshotDir);
      if (!restore.ok()) {
        std::printf("ERROR: resume failed: %s\n",
                    restore.ToString().c_str());
        gate_ok = false;
      } else {
        Stopwatch watch;
        resumed.run = trainer.Run();
        resumed.seconds = watch.ElapsedSeconds();
        resumed.params = trainer.global_model()->params().Flatten();
        resumed.valid_loss = resumed.run.history.empty()
                                 ? 0.0
                                 : resumed.run.history.back().valid_loss;
        resumed.finite = true;
        for (const nn::Scalar v : resumed.params) {
          if (!std::isfinite(v)) resumed.finite = false;
        }
        if (trainer.reputation() != nullptr) {
          for (int i = 0; i < trainer.num_clients(); ++i) {
            if (trainer.reputation()->IsQuarantined(i)) {
              resumed.quarantined.push_back(i);
            }
          }
        }
        report("scaled-ascent", "crash-resume", true, resumed);
        if (resumed.params != reference.params ||
            resumed.quarantined != reference.quarantined) {
          std::printf(
              "ERROR: crash/resume diverged bitwise from uninterrupted\n");
          gate_ok = false;
        }
      }
    }
  }

  std::printf("%s", table.ToString().c_str());
  std::string json = "[\n";
  for (size_t i = 0; i < json_rows.size(); ++i) {
    json += json_rows[i];
    json += (i + 1 < json_rows.size()) ? ",\n" : "\n";
  }
  json += "]\n";
  if (!bench::WriteArtifact(args, "BENCH_adversary.json", json) ||
      !bench::WriteArtifact(args, "bench_adversary.csv", table.ToCsv())) {
    return 1;
  }

  if (!gate_ok) {
    std::printf("ERROR: adversary robustness gate failed\n");
    return 1;
  }
  return 0;
}
