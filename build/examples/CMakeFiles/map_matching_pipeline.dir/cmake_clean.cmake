file(REMOVE_RECURSE
  "CMakeFiles/map_matching_pipeline.dir/map_matching_pipeline.cpp.o"
  "CMakeFiles/map_matching_pipeline.dir/map_matching_pipeline.cpp.o.d"
  "map_matching_pipeline"
  "map_matching_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_matching_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
