// Tests for the LightTR core: LTE model behaviour, teacher training
// (Algorithm 1), meta local update dynamics (Algorithm 2 / Eq. 18), and
// the end-to-end pipeline (Algorithm 3).
#include <gtest/gtest.h>

#include <cmath>

#include "fl/local_trainer.h"
#include "lighttr/lte_model.h"
#include "lighttr/meta_local_update.h"
#include "lighttr/pipeline.h"
#include "lighttr/teacher_training.h"
#include "nn/optimizer.h"
#include "roadnet/generators.h"
#include "roadnet/segment_index.h"
#include "traj/workload.h"

namespace lighttr::core {
namespace {

class LightTrTest : public ::testing::Test {
 protected:
  LightTrTest() {
    Rng rng(51);
    roadnet::CityGridOptions options;
    options.rows = 6;
    options.cols = 6;
    network_ = roadnet::GenerateCityGrid(options, &rng);
    index_ = std::make_unique<roadnet::SegmentIndex>(network_);
    encoder_ = std::make_unique<traj::TrajectoryEncoder>(network_, *index_);

    traj::WorkloadProfile profile = traj::TdriveLikeProfile();
    profile.trajectories_per_client = 8;
    traj::FederatedWorkloadOptions workload;
    workload.num_clients = 3;
    workload.keep_ratio = 0.25;
    Rng data_rng(52);
    clients_ = traj::GenerateFederatedWorkload(network_, profile, workload,
                                               &data_rng);
  }

  fl::ModelFactory Factory() const {
    const traj::TrajectoryEncoder* encoder = encoder_.get();
    return [encoder](Rng* rng) -> std::unique_ptr<fl::RecoveryModel> {
      return std::make_unique<LteModel>(encoder, LteConfig{}, rng);
    };
  }

  roadnet::RoadNetwork network_;
  std::unique_ptr<roadnet::SegmentIndex> index_;
  std::unique_ptr<traj::TrajectoryEncoder> encoder_;
  std::vector<traj::ClientDataset> clients_;
};

TEST_F(LightTrTest, ForwardLossFiniteAndPositive) {
  Rng rng(1);
  LteModel model(encoder_.get(), LteConfig{}, &rng);
  Rng fwd(2);
  for (const auto& trajectory : clients_[0].train) {
    const fl::ForwardResult result = model.Forward(trajectory, true, &fwd);
    EXPECT_TRUE(std::isfinite(result.loss.ScalarValue()));
    EXPECT_GE(result.loss.ScalarValue(), 0.0);
    ASSERT_TRUE(result.representation.defined());
    EXPECT_EQ(result.representation.cols(), model.config().hidden_dim);
    EXPECT_EQ(result.representation.rows(),
              trajectory.MissingIndices().size());
  }
}

TEST_F(LightTrTest, RecoverKeepsObservedPointsVerbatim) {
  Rng rng(3);
  LteModel model(encoder_.get(), LteConfig{}, &rng);
  const traj::IncompleteTrajectory& sample = clients_[0].test[0];
  const auto recovered = model.Recover(sample);
  ASSERT_EQ(recovered.size(), sample.size());
  for (size_t t = 0; t < sample.size(); ++t) {
    if (sample.observed[t]) {
      EXPECT_EQ(recovered[t], sample.ground_truth.points[t].position);
    } else {
      EXPECT_GE(recovered[t].segment, 0);
      EXPECT_LT(recovered[t].segment, network_.num_segments());
      EXPECT_GE(recovered[t].ratio, 0.0);
      EXPECT_LE(recovered[t].ratio, 1.0);
    }
  }
}

TEST_F(LightTrTest, TrainingReducesLoss) {
  Rng rng(4);
  LteModel model(encoder_.get(), LteConfig{}, &rng);
  nn::AdamOptimizer optimizer(3e-3);
  fl::LocalTrainOptions options;
  options.epochs = 1;
  Rng train_rng(5);
  const double first = fl::TrainLocal(&model, &optimizer, clients_[0].train,
                                      options, &train_rng);
  options.epochs = 15;
  const double later = fl::TrainLocal(&model, &optimizer, clients_[0].train,
                                      options, &train_rng);
  EXPECT_LT(later, first);
}

TEST_F(LightTrTest, ParameterLayoutIdenticalAcrossReplicas) {
  Rng r1(6);
  Rng r2(7);
  auto a = Factory()(&r1);
  auto b = Factory()(&r2);
  ASSERT_EQ(a->params().size(), b->params().size());
  for (size_t i = 0; i < a->params().size(); ++i) {
    EXPECT_EQ(a->params().name(i), b->params().name(i));
    EXPECT_TRUE(a->params().tensor(i).value().SameShape(
        b->params().tensor(i).value()));
  }
}

TEST_F(LightTrTest, MuZeroDropsRatioLoss) {
  LteConfig no_ratio;
  no_ratio.mu = 0.0;
  Rng rng(8);
  LteModel model(encoder_.get(), no_ratio, &rng);
  const fl::ForwardResult result =
      model.Forward(clients_[0].train[0], false, nullptr);
  EXPECT_TRUE(std::isfinite(result.loss.ScalarValue()));
}

TEST(DynamicLambda, MatchesEq18) {
  // lambda0 * 10^(min(1, (acc_tea - acc_stu) * 5) - 1)
  EXPECT_NEAR(MetaLocalUpdate::DynamicLambda(5.0, 0.6, 0.4),
              5.0 * std::pow(10.0, 1.0 - 1.0), 1e-12);  // gap 0.2 -> 5
  EXPECT_NEAR(MetaLocalUpdate::DynamicLambda(5.0, 0.9, 0.4),
              5.0, 1e-12);  // capped by min(1, .)
  EXPECT_NEAR(MetaLocalUpdate::DynamicLambda(5.0, 0.44, 0.4),
              5.0 * std::pow(10.0, 0.2 - 1.0), 1e-12);
  // Equal accuracies: exponent -1 -> lambda0 / 10.
  EXPECT_NEAR(MetaLocalUpdate::DynamicLambda(5.0, 0.5, 0.5), 0.5, 1e-12);
}

TEST_F(LightTrTest, TeacherTrainingProducesWorkingModel) {
  TeacherTrainingOptions options;
  options.cycles = 1;
  options.epochs_per_client = 1;
  auto teacher = TrainTeacher(Factory(), clients_, options);
  ASSERT_NE(teacher, nullptr);
  const double accuracy =
      fl::EvaluateSegmentAccuracy(teacher.get(), clients_[0].valid);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

TEST_F(LightTrTest, MetaLocalUpdateRunsWithAndWithoutTeacher) {
  Rng rng(9);
  auto model = Factory()(&rng);
  nn::AdamOptimizer optimizer(3e-3);
  Rng update_rng(10);

  MetaLocalUpdate no_teacher(nullptr, MetaLocalOptions{});
  const double loss1 = no_teacher.Update(0, model.get(), &optimizer,
                                         clients_[0], 1, &update_rng);
  EXPECT_TRUE(std::isfinite(loss1));

  TeacherTrainingOptions teacher_options;
  teacher_options.cycles = 1;
  auto teacher = TrainTeacher(Factory(), clients_, teacher_options);
  MetaLocalUpdate with_teacher(teacher.get(), MetaLocalOptions{});
  const double loss2 = with_teacher.Update(0, model.get(), &optimizer,
                                           clients_[0], 2, &update_rng);
  EXPECT_TRUE(std::isfinite(loss2));
}

TEST_F(LightTrTest, PipelineEndToEnd) {
  LightTrOptions options;
  options.federated.rounds = 2;
  options.federated.local_epochs = 1;
  options.teacher.cycles = 1;
  LightTrPipeline pipeline(encoder_.get(), &clients_, options);
  const LightTrResult result = pipeline.Train();
  EXPECT_EQ(result.federated.comm.rounds, 2);
  EXPECT_GT(result.teacher_seconds, 0.0);
  ASSERT_NE(pipeline.global_model(), nullptr);
  ASSERT_NE(pipeline.teacher(), nullptr);
  const auto recovered = pipeline.global_model()->Recover(clients_[0].test[0]);
  EXPECT_EQ(recovered.size(), clients_[0].test[0].size());
}

TEST_F(LightTrTest, PipelineWithoutTeacherSkipsAlgorithm1) {
  LightTrOptions options;
  options.use_teacher = false;
  options.federated.rounds = 1;
  options.federated.local_epochs = 1;
  LightTrPipeline pipeline(encoder_.get(), &clients_, options);
  const LightTrResult result = pipeline.Train();
  EXPECT_EQ(result.teacher_seconds, 0.0);
  EXPECT_EQ(pipeline.teacher(), nullptr);
  EXPECT_EQ(result.federated.comm.rounds, 1);
}

}  // namespace
}  // namespace lighttr::core
