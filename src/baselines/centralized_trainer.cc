#include "baselines/centralized_trainer.h"

#include "common/check.h"
#include "fl/local_trainer.h"
#include "nn/optimizer.h"

namespace lighttr::baselines {

std::unique_ptr<fl::RecoveryModel> TrainCentralized(
    const fl::ModelFactory& factory,
    const std::vector<traj::IncompleteTrajectory>& train_data,
    const CentralizedOptions& options) {
  LIGHTTR_CHECK_GE(options.epochs, 1);
  Rng rng(options.seed);
  Rng model_rng = rng.Fork();
  std::unique_ptr<fl::RecoveryModel> model = factory(&model_rng);
  nn::AdamOptimizer optimizer(static_cast<nn::Scalar>(options.learning_rate));
  fl::LocalTrainOptions local;
  local.epochs = options.epochs;
  Rng train_rng = rng.Fork();
  fl::TrainLocal(model.get(), &optimizer, train_data, local, &train_rng);
  return model;
}

}  // namespace lighttr::baselines
