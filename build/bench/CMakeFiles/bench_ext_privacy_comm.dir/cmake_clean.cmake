file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_privacy_comm.dir/bench_ext_privacy_comm.cc.o"
  "CMakeFiles/bench_ext_privacy_comm.dir/bench_ext_privacy_comm.cc.o.d"
  "bench_ext_privacy_comm"
  "bench_ext_privacy_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_privacy_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
