# Empty dependencies file for stats_and_tools_test.
# This may be replaced when dependencies are built.
