#include "fl/transport/channel.h"

#include <algorithm>

#include "common/check.h"

namespace lighttr::fl::transport {

namespace {

// Flips 1..max_bit_flips random bits in `bytes`. Draw count depends only
// on the drawn flip count, which is part of the same deterministic
// stream, so replay is exact.
void CorruptBytes(std::string* bytes, int max_bit_flips, Rng* rng) {
  if (bytes->empty()) return;
  const int flips =
      static_cast<int>(rng->UniformInt(1, std::max(1, max_bit_flips)));
  for (int i = 0; i < flips; ++i) {
    const auto pos = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(bytes->size()) - 1));
    const int bit = static_cast<int>(rng->UniformInt(0, 7));
    (*bytes)[pos] = static_cast<char>((*bytes)[pos] ^ (1 << bit));
  }
}

}  // namespace

std::vector<Delivery> SimulatedChannel::Transmit(const std::string& frame,
                                                 Rng* rng) {
  std::vector<Delivery> arrivals;
  // A frame held back by an earlier reorder is released first: it
  // arrives "before" this transmission reaches the receiver.
  if (!held_.empty()) {
    arrivals = std::move(held_);
    held_.clear();
  }
  if (config_.enabled()) {
    LIGHTTR_CHECK(rng != nullptr);
  }
  if (config_.drop_rate > 0.0 && rng->Bernoulli(config_.drop_rate)) {
    return arrivals;
  }
  int copies = 1;
  if (config_.duplicate_rate > 0.0 && rng->Bernoulli(config_.duplicate_rate)) {
    copies = 2;
  }
  for (int copy = 0; copy < copies; ++copy) {
    Delivery delivery;
    delivery.bytes = frame;
    if (config_.corrupt_rate > 0.0 && rng->Bernoulli(config_.corrupt_rate)) {
      CorruptBytes(&delivery.bytes, config_.max_bit_flips, rng);
    } else if (config_.truncate_rate > 0.0 &&
               rng->Bernoulli(config_.truncate_rate)) {
      if (!delivery.bytes.empty()) {
        delivery.bytes.resize(static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(delivery.bytes.size()) - 1)));
      }
    }
    if (config_.delay_rate > 0.0 && rng->Bernoulli(config_.delay_rate)) {
      delivery.late = true;
    }
    if (config_.reorder_rate > 0.0 && rng->Bernoulli(config_.reorder_rate)) {
      held_.push_back(std::move(delivery));
    } else {
      arrivals.push_back(std::move(delivery));
    }
  }
  return arrivals;
}

std::vector<Delivery> SimulatedChannel::Flush() {
  std::vector<Delivery> arrivals = std::move(held_);
  held_.clear();
  return arrivals;
}

}  // namespace lighttr::fl::transport
