// Hostile-input tests for the v2 checkpoint loader: systematic and
// seeded-random mutations of valid checkpoint files must always come
// back as a descriptive Status — never a crash, hang, OOM, or silently
// garbage parameters. (The sanitizer matrix runs this binary under
// ASan/TSan; see ROADMAP.md.)
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/file_util.h"
#include "common/rng.h"
#include "fl/federated_trainer.h"
#include "fl/run_state.h"
#include "nn/checkpoint.h"
#include "nn/losses.h"
#include "nn/parameter.h"
#include "roadnet/generators.h"
#include "traj/generator.h"
#include "traj/workload.h"

namespace lighttr::nn {
namespace {

ParameterSet MakeParams(double scale = 1.0) {
  ParameterSet params;
  Matrix w1(2, 3);
  Matrix w2(1, 4);
  Matrix b(1, 1);
  for (size_t i = 0; i < w1.size(); ++i) {
    w1.data()[i] = static_cast<Scalar>(scale * (0.25 * static_cast<double>(i) - 0.5));
  }
  for (size_t i = 0; i < w2.size(); ++i) {
    w2.data()[i] = static_cast<Scalar>(scale * (1.0 / (static_cast<double>(i) + 3.0)));
  }
  b(0, 0) = static_cast<Scalar>(scale * 0.125);
  params.Register("encoder.w1", Tensor::Variable(w1));
  params.Register("encoder.w2", Tensor::Variable(w2));
  params.Register("head.bias", Tensor::Variable(b));
  return params;
}

void ExpectParamsEqual(const ParameterSet& a, const ParameterSet& b,
                       double tolerance) {
  const std::vector<Scalar> fa = a.Flatten();
  const std::vector<Scalar> fb = b.Flatten();
  ASSERT_EQ(fa.size(), fb.size());
  for (size_t i = 0; i < fa.size(); ++i) {
    if (tolerance == 0.0) {
      EXPECT_EQ(fa[i], fb[i]);
    } else {
      EXPECT_NEAR(fa[i], fb[i], tolerance);
    }
  }
}

TEST(CheckpointV2, Float32RoundTrips) {
  const ParameterSet original = MakeParams();
  ParameterSet restored = MakeParams(0.0);
  ASSERT_TRUE(
      ParseCheckpoint(SerializeCheckpoint(original), &restored).ok());
  ExpectParamsEqual(original, restored, 1e-6);
}

TEST(CheckpointV2, Float64RoundTripsBitwise) {
  const ParameterSet original = MakeParams();
  ParameterSet restored = MakeParams(0.0);
  ASSERT_TRUE(ParseCheckpoint(
                  SerializeCheckpoint(original, CheckpointDtype::kFloat64),
                  &restored)
                  .ok());
  ExpectParamsEqual(original, restored, 0.0);
}

TEST(CheckpointV2, LegacyV1BlobsStillLoad) {
  const ParameterSet original = MakeParams();
  ParameterSet restored = MakeParams(0.0);
  ASSERT_TRUE(ParseCheckpoint(original.Serialize(), &restored).ok());
  ExpectParamsEqual(original, restored, 1e-6);
}

TEST(CheckpointV2, SaveLoadThroughDiskIsAtomic) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ckpt_disk").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (std::filesystem::path(dir) / "model.ckpt").string();
  const ParameterSet original = MakeParams();
  ASSERT_TRUE(SaveCheckpoint(path, original).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // temp renamed away
  ParameterSet restored = MakeParams(0.0);
  ASSERT_TRUE(LoadCheckpoint(path, &restored).ok());
  ExpectParamsEqual(original, restored, 1e-6);
}

// --------------------------------------------------------------------
// Mutation battery. Every mutant must yield !ok(), and none may crash.

TEST(CheckpointRobustness, EveryTruncationIsRejected) {
  const std::string blob = SerializeCheckpoint(MakeParams());
  for (size_t keep = 0; keep < blob.size(); keep += 3) {
    ParameterSet victim = MakeParams(2.0);
    EXPECT_FALSE(ParseCheckpoint(blob.substr(0, keep), &victim).ok())
        << "truncation to " << keep << " bytes was accepted";
  }
}

TEST(CheckpointRobustness, SingleByteFlipsAreAlwaysDetected) {
  const std::string blob = SerializeCheckpoint(MakeParams());
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    std::string mutant = blob;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x5a);
    ParameterSet victim = MakeParams(2.0);
    EXPECT_FALSE(ParseCheckpoint(mutant, &victim).ok())
        << "byte flip at " << pos << " was accepted";
  }
}

// ~20 deterministic pseudo-random mutants with multi-byte damage,
// mirroring what a fuzzer would feed the loader. Seeded, so failures
// reproduce.
TEST(CheckpointRobustness, RandomMutantsNeverCrashTheLoader) {
  const std::string blob =
      SerializeCheckpoint(MakeParams(), CheckpointDtype::kFloat64);
  lighttr::Rng rng(20240806);
  for (int mutant_index = 0; mutant_index < 20; ++mutant_index) {
    std::string mutant = blob;
    const int edits = static_cast<int>(rng.UniformInt(1, 16));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutant.size()) - 1));
      mutant[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    if (static_cast<int>(rng.UniformInt(0, 3)) == 0 && mutant.size() > 8) {
      mutant.resize(mutant.size() -
                    static_cast<size_t>(rng.UniformInt(1, 8)));
    }
    if (mutant == blob) continue;  // the rare identity mutant
    ParameterSet victim = MakeParams(2.0);
    EXPECT_FALSE(ParseCheckpoint(mutant, &victim).ok())
        << "mutant " << mutant_index << " was accepted";
  }
}

// Targeted hostile inputs: each corrupts one structural field and then
// repairs the whole-file CRC so parsing reaches the field validation.
std::string WithFixedCrc(std::string body_without_crc) {
  const uint32_t crc = Crc32(body_without_crc);
  body_without_crc.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return body_without_crc;
}

std::string BodyOf(const std::string& blob) {
  return blob.substr(0, blob.size() - sizeof(uint32_t));
}

TEST(CheckpointRobustness, HostileStructuralFieldsAreRejected) {
  const std::string blob = SerializeCheckpoint(MakeParams());
  struct Mutation {
    const char* label;
    size_t offset;
    uint32_t value;
  };
  // Layout: magic(4) version(4) dtype(1) count(4) name_len(4) ...
  const Mutation mutations[] = {
      {"version 99", 4, 99u},
      {"count 0", 9, 0u},
      {"count huge", 9, 0x7fffffffu},
      {"name_len huge", 13, 0xffffff00u},
      {"name_len past end", 13, 1u << 20},
  };
  for (const Mutation& m : mutations) {
    std::string body = BodyOf(blob);
    ASSERT_LE(m.offset + sizeof(uint32_t), body.size());
    std::memcpy(body.data() + m.offset, &m.value, sizeof(m.value));
    ParameterSet victim = MakeParams(2.0);
    EXPECT_FALSE(ParseCheckpoint(WithFixedCrc(body), &victim).ok()) << m.label;
  }

  // Unknown dtype byte (offset 8).
  std::string body = BodyOf(blob);
  body[8] = static_cast<char>(7);
  ParameterSet victim = MakeParams(2.0);
  EXPECT_FALSE(ParseCheckpoint(WithFixedCrc(body), &victim).ok());

  // Trailing garbage with a repaired CRC.
  ParameterSet victim2 = MakeParams(2.0);
  EXPECT_FALSE(
      ParseCheckpoint(WithFixedCrc(BodyOf(blob) + "extra"), &victim2).ok());
}

TEST(CheckpointRobustness, NonFinitePayloadIsRejected) {
  ParameterSet poisoned = MakeParams();
  std::vector<Scalar> flat = poisoned.Flatten();
  flat[2] = std::numeric_limits<Scalar>::quiet_NaN();
  poisoned.AssignFlat(flat);
  const std::string blob =
      SerializeCheckpoint(poisoned, CheckpointDtype::kFloat64);
  ParameterSet victim = MakeParams(2.0);
  const Status status = ParseCheckpoint(blob, &victim);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("non-finite"), std::string::npos);
}

TEST(CheckpointRobustness, InfinitePayloadIsRejected) {
  for (const Scalar poison : {std::numeric_limits<Scalar>::infinity(),
                              -std::numeric_limits<Scalar>::infinity()}) {
    ParameterSet poisoned = MakeParams();
    std::vector<Scalar> flat = poisoned.Flatten();
    flat.back() = poison;
    poisoned.AssignFlat(flat);
    for (const CheckpointDtype dtype :
         {CheckpointDtype::kFloat32, CheckpointDtype::kFloat64}) {
      ParameterSet victim = MakeParams(2.0);
      const Status status =
          ParseCheckpoint(SerializeCheckpoint(poisoned, dtype), &victim);
      EXPECT_FALSE(status.ok());
      EXPECT_NE(status.message().find("non-finite"), std::string::npos);
    }
  }
}

TEST(CheckpointRobustness, WrongArchitectureIsRejectedNotLoaded) {
  const std::string blob = SerializeCheckpoint(MakeParams());

  ParameterSet fewer;
  fewer.Register("encoder.w1", Tensor::Variable(Matrix(2, 3)));
  EXPECT_FALSE(ParseCheckpoint(blob, &fewer).ok());  // count mismatch

  ParameterSet renamed;
  renamed.Register("encoder.w1", Tensor::Variable(Matrix(2, 3)));
  renamed.Register("decoder.w2", Tensor::Variable(Matrix(1, 4)));
  renamed.Register("head.bias", Tensor::Variable(Matrix(1, 1)));
  EXPECT_FALSE(ParseCheckpoint(blob, &renamed).ok());  // name mismatch

  ParameterSet reshaped;
  reshaped.Register("encoder.w1", Tensor::Variable(Matrix(3, 2)));
  reshaped.Register("encoder.w2", Tensor::Variable(Matrix(1, 4)));
  reshaped.Register("head.bias", Tensor::Variable(Matrix(1, 1)));
  EXPECT_FALSE(ParseCheckpoint(blob, &reshaped).ok());  // shape mismatch
}

TEST(CheckpointRobustness, EmptyAndTinyInputsAreRejected) {
  for (const std::string& input :
       {std::string(), std::string("L"), std::string("LTC2"),
        std::string("LTC2\0\0\0\0", 8), std::string(3, '\xff')}) {
    ParameterSet victim = MakeParams(2.0);
    EXPECT_FALSE(ParseCheckpoint(input, &victim).ok());
  }
}

// --------------------------------------------------------------------
// Poisoned run-state snapshots. These mutants keep every container CRC
// valid — only the payload carries NaN/Inf or a malformed healing tail —
// so the rejection has to come from payload validation, not checksums.
// ResumeFrom must warn and fall back to the previous snapshot, exactly
// as it does for file-level corruption, and must never install a
// non-finite global model.

class SnapshotStubModel : public fl::RecoveryModel {
 public:
  explicit SnapshotStubModel(Rng* rng) {
    w_ = Tensor::Variable(
        Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool /*training*/, Rng* /*rng*/) override {
    Matrix target(1, 1);
    target(0, 0) = static_cast<Scalar>(trajectory.ground_truth.driver_id);
    fl::ForwardResult result;
    result.loss = MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    return std::vector<roadnet::PointPosition>(trajectory.size(),
                                               roadnet::PointPosition{0, 0.0});
  }

 private:
  std::string name_ = "Stub";
  ParameterSet params_;
  Tensor w_;
};

std::unique_ptr<fl::RecoveryModel> MakeSnapshotStub(Rng* rng) {
  return std::make_unique<SnapshotStubModel>(rng);
}

std::vector<traj::ClientDataset> MakeFederatedClients(int n, uint64_t seed) {
  Rng rng(seed);
  roadnet::CityGridOptions options;
  options.rows = 6;
  options.cols = 6;
  static roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = n;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).generic_string();
  std::filesystem::remove_all(dir);
  return dir;
}

fl::FederatedTrainerOptions SnapshotOptions(const std::string& dir,
                                            int rounds = 6) {
  fl::FederatedTrainerOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.learning_rate = 0.05;
  options.durability.dir = dir;
  options.durability.snapshot_every = 1;
  options.durability.keep_snapshots = 3;
  return options;
}

// Rewrites the global model payload of the snapshot at `round` with a
// checkpoint whose single weight is `poison`. SaveRunState re-signs the
// container, so every CRC stays valid.
void PoisonSnapshotModel(const std::string& dir, int round, Scalar poison) {
  const std::string path = fl::SnapshotPath(dir, round);
  Result<fl::ServerRunState> loaded = fl::LoadRunState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  fl::ServerRunState state = loaded.value();
  ParameterSet poisoned;
  poisoned.Register("w", Tensor::Variable(Matrix::Full(1, 1, poison)));
  state.global_params_blob =
      SerializeCheckpoint(poisoned, CheckpointDtype::kFloat64);
  ASSERT_TRUE(fl::SaveRunState(path, state).ok());
}

TEST(SnapshotRobustness, NonFinitePoisonedSnapshotFallsBackToPrevious) {
  auto clients = MakeFederatedClients(4, 63);
  fl::FederatedTrainerOptions baseline_options;
  baseline_options.rounds = 6;
  baseline_options.local_epochs = 2;
  baseline_options.learning_rate = 0.05;
  fl::FederatedTrainer baseline(MakeSnapshotStub, &clients, baseline_options);
  baseline.Run();
  const std::vector<Scalar> expected =
      baseline.global_model()->params().Flatten();

  struct Case {
    const char* label;
    Scalar poison;
  };
  const Case cases[] = {
      {"nan", std::numeric_limits<Scalar>::quiet_NaN()},
      {"inf", std::numeric_limits<Scalar>::infinity()},
      {"neg_inf", -std::numeric_limits<Scalar>::infinity()},
  };
  std::string last_dir;
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    fl::FederatedTrainerOptions options =
        SnapshotOptions(FreshDir(std::string("poison_snapshot_") + c.label));
    last_dir = options.durability.dir;
    {
      fl::FederatedTrainer first(MakeSnapshotStub, &clients, options);
      first.Run();
    }
    PoisonSnapshotModel(options.durability.dir, 6, c.poison);

    options.durability.resume = true;
    fl::FederatedTrainer resumed(MakeSnapshotStub, &clients, options);
    ASSERT_TRUE(resumed.ResumeFrom(options.durability.dir).ok());
    EXPECT_EQ(resumed.resumed_round(), 5);
    resumed.Run();
    const std::vector<Scalar> params =
        resumed.global_model()->params().Flatten();
    ASSERT_EQ(params.size(), expected.size());
    for (size_t i = 0; i < params.size(); ++i) {
      EXPECT_TRUE(std::isfinite(params[i]));
    }
    // Replaying the final round from the older snapshot converges to the
    // exact bits of an uninterrupted run.
    EXPECT_EQ(params, expected);
  }

  // When every snapshot is poisoned there is nothing to fall back to:
  // resume reports an error instead of loading a non-finite model.
  Result<std::vector<int>> rounds = fl::ListSnapshotRounds(last_dir);
  ASSERT_TRUE(rounds.ok());
  for (int round : rounds.value()) {
    PoisonSnapshotModel(last_dir, round,
                        std::numeric_limits<Scalar>::quiet_NaN());
  }
  fl::FederatedTrainerOptions options = SnapshotOptions(last_dir);
  fl::FederatedTrainer stranded(MakeSnapshotStub, &clients, options);
  EXPECT_FALSE(stranded.ResumeFrom(last_dir).ok());
  EXPECT_EQ(stranded.resumed_round(), 0);
  for (const Scalar v : stranded.global_model()->params().Flatten()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

// The v2 healing tail gets the same treatment: a snapshot whose monitor
// or reputation blob fails validation is rejected as a whole, falling
// back one snapshot per damaged tail.
TEST(SnapshotRobustness, CorruptHealingTailFallsBackToPrevious) {
  auto clients = MakeFederatedClients(4, 65);
  fl::FederatedTrainerOptions options = SnapshotOptions(FreshDir("poison_tail"));
  options.healing.enabled = true;
  {
    fl::FederatedTrainer first(MakeSnapshotStub, &clients, options);
    first.Run();
  }
  {
    // Garbage monitor window on the newest snapshot.
    const std::string path = fl::SnapshotPath(options.durability.dir, 6);
    Result<fl::ServerRunState> loaded = fl::LoadRunState(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    fl::ServerRunState state = loaded.value();
    state.monitor_blob = "not a monitor blob";
    ASSERT_TRUE(fl::SaveRunState(path, state).ok());
  }
  {
    // Garbage reputation ledger on the one before it.
    const std::string path = fl::SnapshotPath(options.durability.dir, 5);
    Result<fl::ServerRunState> loaded = fl::LoadRunState(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    fl::ServerRunState state = loaded.value();
    state.reputation_blob = "not a ledger";
    ASSERT_TRUE(fl::SaveRunState(path, state).ok());
  }

  options.durability.resume = true;
  fl::FederatedTrainer resumed(MakeSnapshotStub, &clients, options);
  ASSERT_TRUE(resumed.ResumeFrom(options.durability.dir).ok());
  EXPECT_EQ(resumed.resumed_round(), 4);
}

}  // namespace
}  // namespace lighttr::nn
