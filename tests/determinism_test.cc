// Reproducibility guarantees: every stochastic component is driven by an
// explicit seed, so identical seeds must give bit-identical workloads and
// identical end-to-end experiment results.
#include <gtest/gtest.h>

#include "eval/harness.h"
#include "roadnet/generators.h"

namespace lighttr {
namespace {

TEST(Determinism, CityGenerationIsSeedDeterministic) {
  Rng rng_a(7);
  Rng rng_b(7);
  roadnet::CityGridOptions options;
  const roadnet::RoadNetwork a = roadnet::GenerateCityGrid(options, &rng_a);
  const roadnet::RoadNetwork b = roadnet::GenerateCityGrid(options, &rng_b);
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (roadnet::SegmentId e = 0; e < a.num_segments(); ++e) {
    EXPECT_EQ(a.segment(e).from, b.segment(e).from);
    EXPECT_EQ(a.segment(e).to, b.segment(e).to);
    EXPECT_DOUBLE_EQ(a.segment(e).length_m, b.segment(e).length_m);
  }
}

TEST(Determinism, WorkloadIsSeedDeterministic) {
  eval::ExperimentEnv env(6, 6, 11);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 2;
  const auto a = env.MakeWorkload(profile, workload, 13);
  const auto b = env.MakeWorkload(profile, workload, 13);
  ASSERT_EQ(a.size(), b.size());
  for (size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].train.size(), b[c].train.size());
    for (size_t i = 0; i < a[c].train.size(); ++i) {
      const auto& ta = a[c].train[i];
      const auto& tb = b[c].train[i];
      ASSERT_EQ(ta.size(), tb.size());
      EXPECT_EQ(ta.observed, tb.observed);
      for (size_t p = 0; p < ta.size(); ++p) {
        EXPECT_EQ(ta.ground_truth.points[p].position,
                  tb.ground_truth.points[p].position);
      }
    }
  }
}

TEST(Determinism, DifferentSeedsGiveDifferentWorkloads) {
  eval::ExperimentEnv env(6, 6, 11);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 1;
  const auto a = env.MakeWorkload(profile, workload, 13);
  const auto b = env.MakeWorkload(profile, workload, 14);
  bool any_difference = false;
  for (size_t i = 0; i < a[0].train.size() && !any_difference; ++i) {
    for (size_t p = 0; p < a[0].train[i].size(); ++p) {
      if (!(a[0].train[i].ground_truth.points[p].position ==
            b[0].train[i].ground_truth.points[p].position)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, EndToEndExperimentIsReproducible) {
  auto run_once = [] {
    eval::ExperimentEnv env(6, 6, 17);
    traj::WorkloadProfile profile = traj::TdriveLikeProfile();
    profile.trajectories_per_client = 8;
    traj::FederatedWorkloadOptions workload;
    workload.num_clients = 3;
    workload.keep_ratio = 0.25;
    const auto clients = env.MakeWorkload(profile, workload, 19);
    eval::MethodRunOptions options;
    options.fed.rounds = 2;
    options.fed.local_epochs = 1;
    options.max_test_trajectories = 8;
    return eval::RunFederatedMethod(env, baselines::ModelKind::kLightTr,
                                    clients, options);
  };
  const eval::MethodResult a = run_once();
  const eval::MethodResult b = run_once();
  EXPECT_DOUBLE_EQ(a.metrics.recall, b.metrics.recall);
  EXPECT_DOUBLE_EQ(a.metrics.precision, b.metrics.precision);
  EXPECT_DOUBLE_EQ(a.metrics.mae_km, b.metrics.mae_km);
  EXPECT_DOUBLE_EQ(a.metrics.rmse_km, b.metrics.rmse_km);
  EXPECT_EQ(a.run.comm.TotalBytes(), b.run.comm.TotalBytes());
  ASSERT_EQ(a.run.history.size(), b.run.history.size());
  for (size_t r = 0; r < a.run.history.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.run.history[r].mean_train_loss,
                     b.run.history[r].mean_train_loss);
  }
}

}  // namespace
}  // namespace lighttr
