// A* point-to-point shortest path with a great-circle admissible
// heuristic — typically expands far fewer vertices than Dijkstra on
// road networks (engineering alternative; results are identical).
#ifndef LIGHTTR_ROADNET_ASTAR_H_
#define LIGHTTR_ROADNET_ASTAR_H_

#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace lighttr::roadnet {

/// Result of an A* query, including search-effort accounting.
struct AStarResult {
  double distance_m = kUnreachable;
  int64_t expanded_vertices = 0;
};

/// Directed shortest-path distance from u to v. The haversine distance
/// to the target is an admissible heuristic (roads are never shorter
/// than the great circle), so the result equals Dijkstra's exactly.
AStarResult AStarDistance(const RoadNetwork& network, VertexId u, VertexId v);

}  // namespace lighttr::roadnet

#endif  // LIGHTTR_ROADNET_ASTAR_H_
