// Seeded random number generation for reproducible experiments.
#ifndef LIGHTTR_COMMON_RNG_H_
#define LIGHTTR_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace lighttr {

/// A deterministic, seedable RNG wrapper used throughout the library.
///
/// All stochastic components (workload generation, parameter init, dropout,
/// client sampling) draw from an explicitly passed Rng so that every
/// experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Returns a double uniform in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Returns an integer uniform in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    LIGHTTR_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Returns a normal sample with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// All weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Returns k distinct indices sampled uniformly from [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Spawns an independent child generator (useful to give each client its
  /// own stream that does not perturb the parent sequence).
  Rng Fork() { return Rng(engine_()); }

  /// Serializes the full engine state (not just the seed): restoring it
  /// resumes the exact stream position, which crash recovery needs to
  /// replay a federated run bitwise-identically.
  std::string SerializeState() const;

  /// Restores a state produced by SerializeState. Rejects malformed
  /// input without touching the current state.
  [[nodiscard]] Status DeserializeState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_RNG_H_
