// Reproduces paper Figure 5: running efficiency on the Geolife-like
// workload — (a) running time per training epoch, (b) FLOPs and
// parameter counts — plus the convergence comparison discussed in
// Sec. V-B3 (LightTR converges in fewer rounds than MTrajRec+FL).
//
// Expected shape: RNN+FL cheapest (but far less accurate), LightTR a
// close second with ~an order of magnitude fewer FLOPs than
// RNTrajRec+FL; MTrajRec+FL and RNTrajRec+FL heaviest.
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"

namespace {

// First round whose validation accuracy reaches 95% of the run's best.
int RoundsToConverge(const std::vector<lighttr::fl::RoundRecord>& history) {
  double best = 0.0;
  for (const auto& record : history) {
    best = std::max(best, record.global_valid_accuracy);
  }
  for (const auto& record : history) {
    if (record.global_valid_accuracy >= 0.95 * best) return record.round;
  }
  return history.empty() ? 0 : history.back().round;
}

}  // namespace

int main() {
  using namespace lighttr;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Figure 5 reproduction (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 4);
  const auto sample = eval::ExperimentEnv::PooledTestSet(clients, 12);

  const std::vector<baselines::ModelKind> methods = {
      baselines::ModelKind::kRnn, baselines::ModelKind::kMTrajRec,
      baselines::ModelKind::kRnTrajRec, baselines::ModelKind::kLightTr};

  TablePrinter table({"Method", "Epoch(s)", "MFLOPs/rec", "Params",
                      "Conv.round", "Recall"});
  for (baselines::ModelKind kind : methods) {
    eval::MethodResult result = eval::RunFederatedMethod(
        *env, kind, clients, eval::DefaultRunOptions(scale));
    eval::ProfileModel(*env, kind, sample, &result);
    table.AddRow(
        {result.method, TablePrinter::Fmt(result.train_epoch_seconds, 3),
         TablePrinter::Fmt(
             static_cast<double>(result.flops_per_recovery) / 1e6, 2),
         std::to_string(result.parameters),
         std::to_string(RoundsToConverge(result.run.history)),
         TablePrinter::Fmt(result.metrics.recall)});
    std::printf("done: %s\n", result.method.c_str());
    std::fflush(stdout);
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_fig5_efficiency.csv", table.ToCsv());
  return 0;
}
