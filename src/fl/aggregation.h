// Server-side upload screening and robust aggregation.
//
// The bare FedAvg mean (Algorithm 3 line 11) is a single point of
// failure: one NaN scalar poisons every weight of the global model, and
// one scaled upload drags the mean arbitrarily far. This module screens
// uploads before they enter aggregation (finite check + delta-norm
// clip/reject) and offers robust alternatives to the mean (coordinate-
// wise median, trimmed mean) that tolerate a minority of damaged
// uploads that pass screening.
#ifndef LIGHTTR_FL_AGGREGATION_H_
#define LIGHTTR_FL_AGGREGATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/arena.h"

namespace lighttr::fl {

/// What to do with an upload whose delta norm exceeds the bound.
enum class ScreenPolicy {
  kClip = 0,  // scale the delta back to the bound, keep the upload
  kReject,    // discard the upload entirely
};

/// Server-side upload validation. Non-finite uploads are always
/// rejected when screening is enabled; the norm bound is optional.
struct UploadScreenConfig {
  bool enabled = true;
  /// Maximum L2 norm of (upload - reference); <= 0 disables the bound.
  double max_delta_norm = 0.0;
  ScreenPolicy norm_policy = ScreenPolicy::kClip;
};

/// Validates (and under kClip possibly repairs) one upload against the
/// current global model `reference`. Returns OK when the upload may
/// enter aggregation; a non-OK Status means it must be discarded. Never
/// crashes on garbage input. When `clipped` is non-null it is set to
/// whether the delta was norm-clipped.
[[nodiscard]] Status ScreenUpload(std::vector<nn::Scalar>* upload,
                    const std::vector<nn::Scalar>& reference,
                    const UploadScreenConfig& config,
                    bool* clipped = nullptr);

/// Aggregation rule applied to the screened uploads.
enum class AggregatorPolicy {
  kMean = 0,        // FedAvg: element-wise mean
  kMedian,          // coordinate-wise median
  kTrimmedMean,     // drop the k smallest/largest per coordinate, mean rest
};

const char* AggregatorPolicyName(AggregatorPolicy policy);

struct AggregatorConfig {
  AggregatorPolicy policy = AggregatorPolicy::kMean;
  /// Fraction trimmed from EACH tail per coordinate (kTrimmedMean only);
  /// e.g. 0.1 with 10 uploads drops the min and max value per weight.
  double trim_fraction = 0.1;
};

/// Aggregates screened uploads into one parameter vector. Returns
/// FailedPrecondition for an empty upload set and InvalidArgument for
/// mismatched vector lengths — callers keep the previous global model
/// instead of crashing.
[[nodiscard]] Result<std::vector<nn::Scalar>> AggregateFlat(
    const std::vector<std::vector<nn::Scalar>>& uploads,
    const AggregatorConfig& config);

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_AGGREGATION_H_
