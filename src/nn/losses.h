// Loss functions: cross-entropy for road-segment prediction (Eq. 14),
// mean squared error for moving-ratio prediction (Eq. 15), and the L2
// knowledge-distillation loss (Eq. 16).
#ifndef LIGHTTR_NN_LOSSES_H_
#define LIGHTTR_NN_LOSSES_H_

#include <vector>

#include "nn/tensor.h"

namespace lighttr::nn {

/// Mean softmax cross-entropy over rows of `logits` ([n, C]) against
/// integer `targets` (size n). When `logit_bias` is non-null it is added
/// to the logits before the softmax — this carries the constraint-mask
/// weights of Eq. 10/11 in log space (masked-out classes get -inf-like
/// penalties instead of hard zeros, keeping gradients finite).
Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& targets,
                           const Matrix* logit_bias = nullptr);

/// Mean squared error between `pred` and a constant `target` of the same
/// shape.
Tensor MseLoss(const Tensor& pred, const Matrix& target);

/// Knowledge-distillation loss of Eq. 16: mean squared L2 distance
/// between student outputs and (constant) teacher outputs.
inline Tensor L2DistillLoss(const Tensor& student, const Matrix& teacher) {
  return MseLoss(student, teacher);
}

/// Index of the maximum entry of row `r`.
size_t ArgmaxRow(const Matrix& m, size_t r);

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_LOSSES_H_
