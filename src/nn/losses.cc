#include "nn/losses.h"

#include <cmath>
#include <limits>
#include <memory>

#include "common/check.h"
#include "nn/flops.h"

namespace lighttr::nn {

Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& targets,
                           const Matrix* logit_bias) {
  const size_t n = logits.rows();
  const size_t classes = logits.cols();
  LIGHTTR_CHECK_EQ(targets.size(), n);
  if (logit_bias != nullptr) {
    LIGHTTR_CHECK(logit_bias->SameShape(logits.value()));
  }

  // Probabilities are cached for the backward pass.
  auto probs = std::make_shared<Matrix>(n, classes);
  Scalar total_loss{0};
  for (size_t r = 0; r < n; ++r) {
    LIGHTTR_CHECK_GE(targets[r], 0);
    LIGHTTR_CHECK_LT(static_cast<size_t>(targets[r]), classes);
    Scalar row_max = -std::numeric_limits<Scalar>::infinity();
    for (size_t c = 0; c < classes; ++c) {
      Scalar z = logits.value()(r, c);
      if (logit_bias != nullptr) z += (*logit_bias)(r, c);
      (*probs)(r, c) = z;
      row_max = std::max(row_max, z);
    }
    Scalar denom{0};
    for (size_t c = 0; c < classes; ++c) {
      (*probs)(r, c) = std::exp((*probs)(r, c) - row_max);
      denom += (*probs)(r, c);
    }
    for (size_t c = 0; c < classes; ++c) (*probs)(r, c) /= denom;
    const Scalar p = (*probs)(r, static_cast<size_t>(targets[r]));
    total_loss += -std::log(std::max(p, Scalar{1e-12}));
  }
  AddFlops(static_cast<int64_t>(6 * n * classes));

  Matrix out(1, 1);
  out(0, 0) = total_loss / static_cast<Scalar>(n);
  return Tensor::MakeOp(
      std::move(out), {logits}, [logits, targets, probs](TensorNode& self) {
        if (!logits.requires_grad()) return;
        const Scalar g = self.grad(0, 0) / static_cast<Scalar>(targets.size());
        Matrix& lg = logits.grad();
        for (size_t r = 0; r < probs->rows(); ++r) {
          for (size_t c = 0; c < probs->cols(); ++c) {
            Scalar delta = (*probs)(r, c);
            if (c == static_cast<size_t>(targets[r])) delta -= Scalar{1};
            lg(r, c) += g * delta;
          }
        }
        AddFlops(static_cast<int64_t>(2 * probs->size()));
      });
}

Tensor MseLoss(const Tensor& pred, const Matrix& target) {
  LIGHTTR_CHECK(pred.value().SameShape(target));
  const size_t n = pred.value().size();
  Scalar total{0};
  for (size_t i = 0; i < n; ++i) {
    const Scalar d = pred.value().data()[i] - target.data()[i];
    total += d * d;
  }
  AddFlops(static_cast<int64_t>(3 * n));
  Matrix out(1, 1);
  out(0, 0) = total / static_cast<Scalar>(n);
  return Tensor::MakeOp(std::move(out), {pred}, [pred, target](TensorNode& self) {
    if (!pred.requires_grad()) return;
    const size_t count = pred.value().size();
    const Scalar g = self.grad(0, 0) * Scalar{2} / static_cast<Scalar>(count);
    Matrix& pg = pred.grad();
    for (size_t i = 0; i < count; ++i) {
      pg.data()[i] += g * (pred.value().data()[i] - target.data()[i]);
    }
    AddFlops(static_cast<int64_t>(3 * count));
  });
}

size_t ArgmaxRow(const Matrix& m, size_t r) {
  LIGHTTR_CHECK_LT(r, m.rows());
  LIGHTTR_CHECK_GE(m.cols(), 1u);
  size_t best = 0;
  for (size_t c = 1; c < m.cols(); ++c) {
    if (m(r, c) > m(r, best)) best = c;
  }
  return best;
}

}  // namespace lighttr::nn
