// Global floating-point-operation accounting (paper Fig. 5(b)).
//
// The matrix kernels and element-wise ops report their work here; scoped
// counters measure the FLOPs of a region (e.g., one training epoch).
// The program is single-threaded by design, so a plain counter suffices.
#ifndef LIGHTTR_NN_FLOPS_H_
#define LIGHTTR_NN_FLOPS_H_

#include <cstdint>

namespace lighttr::nn {

/// Adds `n` floating point operations to the global counter.
void AddFlops(int64_t n);

/// Total FLOPs recorded since program start.
int64_t TotalFlops();

/// Measures FLOPs executed between construction and Elapsed().
class ScopedFlopCount {
 public:
  ScopedFlopCount() : start_(TotalFlops()) {}
  int64_t Elapsed() const { return TotalFlops() - start_; }

 private:
  int64_t start_;
};

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_FLOPS_H_
