// Small file I/O helpers (CSV dumps, model checkpoints, run-state
// snapshots). This is the ONLY place library code opens files for
// writing: src/fl and src/nn are lint-gated (no-direct-persistence) so
// that every persistence path inherits the atomicity guarantees here.
#ifndef LIGHTTR_COMMON_FILE_UTIL_H_
#define LIGHTTR_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace lighttr {

/// Writes `contents` to `path`, replacing any existing file. Atomic:
/// delegates to WriteFileAtomic, so readers never observe a
/// half-written file (they see either the old contents or the new).
[[nodiscard]] Status WriteFile(const std::string& path,
                               const std::string& contents);

/// Writes `contents` to a temporary file in the same directory, then
/// renames it over `path`. std::rename within one directory is atomic
/// on POSIX, so a crash mid-write leaves at worst a stale `path` plus a
/// partial `<path>.tmp` that readers must ignore. On failure the
/// temporary is removed best-effort.
[[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                     const std::string& contents);

/// Appends `contents` to `path`, creating it if missing. NOT atomic: a
/// crash mid-append can leave a torn tail, which is why journal records
/// carry per-line CRCs (fl/run_state discards the torn tail on replay).
[[nodiscard]] Status AppendToFile(const std::string& path,
                                  const std::string& contents);

/// Reads the whole file at `path`.
[[nodiscard]] Result<std::string> ReadFile(const std::string& path);

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_FILE_UTIL_H_
