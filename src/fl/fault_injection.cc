#include "fl/fault_injection.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace lighttr::fl {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kNone:
      return "none";
    case FaultType::kDropout:
      return "dropout";
    case FaultType::kStraggler:
      return "straggler";
    case FaultType::kCorruption:
      return "corruption";
  }
  return "unknown";
}

const char* CorruptionKindName(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kNaN:
      return "nan";
    case CorruptionKind::kInf:
      return "inf";
    case CorruptionKind::kScale:
      return "scale";
    case CorruptionKind::kGarbage:
      return "garbage";
  }
  return "unknown";
}

FaultModel::FaultModel(FaultInjectionConfig config) : config_(config) {
  LIGHTTR_CHECK_GE(config_.dropout_rate, 0.0);
  LIGHTTR_CHECK_LE(config_.dropout_rate, 1.0);
  LIGHTTR_CHECK_GE(config_.straggler_rate, 0.0);
  LIGHTTR_CHECK_LE(config_.straggler_rate, 1.0);
  LIGHTTR_CHECK_GE(config_.corruption_rate, 0.0);
  LIGHTTR_CHECK_LE(config_.corruption_rate, 1.0);
  LIGHTTR_CHECK_GT(config_.nominal_update_s, 0.0);
  LIGHTTR_CHECK_GT(config_.straggler_slowdown_mean, 0.0);
}

FaultDraw FaultModel::Draw(Rng* rng) const {
  LIGHTTR_CHECK(rng != nullptr);
  FaultDraw draw;
  draw.simulated_seconds =
      config_.nominal_update_s * rng->Uniform(0.8, 1.2);
  // The draws are consumed unconditionally so the Rng stream (and hence
  // every later fault) does not depend on earlier outcomes.
  const bool dropped = rng->Bernoulli(config_.dropout_rate);
  const bool slowed = rng->Bernoulli(config_.straggler_rate);
  const double slowdown =
      std::exp(rng->Normal(std::log(config_.straggler_slowdown_mean),
                           config_.straggler_slowdown_sigma));
  const bool corrupted = rng->Bernoulli(config_.corruption_rate);
  const int64_t kind_draw = rng->UniformInt(0, 3);

  if (dropped) {
    draw.type = FaultType::kDropout;
    return draw;
  }
  if (slowed) {
    draw.simulated_seconds *= slowdown;
    if (draw.simulated_seconds > config_.round_deadline_s) {
      draw.type = FaultType::kStraggler;
      return draw;
    }
  }
  if (corrupted) {
    draw.type = FaultType::kCorruption;
    draw.corruption = static_cast<CorruptionKind>(kind_draw);
  }
  return draw;
}

void FaultModel::Corrupt(CorruptionKind kind, Rng* rng,
                         std::vector<nn::Scalar>* upload) {
  LIGHTTR_CHECK(rng != nullptr);
  LIGHTTR_CHECK(upload != nullptr);
  if (upload->empty()) return;
  const size_t n = upload->size();
  switch (kind) {
    case CorruptionKind::kNaN:
    case CorruptionKind::kInf: {
      // Damage a sparse subset: one scalar plus ~1% of the vector.
      const size_t hits = 1 + n / 100;
      const nn::Scalar bad =
          kind == CorruptionKind::kNaN
              ? std::numeric_limits<nn::Scalar>::quiet_NaN()
              : std::numeric_limits<nn::Scalar>::infinity();
      for (size_t h = 0; h < hits; ++h) {
        const size_t i =
            static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
        (*upload)[i] = rng->Bernoulli(0.5) ? bad : -bad;
      }
      break;
    }
    case CorruptionKind::kScale: {
      const nn::Scalar factor =
          static_cast<nn::Scalar>(rng->Uniform(1e4, 1e6));
      for (nn::Scalar& x : *upload) x *= factor;
      break;
    }
    case CorruptionKind::kGarbage: {
      for (nn::Scalar& x : *upload) {
        x = static_cast<nn::Scalar>(rng->Uniform(-100.0, 100.0));
      }
      break;
    }
  }
}

}  // namespace lighttr::fl
