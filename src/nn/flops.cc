#include "nn/flops.h"

#include <atomic>
#include <mutex>
#include <vector>

namespace lighttr::nn {

namespace {

// Registry of per-thread counters. A thread's slot is registered on its
// first AddFlops and drained into `retired` when the thread exits, so
// totals survive worker churn. The registry itself is intentionally
// never destroyed: thread_local destructors of late-exiting threads may
// run after static destructors would have torn it down.
struct FlopRegistry {
  std::mutex mutex;
  std::vector<const std::atomic<int64_t>*> slots;  // guarded by mutex
  int64_t retired = 0;                             // guarded by mutex
};

FlopRegistry& Registry() {
  static FlopRegistry* registry = new FlopRegistry();
  return *registry;
}

struct ThreadSlot {
  std::atomic<int64_t> count{0};

  ThreadSlot() {
    FlopRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.slots.push_back(&count);
  }

  ~ThreadSlot() {
    FlopRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.retired += count.load(std::memory_order_relaxed);
    for (size_t i = 0; i < registry.slots.size(); ++i) {
      if (registry.slots[i] == &count) {
        registry.slots.erase(registry.slots.begin() +
                             static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
};

ThreadSlot& Slot() {
  thread_local ThreadSlot slot;
  return slot;
}

}  // namespace

void AddFlops(int64_t n) {
  Slot().count.fetch_add(n, std::memory_order_relaxed);
}

int64_t ThreadFlops() {
  return Slot().count.load(std::memory_order_relaxed);
}

int64_t TotalFlops() {
  FlopRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  int64_t total = registry.retired;
  for (const std::atomic<int64_t>* slot : registry.slots) {
    total += slot->load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace lighttr::nn
