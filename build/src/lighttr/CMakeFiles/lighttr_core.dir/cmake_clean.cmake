file(REMOVE_RECURSE
  "CMakeFiles/lighttr_core.dir/lte_model.cc.o"
  "CMakeFiles/lighttr_core.dir/lte_model.cc.o.d"
  "CMakeFiles/lighttr_core.dir/meta_local_update.cc.o"
  "CMakeFiles/lighttr_core.dir/meta_local_update.cc.o.d"
  "CMakeFiles/lighttr_core.dir/pipeline.cc.o"
  "CMakeFiles/lighttr_core.dir/pipeline.cc.o.d"
  "CMakeFiles/lighttr_core.dir/teacher_training.cc.o"
  "CMakeFiles/lighttr_core.dir/teacher_training.cc.o.d"
  "liblighttr_core.a"
  "liblighttr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
