file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_centralized.dir/bench_table6_centralized.cc.o"
  "CMakeFiles/bench_table6_centralized.dir/bench_table6_centralized.cc.o.d"
  "bench_table6_centralized"
  "bench_table6_centralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
