// Neural layers built from autograd ops: Dense, GRU cell (Eq. 5),
// vanilla RNN cell, embedding table, and scaled dot-product attention.
#ifndef LIGHTTR_NN_LAYERS_H_
#define LIGHTTR_NN_LAYERS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/parameter.h"
#include "nn/tensor.h"

namespace lighttr::nn {

/// Fully-connected layer: y = x W + b.
class Dense {
 public:
  /// Creates parameters and registers them in `params` under
  /// "<prefix>.w" / "<prefix>.b".
  Dense(size_t in_dim, size_t out_dim, const std::string& prefix,
        ParameterSet* params, Rng* rng);

  /// x is [n, in_dim]; returns [n, out_dim].
  Tensor Forward(const Tensor& x) const;

  size_t in_dim() const { return w_.rows(); }
  size_t out_dim() const { return w_.cols(); }
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  Tensor w_;
  Tensor b_;
};

/// Gated recurrent unit cell implementing Eq. 5 of the paper:
///   r_t = sigma(W_r [h_{t-1}, g_t] + b_r)
///   z_t = sigma(W_z [h_{t-1}, g_t] + b_z)
///   h~  = tanh(W_h [r_t * h_{t-1}, g_t] + b_h)
///   h_t = (1 - z_t) * h_{t-1} + z_t * h~
class GruCell {
 public:
  GruCell(size_t input_dim, size_t hidden_dim, const std::string& prefix,
          ParameterSet* params, Rng* rng);

  /// x is [1, input_dim], h_prev is [1, hidden_dim]; returns the next
  /// hidden state [1, hidden_dim].
  Tensor Forward(const Tensor& x, const Tensor& h_prev) const;

  /// Zero-valued initial hidden state (constant).
  Tensor InitialState() const;

  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t hidden_dim_;
  Dense gate_r_;
  Dense gate_z_;
  Dense gate_h_;
};

/// Long short-term memory cell (alternative RNN-family ST-operator):
///   i, f, o = sigma(W_{i,f,o} [h, x] + b); g = tanh(W_g [h, x] + b)
///   c' = f * c + i * g;  h' = o * tanh(c').
class LstmCell {
 public:
  LstmCell(size_t input_dim, size_t hidden_dim, const std::string& prefix,
           ParameterSet* params, Rng* rng);

  /// One step; returns the pair via output parameters-free struct.
  struct State {
    Tensor h;
    Tensor c;
  };
  State Forward(const Tensor& x, const State& previous) const;
  State InitialState() const;
  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t hidden_dim_;
  Dense gate_i_;
  Dense gate_f_;
  Dense gate_o_;
  Dense gate_g_;
};

/// Vanilla tanh RNN cell: h_t = tanh(W [h_{t-1}, x_t] + b).
class RnnCell {
 public:
  RnnCell(size_t input_dim, size_t hidden_dim, const std::string& prefix,
          ParameterSet* params, Rng* rng);

  Tensor Forward(const Tensor& x, const Tensor& h_prev) const;
  Tensor InitialState() const;
  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t hidden_dim_;
  Dense cell_;
};

/// Trainable embedding table [vocab, dim].
class Embedding {
 public:
  Embedding(size_t vocab, size_t dim, const std::string& prefix,
            ParameterSet* params, Rng* rng);

  /// Rows of the table at `ids`, shape [ids.size(), dim].
  Tensor Forward(const std::vector<int>& ids) const;

  size_t vocab() const { return table_.rows(); }
  size_t dim() const { return table_.cols(); }

 private:
  Tensor table_;
};

/// Causal temporal convolution — the CNN-based ST-operator family of
/// paper Table II. y_t depends on x_{t-k+1..t}.
class CausalConv1d {
 public:
  CausalConv1d(size_t in_dim, size_t out_dim, size_t kernel,
               const std::string& prefix, ParameterSet* params, Rng* rng);

  /// x is [T, in_dim]; returns [T, out_dim].
  Tensor Forward(const Tensor& x) const;

  size_t kernel() const { return kernel_; }

 private:
  size_t kernel_;
  Dense dense_;
};

/// Scaled dot-product attention: softmax(Q K^T / sqrt(d)) V.
/// Q is [nq, d], K and V are [nk, d]; the result is [nq, d].
Tensor ScaledDotProductAttention(const Tensor& q, const Tensor& k,
                                 const Tensor& v);

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_LAYERS_H_
