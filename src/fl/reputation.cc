#include "fl/reputation.h"

#include <algorithm>
#include <cstdint>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/finite.h"

namespace lighttr::fl {
namespace {

constexpr uint32_t kBookMagic = 0x4C545250u;  // "LTRP"
// v2 appends the suspect_events counter per client; v1 blobs (from
// pre-adversary snapshots) still load, defaulting the counter to 0.
constexpr uint32_t kBookVersion = 2;
constexpr uint32_t kMinBookVersion = 1;

}  // namespace

ReputationBook::ReputationBook(int num_clients, ReputationConfig config)
    : config_(config) {
  LIGHTTR_CHECK_GE(num_clients, 0);
  LIGHTTR_CHECK_GT(config_.alpha, 0.0);
  LIGHTTR_CHECK_LE(config_.alpha, 1.0);
  LIGHTTR_CHECK_GT(config_.quarantine_threshold, 0.0);
  LIGHTTR_CHECK_GT(config_.parole_rounds, 0);
  clients_.resize(static_cast<size_t>(num_clients));
}

const ClientReputation& ReputationBook::client(int index) const {
  LIGHTTR_CHECK_GE(index, 0);
  LIGHTTR_CHECK_LT(index, num_clients());
  return clients_[static_cast<size_t>(index)];
}

int ReputationBook::QuarantinedCount() const {
  int count = 0;
  for (const ClientReputation& c : clients_) {
    if (c.quarantined) ++count;
  }
  return count;
}

bool ReputationBook::Observe(int index, bool corrupt, bool rejected,
                             bool outlier, bool suspected) {
  LIGHTTR_CHECK_GE(index, 0);
  LIGHTTR_CHECK_LT(index, num_clients());
  ClientReputation& c = clients_[static_cast<size_t>(index)];
  double weight = 0.0;
  if (corrupt) {
    ++c.corrupt_events;
    weight = std::max(weight, config_.corrupt_weight);
  }
  if (rejected) {
    ++c.rejected_events;
    weight = std::max(weight, config_.rejected_weight);
  }
  if (suspected) {
    ++c.suspect_events;
    weight = std::max(weight, config_.suspect_weight);
  }
  if (outlier) {
    ++c.outlier_events;
    weight = std::max(weight, config_.outlier_weight);
  }
  c.score = (1.0 - config_.alpha) * c.score + config_.alpha * weight;
  if (!c.quarantined && c.score >= config_.quarantine_threshold) {
    c.quarantined = true;
    c.quarantine_age = 0;
    return true;
  }
  return false;
}

int ReputationBook::Tick() {
  int paroled = 0;
  for (ClientReputation& c : clients_) {
    if (!c.quarantined) continue;
    ++c.quarantine_age;
    if (c.quarantine_age >= config_.parole_rounds) {
      c.quarantined = false;
      c.quarantine_age = 0;
      // Parole is probation, not absolution: re-enter at half the
      // threshold so one more offence re-quarantines immediately.
      c.score = 0.5 * config_.quarantine_threshold;
      ++paroled;
    }
  }
  return paroled;
}

std::string ReputationBook::Serialize() const {
  BinaryWriter writer;
  writer.WriteU32(kBookMagic);
  writer.WriteU32(kBookVersion);
  writer.WriteU64(clients_.size());
  for (const ClientReputation& c : clients_) {
    writer.WriteF64(c.score);
    writer.WriteU8(c.quarantined ? 1 : 0);
    writer.WriteU32(static_cast<uint32_t>(c.quarantine_age));
    writer.WriteU32(static_cast<uint32_t>(c.corrupt_events));
    writer.WriteU32(static_cast<uint32_t>(c.rejected_events));
    writer.WriteU32(static_cast<uint32_t>(c.outlier_events));
    writer.WriteU32(static_cast<uint32_t>(c.suspect_events));  // v2
  }
  return writer.Take();
}

Status ReputationBook::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&magic));
  if (magic != kBookMagic) {
    return Status::InvalidArgument("reputation blob: bad magic");
  }
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version < kMinBookVersion || version > kBookVersion) {
    return Status::InvalidArgument("reputation blob: unknown version " +
                                   std::to_string(version));
  }
  uint64_t count = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU64(&count));
  if (count != clients_.size()) {
    return Status::InvalidArgument(
        "reputation blob: client count " + std::to_string(count) +
        " does not match configured " + std::to_string(clients_.size()));
  }
  std::vector<ClientReputation> restored(static_cast<size_t>(count));
  for (ClientReputation& c : restored) {
    uint8_t quarantined = 0;
    uint32_t age = 0, corrupt = 0, rejected = 0, outlier = 0, suspect = 0;
    LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&c.score));
    LIGHTTR_RETURN_NOT_OK(reader.ReadU8(&quarantined));
    LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&age));
    LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&corrupt));
    LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&rejected));
    LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&outlier));
    if (version >= 2) {
      LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&suspect));
    }
    if (!IsFinite(c.score) || quarantined > 1) {
      return Status::InvalidArgument("reputation blob: corrupt client entry");
    }
    c.quarantined = quarantined != 0;
    c.quarantine_age = static_cast<int>(age);
    c.corrupt_events = static_cast<int>(corrupt);
    c.rejected_events = static_cast<int>(rejected);
    c.outlier_events = static_cast<int>(outlier);
    c.suspect_events = static_cast<int>(suspect);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("reputation blob: trailing bytes");
  }
  clients_ = std::move(restored);
  return Status::Ok();
}

}  // namespace lighttr::fl
