// Unit tests for src/common: Status/Result, Rng, TablePrinter, file IO.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/file_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace lighttr {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad keep ratio");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad keep ratio");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad keep ratio");
}

TEST(Status, EveryCodeHasName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    LIGHTTR_RETURN_NOT_OK(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> result = Status::Internal("boom");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.UniformInt(0, 4);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 4);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(1.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 9000; ++i) {
    ++counts[rng.WeightedIndex({1.0, 2.0, 6.0})];
  }
  EXPECT_NEAR(counts[0] / 9000.0, 1.0 / 9.0, 0.02);
  EXPECT_NEAR(counts[2] / 9000.0, 6.0 / 9.0, 0.02);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (size_t idx : sample) EXPECT_LT(idx, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(8);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(9);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff = any_diff || (parent.Uniform() != child.Uniform());
  }
  EXPECT_TRUE(any_diff);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"xx", "1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| A  | LongHeader |"), std::string::npos);
  EXPECT_NE(out.find("| xx | 1          |"), std::string::npos);
}

TEST(TablePrinter, CsvEscaping) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a,b", "say \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(0.12349, 3), "0.123");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

TEST(FileUtil, WriteReadRoundtrip) {
  const std::string path = "/tmp/lighttr_file_util_test.bin";
  const std::string payload("bin\0ary\n", 8);
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);
  std::remove(path.c_str());
}

TEST(FileUtil, ReadMissingFileFails) {
  auto read = ReadFile("/tmp/definitely_missing_lighttr_file");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(Stopwatch, Monotonic) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace lighttr
