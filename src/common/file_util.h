// Small file I/O helpers (CSV dumps, model checkpoints).
#ifndef LIGHTTR_COMMON_FILE_UTIL_H_
#define LIGHTTR_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace lighttr {

/// Writes `contents` to `path`, replacing any existing file.
[[nodiscard]] Status WriteFile(const std::string& path, const std::string& contents);

/// Reads the whole file at `path`.
[[nodiscard]] Result<std::string> ReadFile(const std::string& path);

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_FILE_UTIL_H_
