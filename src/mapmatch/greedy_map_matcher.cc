#include "mapmatch/greedy_map_matcher.h"

#include "geo/grid.h"

namespace lighttr::mapmatch {

GreedyMapMatcher::GreedyMapMatcher(const roadnet::SegmentIndex& index,
                                   GreedyOptions options)
    : index_(index), options_(options) {
  LIGHTTR_CHECK_GT(options_.candidate_radius_m, 0.0);
  LIGHTTR_CHECK_GE(options_.radius_doublings, 0);
  LIGHTTR_CHECK_GT(options_.epsilon_s, 0.0);
}

Result<traj::MatchedTrajectory> GreedyMapMatcher::Match(
    const traj::RawTrajectory& raw) const {
  // Ingestion boundary: refuse malformed GPS input (non-finite values,
  // time travel, far-out-of-grid points) before any matching math.
  LIGHTTR_RETURN_NOT_OK(traj::ValidateTrajectory(index_.network(), raw));
  traj::MatchedTrajectory matched;
  matched.driver_id = raw.driver_id;
  matched.epsilon_s = options_.epsilon_s;
  const double t0 = raw.points[0].t;
  for (const traj::RawPoint& point : raw.points) {
    double radius = options_.candidate_radius_m;
    std::vector<roadnet::SegmentIndex::Candidate> candidates;
    for (int attempt = 0; attempt <= options_.radius_doublings; ++attempt) {
      candidates = index_.Nearby(point.position, radius);
      if (!candidates.empty()) break;
      radius *= 2.0;
    }
    if (candidates.empty()) {
      return Status::NotFound("GPS point has no road candidate in range");
    }
    matched.points.push_back(traj::MatchedPoint{
        candidates.front().projection.position, point.t,
        geo::TimeBin(point.t, t0, options_.epsilon_s)});
  }
  return matched;
}

}  // namespace lighttr::mapmatch
