// Reproduces paper Table VI: centralized MTrajRec vs federated LightTR
// on both workloads at keep ratios 6.25%, 12.5%, and 25%.
//
// Expected shape: LightTR is competitive with (and on the sparse
// Tdrive-like workload often better than) the centralized model despite
// never pooling raw trajectories.
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"

int main() {
  using namespace lighttr;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Table VI reproduction (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const std::vector<traj::WorkloadProfile> profiles = {
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale),
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale)};
  const std::vector<double> keep_ratios = {0.0625, 0.125, 0.25};

  TablePrinter table({"Dataset", "Keep", "Method", "Recall", "Precision",
                      "MAE(km)", "RMSE(km)"});
  for (const auto& profile : profiles) {
    for (double keep : keep_ratios) {
      const auto clients = env->MakeWorkload(
          profile, eval::DefaultWorkloadOptions(scale, keep), scale.seed + 5);

      const eval::MethodResult central = eval::RunCentralizedMethod(
          *env, baselines::ModelKind::kMTrajRec, clients,
          scale.centralized_epochs, /*learning_rate=*/3e-3,
          scale.max_test_trajectories, scale.seed + 6);
      const eval::MethodResult federated = eval::RunFederatedMethod(
          *env, baselines::ModelKind::kLightTr, clients,
          eval::DefaultRunOptions(scale));

      for (const eval::MethodResult* result : {&central, &federated}) {
        table.AddRow({profile.name, TablePrinter::Fmt(keep * 100, 2) + "%",
                      result->method,
                      TablePrinter::Fmt(result->metrics.recall),
                      TablePrinter::Fmt(result->metrics.precision),
                      TablePrinter::Fmt(result->metrics.mae_km),
                      TablePrinter::Fmt(result->metrics.rmse_km)});
      }
      std::printf("done: %s %.2f%%\n", profile.name.c_str(), keep * 100);
      std::fflush(stdout);
    }
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_table6_centralized.csv", table.ToCsv());
  return 0;
}
