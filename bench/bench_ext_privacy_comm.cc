// Extension experiment (paper future-work direction): the accuracy /
// privacy / communication trade-off of LightTR under DP-style upload
// protection (clip + Gaussian noise) and 8-bit upload quantization.
//
// Expected: quantization cuts uplink ~4x at negligible accuracy cost;
// accuracy degrades gracefully as the DP noise multiplier grows.
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "fl/federated_trainer.h"

int main() {
  using namespace lighttr;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Privacy/communication extension (scale=%s)\n",
              scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 22);
  const auto test = eval::ExperimentEnv::PooledTestSet(
      clients, scale.max_test_trajectories);
  const fl::ModelFactory factory =
      baselines::MakeFactory(baselines::ModelKind::kLightTr, &env->encoder());

  struct Variant {
    const char* name;
    double clip = 0.0;
    double noise = 0.0;
    bool quantize = false;
  };
  const std::vector<Variant> variants = {
      {"baseline (float32, no DP)"},
      {"quantized uploads", 0.0, 0.0, true},
      {"DP clip=20 z=0.001", 20.0, 0.001, false},
      {"DP clip=20 z=0.01", 20.0, 0.01, false},
      {"DP clip=20 z=0.05", 20.0, 0.05, false},
      {"DP z=0.01 + quantized", 20.0, 0.01, true},
  };

  TablePrinter table({"Variant", "Recall", "MAE(km)", "Uplink(KiB)",
                      "Downlink(KiB)"});
  for (const Variant& variant : variants) {
    fl::FederatedTrainerOptions fed;
    fed.rounds = scale.rounds;
    fed.local_epochs = scale.local_epochs;
    fed.learning_rate = 3e-3;
    fed.seed = scale.seed;
    fed.privacy.clip_norm = variant.clip;
    fed.privacy.noise_multiplier = variant.noise;
    fed.quantize_uploads = variant.quantize;
    fl::FederatedTrainer trainer(factory, &clients, fed);
    const fl::FederatedRunResult run = trainer.Run();
    const eval::RecoveryMetrics metrics =
        eval::EvaluateRecovery(trainer.global_model(), env->network(), test);
    table.AddRow(
        {variant.name, TablePrinter::Fmt(metrics.recall),
         TablePrinter::Fmt(metrics.mae_km),
         TablePrinter::Fmt(static_cast<double>(run.comm.bytes_uplink) / 1024.0,
                           0),
         TablePrinter::Fmt(
             static_cast<double>(run.comm.bytes_downlink) / 1024.0, 0)});
    std::printf("done: %s\n", variant.name);
    std::fflush(stdout);
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_ext_privacy_comm.csv", table.ToCsv());
  return 0;
}
